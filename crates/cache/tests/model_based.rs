//! Model-based testing: a random stream of loads/stores/AMOs through the
//! cache bank (with a functional DRAM behind it) must behave exactly like
//! a flat byte-array memory model, across every policy configuration.
//! Deterministically seeded (`hb_rng`) so failures replay exactly.

use hb_cache::{AccessKind, CacheBank, CacheConfig, CacheRequest, LineRequestKind};
use hb_isa::AmoOp;
use hb_rng::Rng;

#[derive(Debug, Clone, Copy)]
enum Op {
    Load { addr: u32, width: u8 },
    Store { addr: u32, width: u8, data: u32 },
    Amo { addr: u32, op: AmoOp, data: u32 },
}

const MEM_BYTES: u32 = 1 << 16;

fn any_op(rng: &mut Rng) -> Op {
    let width = *rng.pick(&[1u8, 2, 4]);
    let w = rng.range_u32(0, MEM_BYTES / 4);
    match rng.index(3) {
        0 => Op::Load {
            addr: (w * 4) & !(u32::from(width) - 1),
            width,
        },
        1 => Op::Store {
            addr: (w * 4) & !(u32::from(width) - 1),
            width,
            data: rng.next_u32(),
        },
        _ => Op::Amo {
            addr: w * 4,
            op: *rng.pick(&AmoOp::ALL),
            data: rng.next_u32(),
        },
    }
}

/// Reference model: flat byte memory with architectural semantics.
struct Model {
    bytes: Vec<u8>,
}

impl Model {
    fn read(&self, addr: u32, width: u8) -> u32 {
        let mut v = 0u32;
        for i in (0..width as usize).rev() {
            v = (v << 8) | u32::from(self.bytes[addr as usize + i]);
        }
        v
    }

    fn write(&mut self, addr: u32, width: u8, data: u32) {
        for i in 0..width as usize {
            self.bytes[addr as usize + i] = (data >> (8 * i)) as u8;
        }
    }

    fn apply(&mut self, op: Op) -> u32 {
        match op {
            Op::Load { addr, width } => self.read(addr, width),
            Op::Store { addr, width, data } => {
                self.write(addr, width, data);
                0
            }
            Op::Amo { addr, op, data } => {
                let old = self.read(addr, 4);
                self.write(addr, 4, op.apply(old, data));
                old
            }
        }
    }
}

/// Drives the bank until the request with `id` completes, servicing DRAM
/// with zero latency.
fn complete(bank: &mut CacheBank, backing: &mut [u8], req: CacheRequest) -> u32 {
    while !bank.try_accept(req) {
        service(bank, backing);
    }
    loop {
        service(bank, backing);
        if let Some(resp) = bank.pop_response() {
            assert_eq!(resp.id, req.id, "responses must retire in order");
            return resp.data;
        }
    }
}

fn service(bank: &mut CacheBank, backing: &mut [u8]) {
    bank.tick();
    while let Some(mreq) = bank.pop_mem_request() {
        match mreq.kind {
            LineRequestKind::Fetch => {
                let a = mreq.line_addr as usize;
                let line: Vec<u8> = backing[a..a + 64].to_vec();
                bank.complete_fetch(mreq.line_addr, &line);
            }
            LineRequestKind::Writeback { data, valid } => {
                let a = mreq.line_addr as usize;
                for i in 0..64 {
                    if valid & (1 << i) != 0 {
                        backing[a + i] = data[i];
                    }
                }
            }
        }
    }
}

fn run_against_model(ops: &[Op], cfg: CacheConfig) {
    let mut bank = CacheBank::new(cfg);
    let mut backing = vec![0u8; MEM_BYTES as usize];
    let mut model = Model {
        bytes: vec![0u8; MEM_BYTES as usize],
    };
    for (i, &op) in ops.iter().enumerate() {
        let req = match op {
            Op::Load { addr, width } => CacheRequest {
                id: i as u64,
                addr,
                kind: AccessKind::Load,
                data: 0,
                width,
            },
            Op::Store { addr, width, data } => CacheRequest {
                id: i as u64,
                addr,
                kind: AccessKind::Store,
                data,
                width,
            },
            Op::Amo { addr, op, data } => CacheRequest {
                id: i as u64,
                addr,
                kind: AccessKind::Amo(op),
                data,
                width: 4,
            },
        };
        let got = complete(&mut bank, &mut backing, req);
        let want = model.apply(op);
        if !matches!(op, Op::Store { .. }) {
            assert_eq!(got, want, "op {i} {op:?} diverged from the reference model");
        }
    }
    // Final state: flush and compare the entire memory image.
    for (line_addr, data, dirty) in bank.flush_all() {
        for i in 0..64 {
            if dirty & (1 << i) != 0 {
                backing[line_addr as usize + i] = data[i];
            }
        }
    }
    assert_eq!(backing, model.bytes, "post-flush memory image diverged");
}

fn op_vec(rng: &mut Rng, max_len: usize) -> Vec<Op> {
    let len = 1 + rng.index(max_len - 1);
    (0..len).map(|_| any_op(rng)).collect()
}

#[test]
fn write_validate_bank_matches_flat_memory() {
    let mut rng = Rng::seed_from_u64(0xCAC_4E01);
    for _ in 0..48 {
        let ops = op_vec(&mut rng, 200);
        run_against_model(
            &ops,
            CacheConfig {
                sets: 4,
                ways: 2,
                ..CacheConfig::default()
            },
        );
    }
}

#[test]
fn write_allocate_bank_matches_flat_memory() {
    let mut rng = Rng::seed_from_u64(0xCAC_4E02);
    for _ in 0..48 {
        let ops = op_vec(&mut rng, 200);
        run_against_model(
            &ops,
            CacheConfig {
                sets: 4,
                ways: 2,
                write_validate: false,
                ..CacheConfig::default()
            },
        );
    }
}

#[test]
fn blocking_bank_matches_flat_memory() {
    let mut rng = Rng::seed_from_u64(0xCAC_4E03);
    for _ in 0..48 {
        let ops = op_vec(&mut rng, 150);
        run_against_model(
            &ops,
            CacheConfig {
                sets: 2,
                ways: 1,
                blocking: true,
                ..CacheConfig::default()
            },
        );
    }
}
