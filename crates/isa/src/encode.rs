//! Binary encoding of [`Instr`] into 32-bit RV32 machine words.

use crate::instr::*;
use crate::reg::{Fpr, Gpr};

// Major opcodes (bits [6:0]).
pub(crate) const OPC_LUI: u32 = 0b011_0111;
pub(crate) const OPC_AUIPC: u32 = 0b001_0111;
pub(crate) const OPC_JAL: u32 = 0b110_1111;
pub(crate) const OPC_JALR: u32 = 0b110_0111;
pub(crate) const OPC_BRANCH: u32 = 0b110_0011;
pub(crate) const OPC_LOAD: u32 = 0b000_0011;
pub(crate) const OPC_STORE: u32 = 0b010_0011;
pub(crate) const OPC_OP_IMM: u32 = 0b001_0011;
pub(crate) const OPC_OP: u32 = 0b011_0011;
pub(crate) const OPC_MISC_MEM: u32 = 0b000_1111;
pub(crate) const OPC_SYSTEM: u32 = 0b111_0011;
pub(crate) const OPC_AMO: u32 = 0b010_1111;
pub(crate) const OPC_LOAD_FP: u32 = 0b000_0111;
pub(crate) const OPC_STORE_FP: u32 = 0b010_0111;
pub(crate) const OPC_OP_FP: u32 = 0b101_0011;
pub(crate) const OPC_MADD: u32 = 0b100_0011;
pub(crate) const OPC_MSUB: u32 = 0b100_0111;
pub(crate) const OPC_NMSUB: u32 = 0b100_1011;
pub(crate) const OPC_NMADD: u32 = 0b100_1111;

fn rd(r: u8) -> u32 {
    (r as u32) << 7
}
fn rs1(r: u8) -> u32 {
    (r as u32) << 15
}
fn rs2(r: u8) -> u32 {
    (r as u32) << 20
}
fn funct3(f: u32) -> u32 {
    f << 12
}
fn funct7(f: u32) -> u32 {
    f << 25
}

fn r_type(opc: u32, f7: u32, f3: u32, d: u8, s1: u8, s2: u8) -> u32 {
    opc | rd(d) | funct3(f3) | rs1(s1) | rs2(s2) | funct7(f7)
}

fn i_type(opc: u32, f3: u32, d: u8, s1: u8, imm: i32) -> u32 {
    debug_assert!(
        (-2048..2048).contains(&imm),
        "I-type imm out of range: {imm}"
    );
    opc | rd(d) | funct3(f3) | rs1(s1) | (((imm as u32) & 0xfff) << 20)
}

fn s_type(opc: u32, f3: u32, s1: u8, s2: u8, imm: i32) -> u32 {
    debug_assert!(
        (-2048..2048).contains(&imm),
        "S-type imm out of range: {imm}"
    );
    let imm = imm as u32;
    opc | funct3(f3) | rs1(s1) | rs2(s2) | ((imm & 0x1f) << 7) | (((imm >> 5) & 0x7f) << 25)
}

fn b_type(opc: u32, f3: u32, s1: u8, s2: u8, offset: i32) -> u32 {
    debug_assert!(
        (-4096..4096).contains(&offset) && offset % 2 == 0,
        "B-type offset out of range or misaligned: {offset}"
    );
    let imm = offset as u32;
    opc | funct3(f3)
        | rs1(s1)
        | rs2(s2)
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn u_type(opc: u32, d: u8, imm: i32) -> u32 {
    debug_assert!(
        (-(1 << 19)..(1 << 19)).contains(&imm),
        "U-type imm out of range: {imm}"
    );
    opc | rd(d) | (((imm as u32) & 0xf_ffff) << 12)
}

fn j_type(opc: u32, d: u8, offset: i32) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&offset) && offset % 2 == 0,
        "J-type offset out of range or misaligned: {offset}"
    );
    let imm = offset as u32;
    opc | rd(d)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

fn amo(f5: u32, aq: bool, rl: bool, d: Gpr, s1: Gpr, s2: Gpr) -> u32 {
    let f7 = (f5 << 2) | (u32::from(aq) << 1) | u32::from(rl);
    r_type(OPC_AMO, f7, 0b010, d.index(), s1.index(), s2.index())
}

impl OpImmOp {
    pub(crate) fn funct3(self) -> u32 {
        match self {
            OpImmOp::Addi => 0b000,
            OpImmOp::Slti => 0b010,
            OpImmOp::Sltiu => 0b011,
            OpImmOp::Xori => 0b100,
            OpImmOp::Ori => 0b110,
            OpImmOp::Andi => 0b111,
            OpImmOp::Slli => 0b001,
            OpImmOp::Srli | OpImmOp::Srai => 0b101,
        }
    }
}

impl OpOp {
    pub(crate) fn funct3(self) -> u32 {
        match self {
            OpOp::Add | OpOp::Sub => 0b000,
            OpOp::Sll => 0b001,
            OpOp::Slt => 0b010,
            OpOp::Sltu => 0b011,
            OpOp::Xor => 0b100,
            OpOp::Srl | OpOp::Sra => 0b101,
            OpOp::Or => 0b110,
            OpOp::And => 0b111,
            OpOp::Mul => 0b000,
            OpOp::Mulh => 0b001,
            OpOp::Mulhsu => 0b010,
            OpOp::Mulhu => 0b011,
            OpOp::Div => 0b100,
            OpOp::Divu => 0b101,
            OpOp::Rem => 0b110,
            OpOp::Remu => 0b111,
        }
    }

    pub(crate) fn funct7(self) -> u32 {
        match self {
            OpOp::Sub | OpOp::Sra => 0b010_0000,
            op if op.is_muldiv() => 0b000_0001,
            _ => 0b000_0000,
        }
    }
}

impl Instr {
    /// Encodes this instruction into its 32-bit RV32 machine word.
    ///
    /// Floating-point arithmetic is encoded with the RNE rounding mode
    /// (`rm = 0b000`), the only mode the simulated core implements.
    ///
    /// # Panics
    ///
    /// Debug builds assert that immediates and offsets fit their encoding
    /// fields; release builds silently truncate out-of-range values, so the
    /// assembler validates ranges before calling this.
    pub fn encode(&self) -> u32 {
        match *self {
            Instr::Lui { rd: d, imm } => u_type(OPC_LUI, d.index(), imm),
            Instr::Auipc { rd: d, imm } => u_type(OPC_AUIPC, d.index(), imm),
            Instr::Jal { rd: d, offset } => j_type(OPC_JAL, d.index(), offset),
            Instr::Jalr {
                rd: d,
                rs1: s1,
                offset,
            } => i_type(OPC_JALR, 0b000, d.index(), s1.index(), offset),
            Instr::Branch {
                op,
                rs1: s1,
                rs2: s2,
                offset,
            } => b_type(OPC_BRANCH, op.funct3(), s1.index(), s2.index(), offset),
            Instr::Load {
                width,
                rd: d,
                rs1: s1,
                offset,
            } => i_type(OPC_LOAD, width.funct3(), d.index(), s1.index(), offset),
            Instr::Store {
                width,
                rs1: s1,
                rs2: s2,
                offset,
            } => s_type(OPC_STORE, width.funct3(), s1.index(), s2.index(), offset),
            Instr::OpImm {
                op,
                rd: d,
                rs1: s1,
                imm,
            } => {
                let mut w = i_type(OPC_OP_IMM, op.funct3(), d.index(), s1.index(), imm);
                if op.is_shift() {
                    debug_assert!((0..32).contains(&imm), "shift amount out of range: {imm}");
                    w = OPC_OP_IMM
                        | rd(d.index())
                        | funct3(op.funct3())
                        | rs1(s1.index())
                        | (((imm as u32) & 0x1f) << 20);
                    if op == OpImmOp::Srai {
                        w |= funct7(0b010_0000);
                    }
                }
                w
            }
            Instr::Op {
                op,
                rd: d,
                rs1: s1,
                rs2: s2,
            } => r_type(
                OPC_OP,
                op.funct7(),
                op.funct3(),
                d.index(),
                s1.index(),
                s2.index(),
            ),
            Instr::Fence => OPC_MISC_MEM | (0b0000_1111_1111 << 20),
            Instr::Ecall => OPC_SYSTEM,
            Instr::Ebreak => OPC_SYSTEM | (1 << 20),
            Instr::Amo {
                op,
                rd: d,
                rs1: s1,
                rs2: s2,
                aq,
                rl,
            } => amo(op.funct5(), aq, rl, d, s1, s2),
            Instr::LrW {
                rd: d,
                rs1: s1,
                aq,
                rl,
            } => amo(0b00010, aq, rl, d, s1, Gpr::Zero),
            Instr::ScW {
                rd: d,
                rs1: s1,
                rs2: s2,
                aq,
                rl,
            } => amo(0b00011, aq, rl, d, s1, s2),
            Instr::Flw {
                rd: d,
                rs1: s1,
                offset,
            } => i_type(OPC_LOAD_FP, 0b010, d.index(), s1.index(), offset),
            Instr::Fsw {
                rs1: s1,
                rs2: s2,
                offset,
            } => s_type(OPC_STORE_FP, 0b010, s1.index(), s2.index(), offset),
            Instr::FpOp {
                op,
                rd: d,
                rs1: s1,
                rs2: s2,
            } => {
                let (f7, f3, s2e) = fp_op_fields(op, s2);
                r_type(OPC_OP_FP, f7, f3, d.index(), s1.index(), s2e)
            }
            Instr::Fma {
                op,
                rd: d,
                rs1: s1,
                rs2: s2,
                rs3,
            } => {
                let opc = match op {
                    FmaOp::Madd => OPC_MADD,
                    FmaOp::Msub => OPC_MSUB,
                    FmaOp::Nmsub => OPC_NMSUB,
                    FmaOp::Nmadd => OPC_NMADD,
                };
                opc | rd(d.index())
                    | rs1(s1.index())
                    | rs2(s2.index())
                    | ((rs3.index() as u32) << 27)
            }
            Instr::FpCmp {
                op,
                rd: d,
                rs1: s1,
                rs2: s2,
            } => {
                let f3 = match op {
                    FpCmp::Eq => 0b010,
                    FpCmp::Lt => 0b001,
                    FpCmp::Le => 0b000,
                };
                r_type(OPC_OP_FP, 0b101_0000, f3, d.index(), s1.index(), s2.index())
            }
            Instr::FcvtWS { rd: d, rs1: s1 } => {
                r_type(OPC_OP_FP, 0b110_0000, 0b000, d.index(), s1.index(), 0)
            }
            Instr::FcvtWuS { rd: d, rs1: s1 } => {
                r_type(OPC_OP_FP, 0b110_0000, 0b000, d.index(), s1.index(), 1)
            }
            Instr::FcvtSW { rd: d, rs1: s1 } => {
                r_type(OPC_OP_FP, 0b110_1000, 0b000, d.index(), s1.index(), 0)
            }
            Instr::FcvtSWu { rd: d, rs1: s1 } => {
                r_type(OPC_OP_FP, 0b110_1000, 0b000, d.index(), s1.index(), 1)
            }
            Instr::FmvXW { rd: d, rs1: s1 } => {
                r_type(OPC_OP_FP, 0b111_0000, 0b000, d.index(), s1.index(), 0)
            }
            Instr::FmvWX { rd: d, rs1: s1 } => {
                r_type(OPC_OP_FP, 0b111_1000, 0b000, d.index(), s1.index(), 0)
            }
        }
    }
}

/// (funct7, funct3, rs2-field) for an OP-FP arithmetic instruction.
fn fp_op_fields(op: FpOp, s2: Fpr) -> (u32, u32, u8) {
    match op {
        FpOp::Add => (0b000_0000, 0b000, s2.index()),
        FpOp::Sub => (0b000_0100, 0b000, s2.index()),
        FpOp::Mul => (0b000_1000, 0b000, s2.index()),
        FpOp::Div => (0b000_1100, 0b000, s2.index()),
        FpOp::Sqrt => (0b010_1100, 0b000, 0),
        FpOp::Sgnj => (0b001_0000, 0b000, s2.index()),
        FpOp::Sgnjn => (0b001_0000, 0b001, s2.index()),
        FpOp::Sgnjx => (0b001_0000, 0b010, s2.index()),
        FpOp::Min => (0b001_0100, 0b000, s2.index()),
        FpOp::Max => (0b001_0100, 0b001, s2.index()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Gpr::*;

    /// Golden encodings checked by hand against the RISC-V unprivileged spec.
    #[test]
    fn golden_encodings() {
        // addi x1, x2, 100  -> imm=100(0x064), rs1=2, f3=0, rd=1, opc=0x13
        let i = Instr::OpImm {
            op: OpImmOp::Addi,
            rd: Ra,
            rs1: Sp,
            imm: 100,
        };
        assert_eq!(i.encode(), 0x0641_0093);

        // add x3, x4, x5
        let i = Instr::Op {
            op: OpOp::Add,
            rd: Gp,
            rs1: Tp,
            rs2: T0,
        };
        assert_eq!(i.encode(), 0x0052_01b3);

        // lw x6, 8(x7)
        let i = Instr::Load {
            width: LoadWidth::W,
            rd: T1,
            rs1: T2,
            offset: 8,
        };
        assert_eq!(i.encode(), 0x0083_a303);

        // sw x8, -4(x9)
        let i = Instr::Store {
            width: StoreWidth::W,
            rs1: S1,
            rs2: S0,
            offset: -4,
        };
        assert_eq!(i.encode(), 0xfe84_ae23);

        // beq x10, x11, 16
        let i = Instr::Branch {
            op: BranchOp::Eq,
            rs1: A0,
            rs2: A1,
            offset: 16,
        };
        assert_eq!(i.encode(), 0x00b5_0863);

        // jal x1, 2048
        let i = Instr::Jal {
            rd: Ra,
            offset: 2048,
        };
        assert_eq!(i.encode(), 0x0010_00ef);

        // lui x5, 0x12345
        let i = Instr::Lui {
            rd: T0,
            imm: 0x12345,
        };
        assert_eq!(i.encode(), 0x1234_52b7);

        // ecall / ebreak
        assert_eq!(Instr::Ecall.encode(), 0x0000_0073);
        assert_eq!(Instr::Ebreak.encode(), 0x0010_0073);

        // amoadd.w x10, x11, (x12)
        let i = Instr::Amo {
            op: AmoOp::Add,
            rd: A0,
            rs1: A2,
            rs2: A1,
            aq: false,
            rl: false,
        };
        assert_eq!(i.encode(), 0x00b6_252f);

        // mul x5, x6, x7
        let i = Instr::Op {
            op: OpOp::Mul,
            rd: T0,
            rs1: T1,
            rs2: T2,
        };
        assert_eq!(i.encode(), 0x0273_02b3);
    }

    #[test]
    fn srai_sets_funct7() {
        let i = Instr::OpImm {
            op: OpImmOp::Srai,
            rd: A0,
            rs1: A0,
            imm: 3,
        };
        assert_eq!(i.encode() >> 25, 0b010_0000);
        let i = Instr::OpImm {
            op: OpImmOp::Srli,
            rd: A0,
            rs1: A0,
            imm: 3,
        };
        assert_eq!(i.encode() >> 25, 0);
    }

    #[test]
    fn negative_branch_offset() {
        let i = Instr::Branch {
            op: BranchOp::Ne,
            rs1: A0,
            rs2: Zero,
            offset: -8,
        };
        // imm[12]=1 (sign), so bit 31 must be set.
        assert_eq!(i.encode() >> 31, 1);
    }
}
