//! End-to-end mid-job crash/resume: the `ckpt-smoke` CI job in miniature.
//! Runs the real `hb-serve` binary with `--ckpt-every` plus the
//! deterministic `--crash-after-ckpts` kill (a stand-in for `kill -9`
//! mid-simulation), resumes the campaign, and asserts the final report is
//! byte-identical to an uninterrupted twin's — the whole point of
//! bit-exact checkpoint restore.

use std::path::Path;
use std::process::Command;

fn run_args(dir: &Path) -> Vec<String> {
    [
        "run",
        "--dir",
        &dir.display().to_string(),
        "--kernel",
        "jacobi",
        "--faults",
        "2",
        "--seed",
        "1",
        "--threads",
        "1",
        "--ckpt-every",
        "1000",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn killed_campaign_resumes_mid_job_with_identical_report() {
    let bin = env!("CARGO_BIN_EXE_hb-serve");
    let base = std::env::temp_dir().join(format!("hb-serve-ckpt-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let clean = base.join("clean");
    let killed = base.join("killed");

    // Uninterrupted twin.
    let out = Command::new(bin).args(run_args(&clean)).output().unwrap();
    assert!(
        out.status.success(),
        "clean run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The same campaign, killed hard after two mid-job checkpoint writes.
    let mut kargs = run_args(&killed);
    kargs.extend(["--crash-after-ckpts".to_owned(), "2".to_owned()]);
    let out = Command::new(bin).args(kargs).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "expected the deterministic mid-run kill; stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // The kill left a resumable mid-job checkpoint in the store.
    let ckpt_dir = killed.join("store").join("ckpt");
    let resumable = std::fs::read_dir(&ckpt_dir).map(|d| d.count()).unwrap_or(0);
    assert!(
        resumable > 0,
        "no resume checkpoint under {}",
        ckpt_dir.display()
    );

    // Resume to completion; the restored job continues from its checkpoint.
    let out = Command::new(bin)
        .args([
            "resume",
            "--dir",
            &killed.display().to_string(),
            "--threads",
            "1",
            "--ckpt-every",
            "1000",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Byte-identical aggregate — exactly what CI `cmp`-asserts.
    let clean_report = std::fs::read(clean.join("report.txt")).unwrap();
    let killed_report = std::fs::read(killed.join("report.txt")).unwrap();
    assert_eq!(
        clean_report, killed_report,
        "resumed report diverges from the uninterrupted twin"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn warm_campaign_classifies_identically_to_cold() {
    use hb_core::MachineConfig;
    use hb_serve::{Campaign, CancelToken, RunOpts, SimExecutor, Store};

    let base = std::env::temp_dir().join(format!("hb-serve-warm-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cfg = MachineConfig {
        threads: 1,
        ..MachineConfig::baseline_16x8()
    };
    let opts = RunOpts {
        threads: 1,
        ..RunOpts::default()
    };

    // Cold and warm campaigns over the same seeds: the `warm:` prefix only
    // changes how each run *starts* (one shared post-warmup checkpoint),
    // never what it computes.
    let cold = Campaign::fault("cold", "jacobi", &cfg, 1, 2);
    let cold_store = Store::open(base.join("cold")).unwrap();
    let s = cold.run(
        &cold_store,
        &SimExecutor::new(1),
        &opts,
        &CancelToken::new(),
    );
    assert_eq!((s.run, s.failed), (3, 0), "{s:?}");

    let warm = Campaign::fault("warm", "warm:jacobi", &cfg, 1, 2);
    let warm_store = Store::open(base.join("warm")).unwrap();
    let s = warm.run(
        &warm_store,
        &SimExecutor::new(1),
        &opts,
        &CancelToken::new(),
    );
    assert_eq!((s.run, s.failed), (3, 0), "{s:?}");

    // The shared warm checkpoint was created once in the store.
    let warm_blobs = std::fs::read_dir(base.join("warm").join("ckpt"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(warm_blobs, 1, "expected exactly the shared warm checkpoint");

    // Per-seed classification is bit-identical (hashes differ by design —
    // the kernel token differs — so compare the simulated fields).
    for (c, w) in cold.specs.iter().zip(&warm.specs) {
        let cr = cold_store.get(&c.hash()).expect("cold record");
        let wr = warm_store.get(&w.hash()).expect("warm record");
        assert_eq!(
            (
                &cr.outcome,
                cr.cycles,
                cr.instrs,
                cr.dram_digest,
                &cr.site,
                cr.inj_cycle
            ),
            (
                &wr.outcome,
                wr.cycles,
                wr.instrs,
                wr.dram_digest,
                &wr.site,
                wr.inj_cycle
            ),
            "warm-start run diverged for seed {}",
            c.seed
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}
