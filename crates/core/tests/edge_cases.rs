//! Edge-case machine tests: LPC across cache-line boundaries, scoreboard
//! saturation, icache thrashing, deep store streams, AMO fairness and
//! barrier pipelining.

use hb_asm::Assembler;
use hb_core::{pgas, CellDim, HbOps, Machine, MachineConfig, StallKind};
use hb_isa::Gpr::*;
use std::sync::Arc;

fn cfg() -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 4, y: 2 },
        ..MachineConfig::baseline_16x8()
    }
}

#[test]
fn lpc_burst_across_line_boundary_is_correct() {
    // Four sequential loads starting 8 bytes before a line boundary: the
    // compressed packet's words span two cache lines and must still all
    // return the right values.
    let mut m = Machine::new(cfg());
    let base = m.cell_mut(0).alloc(256, 64);
    let start = base + 64 - 8; // two words before the boundary
    for i in 0..4u32 {
        m.cell_mut(0).dram_mut().write_u32(start + 4 * i, 0x100 + i);
    }
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    let skip = a.new_label();
    a.bnez(T0, skip);
    a.lw(T1, A0, 0);
    a.lw(T2, A0, 4);
    a.lw(T3, A0, 8);
    a.lw(T4, A0, 12);
    a.add(T1, T1, T2);
    a.add(T1, T1, T3);
    a.add(T1, T1, T4);
    a.sw(T1, A1, 0);
    a.fence();
    a.bind(skip);
    a.ecall();
    let out = m.cell_mut(0).alloc(4, 64);
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[pgas::local_dram(start), pgas::local_dram(out)]);
    m.run(100_000).unwrap();
    m.cell_mut(0).flush_caches();
    assert_eq!(
        m.cell(0).dram().read_u32(out),
        0x100 + 0x101 + 0x102 + 0x103
    );
}

#[test]
fn scoreboard_saturation_backpressures_not_breaks() {
    // Issue far more than 63 outstanding stores; the tile must stall on
    // credits but complete correctly.
    let mut m = Machine::new(cfg());
    let base = m.cell_mut(0).alloc(4096, 64);
    let mut a = Assembler::new();
    a.li(T0, 512);
    a.mv(T1, A0);
    let top = a.here();
    a.sw(T0, T1, 0);
    a.addi(T1, T1, 4);
    a.addi(T0, T0, -1);
    a.bnez(T0, top);
    a.fence();
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[pgas::local_dram(base)]);
    let summary = m.run(1_000_000).unwrap();
    assert!(
        summary.core.stall(StallKind::RemoteCredit) > 0,
        "512 back-to-back stores should hit the scoreboard/outbox limit"
    );
    m.cell_mut(0).flush_caches();
    assert_eq!(m.cell(0).dram().read_u32(base), 512);
    assert_eq!(m.cell(0).dram().read_u32(base + 4 * 511), 1);
}

#[test]
fn icache_thrash_is_accounted() {
    // A straight-line program larger than the 4 KB icache: every line is
    // a cold miss and the counters must say so.
    let mut m = Machine::new(cfg());
    let mut a = Assembler::new();
    for _ in 0..2000 {
        a.nop(); // 8 KB of code
    }
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[]);
    let summary = m.run(10_000_000).unwrap();
    // 2001 instructions / 4 per line ~ 500 cold misses per tile, 8 tiles.
    assert!(
        summary.core.icache_misses >= 8 * 450,
        "expected cold icache misses, got {}",
        summary.core.icache_misses
    );
    assert!(summary.core.stall(StallKind::IcacheMiss) > summary.core.int_cycles);
}

#[test]
fn amo_fairness_all_tiles_get_slots() {
    // Every tile amoadds its (rank+1) value 32 times; the final counter
    // equals the closed form, proving no tile's atomics were lost.
    let mut m = Machine::new(cfg());
    let counter = m.cell_mut(0).alloc(4, 64);
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    a.addi(T0, T0, 1);
    a.li(T1, 32);
    let top = a.here();
    a.amoadd(Zero, T0, A0);
    a.addi(T1, T1, -1);
    a.bnez(T1, top);
    a.fence();
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[pgas::local_dram(counter)]);
    m.run(1_000_000).unwrap();
    m.cell_mut(0).flush_caches();
    let expect: u32 = (1..=8).map(|r| r * 32).sum();
    assert_eq!(m.cell(0).dram().read_u32(counter), expect);
}

#[test]
fn pipelined_barriers_many_rounds() {
    // 50 consecutive barriers; tiles alternate fast/slow paths so rounds
    // genuinely overlap in the barrier network's counters.
    let mut m = Machine::new(cfg());
    let mut a = Assembler::new();
    a.tg_rank(S0, T6);
    a.li(S1, 50);
    let round = a.here();
    // Odd ranks burn some cycles first.
    a.andi(T0, S0, 1);
    let join = a.new_label();
    a.beqz(T0, join);
    a.li(T1, 20);
    let spin = a.here();
    a.addi(T1, T1, -1);
    a.bnez(T1, spin);
    a.bind(join);
    a.barrier(T6);
    a.addi(S1, S1, -1);
    a.bnez(S1, round);
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[]);
    m.run(1_000_000).unwrap();
    assert!(m.all_done());
}

#[test]
fn byte_and_halfword_remote_access_sign_extension() {
    let mut m = Machine::new(cfg());
    let base = m.cell_mut(0).alloc(64, 64);
    m.cell_mut(0).dram_mut().write_u8(base, 0x80); // -128 as i8
    m.cell_mut(0).dram_mut().write_u16(base + 2, 0x8000); // -32768 as i16
    let out = m.cell_mut(0).alloc(16, 64);
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    let skip = a.new_label();
    a.bnez(T0, skip);
    a.lb(T1, A0, 0);
    a.lbu(T2, A0, 0);
    a.lh(T3, A0, 2);
    a.lhu(T4, A0, 2);
    a.sw(T1, A1, 0);
    a.sw(T2, A1, 4);
    a.sw(T3, A1, 8);
    a.sw(T4, A1, 12);
    a.fence();
    a.bind(skip);
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[pgas::local_dram(base), pgas::local_dram(out)]);
    m.run(100_000).unwrap();
    m.cell_mut(0).flush_caches();
    let vals = m.cell(0).dram().read_u32_slice(out, 4);
    assert_eq!(vals[0] as i32, -128);
    assert_eq!(vals[1], 0x80);
    assert_eq!(vals[2] as i32, -32768);
    assert_eq!(vals[3], 0x8000);
}

#[test]
fn global_dram_space_works_single_cell() {
    // Global DRAM hashes over all banks; with one cell it must still
    // round-trip data.
    let mut m = Machine::new(cfg());
    let off = m.cell_mut(0).alloc(64, 64);
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    let skip = a.new_label();
    a.bnez(T0, skip);
    a.li(T1, 4242);
    a.sw(T1, A0, 0); // global-DRAM store
    a.fence();
    a.lw(T2, A0, 0); // global-DRAM load back
    a.sw(T2, A1, 0); // result into local DRAM
    a.fence();
    a.bind(skip);
    a.ecall();
    let out = m.cell_mut(0).alloc(4, 64);
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[pgas::global_dram(off), pgas::local_dram(out)]);
    m.run(100_000).unwrap();
    m.cell_mut(0).flush_caches();
    assert_eq!(m.cell(0).dram().read_u32(out), 4242);
}

#[test]
fn divider_structural_hazard_counted() {
    let mut m = Machine::new(cfg());
    let mut a = Assembler::new();
    a.li(T0, 1000);
    a.li(T1, 7);
    let top = a.here();
    a.div(T2, T0, T1);
    a.div(T3, T0, T2); // back-to-back divides contend for the unit
    a.addi(T0, T0, -1);
    a.bnez(T0, top);
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[]);
    let summary = m.run(10_000_000).unwrap();
    assert!(
        summary.core.stall(StallKind::IntBusy) > 0,
        "iterative divider contention must be visible"
    );
}

#[test]
fn tracing_captures_retires_and_faults() {
    let mut m = Machine::new(cfg());
    let trace = m.enable_tracing(256);
    let mut a = Assembler::new();
    a.li(T0, 3);
    a.li_u(T1, 0x2000); // invalid EVA
    a.lw(T2, T1, 0); // traps
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[]);
    assert!(matches!(m.run(10_000), Err(hb_core::SimError::Fault(_))));
    let text = trace.render();
    assert!(
        text.contains("addi t0, zero, 3"),
        "trace missing retire:\n{text}"
    );
    assert!(text.contains("FAULT"), "trace missing fault:\n{text}");
}

#[test]
fn wide_cell_32x8_constructs_and_runs() {
    // Regression: strip channels must size to the Cell width (a 32-wide
    // Cell has 32 banks per strip, not the default 16).
    let mut m = Machine::new(MachineConfig::cell_32x8());
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    a.slli(T0, T0, 2);
    a.add(T0, T0, A0);
    a.sw(T0, T0, 0);
    a.fence();
    a.ecall();
    let out = m.cell_mut(0).alloc(32 * 8 * 4, 64);
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[pgas::local_dram(out)]);
    m.run(10_000_000).unwrap();
}

#[test]
fn global_dram_spans_four_cells() {
    // Four Cells; every tile of every Cell amoadds into one Global-DRAM
    // counter, proving chip-wide synchronization across Cell boundaries.
    let mut config = cfg();
    config.num_cells = 4;
    let mut m = Machine::new(config);
    // Pick a global offset and zero it host-side.
    let goff = 0x400u32;
    m.global_write_u32(goff, 0);
    let mut a = Assembler::new();
    a.li(T0, 16);
    a.li(T1, 1);
    let top = a.here();
    a.amoadd(Zero, T1, A0);
    a.addi(T0, T0, -1);
    a.bnez(T0, top);
    a.fence();
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    for c in 0..4 {
        m.launch(c, &p, &[pgas::global_dram(goff)]);
    }
    m.run(5_000_000).unwrap();
    m.flush_all_caches();
    // 4 cells x 8 tiles x 16 increments.
    assert_eq!(m.global_read_u32(goff), 4 * 8 * 16);
}

#[test]
fn global_dram_host_round_trip() {
    let mut config = cfg();
    config.num_cells = 2;
    let mut m = Machine::new(config);
    // Consecutive lines land on different (cell, bank) homes but must
    // round-trip independently.
    for i in 0..64u32 {
        m.global_write_u32(i * 64, 0xC0DE + i);
    }
    for i in 0..64u32 {
        assert_eq!(m.global_read_u32(i * 64), 0xC0DE + i);
    }
    // And they really spread across cells.
    let cells: std::collections::HashSet<u8> =
        (0..64u32).map(|i| m.global_location(i * 64).0).collect();
    assert_eq!(cells.len(), 2);
}
