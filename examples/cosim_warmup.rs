//! The `hb-iss` golden model in action: lockstep co-simulation of a real
//! kernel, functional fast-forward of its init phase, and what a caught
//! divergence looks like.
//!
//! Run with: `cargo run --release --example cosim_warmup`

use hammerblade::asm::Assembler;
use hammerblade::core::{pgas, CellDim, CosimChecker, CosimError, Machine, MachineConfig};
use hammerblade::isa::Gpr;
use hammerblade::kernels::Sgemm;
use hammerblade::workloads::{gen, golden};
use std::sync::Arc;

fn config(x: u8, y: u8) -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x, y },
        ..MachineConfig::baseline_16x8()
    }
}

/// Builds an SGEMM launch on `cfg`; returns (machine, c_dev, expect).
fn sgemm_machine(cfg: &MachineConfig, m: usize, k: usize, n: usize) -> (Machine, u32, Vec<f32>) {
    let a_host = gen::dense_matrix(m, k, 0xA);
    let b_host = gen::dense_matrix(k, n, 0xB);
    let expect = golden::sgemm(m, k, n, &a_host, &b_host);

    let mut machine = Machine::new(cfg.clone());
    let cell = machine.cell_mut(0);
    let a_dev = cell.alloc((m * k * 4) as u32, 64);
    let b_dev = cell.alloc((k * n * 4) as u32, 64);
    let c_dev = cell.alloc((m * n * 4) as u32, 64);
    cell.dram_mut().write_f32_slice(a_dev, &a_host);
    cell.dram_mut().write_f32_slice(b_dev, &b_host);
    let program = Arc::new(Sgemm::program());
    machine.launch(
        0,
        &program,
        &[
            pgas::local_dram(a_dev),
            pgas::local_dram(b_dev),
            pgas::local_dram(c_dev),
            m as u32,
            k as u32,
            n as u32,
        ],
    );
    (machine, c_dev, expect)
}

fn main() {
    // 1. Lockstep co-simulation: single-tile SGEMM, every retire checked
    //    against the ISS, full state compared at the end.
    let (m, k, n) = (8, 8, 8);
    let (mut machine, c_dev, expect) = sgemm_machine(&config(1, 1), m, k, n);
    let (summary, report) = machine
        .run_cosim(10_000_000)
        .unwrap_or_else(|e| panic!("{e}"));
    let got = machine.cell(0).dram().read_f32_slice(c_dev, m * n);
    let max_err = got
        .iter()
        .zip(&expect)
        .map(|(g, e)| (g - e).abs())
        .fold(0f32, f32::max);
    println!("[cosim] {m}x{k}x{n} SGEMM: {} cycles, {} retires checked, {} register-file compares, 0 divergences",
        summary.cycles, report.instrs, report.reg_compares);
    println!("[cosim] result validates against golden (max |err| = {max_err:.2e})");

    // 2. Functional fast-forward: the same kernel on a 2x2 tile group is
    //    executed by the ISS at interpreter speed; the cycle model only
    //    retires what remains.
    let (mut machine, c_dev, expect) = sgemm_machine(&config(2, 2), m, k, n);
    let warm = machine.warmup_functional(1_000_000).unwrap();
    let summary = machine.run(1_000_000).unwrap();
    machine.cell_mut(0).flush_caches();
    let got = machine.cell(0).dram().read_f32_slice(c_dev, m * n);
    let max_err = got
        .iter()
        .zip(&expect)
        .map(|(g, e)| (g - e).abs())
        .fold(0f32, f32::max);
    println!(
        "[warmup] fast-forwarded {} instrs across {} tiles ({} finished, {} at a barrier); \
         cycle model finished in {} cycles",
        warm.instrs, warm.tiles, warm.finished, warm.at_barrier, summary.cycles
    );
    println!("[warmup] result validates against golden (max |err| = {max_err:.2e})");

    // 3. What a divergence looks like: corrupt the tile's scratchpad after
    //    the checker snapshots it, so the first load disagrees.
    let mut a = Assembler::new();
    a.li(Gpr::T0, 0);
    a.lw(Gpr::A0, Gpr::T0, 0);
    a.fence();
    a.ecall();
    let image = Arc::new(a.assemble(0).unwrap());
    let mut machine = Machine::new(config(1, 1));
    machine.launch(0, &image, &[]);
    let mut checker = CosimChecker::new(&machine, 0, (0, 0));
    machine
        .cell_mut(0)
        .tile_mut(0, 0)
        .spm_write_u32(0, 0xdead_beef);
    let trace = machine.enable_tracing(64);
    println!("\n[divergence demo] corrupting SPM[0] behind the checker's back...");
    for _ in 0..100_000 {
        if machine.all_done() {
            break;
        }
        machine.tick();
        if let Err(d) = checker.observe(&machine, &trace.drain()) {
            println!("{}", CosimError::Diverged(d));
            return;
        }
    }
    panic!("the corruption should have been caught");
}
