//! Cycle-level HBM2 pseudo-channel timing model.

use std::collections::VecDeque;

/// Timing and geometry parameters of one HBM2 pseudo-channel, in memory-clock
/// cycles (1.0 GHz in the paper's setup).
///
/// Defaults approximate JESD235A HBM2 timing at 1 GHz and a 16 GB/s
/// pseudo-channel (a 64-byte line transfers in 4 cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hbm2Config {
    /// Number of banks in the pseudo-channel (power of two).
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u32,
    /// Transferred line size in bytes; all requests are one line.
    pub line_bytes: u32,
    /// Data-bus cycles one line transfer occupies.
    pub burst_cycles: u64,
    /// ACT to column command delay.
    pub t_rcd: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Column command to first data beat.
    pub t_cas: u64,
    /// Minimum row open time before precharge.
    pub t_ras: u64,
    /// Column-command to column-command spacing within a bank.
    pub t_ccd: u64,
    /// Refresh duration (all banks blocked).
    pub t_rfc: u64,
    /// Refresh interval.
    pub t_refi: u64,
    /// Request queue capacity.
    pub queue_depth: usize,
}

impl Default for Hbm2Config {
    fn default() -> Hbm2Config {
        Hbm2Config {
            banks: 16,
            row_bytes: 1024,
            line_bytes: 64,
            burst_cycles: 4,
            t_rcd: 14,
            t_rp: 14,
            t_cas: 14,
            t_ras: 33,
            t_ccd: 2,
            t_rfc: 260,
            t_refi: 3900,
            queue_depth: 32,
        }
    }
}

/// A line-granularity DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Caller-chosen tag returned in the [`DramResponse`].
    pub id: u64,
    /// Byte address; the model operates on the containing line.
    pub addr: u32,
    /// `true` for a write (eviction), `false` for a read (refill).
    pub write: bool,
}

/// Completion of a [`DramRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramResponse {
    /// Tag from the originating request.
    pub id: u64,
    /// Byte address of the request.
    pub addr: u32,
    /// Whether the request was a write.
    pub write: bool,
}

/// Utilization counters matching the paper's Figure 11 HBM2 taxonomy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hbm2Stats {
    /// Cycles the data bus carried read data.
    pub read_cycles: u64,
    /// Cycles the data bus carried write data.
    pub write_cycles: u64,
    /// Cycles with queued requests but no data transfer (DRAM timing).
    pub busy_cycles: u64,
    /// Cycles with an empty queue.
    pub idle_cycles: u64,
    /// Cycles spent refreshing (subtracted from the utilization denominator).
    pub refresh_cycles: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (activations).
    pub row_misses: u64,
    /// Row conflicts (precharge of an open row required).
    pub row_conflicts: u64,
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
}

impl Hbm2Stats {
    /// Total non-refresh cycles observed.
    pub fn denominator(&self) -> u64 {
        self.read_cycles + self.write_cycles + self.busy_cycles + self.idle_cycles
    }

    /// Fraction of non-refresh cycles transferring data (read + write).
    pub fn data_utilization(&self) -> f64 {
        let denom = self.denominator();
        if denom == 0 {
            0.0
        } else {
            (self.read_cycles + self.write_cycles) as f64 / denom as f64
        }
    }

    /// Row-buffer hit rate over all column accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Counters accumulated since `prev` was snapshotted. All fields are
    /// cumulative and monotonic, so a window delta is a plain field-wise
    /// subtraction.
    pub fn delta_since(&self, prev: &Hbm2Stats) -> Hbm2Stats {
        *self - *prev
    }
}

impl std::ops::Add for Hbm2Stats {
    type Output = Hbm2Stats;

    fn add(self, rhs: Hbm2Stats) -> Hbm2Stats {
        Hbm2Stats {
            read_cycles: self.read_cycles + rhs.read_cycles,
            write_cycles: self.write_cycles + rhs.write_cycles,
            busy_cycles: self.busy_cycles + rhs.busy_cycles,
            idle_cycles: self.idle_cycles + rhs.idle_cycles,
            refresh_cycles: self.refresh_cycles + rhs.refresh_cycles,
            row_hits: self.row_hits + rhs.row_hits,
            row_misses: self.row_misses + rhs.row_misses,
            row_conflicts: self.row_conflicts + rhs.row_conflicts,
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl std::ops::Sub for Hbm2Stats {
    type Output = Hbm2Stats;

    fn sub(self, rhs: Hbm2Stats) -> Hbm2Stats {
        Hbm2Stats {
            read_cycles: self.read_cycles - rhs.read_cycles,
            write_cycles: self.write_cycles - rhs.write_cycles,
            busy_cycles: self.busy_cycles - rhs.busy_cycles,
            idle_cycles: self.idle_cycles - rhs.idle_cycles,
            refresh_cycles: self.refresh_cycles - rhs.refresh_cycles,
            row_hits: self.row_hits - rhs.row_hits,
            row_misses: self.row_misses - rhs.row_misses,
            row_conflicts: self.row_conflicts - rhs.row_conflicts,
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u32>,
    /// Cycle at which the bank can accept its next command.
    ready_at: u64,
    /// Earliest cycle a precharge may close the current row (tRAS).
    precharge_ok_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    req: DramRequest,
    done_at: u64,
}

/// A queued request plus whether it already paid for an activation or
/// precharge (so its eventual column command is not miscounted as a row hit).
#[derive(Debug, Clone, Copy)]
struct Queued {
    req: DramRequest,
    touched_row: bool,
}

/// One HBM2 pseudo-channel: FR-FCFS scheduler over per-bank row-buffer
/// state machines sharing a single data bus.
#[derive(Debug)]
pub struct Hbm2Channel {
    config: Hbm2Config,
    banks: Vec<Bank>,
    queue: VecDeque<Queued>,
    inflight: Vec<Inflight>,
    responses: VecDeque<DramResponse>,
    /// Cycle until which the data bus is occupied, and whether by a write.
    bus_busy_until: u64,
    bus_is_write: bool,
    cycle: u64,
    next_refresh_at: u64,
    refresh_until: u64,
    /// Injected-fault stall: no command issues until this cycle (in-flight
    /// bursts still retire). Stays 0 on the zero-injection path.
    stall_until: u64,
    stall_windows: u64,
    stats: Hbm2Stats,
}

impl Hbm2Channel {
    /// Creates a channel with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two or geometry fields are zero.
    pub fn new(config: Hbm2Config) -> Hbm2Channel {
        assert!(
            config.banks.is_power_of_two(),
            "bank count must be a power of two"
        );
        assert!(config.row_bytes >= config.line_bytes && config.line_bytes > 0);
        let banks = vec![
            Bank {
                open_row: None,
                ready_at: 0,
                precharge_ok_at: 0
            };
            config.banks
        ];
        let next_refresh_at = config.t_refi;
        Hbm2Channel {
            config,
            banks,
            queue: VecDeque::new(),
            inflight: Vec::new(),
            responses: VecDeque::new(),
            bus_busy_until: 0,
            bus_is_write: false,
            cycle: 0,
            next_refresh_at,
            refresh_until: 0,
            stall_until: 0,
            stall_windows: 0,
            stats: Hbm2Stats::default(),
        }
    }

    /// Injects a fault-model stall: the scheduler issues no new command for
    /// the next `window` memory-clock cycles (overlapping stalls extend the
    /// window). In-flight transfers still retire and the queue keeps
    /// accepting requests, so no traffic is lost — the stall costs latency
    /// only.
    pub fn stall_for(&mut self, window: u64) {
        // `stall_until` is exclusive; the next `window` ticks skip issue.
        self.stall_until = self.stall_until.max(self.cycle + 1 + window);
        self.stall_windows += 1;
    }

    /// Number of injected stall windows so far.
    pub fn stall_windows(&self) -> u64 {
        self.stall_windows
    }

    /// Whether the next tick will skip issue because of an injected stall.
    pub fn is_stalled(&self) -> bool {
        self.cycle + 1 < self.stall_until
    }

    /// The channel's configuration.
    pub fn config(&self) -> &Hbm2Config {
        &self.config
    }

    /// Whether the request queue has space this cycle.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.config.queue_depth
    }

    /// Enqueues a request; returns `false` (dropping nothing) if the queue
    /// is full — the caller must retry later.
    pub fn enqueue(&mut self, req: DramRequest) -> bool {
        if !self.can_accept() {
            return false;
        }
        self.queue.push_back(Queued {
            req,
            touched_row: false,
        });
        true
    }

    /// Number of queued (not yet scheduled) requests.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Pops a completed request, if any.
    pub fn pop_response(&mut self) -> Option<DramResponse> {
        self.responses.pop_front()
    }

    /// Accumulated utilization statistics.
    pub fn stats(&self) -> &Hbm2Stats {
        &self.stats
    }

    /// Copy of the cumulative counters, for delta-based telemetry: keep
    /// the previous snapshot and subtract (`Hbm2Stats::delta_since`) to get
    /// per-window read/write/busy/idle activity.
    pub fn snapshot(&self) -> Hbm2Stats {
        self.stats
    }

    /// Current memory-clock cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn bank_and_row(&self, addr: u32) -> (usize, u32) {
        let line = addr / self.config.line_bytes;
        let bank = (line as usize) & (self.config.banks - 1);
        let lines_per_row = self.config.row_bytes / self.config.line_bytes;
        let row = (line / self.config.banks as u32) / lines_per_row;
        (bank, row)
    }

    /// Advances the channel by one memory-clock cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
        let now = self.cycle;

        // Retire finished transfers.
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].done_at <= now {
                let fin = self.inflight.swap_remove(i);
                if fin.req.write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
                self.responses.push_back(DramResponse {
                    id: fin.req.id,
                    addr: fin.req.addr,
                    write: fin.req.write,
                });
            } else {
                i += 1;
            }
        }

        // Refresh window: all banks blocked.
        if now >= self.next_refresh_at && now >= self.refresh_until {
            self.refresh_until = now + self.config.t_rfc;
            self.next_refresh_at += self.config.t_refi;
            for bank in &mut self.banks {
                bank.open_row = None;
                bank.ready_at = bank.ready_at.max(self.refresh_until);
            }
        }
        let refreshing = now < self.refresh_until;

        // Account this cycle.
        if refreshing {
            self.stats.refresh_cycles += 1;
        } else if now <= self.bus_busy_until {
            if self.bus_is_write {
                self.stats.write_cycles += 1;
            } else {
                self.stats.read_cycles += 1;
            }
        } else if self.queue.is_empty() && self.inflight.is_empty() {
            self.stats.idle_cycles += 1;
        } else {
            self.stats.busy_cycles += 1;
        }

        if refreshing || now < self.stall_until {
            return;
        }

        // FR-FCFS: issue a column command for the oldest row-hit whose bank
        // is ready; otherwise advance the oldest request's bank FSM.
        let cas_slot_free = |ch: &Hbm2Channel| -> u64 {
            // First cycle the data bus could start a new burst after CAS.
            (now + ch.config.t_cas).max(ch.bus_busy_until + 1)
        };

        let mut issued = false;
        for qi in 0..self.queue.len() {
            let Queued { req, touched_row } = self.queue[qi];
            let (bi, row) = self.bank_and_row(req.addr);
            let bank = self.banks[bi];
            if bank.open_row == Some(row) && bank.ready_at <= now {
                // Row open: issue column command now.
                let start = cas_slot_free(self);
                let done = start + self.config.burst_cycles - 1;
                self.bus_busy_until = done;
                self.bus_is_write = req.write;
                self.banks[bi].ready_at = now + self.config.t_ccd;
                self.inflight.push(Inflight { req, done_at: done });
                self.queue.remove(qi);
                if !touched_row {
                    // A genuine row-buffer hit: served from a row someone
                    // else opened.
                    self.stats.row_hits += 1;
                }
                issued = true;
                break;
            }
        }

        if !issued {
            // Progress the oldest request whose bank is idle enough.
            for qi in 0..self.queue.len() {
                let Queued { req, .. } = self.queue[qi];
                let (bi, row) = self.bank_and_row(req.addr);
                let bank = self.banks[bi];
                if bank.ready_at > now {
                    continue;
                }
                match bank.open_row {
                    None => {
                        // Activate the row.
                        self.banks[bi].open_row = Some(row);
                        self.banks[bi].ready_at = now + self.config.t_rcd;
                        self.banks[bi].precharge_ok_at = now + self.config.t_ras;
                        self.stats.row_misses += 1;
                        self.queue[qi].touched_row = true;
                    }
                    Some(open) if open != row => {
                        // Conflict: precharge once tRAS allows.
                        let start = now.max(bank.precharge_ok_at);
                        self.banks[bi].open_row = None;
                        self.banks[bi].ready_at = start + self.config.t_rp;
                        self.stats.row_conflicts += 1;
                        self.queue[qi].touched_row = true;
                    }
                    Some(_) => {
                        // Row open and matching but the bank was busy this
                        // cycle (tCCD); nothing to do.
                    }
                }
                break;
            }
        }
    }
    /// Serializes all dynamic channel state (the config is rebuilt from the
    /// machine configuration on restore).
    pub fn snap_save(&self, w: &mut crate::SnapWriter) {
        w.tag(b"HBM2");
        w.usize(self.banks.len());
        for b in &self.banks {
            if w.opt(b.open_row.is_some()) {
                w.u32(b.open_row.unwrap());
            }
            w.u64(b.ready_at);
            w.u64(b.precharge_ok_at);
        }
        let req = |w: &mut crate::SnapWriter, r: &DramRequest| {
            w.u64(r.id);
            w.u32(r.addr);
            w.bool(r.write);
        };
        w.usize(self.queue.len());
        for q in &self.queue {
            req(w, &q.req);
            w.bool(q.touched_row);
        }
        w.usize(self.inflight.len());
        for f in &self.inflight {
            req(w, &f.req);
            w.u64(f.done_at);
        }
        w.usize(self.responses.len());
        for r in &self.responses {
            w.u64(r.id);
            w.u32(r.addr);
            w.bool(r.write);
        }
        w.u64(self.bus_busy_until);
        w.bool(self.bus_is_write);
        w.u64(self.cycle);
        w.u64(self.next_refresh_at);
        w.u64(self.refresh_until);
        w.u64(self.stall_until);
        w.u64(self.stall_windows);
        self.stats.snap_save(w);
    }

    /// Restores dynamic state into a freshly constructed channel whose
    /// config matches the one that was saved.
    ///
    /// # Errors
    ///
    /// [`crate::SnapError`] on truncation or a geometry mismatch.
    pub fn snap_load(&mut self, r: &mut crate::SnapReader) -> Result<(), crate::SnapError> {
        use crate::SnapError;
        r.expect_tag(b"HBM2", "Hbm2Channel section")?;
        let nbanks = r.usize()?;
        if nbanks != self.banks.len() {
            return Err(SnapError::Bad("Hbm2Channel bank count mismatch"));
        }
        for b in &mut self.banks {
            b.open_row = if r.opt()? { Some(r.u32()?) } else { None };
            b.ready_at = r.u64()?;
            b.precharge_ok_at = r.u64()?;
        }
        let req = |r: &mut crate::SnapReader| -> Result<DramRequest, SnapError> {
            Ok(DramRequest {
                id: r.u64()?,
                addr: r.u32()?,
                write: r.bool()?,
            })
        };
        self.queue.clear();
        for _ in 0..r.seq_len()? {
            let q = req(r)?;
            let touched_row = r.bool()?;
            self.queue.push_back(Queued {
                req: q,
                touched_row,
            });
        }
        self.inflight.clear();
        for _ in 0..r.seq_len()? {
            let q = req(r)?;
            let done_at = r.u64()?;
            self.inflight.push(Inflight { req: q, done_at });
        }
        self.responses.clear();
        for _ in 0..r.seq_len()? {
            self.responses.push_back(DramResponse {
                id: r.u64()?,
                addr: r.u32()?,
                write: r.bool()?,
            });
        }
        self.bus_busy_until = r.u64()?;
        self.bus_is_write = r.bool()?;
        self.cycle = r.u64()?;
        self.next_refresh_at = r.u64()?;
        self.refresh_until = r.u64()?;
        self.stall_until = r.u64()?;
        self.stall_windows = r.u64()?;
        self.stats = Hbm2Stats::snap_load(r)?;
        Ok(())
    }
}

impl Hbm2Stats {
    /// Serializes the counter block.
    pub fn snap_save(&self, w: &mut crate::SnapWriter) {
        for v in [
            self.read_cycles,
            self.write_cycles,
            self.busy_cycles,
            self.idle_cycles,
            self.refresh_cycles,
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
            self.reads,
            self.writes,
        ] {
            w.u64(v);
        }
    }

    /// Restores a counter block.
    ///
    /// # Errors
    ///
    /// [`crate::SnapError::Eof`] on truncation.
    pub fn snap_load(r: &mut crate::SnapReader) -> Result<Hbm2Stats, crate::SnapError> {
        Ok(Hbm2Stats {
            read_cycles: r.u64()?,
            write_cycles: r.u64()?,
            busy_cycles: r.u64()?,
            idle_cycles: r.u64()?,
            refresh_cycles: r.u64()?,
            row_hits: r.u64()?,
            row_misses: r.u64()?,
            row_conflicts: r.u64()?,
            reads: r.u64()?,
            writes: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_response(ch: &mut Hbm2Channel, limit: u64) -> Option<(DramResponse, u64)> {
        for _ in 0..limit {
            ch.tick();
            if let Some(r) = ch.pop_response() {
                return Some((r, ch.cycle()));
            }
        }
        None
    }

    #[test]
    fn snapshot_deltas_track_per_window_activity() {
        let mut ch = Hbm2Channel::new(Hbm2Config::default());
        assert!(ch.enqueue(DramRequest {
            id: 1,
            addr: 0,
            write: false
        }));
        run_until_response(&mut ch, 200).expect("read completes");
        let mid = ch.snapshot();
        assert!(mid.reads == 1 && mid.read_cycles > 0);
        // A second window with only idle cycles: the delta must show no new
        // data transfer, and cumulative counters must stay monotonic.
        for _ in 0..50 {
            ch.tick();
        }
        let end = ch.snapshot();
        let delta = end.delta_since(&mid);
        assert_eq!(delta.reads, 0);
        assert_eq!(delta.read_cycles, 0);
        assert_eq!(
            delta.denominator() + delta.refresh_cycles,
            50,
            "every cycle in the window is accounted for: {delta:?}"
        );
        assert!(delta.idle_cycles > 0);
    }

    #[test]
    fn injected_stall_delays_issue_but_loses_nothing() {
        let mut clean = Hbm2Channel::new(Hbm2Config::default());
        clean.enqueue(DramRequest {
            id: 1,
            addr: 0,
            write: false,
        });
        let (_, t_clean) = run_until_response(&mut clean, 400).expect("clean read");

        let mut stalled = Hbm2Channel::new(Hbm2Config::default());
        stalled.stall_for(60);
        assert!(stalled.is_stalled());
        assert_eq!(stalled.stall_windows(), 1);
        stalled.enqueue(DramRequest {
            id: 1,
            addr: 0,
            write: false,
        });
        let (resp, t_stalled) = run_until_response(&mut stalled, 400).expect("stalled read");
        assert_eq!(resp.id, 1);
        assert_eq!(
            t_stalled,
            t_clean + 60,
            "a 60-cycle stall window must cost exactly 60 cycles"
        );
        // The per-window accounting invariant survives stalls.
        let s = stalled.snapshot();
        assert_eq!(s.denominator() + s.refresh_cycles, stalled.cycle());
        // Overlapping stalls extend rather than stack.
        stalled.stall_for(10);
        stalled.stall_for(5);
        assert_eq!(stalled.stall_windows(), 3);
        for _ in 0..10 {
            stalled.tick();
        }
        assert!(!stalled.is_stalled());
    }

    #[test]
    fn single_read_completes_with_activation_latency() {
        let cfg = Hbm2Config::default();
        let (t_rcd, t_cas, burst) = (cfg.t_rcd, cfg.t_cas, cfg.burst_cycles);
        let mut ch = Hbm2Channel::new(cfg);
        assert!(ch.enqueue(DramRequest {
            id: 7,
            addr: 0,
            write: false
        }));
        let (resp, at) = run_until_response(&mut ch, 200).expect("read must complete");
        assert_eq!(resp.id, 7);
        // Activation + CAS + burst, plus a couple of scheduling cycles.
        let floor = t_rcd + t_cas + burst;
        assert!(
            at >= floor,
            "completed at {at}, faster than DRAM timing floor {floor}"
        );
        assert!(
            at <= floor + 4,
            "completed at {at}, too slow vs floor {floor}"
        );
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut ch = Hbm2Channel::new(Hbm2Config::default());
        ch.enqueue(DramRequest {
            id: 1,
            addr: 0,
            write: false,
        });
        let (_, t_miss) = run_until_response(&mut ch, 200).unwrap();
        // Same bank, same row: next line in the row is banks*line_bytes away.
        let same_row_addr = ch.config().line_bytes * ch.config().banks as u32;
        let start = ch.cycle();
        ch.enqueue(DramRequest {
            id: 2,
            addr: same_row_addr,
            write: false,
        });
        let (_, t_hit_abs) = run_until_response(&mut ch, 200).unwrap();
        let t_hit = t_hit_abs - start;
        assert!(
            t_hit < t_miss,
            "row hit took {t_hit} cycles, row miss {t_miss}; hit should be faster"
        );
        assert_eq!(ch.stats().row_hits, 1);
        assert_eq!(ch.stats().row_misses, 1);
    }

    #[test]
    fn row_conflict_precharges() {
        let cfg = Hbm2Config::default();
        let row_span = cfg.row_bytes * cfg.banks as u32; // same bank, next row
        let mut ch = Hbm2Channel::new(cfg);
        ch.enqueue(DramRequest {
            id: 1,
            addr: 0,
            write: false,
        });
        run_until_response(&mut ch, 200).unwrap();
        ch.enqueue(DramRequest {
            id: 2,
            addr: row_span,
            write: false,
        });
        run_until_response(&mut ch, 300).unwrap();
        assert_eq!(ch.stats().row_conflicts, 1);
    }

    #[test]
    fn bank_parallelism_beats_serialization() {
        // Two requests to different banks should overlap their activations:
        // total time well under 2x the single-request latency.
        let cfg = Hbm2Config::default();
        let mut ch = Hbm2Channel::new(cfg.clone());
        ch.enqueue(DramRequest {
            id: 1,
            addr: 0,
            write: false,
        });
        ch.enqueue(DramRequest {
            id: 2,
            addr: cfg.line_bytes,
            write: false,
        }); // bank 1
        let mut done = 0;
        let mut finish = 0;
        for _ in 0..400 {
            ch.tick();
            while ch.pop_response().is_some() {
                done += 1;
            }
            if done == 2 {
                finish = ch.cycle();
                break;
            }
        }
        assert_eq!(done, 2);
        let single = cfg.t_rcd + cfg.t_cas + cfg.burst_cycles;
        assert!(
            finish < 2 * single,
            "two-bank access took {finish}, not overlapped (single = {single})"
        );
    }

    #[test]
    fn sustained_streaming_approaches_full_bandwidth() {
        // Sequential lines (rotating across banks, row hits within banks)
        // should keep the data bus busy most of the time.
        let cfg = Hbm2Config::default();
        let line = cfg.line_bytes;
        let mut ch = Hbm2Channel::new(cfg);
        let mut next = 0u32;
        let mut completed = 0u64;
        for _ in 0..20_000 {
            while ch.can_accept() {
                ch.enqueue(DramRequest {
                    id: u64::from(next),
                    addr: next * line,
                    write: false,
                });
                next += 1;
            }
            ch.tick();
            while ch.pop_response().is_some() {
                completed += 1;
            }
        }
        let util = ch.stats().data_utilization();
        assert!(
            util > 0.8,
            "streaming utilization {util:.2} too low ({completed} lines completed)"
        );
    }

    #[test]
    fn refresh_blocks_and_is_accounted() {
        let cfg = Hbm2Config {
            t_refi: 100,
            t_rfc: 50,
            ..Hbm2Config::default()
        };
        let mut ch = Hbm2Channel::new(cfg);
        for _ in 0..1000 {
            ch.tick();
        }
        assert!(ch.stats().refresh_cycles > 0);
        // Refresh should be roughly t_rfc/t_refi of all cycles.
        let frac = ch.stats().refresh_cycles as f64 / 1000.0;
        assert!((0.3..0.7).contains(&frac), "refresh fraction {frac}");
    }

    #[test]
    fn queue_full_rejects() {
        let cfg = Hbm2Config {
            queue_depth: 2,
            ..Hbm2Config::default()
        };
        let mut ch = Hbm2Channel::new(cfg);
        assert!(ch.enqueue(DramRequest {
            id: 1,
            addr: 0,
            write: false
        }));
        assert!(ch.enqueue(DramRequest {
            id: 2,
            addr: 64,
            write: false
        }));
        assert!(!ch.enqueue(DramRequest {
            id: 3,
            addr: 128,
            write: false
        }));
    }

    #[test]
    fn snapshot_restore_is_bit_exact_mid_stream() {
        // Run a channel mid-burst with queued, in-flight and completed
        // requests, snapshot it, restore into a fresh channel, and drive
        // both forward: every response and counter must stay identical.
        let mut a = Hbm2Channel::new(Hbm2Config::default());
        let mut next = 0u32;
        for _ in 0..500 {
            while a.can_accept() && next < 40 {
                a.enqueue(DramRequest {
                    id: u64::from(next),
                    addr: next * 64,
                    write: next.is_multiple_of(3),
                });
                next += 1;
            }
            a.tick();
        }
        a.stall_for(5);

        let mut w = crate::SnapWriter::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut b = Hbm2Channel::new(Hbm2Config::default());
        let mut r = crate::SnapReader::new(&bytes);
        b.snap_load(&mut r).unwrap();
        r.finish().unwrap();

        for _ in 0..2000 {
            a.tick();
            b.tick();
            assert_eq!(a.pop_response(), b.pop_response());
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.cycle(), b.cycle());
        assert_eq!(a.stall_windows(), b.stall_windows());

        // A bank-count mismatch is a clean error, not a panic.
        let mut wrong = Hbm2Channel::new(Hbm2Config {
            banks: 8,
            ..Hbm2Config::default()
        });
        let mut r = crate::SnapReader::new(&bytes);
        assert!(wrong.snap_load(&mut r).is_err());
    }

    #[test]
    fn writes_counted_separately() {
        let mut ch = Hbm2Channel::new(Hbm2Config::default());
        ch.enqueue(DramRequest {
            id: 1,
            addr: 0,
            write: true,
        });
        run_until_response(&mut ch, 200).unwrap();
        assert_eq!(ch.stats().writes, 1);
        assert_eq!(ch.stats().reads, 0);
        assert!(ch.stats().write_cycles > 0);
    }
}
