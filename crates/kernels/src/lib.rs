//! The HammerBlade parallel benchmark suite (paper Table I).
//!
//! Ten kernels spanning Berkeley's parallel-computing dwarfs, written as
//! RV32IMAF programs via [`hb_asm`] and validated against the golden
//! implementations in [`hb_workloads::golden`] on every run:
//!
//! | kernel | dwarf | category |
//! |---|---|---|
//! | AES | Combinational logic | compute-intensive, low-communication |
//! | BS (Black-Scholes) | MapReduce | compute-intensive, low-communication |
//! | SW (Smith-Waterman) | Dynamic programming | compute-intensive, low-communication |
//! | SGEMM | Dense linear algebra | compute-intensive, sequential-access |
//! | FFT | Spectral methods | compute-intensive, sequential-access |
//! | Jacobi | Structured grids | compute-intensive, sequential-access |
//! | SpGEMM | Sparse linear algebra | memory-intensive, irregular-access |
//! | PR (PageRank) | Sparse LA / graph | memory-intensive, irregular-access |
//! | BFS | Graph traversal | memory-intensive, irregular-access |
//! | BH (Barnes-Hut) | N-body methods | memory-intensive, irregular-access |
//!
//! Every benchmark implements [`Benchmark`]: it builds a machine from a
//! [`hb_core::MachineConfig`], generates its input, runs the kernel to completion,
//! **validates the simulated output against the golden reference**, and
//! returns the hardware counters the paper's figures are drawn from.

mod aes;
mod bench;
mod bfs;
mod bh;
mod bs;
mod fft;
pub mod fixtures;
mod jacobi;
mod pr;
mod sgemm;
mod spgemm;
mod sw;
pub mod util;

pub use aes::Aes;
pub use bench::{BenchStats, Benchmark, SizeClass};
pub use bfs::Bfs;
pub use bh::BarnesHut;
pub use bs::BlackScholes;
pub use fft::Fft;
pub use jacobi::Jacobi;
pub use pr::PageRank;
pub use sgemm::Sgemm;
pub use spgemm::SpGemm;
pub use sw::SmithWaterman;

/// The full ten-kernel suite with default inputs, ordered
/// memory-intensive → compute-intensive as in the paper's Figure 11.
pub fn suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(PageRank::default()),
        Box::new(Bfs::default()),
        Box::new(SpGemm::default()),
        Box::new(BarnesHut::default()),
        Box::new(Fft::default()),
        Box::new(Jacobi::default()),
        Box::new(Sgemm::default()),
        Box::new(BlackScholes::default()),
        Box::new(SmithWaterman::default()),
        Box::new(Aes::default()),
    ]
}
