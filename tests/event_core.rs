//! Regression tests for the event-driven tile scheduler (`event_core`):
//! parked tiles must be *invisible* — stall blame, watchdog classification,
//! telemetry windows and fault injections all behave exactly as under the
//! dense every-tile-every-cycle schedule, even when nearly every tile is
//! asleep on the wake list.

use std::sync::Arc;

use hammerblade::asm::{Assembler, Program};
use hammerblade::core::{utilization_report, HbOps, Machine, MachineConfig, SimError, StallKind};
use hammerblade::fault::{InjectionPlan, Site};
use hammerblade::isa::Gpr::*;
use hammerblade::obs::Keep;

fn cfg(event_core: bool) -> MachineConfig {
    MachineConfig {
        // Explicit, not from the environment: each test controls the
        // schedule itself.
        threads: 1,
        event_core,
        ..MachineConfig::baseline_16x8()
    }
}

/// Rank 0 spins forever; every other rank parks in the barrier rank 0
/// never joins.
fn spin_vs_parked_kernel() -> Arc<Program> {
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    let park = a.new_label();
    a.bnez(T0, park);
    let spin = a.new_label();
    a.bind(spin);
    a.j(spin);
    a.bind(park);
    a.barrier(T6);
    a.ecall();
    Arc::new(a.assemble(0).expect("kernel assembles"))
}

/// Rank 0 exits immediately; every other rank loads a marker value and
/// parks in the barrier forever. The machine goes fully quiescent within
/// a few hundred cycles.
fn all_parked_kernel() -> Arc<Program> {
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    let park = a.new_label();
    a.bnez(T0, park);
    a.ecall();
    a.bind(park);
    a.li_u(T2, 0x1234);
    a.barrier(T6);
    a.ecall();
    Arc::new(a.assemble(0).expect("kernel assembles"))
}

fn run_to_timeout(machine: &mut Machine, budget: u64) -> SimError {
    match machine.run(budget) {
        Err(e) => e,
        Ok(_) => panic!("kernel unexpectedly finished"),
    }
}

#[test]
fn parked_tiles_report_dense_identical_stall_blame() {
    // One spinning tile keeps the 16x8 Cell alive while the other 127 park
    // at the barrier. The event scheduler never steps the parked tiles,
    // yet every per-StallKind counter — aggregate and per-tile — must read
    // exactly as under the dense schedule.
    let budget = 20_000;
    let mut dense = Machine::new(cfg(false));
    dense.launch(0, &spin_vs_parked_kernel(), &[]);
    run_to_timeout(&mut dense, budget);
    let mut event = Machine::new(cfg(true));
    event.launch(0, &spin_vs_parked_kernel(), &[]);
    run_to_timeout(&mut event, budget);

    assert_eq!(
        dense.cell(0).core_stats(),
        event.cell(0).core_stats(),
        "aggregate stall blame diverged"
    );
    for y in 0..8 {
        for x in 0..16 {
            assert_eq!(
                dense.cell(0).tile_stats(x, y),
                event.cell(0).tile_stats(x, y),
                "tile ({x},{y}) stall blame diverged"
            );
        }
    }
    // A parked tile spent nearly the whole run blamed on the barrier.
    let parked = event.cell(0).tile_stats(1, 0);
    assert!(
        parked.stall(StallKind::Barrier) > budget / 2,
        "parked tile shows {} barrier cycles of {budget}",
        parked.stall(StallKind::Barrier)
    );
    // The cycle taxonomy still covers the run: `utilization_report`
    // asserts internally that int + fp + every stall kind == 100.00%.
    let report = utilization_report(&event.cell(0).core_stats());
    assert!(
        report.contains("all"),
        "report missing totals row:\n{report}"
    );

    // And the event run actually skipped: 127 of 128 tiles were asleep
    // almost everywhere, so well over half of all tile-ticks are elided.
    let (stepped, skipped) = event.tile_ticks();
    assert!(
        skipped as f64 / (stepped + skipped) as f64 > 0.5,
        "event run skipped only {skipped} of {} tile-ticks",
        stepped + skipped
    );
    let (_, dense_skipped) = dense.tile_ticks();
    assert_eq!(dense_skipped, 0, "dense schedule must never skip");
}

#[test]
fn quiescent_machine_times_out_as_barrier_stall_not_livelock() {
    // Rank 0 exits without joining; 127 tiles park in the barrier and the
    // machine goes fully quiescent — zero steps, zero packets, zero
    // retired instructions for tens of thousands of cycles. The watchdog
    // must still classify the hang from machine state (BarrierStall), not
    // misread the parked wake list as a livelock.
    let mut machine = Machine::new(cfg(true));
    machine.launch(0, &all_parked_kernel(), &[]);
    let err = run_to_timeout(&mut machine, 30_000);
    let SimError::Timeout { hang, .. } = err else {
        panic!("expected timeout, got {err}");
    };
    let hang = hang.expect("timeout carries a hang report");
    assert_eq!(
        hang.class.label(),
        "barrier-stall",
        "quiescent-but-armed machine misclassified: {hang}"
    );
}

#[test]
fn telemetry_window_one_fires_every_cycle_while_parked() {
    // `telemetry_window = 1` demands a sample every machine tick. The
    // event scheduler must not fast-forward past due windows while all
    // tiles sleep: sample count, window bounds and per-window counter
    // deltas must match the dense schedule exactly.
    let budget = 1_500;
    let mut runs = Vec::new();
    for event_core in [false, true] {
        let (scope, store) = hammerblade::obs::attach(Keep::All);
        let mut machine = Machine::new(MachineConfig {
            telemetry_window: 1,
            ..cfg(event_core)
        });
        machine.launch(0, &all_parked_kernel(), &[]);
        run_to_timeout(&mut machine, budget);
        drop(machine); // flush the final partial window
        drop(scope);
        runs.push(store);
    }
    let dense = runs[0].lock().unwrap();
    let event = runs[1].lock().unwrap();
    assert_eq!(
        dense.samples.len(),
        event.samples.len(),
        "sample count diverged"
    );
    assert!(
        dense.samples.len() as u64 >= budget,
        "window=1 produced only {} samples over {budget} cycles",
        dense.samples.len()
    );
    assert_eq!(dense.final_cycle, event.final_cycle);
    for (d, e) in dense.samples.iter().zip(event.samples.iter()) {
        assert_eq!(d.start, e.start);
        assert_eq!(d.end, e.end);
        for (dc, ec) in d.cells.iter().zip(e.cells.iter()) {
            assert_eq!(
                dc.tiles, ec.tiles,
                "per-tile deltas of window ({}, {}] diverged",
                d.start, d.end
            );
            assert_eq!(dc.hbm, ec.hbm);
            assert_eq!(dc.req_net, ec.req_net);
            assert_eq!(dc.resp_net, ec.resp_net);
        }
    }
}

#[test]
fn coprime_telemetry_windows_split_parked_spans_identically() {
    // `telemetry_window = 13` is coprime with every periodicity in the
    // kernel, so window boundaries land in the *middle* of multi-thousand
    // cycle parked spans. The owed-aware readers must split a parked
    // tile's barrier debt at exactly the boundary cycle — each window sees
    // precisely its in-window share, matching the dense schedule, and the
    // per-window deltas must sum back to the end-of-run totals.
    let budget = 10_000;
    let window = 13;
    let mut runs = Vec::new();
    for event_core in [false, true] {
        let (scope, store) = hammerblade::obs::attach(Keep::All);
        let mut machine = Machine::new(MachineConfig {
            telemetry_window: window,
            ..cfg(event_core)
        });
        machine.launch(0, &spin_vs_parked_kernel(), &[]);
        run_to_timeout(&mut machine, budget);
        let end_parked = machine.cell(0).tile_stats(1, 0);
        drop(machine); // flush the final partial window
        drop(scope);
        runs.push((store, end_parked));
    }
    let dense = runs[0].0.lock().unwrap();
    let event = runs[1].0.lock().unwrap();
    assert_eq!(
        dense.samples.len(),
        event.samples.len(),
        "sample count diverged"
    );
    assert_eq!(dense.final_cycle, event.final_cycle);
    for (d, e) in dense.samples.iter().zip(event.samples.iter()) {
        assert_eq!((d.start, d.end), (e.start, e.end), "window bounds diverged");
        for (dc, ec) in d.cells.iter().zip(e.cells.iter()) {
            assert_eq!(
                dc.tiles, ec.tiles,
                "per-tile deltas of window ({}, {}] diverged",
                d.start, d.end
            );
        }
    }
    // The split is conservative: summing a parked tile's per-window
    // barrier deltas reproduces its end-of-run counter exactly. Tile
    // (1, 0) parks within the first few hundred cycles, so nearly every
    // window boundary bisects its parked span.
    let parked_index = 1; // (x=1, y=0) in row-major order
    let windowed: u64 = event
        .samples
        .iter()
        .map(|s| s.cells[0].tiles[parked_index].stall(StallKind::Barrier))
        .sum();
    assert_eq!(
        windowed,
        runs[1].1.stall(StallKind::Barrier),
        "windowed barrier deltas must sum to the end-of-run counter"
    );
    assert!(
        windowed > budget / 2,
        "parked tile shows only {windowed} barrier cycles of {budget}"
    );
}

#[test]
fn injection_lands_on_schedule_while_every_tile_is_asleep() {
    // A register flip scheduled for cycle 2000 — long after the whole
    // machine has parked — must land on exactly that cycle under the event
    // schedule, wake the target tile, and leave every architectural
    // counter identical to the dense run.
    let plan = InjectionPlan::explicit([(
        2_000,
        Site::RegFile {
            cell: 0,
            x: 1,
            y: 0,
            reg: T2.index(),
            bit: 0,
        },
    )]);
    let budget = 6_000;
    let mut stats = Vec::new();
    for event_core in [false, true] {
        let mut machine = Machine::new(cfg(event_core));
        machine.launch(0, &all_parked_kernel(), &[]);
        machine.set_injection_plan(&plan);
        run_to_timeout(&mut machine, budget);
        // The flip landed: the marker value every parked rank loaded
        // before joining the barrier has its bit 0 inverted.
        assert_eq!(
            machine.cell(0).tile(1, 0).reg(T2),
            0x1234 ^ 1,
            "injection missed (event_core={event_core})"
        );
        stats.push(machine.cell(0).core_stats());
    }
    assert_eq!(stats[0], stats[1], "injection run diverged from dense");
}
