//! Round-trip: disassembling any shipped kernel and re-parsing the text
//! must reproduce the exact same machine words. This pins the disassembler
//! and the text parser to each other.

use hb_asm::{parse_with_base, Program};

fn strip_listing(disasm: &str) -> String {
    // Each line is "{pc:08x}: {word:08x}  {instr}" — keep the mnemonic part.
    disasm
        .lines()
        .map(|line| {
            let (_, instr) = line
                .split_once(":")
                .unwrap_or_else(|| panic!("listing line without pc: `{line}`"));
            // Skip the word column (first token after the colon).
            instr
                .trim_start()
                .split_once(' ')
                .map_or("", |(_, rest)| rest)
                .trim()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[track_caller]
fn round_trips(name: &str, program: &Program) {
    let text = strip_listing(&program.disassemble());
    let reparsed = parse_with_base(&text, program.base())
        .unwrap_or_else(|e| panic!("{name}: disassembly does not re-parse: {e}"));
    assert_eq!(
        reparsed.words(),
        program.words(),
        "{name}: reassembled words differ from the original"
    );
}

#[test]
fn all_kernels_round_trip_through_text() {
    let programs = [
        ("aes", hb_kernels::Aes::program()),
        ("bfs (top-down)", hb_kernels::Bfs::program(false)),
        ("bfs (direction-optimizing)", hb_kernels::Bfs::program(true)),
        ("barnes-hut", hb_kernels::BarnesHut::program()),
        ("black-scholes", hb_kernels::BlackScholes::program()),
        ("fft", hb_kernels::Fft::program()),
        ("jacobi", hb_kernels::Jacobi::program()),
        ("pagerank", hb_kernels::PageRank::program()),
        ("sgemm", hb_kernels::Sgemm::program()),
        ("sgemm (blocked)", hb_kernels::Sgemm::program_blocked()),
        ("spgemm", hb_kernels::SpGemm::program()),
        ("smith-waterman", hb_kernels::SmithWaterman::program()),
    ];
    for (name, program) in &programs {
        round_trips(name, program);
    }
}
