//! Differential testing: random straight-line RV32IM programs run on the
//! cycle-level tile and on an independent architectural interpreter must
//! produce identical register files.

use hammerblade::asm::Assembler;
use hammerblade::core::{CellDim, Machine, MachineConfig};
use hammerblade::isa::{Gpr, Instr, OpImmOp, OpOp};
use proptest::prelude::*;
use std::sync::Arc;

/// A minimal architectural interpreter for straight-line integer code.
fn interpret(instrs: &[Instr]) -> [u32; 32] {
    let mut regs = [0u32; 32];
    for instr in instrs {
        match *instr {
            Instr::Lui { rd, imm } => {
                if rd != Gpr::Zero {
                    regs[rd.index() as usize] = (imm as u32) << 12;
                }
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let v = op.eval(regs[rs1.index() as usize], imm);
                if rd != Gpr::Zero {
                    regs[rd.index() as usize] = v;
                }
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let v = op.eval(regs[rs1.index() as usize], regs[rs2.index() as usize]);
                if rd != Gpr::Zero {
                    regs[rd.index() as usize] = v;
                }
            }
            Instr::Ecall => break,
            other => panic!("interpreter does not model {other:?}"),
        }
    }
    regs
}

fn any_alu_instr() -> impl Strategy<Value = Instr> {
    let gpr = || (0u8..32).prop_map(Gpr::from_index);
    prop_oneof![
        (gpr(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (
            prop_oneof![
                Just(OpImmOp::Addi),
                Just(OpImmOp::Slti),
                Just(OpImmOp::Xori),
                Just(OpImmOp::Ori),
                Just(OpImmOp::Andi)
            ],
            gpr(),
            gpr(),
            -2048i32..2048
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(OpImmOp::Slli), Just(OpImmOp::Srli), Just(OpImmOp::Srai)],
            gpr(),
            gpr(),
            0i32..32
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![
                Just(OpOp::Add),
                Just(OpOp::Sub),
                Just(OpOp::Sll),
                Just(OpOp::Slt),
                Just(OpOp::Sltu),
                Just(OpOp::Xor),
                Just(OpOp::Srl),
                Just(OpOp::Sra),
                Just(OpOp::Or),
                Just(OpOp::And),
                Just(OpOp::Mul),
                Just(OpOp::Mulh),
                Just(OpOp::Mulhu),
                Just(OpOp::Div),
                Just(OpOp::Divu),
                Just(OpOp::Rem),
                Just(OpOp::Remu)
            ],
            gpr(),
            gpr(),
            gpr()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulator_matches_interpreter(program in prop::collection::vec(any_alu_instr(), 1..60)) {
        // Simulator side: single 1x1 Cell.
        let cfg = MachineConfig { cell_dim: CellDim { x: 1, y: 1 }, ..MachineConfig::baseline_16x8() };
        let mut machine = Machine::new(cfg);
        let mut a = Assembler::new();
        for &i in &program {
            a.emit(i);
        }
        a.ecall();
        let image = Arc::new(a.assemble(0).unwrap());
        machine.launch(0, &image, &[]);
        machine.run(1_000_000).expect("straight-line code terminates");

        // Interpreter side, starting from the same launch state
        // (a0..a7 = 0, sp = spm_bytes): prepend the sp initialization.
        let mut full = vec![Instr::Lui {
            rd: Gpr::Sp,
            imm: (machine.config().spm_bytes >> 12) as i32,
        }];
        full.extend_from_slice(&program);
        let expect = interpret(&full);

        let tile = machine.cell(0).tile(0, 0);
        for r in Gpr::ALL {
            prop_assert_eq!(
                tile.reg(r),
                expect[r.index() as usize],
                "register {} diverged", r
            );
        }
    }
}

/// Interpreter helper is itself sanity-checked.
#[test]
fn interpreter_smoke() {
    let prog = [
        Instr::OpImm { op: OpImmOp::Addi, rd: Gpr::A0, rs1: Gpr::Zero, imm: 7 },
        Instr::Op { op: OpOp::Add, rd: Gpr::A1, rs1: Gpr::A0, rs2: Gpr::A0 },
    ];
    let regs = interpret(&prog);
    assert_eq!(regs[Gpr::A1.index() as usize], 14);
}
