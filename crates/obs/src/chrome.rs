//! Chrome trace-event JSON exporter (the "JSON Array Format" with a
//! `traceEvents` wrapper), loadable in Perfetto and `chrome://tracing`.
//!
//! Mapping:
//!
//! - one trace *process* per Cell, one trace *thread* per tile;
//! - one counter track per tile (`util (x,y)`, percent of the window
//!   spent retiring instructions) plus two Cell-wide counter tracks
//!   (`hbm` read/write percent of memory cycles, `noc flits` request/
//!   response packets per window), all stamped at the window-end cycle;
//! - one instant event per mark / barrier join / fence retire / fault,
//!   stamped at the cycle it happened on its tile's thread.
//!
//! Trace timestamps are microseconds; we emit **1 µs = 1 core cycle**, so
//! Perfetto's time axis reads directly in cycles.

use crate::json::escape;
use crate::Telemetry;
use hb_core::observe::ObsKind;
use std::fmt::Write as _;
use std::io;

/// Renders the whole store as one Chrome-trace JSON document.
pub fn to_string(t: &Telemetry) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&ev);
    };

    let (w, h) = t.dim;
    let tid = |x: u8, y: u8| 1 + u64::from(y) * u64::from(w) + u64::from(x);

    // Track metadata: processes are Cells, threads are tiles.
    for cell in 0..t.num_cells {
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{cell},\
                 \"args\":{{\"name\":\"cell {cell}\"}}}}"
            ),
        );
        for y in 0..h {
            for x in 0..w {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{cell},\
                         \"tid\":{},\"args\":{{\"name\":\"tile ({x},{y})\"}}}}",
                        tid(x, y)
                    ),
                );
            }
        }
    }

    // Counter tracks, one point per window.
    for s in &t.samples {
        let span = s.span().max(1) as f64;
        for (ci, cw) in s.cells.iter().enumerate() {
            for y in 0..h {
                for x in 0..w {
                    let st = &cw.tiles[y as usize * w as usize + x as usize];
                    let util = (st.int_cycles + st.fp_cycles) as f64 / span * 100.0;
                    push(
                        &mut out,
                        format!(
                            "{{\"name\":\"util ({x},{y})\",\"ph\":\"C\",\"pid\":{ci},\
                             \"ts\":{},\"args\":{{\"util\":{util:.2}}}}}",
                            s.end
                        ),
                    );
                }
            }
            let mem = (cw.hbm.denominator() + cw.hbm.refresh_cycles).max(1) as f64;
            push(
                &mut out,
                format!(
                    "{{\"name\":\"hbm\",\"ph\":\"C\",\"pid\":{ci},\"ts\":{},\
                     \"args\":{{\"read\":{:.2},\"write\":{:.2}}}}}",
                    s.end,
                    cw.hbm.read_cycles as f64 / mem * 100.0,
                    cw.hbm.write_cycles as f64 / mem * 100.0,
                ),
            );
            let req: u64 = cw.req_net.iter().map(|l| l.flits).sum();
            let resp: u64 = cw.resp_net.iter().map(|l| l.flits).sum();
            push(
                &mut out,
                format!(
                    "{{\"name\":\"noc flits\",\"ph\":\"C\",\"pid\":{ci},\"ts\":{},\
                     \"args\":{{\"req\":{req},\"resp\":{resp}}}}}",
                    s.end
                ),
            );
        }
    }

    // Instant events.
    for ev in &t.events {
        let name = match ev.kind {
            ObsKind::Mark(v) => format!("mark {v}"),
            ObsKind::BarrierJoin => "barrier join".to_owned(),
            ObsKind::FenceRetire => "fence retire".to_owned(),
            ObsKind::Fault => "fault".to_owned(),
            ObsKind::Inject(k) => format!("inject {}", k.label()),
            ObsKind::Retransmit => "noc retransmit".to_owned(),
            ObsKind::Race => "race".to_owned(),
            ObsKind::Park(Some(k)) => format!("park {}", k.label()),
            ObsKind::Park(None) => "park idle".to_owned(),
            ObsKind::Wake => "wake".to_owned(),
        };
        push(
            &mut out,
            format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"s\":\"t\"}}",
                escape(&name),
                ev.cell,
                tid(ev.tile.0, ev.tile.1),
                ev.cycle
            ),
        );
    }

    let mut tail = String::new();
    let _ = write!(
        tail,
        "\n],\"displayTimeUnit\":\"ms\",\
         \"otherData\":{{\"window\":{},\"cells\":{},\"dim\":\"{}x{}\",\
         \"final_cycle\":{},\"dropped_windows\":{}}}}}",
        t.window, t.num_cells, t.dim.0, t.dim.1, t.final_cycle, t.dropped
    );
    out.push_str(&tail);
    out
}

/// Writes [`to_string`] to `w`.
pub fn write<W: io::Write>(t: &Telemetry, w: &mut W) -> io::Result<()> {
    w.write_all(to_string(t).as_bytes())
}

/// Number of `"ph":"M"` metadata events [`to_string`] emits.
pub fn metadata_event_count(t: &Telemetry) -> usize {
    t.num_cells as usize * (1 + t.tiles_per_cell())
}

/// Number of `"ph":"C"` counter events [`to_string`] emits.
pub fn counter_event_count(t: &Telemetry) -> usize {
    let per_cell = t.tiles_per_cell() + 2; // tiles + hbm + noc
    t.samples
        .iter()
        .map(|s| s.cells.len() * per_cell)
        .sum::<usize>()
}

/// Number of `"ph":"i"` instant events [`to_string`] emits.
pub fn instant_event_count(t: &Telemetry) -> usize {
    t.events.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellWindow, WindowSample};
    use hb_core::observe::ObsEvent;
    use hb_core::CoreStats;
    use hb_mem::Hbm2Stats;
    use hb_noc::LinkStats;

    fn synthetic() -> Telemetry {
        let busy = CoreStats {
            int_cycles: 40,
            fp_cycles: 10,
            instrs: 50,
            ..CoreStats::default()
        };
        let cw = CellWindow {
            tiles: vec![busy, CoreStats::default()],
            req_net: vec![
                LinkStats {
                    busy: 5,
                    stalled: 1,
                    flits: 5,
                };
                6
            ],
            resp_net: vec![LinkStats::default(); 6],
            hbm: Hbm2Stats {
                read_cycles: 30,
                idle_cycles: 70,
                reads: 7,
                ..Hbm2Stats::default()
            },
        };
        Telemetry {
            window: 100,
            dim: (2, 1),
            net_dim: (2, 3),
            num_cells: 1,
            samples: vec![
                WindowSample {
                    start: 0,
                    end: 100,
                    cells: vec![cw.clone()],
                },
                WindowSample {
                    start: 100,
                    end: 150,
                    cells: vec![cw],
                },
            ],
            events: vec![
                ObsEvent {
                    cycle: 42,
                    cell: 0,
                    tile: (1, 0),
                    kind: hb_core::ObsKind::Mark(3),
                },
                ObsEvent {
                    cycle: 60,
                    cell: 0,
                    tile: (0, 0),
                    kind: hb_core::ObsKind::Inject(hb_core::InjectKind::Spm),
                },
                ObsEvent {
                    cycle: 75,
                    cell: 0,
                    tile: (1, 0),
                    kind: hb_core::ObsKind::Retransmit,
                },
            ],
            final_cycle: 150,
            dropped: 0,
        }
    }

    #[test]
    fn trace_is_valid_json_with_expected_event_counts() {
        let t = synthetic();
        let doc = to_string(&t);
        crate::json::validate(&doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
        assert_eq!(
            doc.matches("\"ph\":\"M\"").count(),
            metadata_event_count(&t)
        );
        assert_eq!(doc.matches("\"ph\":\"C\"").count(), counter_event_count(&t));
        assert_eq!(doc.matches("\"ph\":\"i\"").count(), instant_event_count(&t));
        assert_eq!(metadata_event_count(&t), 3); // 1 process + 2 threads
        assert_eq!(counter_event_count(&t), 8); // 2 windows x (2 tiles + 2)
                                                // The busy tile's first full window: 50 exec cycles / 100 = 50%.
        assert!(doc.contains("\"util\":50.00"), "{doc}");
        // The partial window normalizes by its true 50-cycle span: 100%.
        assert!(doc.contains("\"util\":100.00"), "{doc}");
        assert!(doc.contains("\"name\":\"mark 3\""), "{doc}");
        assert!(doc.contains("\"name\":\"inject spm\""), "{doc}");
        assert!(doc.contains("\"name\":\"noc retransmit\""), "{doc}");
        assert!(doc.contains("\"name\":\"tile (1,0)\""), "{doc}");
        assert!(doc.contains("\"read\":30.00"), "{doc}");
        assert!(doc.contains("\"req\":30"), "{doc}"); // 6 routers x 5 flits
    }
}
