//! Structured fault and hang diagnosis.
//!
//! A trap used to surface as `SimError::Fault(String)`; this module gives
//! it structure — which tile, which pc, why, and a disassembled window
//! around the faulting instruction — and gives `SimError::Timeout` a
//! [`HangReport`] produced by the machine's progress watchdog, which
//! classifies *why* a run never finished instead of just saying that it
//! didn't.

use hb_asm::Program;
use std::fmt;

/// How many instructions around the faulting pc the disassembly window
/// shows on each side.
const WINDOW_RADIUS: u32 = 3;

/// A structured tile (or host-level) fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInfo {
    /// Cell the faulting tile belongs to; 0 for host-level faults.
    pub cell: usize,
    /// Faulting tile coordinates, or `None` for host-level faults
    /// (e.g. a functional-warmup precondition failure).
    pub coord: Option<(u8, u8)>,
    /// Program counter at the fault, if it happened on a tile.
    pub pc: Option<u32>,
    /// Why the tile trapped, without the coordinate prefix.
    pub cause: String,
    /// Disassembled window around `pc`, one `"{pc:#x}: {instr}"` line per
    /// entry, with the faulting pc marked by `" <-- fault"`.
    pub window: Vec<String>,
}

impl FaultInfo {
    /// A host-level fault (no tile attribution).
    pub fn host(cause: impl Into<String>) -> FaultInfo {
        FaultInfo {
            cell: 0,
            coord: None,
            pc: None,
            cause: cause.into(),
            window: Vec::new(),
        }
    }

    /// A tile fault with a disassembled window read from `program`.
    pub fn at_tile(
        cell: usize,
        coord: (u8, u8),
        pc: u32,
        cause: impl Into<String>,
        program: &Program,
    ) -> FaultInfo {
        let mut window = Vec::new();
        let first = pc.saturating_sub(4 * WINDOW_RADIUS);
        for i in 0..=(2 * WINDOW_RADIUS) {
            let at = first + 4 * i;
            if let Some(instr) = program.instr_at(at) {
                let marker = if at == pc { "  <-- fault" } else { "" };
                window.push(format!("{at:#06x}: {instr}{marker}"));
            }
        }
        FaultInfo {
            cell,
            coord: Some(coord),
            pc: Some(pc),
            cause: cause.into(),
            window,
        }
    }
}

impl fmt::Display for FaultInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.coord, self.pc) {
            (Some((x, y)), Some(pc)) => {
                write!(f, "tile ({x},{y}) @pc={pc:#x}: {}", self.cause)?;
            }
            _ => write!(f, "{}", self.cause)?,
        }
        for line in &self.window {
            write!(f, "\n  {line}")?;
        }
        Ok(())
    }
}

/// Why a run hung, as classified by the progress watchdog at timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HangClass {
    /// Tiles are parked in the hardware barrier while at least one group
    /// member never joined (exited, froze, or is stuck elsewhere).
    BarrierStall {
        /// Tiles blocked in the barrier, as `(cell, x, y)`.
        waiting: Vec<(usize, u8, u8)>,
        /// Unfinished group members *not* waiting at the barrier — the
        /// tiles the waiters are waiting for.
        missing: Vec<(usize, u8, u8)>,
    },
    /// A tile's remote-op scoreboard never drained even though both NoC
    /// networks are empty: a response was lost or never generated.
    ScoreboardLeak {
        /// Leaking tiles, as `(cell, x, y, outstanding ops)`.
        tiles: Vec<(usize, u8, u8, usize)>,
    },
    /// Packets are parked inside the NoC and made no progress over the
    /// watchdog window: backpressure deadlock.
    NocBackpressure {
        /// Packets in flight across all request networks.
        req_in_flight: u64,
        /// Packets in flight across all response networks.
        resp_in_flight: u64,
    },
    /// Instructions keep retiring but the run never completes (or tiles
    /// are frozen with nothing else to blame): livelock.
    Livelock {
        /// Instructions retired during the last watchdog window.
        recent_instrs: u64,
        /// Tiles currently frozen by an injected fault.
        frozen: Vec<(usize, u8, u8)>,
    },
}

impl HangClass {
    /// Stable lowercase label for reports and tests.
    pub fn label(&self) -> &'static str {
        match self {
            HangClass::BarrierStall { .. } => "barrier-stall",
            HangClass::ScoreboardLeak { .. } => "scoreboard-leak",
            HangClass::NocBackpressure { .. } => "noc-backpressure",
            HangClass::Livelock { .. } => "livelock",
        }
    }
}

/// The watchdog's diagnosis attached to `SimError::Timeout`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// The classified cause.
    pub class: HangClass,
    /// Machine cycle of the last observed forward progress (retired
    /// instruction, delivered flit, or an event-scheduler wake re-arm —
    /// a fully parked machine whose tiles keep being re-armed by
    /// deliveries is stalled, not livelocked).
    pub last_progress_cycle: u64,
}

fn fmt_tiles(f: &mut fmt::Formatter<'_>, tiles: &[(usize, u8, u8)]) -> fmt::Result {
    for (i, (c, x, y)) in tiles.iter().enumerate() {
        if i > 0 {
            write!(f, " ")?;
        }
        write!(f, "c{c}({x},{y})")?;
    }
    Ok(())
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.class {
            HangClass::BarrierStall { waiting, missing } => {
                write!(f, "barrier stall: waiting ")?;
                fmt_tiles(f, waiting)?;
                write!(f, "; missing ")?;
                fmt_tiles(f, missing)?;
            }
            HangClass::ScoreboardLeak { tiles } => {
                write!(f, "scoreboard leak:")?;
                for (c, x, y, n) in tiles {
                    write!(f, " c{c}({x},{y})={n}")?;
                }
            }
            HangClass::NocBackpressure {
                req_in_flight,
                resp_in_flight,
            } => {
                write!(
                    f,
                    "noc backpressure deadlock: {req_in_flight} req + \
                     {resp_in_flight} resp flits parked"
                )?;
            }
            HangClass::Livelock {
                recent_instrs,
                frozen,
            } => {
                write!(f, "livelock: {recent_instrs} instrs in last window")?;
                if !frozen.is_empty() {
                    write!(f, "; frozen ")?;
                    fmt_tiles(f, frozen)?;
                }
            }
        }
        write!(f, " (last progress at cycle {})", self.last_progress_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_asm::Assembler;
    use hb_isa::Gpr;

    fn program() -> Program {
        let mut a = Assembler::new();
        a.li(Gpr::A0, 1);
        a.li(Gpr::A1, 2);
        a.add(Gpr::A2, Gpr::A0, Gpr::A1);
        a.ecall();
        a.assemble(0x100).unwrap()
    }

    #[test]
    fn tile_fault_renders_coord_pc_and_window() {
        let p = program();
        let info = FaultInfo::at_tile(0, (2, 3), 0x108, "store to read-only CSR", &p);
        let text = info.to_string();
        assert!(
            text.starts_with("tile (2,3) @pc=0x108: store to read-only CSR"),
            "{text}"
        );
        assert!(text.contains("<-- fault"), "{text}");
        // The window is clipped to the program image (base 0x100).
        assert!(!text.contains("0x00fc"), "{text}");
        assert!(text.contains("0x0100"), "{text}");
    }

    #[test]
    fn host_fault_renders_cause_only() {
        let info = FaultInfo::host("warmup needs quiescent tiles");
        assert_eq!(info.to_string(), "warmup needs quiescent tiles");
    }

    #[test]
    fn hang_report_labels_and_display() {
        let r = HangReport {
            class: HangClass::BarrierStall {
                waiting: vec![(0, 1, 1), (0, 2, 1)],
                missing: vec![(0, 0, 0)],
            },
            last_progress_cycle: 400,
        };
        assert_eq!(r.class.label(), "barrier-stall");
        let text = r.to_string();
        assert!(text.contains("waiting c0(1,1) c0(2,1)"), "{text}");
        assert!(text.contains("missing c0(0,0)"), "{text}");
        assert!(text.contains("cycle 400"), "{text}");
        let l = HangReport {
            class: HangClass::Livelock {
                recent_instrs: 0,
                frozen: vec![(1, 3, 0)],
            },
            last_progress_cycle: 7,
        };
        assert!(l.to_string().contains("frozen c1(3,0)"), "{}", l);
        assert_eq!(
            HangClass::NocBackpressure {
                req_in_flight: 1,
                resp_in_flight: 2
            }
            .label(),
            "noc-backpressure"
        );
        assert_eq!(
            HangClass::ScoreboardLeak { tiles: vec![] }.label(),
            "scoreboard-leak"
        );
    }
}
