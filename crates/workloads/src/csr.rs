//! Compressed Sparse Row matrices and graphs.

/// A sparse matrix (or graph adjacency structure) in CSR format, matching
//  the layout the kernels consume from simulated DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Number of rows.
    pub rows: u32,
    /// Number of columns.
    pub cols: u32,
    /// `rows + 1` offsets into `col_idx`.
    pub row_ptr: Vec<u32>,
    /// Column index of each nonzero.
    pub col_idx: Vec<u32>,
    /// Value of each nonzero (all 1.0 for unweighted graphs).
    pub vals: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triples. Duplicates are
    /// summed; entries are sorted row-major.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_triples(rows: u32, cols: u32, triples: &[(u32, u32, f32)]) -> CsrMatrix {
        for &(r, c, _) in triples {
            assert!(
                r < rows && c < cols,
                "entry ({r},{c}) outside {rows}x{cols}"
            );
        }
        let mut sorted: Vec<(u32, u32, f32)> = triples.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(u32, u32, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0u32; rows as usize + 1];
        for &(r, _, _) in &merged {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..rows as usize {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx: merged.iter().map(|&(_, c, _)| c).collect(),
            vals: merged.iter().map(|&(_, _, v)| v).collect(),
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The column indices and values of row `r`.
    pub fn row(&self, r: u32) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[r as usize] as usize;
        let hi = self.row_ptr[r as usize + 1] as usize;
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Out-degree of row `r`.
    pub fn degree(&self, r: u32) -> u32 {
        self.row_ptr[r as usize + 1] - self.row_ptr[r as usize]
    }

    /// The transpose (CSC view materialized as CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let triples: Vec<(u32, u32, f32)> = (0..self.rows)
            .flat_map(|r| {
                let (cols, vals) = self.row(r);
                cols.iter()
                    .zip(vals)
                    .map(move |(&c, &v)| (c, r, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        CsrMatrix::from_triples(self.cols, self.rows, &triples)
    }

    /// Sparse matrix-vector product `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols as usize);
        (0..self.rows)
            .map(|r| {
                let (cols, vals) = self.row(r);
                cols.iter()
                    .zip(vals)
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum()
            })
            .collect()
    }

    /// Maximum out-degree (workload-imbalance indicator).
    pub fn max_degree(&self) -> u32 {
        (0..self.rows).map(|r| self.degree(r)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triples(3, 3, &[(0, 1, 2.0), (0, 2, 3.0), (1, 0, 4.0), (2, 2, 5.0)])
    }

    #[test]
    fn from_triples_builds_row_ptr() {
        let m = sample();
        assert_eq!(m.row_ptr, vec![0, 2, 3, 4]);
        assert_eq!(m.col_idx, vec![1, 2, 0, 2]);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triples(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.vals, vec![3.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let y = m.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.0 * 2.0 + 3.0 * 3.0, 4.0, 15.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn degrees() {
        let m = sample();
        assert_eq!(m.degree(0), 2);
        assert_eq!(m.max_degree(), 2);
    }
}
