//! Kernel-authoring conveniences: CSR access and barrier idioms layered on
//! the [`hb_asm::Assembler`].

use crate::pgas::{self, csr};
use hb_asm::Assembler;
use hb_isa::Gpr;

/// HammerBlade-specific assembler extensions (CSR reads, barrier join,
/// PGAS pointer construction).
pub trait HbOps {
    /// Loads CSR `offset` (see [`csr`]) into `rd`, clobbering `scratch`.
    fn csr_load(&mut self, rd: Gpr, offset: u32, scratch: Gpr) -> &mut Self;

    /// Joins the tile-group hardware barrier and stalls until released.
    /// Clobbers `scratch`.
    fn barrier(&mut self, scratch: Gpr) -> &mut Self;

    /// Loads `rd` with the tile's rank within its tile group. Clobbers
    /// `scratch`.
    fn tg_rank(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self;

    /// Loads `rd` with the tile group size. Clobbers `scratch`.
    fn tg_size(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self;

    /// Loads `rd` with the tile's rank among *live* (non-disabled) group
    /// members. Identical to [`HbOps::tg_rank`] when no tiles are
    /// disabled, at the same instruction count. Clobbers `scratch`.
    fn tg_live_rank(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self;

    /// Loads `rd` with the number of live group members. Clobbers
    /// `scratch`.
    fn tg_live_size(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self;

    /// Loads `rd` with the packed coordinates `(x << 8) | y` of the
    /// disabled tile this one adopts, or [`pgas::NO_ADOPTEE`]. Clobbers
    /// `scratch`.
    fn tg_adopt(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self;

    /// Loads kernel argument `n` (0..8) into `rd`. Clobbers `scratch`.
    fn arg(&mut self, rd: Gpr, n: u32, scratch: Gpr) -> &mut Self;

    /// Converts a Cell-DRAM offset already in `rd` into a Local-DRAM EVA
    /// (sets the DRAM space bits). Clobbers `scratch`.
    fn to_local_dram(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self;

    /// Emits a kernel-phase marker: stores `phase` to the store-only
    /// [`csr::MARK`] CSR. Architecturally a no-op (two retired int
    /// instructions plus the `li` of `phase`); with telemetry attached the
    /// value shows up as an instant event on the tile's track. Clobbers
    /// `scratch` and `scratch2`.
    fn mark(&mut self, phase: u32, scratch: Gpr, scratch2: Gpr) -> &mut Self;
}

impl HbOps for Assembler {
    fn csr_load(&mut self, rd: Gpr, offset: u32, scratch: Gpr) -> &mut Self {
        self.li_u(scratch, offset & !0x7ff);
        self.lw(rd, scratch, (offset & 0x7ff) as i32)
    }

    fn barrier(&mut self, scratch: Gpr) -> &mut Self {
        self.li_u(scratch, csr::BARRIER);
        self.sw(Gpr::Zero, scratch, 0)
    }

    fn tg_rank(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self {
        self.csr_load(rd, csr::TG_RANK, scratch)
    }

    fn tg_size(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self {
        self.csr_load(rd, csr::TG_SIZE, scratch)
    }

    fn tg_live_rank(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self {
        self.csr_load(rd, csr::TG_LIVE_RANK, scratch)
    }

    fn tg_live_size(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self {
        self.csr_load(rd, csr::TG_LIVE_SIZE, scratch)
    }

    fn tg_adopt(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self {
        self.csr_load(rd, csr::TG_ADOPT, scratch)
    }

    fn arg(&mut self, rd: Gpr, n: u32, scratch: Gpr) -> &mut Self {
        assert!(n < 8, "arguments are a0..a7");
        self.csr_load(rd, csr::ARG0 + 4 * n, scratch)
    }

    fn to_local_dram(&mut self, rd: Gpr, scratch: Gpr) -> &mut Self {
        self.li_u(scratch, pgas::local_dram(0));
        self.or(rd, rd, scratch)
    }

    fn mark(&mut self, phase: u32, scratch: Gpr, scratch2: Gpr) -> &mut Self {
        self.li_u(scratch, csr::MARK);
        self.li_u(scratch2, phase);
        self.sw(scratch2, scratch, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_isa::Gpr::*;

    #[test]
    fn csr_load_emits_li_lw() {
        let mut a = Assembler::new();
        a.csr_load(T0, csr::TG_RANK, T6);
        a.ecall();
        let p = a.assemble(0).unwrap();
        // li fits in one addi (0x1000 needs lui) — expect lui/addi? + lw.
        assert!(p.len() >= 2);
        assert!(p.disassemble().contains("lw t0"));
    }
}
