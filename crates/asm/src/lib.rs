//! A small RV32IMAF assembler for building HammerBlade kernel programs.
//!
//! Kernels in the paper are written in C/C++ and compiled with the RISC-V
//! GNU/LLVM toolchain. That toolchain is not available here, so this crate
//! provides a programmatic assembler: Rust code emits instructions through a
//! builder API with labels, forward references and the common
//! pseudo-instructions, and [`Assembler::assemble`] produces a [`Program`]
//! image of genuine RV32 machine words that the simulated tiles fetch and
//! decode.
//!
//! # Examples
//!
//! A loop summing the integers `1..=10`:
//!
//! ```
//! use hb_asm::Assembler;
//! use hb_isa::Gpr::*;
//!
//! let mut a = Assembler::new();
//! let loop_top = a.new_label();
//! a.li(T0, 10); // counter
//! a.li(T1, 0); // accumulator
//! a.bind(loop_top);
//! a.add(T1, T1, T0);
//! a.addi(T0, T0, -1);
//! a.bnez(T0, loop_top);
//! a.ecall(); // tile finished
//! let program = a.assemble(0)?;
//! assert_eq!(program.len(), 6);
//! # Ok::<(), hb_asm::AsmError>(())
//! ```

mod builder;
mod parse;
mod program;

pub use builder::{Assembler, Label};
pub use parse::{parse, parse_with_base, ParseError};
pub use program::Program;

use std::fmt;

/// Errors produced while resolving labels and encoding a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound with [`Assembler::bind`].
    UnboundLabel { label: usize },
    /// A label was bound twice.
    RedefinedLabel { label: usize },
    /// A resolved branch offset does not fit the ±4 KiB B-type range.
    BranchOutOfRange { at_instr: usize, offset: i64 },
    /// A resolved jump offset does not fit the ±1 MiB J-type range.
    JumpOutOfRange { at_instr: usize, offset: i64 },
    /// An immediate operand does not fit its encoding field.
    ImmOutOfRange { what: &'static str, value: i64 },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label } => write!(f, "label L{label} was never bound"),
            AsmError::RedefinedLabel { label } => write!(f, "label L{label} bound twice"),
            AsmError::BranchOutOfRange { at_instr, offset } => {
                write!(
                    f,
                    "branch at instruction {at_instr} has offset {offset} outside +/-4 KiB"
                )
            }
            AsmError::JumpOutOfRange { at_instr, offset } => {
                write!(
                    f,
                    "jump at instruction {at_instr} has offset {offset} outside +/-1 MiB"
                )
            }
            AsmError::ImmOutOfRange { what, value } => {
                write!(f, "immediate {value} does not fit {what}")
            }
        }
    }
}

impl std::error::Error for AsmError {}
