//! Register names for the RV32 integer and floating-point register files.

use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.name)
    }
}

impl std::error::Error for ParseRegError {}

macro_rules! define_regs {
    ($(#[$meta:meta])* $name:ident, $prefix:literal, [$(($variant:ident, $idx:literal, $abi:literal)),* $(,)?]) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u8)]
        pub enum $name {
            $(
                #[doc = concat!("Register `", $abi, "` (", $prefix, stringify!($idx), ").")]
                $variant = $idx,
            )*
        }

        impl $name {
            /// All 32 registers in index order.
            pub const ALL: [$name; 32] = [$($name::$variant),*];

            /// The 5-bit register index used in instruction encodings.
            #[inline]
            pub const fn index(self) -> u8 {
                self as u8
            }

            /// Reconstructs a register from its 5-bit index.
            ///
            /// # Panics
            ///
            /// Panics if `idx >= 32`.
            #[inline]
            pub fn from_index(idx: u8) -> $name {
                Self::ALL[idx as usize]
            }

            /// The ABI mnemonic, e.g. `a0` or `ft3`.
            pub const fn abi_name(self) -> &'static str {
                match self {
                    $($name::$variant => $abi,)*
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.abi_name())
            }
        }

        impl FromStr for $name {
            type Err = ParseRegError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                $(
                    if s == $abi || s == concat!($prefix, stringify!($idx)) {
                        return Ok($name::$variant);
                    }
                )*
                Err(ParseRegError { name: s.to_owned() })
            }
        }
    };
}

define_regs!(
    /// A general-purpose (integer) register, `x0`–`x31`.
    ///
    /// Variants are named after the standard RISC-V ABI mnemonics; `Gpr::Zero`
    /// is the hard-wired zero register `x0`.
    Gpr,
    "x",
    [
        (Zero, 0, "zero"),
        (Ra, 1, "ra"),
        (Sp, 2, "sp"),
        (Gp, 3, "gp"),
        (Tp, 4, "tp"),
        (T0, 5, "t0"),
        (T1, 6, "t1"),
        (T2, 7, "t2"),
        (S0, 8, "s0"),
        (S1, 9, "s1"),
        (A0, 10, "a0"),
        (A1, 11, "a1"),
        (A2, 12, "a2"),
        (A3, 13, "a3"),
        (A4, 14, "a4"),
        (A5, 15, "a5"),
        (A6, 16, "a6"),
        (A7, 17, "a7"),
        (S2, 18, "s2"),
        (S3, 19, "s3"),
        (S4, 20, "s4"),
        (S5, 21, "s5"),
        (S6, 22, "s6"),
        (S7, 23, "s7"),
        (S8, 24, "s8"),
        (S9, 25, "s9"),
        (S10, 26, "s10"),
        (S11, 27, "s11"),
        (T3, 28, "t3"),
        (T4, 29, "t4"),
        (T5, 30, "t5"),
        (T6, 31, "t6"),
    ]
);

define_regs!(
    /// A single-precision floating-point register, `f0`–`f31`.
    Fpr,
    "f",
    [
        (Ft0, 0, "ft0"),
        (Ft1, 1, "ft1"),
        (Ft2, 2, "ft2"),
        (Ft3, 3, "ft3"),
        (Ft4, 4, "ft4"),
        (Ft5, 5, "ft5"),
        (Ft6, 6, "ft6"),
        (Ft7, 7, "ft7"),
        (Fs0, 8, "fs0"),
        (Fs1, 9, "fs1"),
        (Fa0, 10, "fa0"),
        (Fa1, 11, "fa1"),
        (Fa2, 12, "fa2"),
        (Fa3, 13, "fa3"),
        (Fa4, 14, "fa4"),
        (Fa5, 15, "fa5"),
        (Fa6, 16, "fa6"),
        (Fa7, 17, "fa7"),
        (Fs2, 18, "fs2"),
        (Fs3, 19, "fs3"),
        (Fs4, 20, "fs4"),
        (Fs5, 21, "fs5"),
        (Fs6, 22, "fs6"),
        (Fs7, 23, "fs7"),
        (Fs8, 24, "fs8"),
        (Fs9, 25, "fs9"),
        (Fs10, 26, "fs10"),
        (Fs11, 27, "fs11"),
        (Ft8, 28, "ft8"),
        (Ft9, 29, "ft9"),
        (Ft10, 30, "ft10"),
        (Ft11, 31, "ft11"),
    ]
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_index_round_trip() {
        for r in Gpr::ALL {
            assert_eq!(Gpr::from_index(r.index()), r);
        }
    }

    #[test]
    fn fpr_index_round_trip() {
        for r in Fpr::ALL {
            assert_eq!(Fpr::from_index(r.index()), r);
        }
    }

    #[test]
    fn parse_abi_names() {
        assert_eq!("a0".parse::<Gpr>(), Ok(Gpr::A0));
        assert_eq!("zero".parse::<Gpr>(), Ok(Gpr::Zero));
        assert_eq!("fs11".parse::<Fpr>(), Ok(Fpr::Fs11));
    }

    #[test]
    fn parse_numeric_names() {
        assert_eq!("x10".parse::<Gpr>(), Ok(Gpr::A0));
        assert_eq!("f0".parse::<Fpr>(), Ok(Fpr::Ft0));
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("q7".parse::<Gpr>().is_err());
        assert!("x32".parse::<Gpr>().is_err());
    }

    #[test]
    fn abi_names_are_unique() {
        let mut names: Vec<_> = Gpr::ALL.iter().map(|r| r.abi_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 32);
    }
}
