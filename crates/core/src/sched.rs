//! Event-driven tile scheduler: the wake-list that lets
//! [`Cell::tick`](crate::Cell::tick) skip quiescent tiles.
//!
//! # Model
//!
//! The paper's workloads leave most of a 16x8 Cell barrier-parked,
//! scoreboard-blocked or riding out a multi-cycle penalty for long
//! stretches, yet the dense tile phase still steps every tile every cycle.
//! This module replaces that with a *wake list*: after each step a tile
//! reports a [`Park`] hint — either `Awake` (step me again next cycle) or
//! `Sleep` (skip me until cycle `wake_at`, or until a wake event re-arms
//! me). A sleeping tile owes exactly one stall of a constant
//! [`StallKind`] per skipped cycle; the debt is credited in bulk the next
//! time it steps (or virtually, by the owed-aware stats accessors on
//! [`Cell`](crate::Cell)), so every counter comes out bit-identical to the
//! dense schedule.
//!
//! # Why skipping is sound
//!
//! A tile only sleeps when *every* per-cycle effect of its dense step is
//! provably constant over the skipped window:
//!
//! - its inboxes, staging queue and combining latch are empty (a dense
//!   step would drain/serve nothing), and
//! - its next action is a stall of one fixed kind: `Done` / idle (it will
//!   never run again), `Barrier` (cleared only by the Cell's sync phase),
//!   `RemoteLoad` (cleared only by a response delivery), `Fence` with
//!   outstanding ops (ditto), or a timed penalty (`IcacheMiss`,
//!   `BranchMiss`, `Frozen`, ... — expires at a known cycle).
//!
//! Every event that could change that state runs through the Cell and
//! re-arms the tile *at the same cycle the dense schedule would observe
//! it*: packet ejection and fabric staging in the network phase, barrier
//! release in the sync phase, and any host/fault mutation through
//! [`Cell::tile_mut`](crate::Cell::tile_mut). Spurious wakes are harmless —
//! the tile steps once, records the same stall dense would have, and parks
//! again.

use crate::parallel::{PhaseTimes, TilePool};
use crate::stats::StallKind;
use crate::tile::Tile;
use std::time::Instant;

/// Sentinel for "not parked" in [`TileSched::park_cycle`].
const NOT_PARKED: u64 = u64::MAX;

/// A tile's scheduling hint after one step: keep stepping it every cycle,
/// or skip it until a wake event (or `wake_at`, whichever comes first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Park {
    /// The tile may make progress next cycle: step it.
    Awake,
    /// The tile provably stalls every cycle until re-armed.
    Sleep {
        /// The stall recorded per skipped cycle under the dense schedule;
        /// `None` for idle/trapped tiles, which record nothing.
        kind: Option<StallKind>,
        /// First cycle the tile must step again on its own (`u64::MAX`
        /// when only an external event can unblock it).
        wake_at: u64,
    },
}

/// Per-Cell wake-list state, struct-of-arrays so the per-cycle scan only
/// touches two dense vectors (`asleep`, `wake_at`) in the common case.
#[derive(Debug)]
pub(crate) struct TileSched {
    asleep: Vec<bool>,
    wake_at: Vec<u64>,
    /// First cycle the tile has *not* been stepped for; [`NOT_PARKED`]
    /// when it owes nothing.
    park_cycle: Vec<u64>,
    park_kind: Vec<Option<StallKind>>,
    /// Scratch: indices of tiles to step this cycle.
    run_list: Vec<u32>,
    /// Scratch: park hints produced by this cycle's steps (parallel to
    /// `run_list`).
    parks: Vec<Park>,
    stepped: u64,
    skipped: u64,
    rearms: u64,
}

impl TileSched {
    pub(crate) fn new(tiles: usize) -> TileSched {
        TileSched {
            asleep: vec![false; tiles],
            wake_at: vec![0; tiles],
            park_cycle: vec![NOT_PARKED; tiles],
            park_kind: vec![None; tiles],
            run_list: Vec::with_capacity(tiles),
            parks: Vec::with_capacity(tiles),
            stepped: 0,
            skipped: 0,
            rearms: 0,
        }
    }

    /// Forgets all park state (a fresh launch); counters keep accumulating
    /// like the tile stats they sit beside.
    pub(crate) fn reset(&mut self) {
        self.asleep.fill(false);
        self.park_cycle.fill(NOT_PARKED);
        self.park_kind.fill(None);
    }

    /// Re-arms tile `i`: it will be stepped next cycle and credited its
    /// owed stalls. Cheap and idempotent — callers wake on any delivery or
    /// mutation without checking why the tile slept.
    pub(crate) fn wake(&mut self, i: usize) {
        if self.asleep[i] {
            self.asleep[i] = false;
            self.rearms += 1;
        }
    }

    /// Total wake-list re-arms so far (event wakes and timer expiries).
    /// Feeds the hang watchdog's progress signature: a quiescent-but-armed
    /// machine keeps re-arming and therefore keeps making "progress".
    pub(crate) fn rearms(&self) -> u64 {
        self.rearms
    }

    /// `(stepped, skipped)` tile-tick counters.
    pub(crate) fn tick_counts(&self) -> (u64, u64) {
        (self.stepped, self.skipped)
    }

    /// Stalls tile `i` still owes at observation horizon `cycle` (the last
    /// completed Cell cycle), with the kind they carry. Used by the
    /// owed-aware `&self` stats accessors so telemetry, profiling and the
    /// run summary see dense-identical counters without stepping anyone.
    pub(crate) fn owed(&self, i: usize, cycle: u64) -> Option<(StallKind, u64)> {
        let kind = self.park_kind[i]?;
        if self.park_cycle[i] == NOT_PARKED {
            return None;
        }
        match (cycle + 1).saturating_sub(self.park_cycle[i]) {
            0 => None,
            n => Some((kind, n)),
        }
    }

    /// Materializes every owed stall into the tiles' own counters and
    /// clears all park state. Called before switching to the dense
    /// schedule (tracing) or relaunching, so no debt is stranded.
    pub(crate) fn settle(&mut self, tiles: &mut [Tile], cycle: u64) {
        for (i, tile) in tiles.iter_mut().enumerate() {
            if let Some((kind, n)) = self.owed(i, cycle) {
                tile.credit_stalls(kind, n);
            }
            self.asleep[i] = false;
            self.park_cycle[i] = NOT_PARKED;
            self.park_kind[i] = None;
        }
    }

    /// Serializes the wake-list state (the `run_list`/`parks` scratch
    /// vectors are rebuilt every cycle and carry nothing).
    pub(crate) fn snap_save(&self, w: &mut hb_mem::SnapWriter) {
        w.tag(b"SCHD");
        w.usize(self.asleep.len());
        for i in 0..self.asleep.len() {
            w.bool(self.asleep[i]);
            w.u64(self.wake_at[i]);
            w.u64(self.park_cycle[i]);
            match self.park_kind[i] {
                None => w.u8(0),
                Some(kind) => w.u8(1 + kind as u8),
            }
        }
        w.u64(self.stepped);
        w.u64(self.skipped);
        w.u64(self.rearms);
    }

    /// Restores wake-list state for the same number of tiles.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation or a shape mismatch.
    pub(crate) fn snap_load(
        &mut self,
        r: &mut hb_mem::SnapReader,
    ) -> Result<(), hb_mem::SnapError> {
        use hb_mem::SnapError;
        r.expect_tag(b"SCHD", "TileSched section")?;
        if r.usize()? != self.asleep.len() {
            return Err(SnapError::Bad("TileSched tile count mismatch"));
        }
        for i in 0..self.asleep.len() {
            self.asleep[i] = r.bool()?;
            self.wake_at[i] = r.u64()?;
            self.park_cycle[i] = r.u64()?;
            self.park_kind[i] = match r.u8()? {
                0 => None,
                t if (t as usize) <= StallKind::COUNT => Some(StallKind::ALL[t as usize - 1]),
                _ => return Err(SnapError::Bad("TileSched park kind out of range")),
            };
        }
        self.stepped = r.u64()?;
        self.skipped = r.u64()?;
        self.rearms = r.u64()?;
        Ok(())
    }

    /// Runs one event-driven tile phase: wakes due sleepers, credits owed
    /// stalls, steps the wake list (sharded over `pool` when present) and
    /// applies the new park hints. With `times`, wake-list bookkeeping is
    /// attributed to the `sched` phase bucket and only the stepping itself
    /// to `tiles`.
    pub(crate) fn run_cycle(
        &mut self,
        tiles: &mut [Tile],
        active: &[bool],
        now: u64,
        pool: Option<&TilePool>,
        times: Option<&mut PhaseTimes>,
    ) {
        let timed = times.is_some();
        let t0 = timed.then(Instant::now);

        // Build: scan the SoA state, wake due tiles, credit stall debt.
        self.run_list.clear();
        for (i, &a) in active.iter().enumerate() {
            if !a {
                continue;
            }
            if self.asleep[i] {
                if self.wake_at[i] > now {
                    self.skipped += 1;
                    continue;
                }
                self.asleep[i] = false;
                self.rearms += 1;
            }
            if self.park_cycle[i] != NOT_PARKED {
                let owed = now.saturating_sub(self.park_cycle[i]);
                if owed > 0 {
                    if let Some(kind) = self.park_kind[i] {
                        tiles[i].credit_stalls(kind, owed);
                    }
                }
                self.park_cycle[i] = NOT_PARKED;
                self.park_kind[i] = None;
                tiles[i].push_obs(now, crate::observe::ObsKind::Wake);
            }
            self.run_list.push(i as u32);
        }
        self.parks.clear();
        self.parks.resize(self.run_list.len(), Park::Awake);

        let t1 = timed.then(Instant::now);

        // Step: only the wake list, inline or across the worker pool.
        match pool {
            Some(pool) => pool.step_list(tiles, &self.run_list, &mut self.parks, now),
            None => {
                for (pos, &i) in self.run_list.iter().enumerate() {
                    let t = &mut tiles[i as usize];
                    t.step(now);
                    self.parks[pos] = t.park_hint(now);
                }
            }
        }
        self.stepped += self.run_list.len() as u64;

        let t2 = timed.then(Instant::now);

        // Apply: record the new parks.
        for (pos, &i) in self.run_list.iter().enumerate() {
            if let Park::Sleep { kind, wake_at } = self.parks[pos] {
                let i = i as usize;
                self.asleep[i] = true;
                self.wake_at[i] = wake_at;
                self.park_kind[i] = kind;
                self.park_cycle[i] = now + 1;
                tiles[i].push_obs(now, crate::observe::ObsKind::Park(kind));
            }
        }

        if let Some(times) = times {
            let (t0, t1, t2) = (t0.unwrap(), t1.unwrap(), t2.unwrap());
            times.sched += (t1 - t0) + t2.elapsed();
            times.tiles += t2 - t1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owed_counts_every_skipped_cycle_inclusive() {
        let mut s = TileSched::new(1);
        // Parked during cycle 10's tile phase: first skipped cycle is 11.
        s.asleep[0] = true;
        s.wake_at[0] = u64::MAX;
        s.park_cycle[0] = 11;
        s.park_kind[0] = Some(StallKind::Barrier);
        // Observed after cycle 10 completes: nothing owed yet.
        assert_eq!(s.owed(0, 10), None);
        // After cycle 15: cycles 11..=15 were skipped.
        assert_eq!(s.owed(0, 15), Some((StallKind::Barrier, 5)));
    }

    #[test]
    fn idle_tiles_owe_nothing() {
        let mut s = TileSched::new(1);
        s.asleep[0] = true;
        s.park_cycle[0] = 5;
        s.park_kind[0] = None; // trapped/idle: dense records no stall
        assert_eq!(s.owed(0, 100), None);
    }

    #[test]
    fn wake_is_idempotent_and_counts_rearms() {
        let mut s = TileSched::new(2);
        s.asleep[1] = true;
        s.wake(1);
        s.wake(1);
        s.wake(0); // already awake: no-op
        assert!(!s.asleep[1]);
        assert_eq!(s.rearms(), 1);
    }
}
