//! BH — Barnes-Hut N-body force computation (N-body dwarf).
//!
//! Each tile claims bodies with `amoadd` and traverses the host-built
//! quadtree with an explicit stack in its 4 KB slice of Local DRAM — the
//! paper's exact scenario for Regional IPOLY hashing (without it, every
//! tile's stack would camp on the same cache bank). The opening test and
//! accumulation use back-to-back `fsqrt`/`fdiv`, the iterative-FPU
//! bottleneck Figure 11 shows for BH.

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::prologue;
use hb_asm::{Assembler, Program};
use hb_core::{pgas, Machine, MachineConfig, SimError};
use hb_isa::{Fpr::*, Gpr::*};
use hb_workloads::{gen, golden};
use std::sync::Arc;

const D_CX: u32 = 0;
const D_CY: u32 = 1;
const D_MASS: u32 = 2;
const D_SIZE2: u32 = 3;
const D_LEAF: u32 = 4;
const D_CHILD: u32 = 5;
const D_BODIES: u32 = 6;
const D_OUT: u32 = 7;
const D_Q0: u32 = 8;
const D_NBODIES: u32 = 9;
const D_STACK: u32 = 10;
const D_THETA2: u32 = 11;
const D_EPS2: u32 = 12;
const DESC_WORDS: u32 = 13;

const THETA: f32 = 0.5;
const EPS2: f32 = 1e-4;

/// The Barnes-Hut benchmark: one force-computation phase over `bodies`
/// bodies in the unit square.
#[derive(Debug, Clone)]
pub struct BarnesHut {
    /// Number of bodies.
    pub bodies: u32,
}

impl Default for BarnesHut {
    fn default() -> BarnesHut {
        BarnesHut { bodies: 256 }
    }
}

impl BarnesHut {
    fn sized(&self, size: SizeClass) -> BarnesHut {
        match size {
            SizeClass::Tiny => BarnesHut { bodies: 64 },
            SizeClass::Small => self.clone(),
            SizeClass::Large => BarnesHut { bodies: 1024 },
        }
    }

    /// Builds the kernel. Argument: `a0` = descriptor EVA (13 words).
    pub fn program() -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);
        a.lw(T0, A0, (D_CX * 4) as i32);
        a.lw(T1, A0, (D_CY * 4) as i32);
        a.lw(T2, A0, (D_MASS * 4) as i32);
        a.lw(T3, A0, (D_SIZE2 * 4) as i32);
        a.lw(T4, A0, (D_LEAF * 4) as i32);
        a.lw(T5, A0, (D_CHILD * 4) as i32);
        a.lw(A6, A0, (D_BODIES * 4) as i32);
        a.lw(A7, A0, (D_OUT * 4) as i32);
        a.lw(S0, A0, (D_Q0 * 4) as i32);
        a.lw(S1, A0, (D_NBODIES * 4) as i32);
        a.lw(S2, A0, (D_STACK * 4) as i32);
        a.lw(T6, A0, (D_THETA2 * 4) as i32);
        a.fmv_w_x(Fs2, T6); // theta^2
        a.lw(T6, A0, (D_EPS2 * 4) as i32);
        a.fmv_w_x(Fs3, T6); // eps^2
        a.mv(A0, T0);
        a.mv(A1, T1);
        a.mv(A2, T2);
        a.mv(A3, T3);
        a.mv(A4, T4);
        a.mv(A5, T5);
        // Private stack: S2 += rank * 4096.
        a.slli(T0, S10, 12);
        a.add(S2, S2, T0);
        a.li(S8, -1); // sentinel
        a.lif(Fs9, T0, 1.0);
        // S4 = 4*nbodies (array stride between x/y/mass planes).
        a.slli(S4, S1, 2);
        a.li(S9, 1); // amoadd operand

        // ---- Body loop ----
        let body_loop = a.new_label();
        let all_done = a.new_label();
        a.bind(body_loop);
        a.amoadd(S5, S9, S0);
        a.bge(S5, S1, all_done);
        // Load px, py, pm.
        a.slli(T0, S5, 2);
        a.add(T1, A6, T0);
        a.flw(Fs4, T1, 0); // px
        a.add(T1, T1, S4);
        a.flw(Fs5, T1, 0); // py
        a.add(T1, T1, S4);
        a.flw(Fs6, T1, 0); // pm
        a.fmv_w_x(Fs7, Zero); // fx
        a.fmv_w_x(Fs8, Zero); // fy
                              // Push root (node 0).
        a.sw(Zero, S2, 0);
        a.li(S6, 4); // sp (bytes)

        let traverse = a.new_label();
        let body_done = a.new_label();
        let accumulate = a.new_label();
        let not_leaf = a.new_label();
        a.bind(traverse);
        a.beqz(S6, body_done);
        a.addi(S6, S6, -4);
        a.add(T1, S2, S6);
        a.lw(S7, T1, 0); // ni
        a.slli(T0, S7, 2);
        a.add(T1, A0, T0);
        a.flw(Fa0, T1, 0); // com.x
        a.add(T1, A1, T0);
        a.flw(Fa1, T1, 0); // com.y
        a.add(T1, A2, T0);
        a.flw(Fa2, T1, 0); // mass
        a.fsub(Fa0, Fa0, Fs4); // dx
        a.fsub(Fa1, Fa1, Fs5); // dy
        a.fmul(Fa3, Fa0, Fa0);
        a.fmadd(Fa3, Fa1, Fa1, Fa3);
        a.fadd(Fa3, Fa3, Fs3); // dist2
        a.add(T1, A4, T0);
        a.lw(T2, T1, 0); // leaf/body tag
        a.beq(T2, S8, not_leaf);
        // Leaf: skip self-interaction.
        a.beq(T2, S5, traverse);
        a.j(accumulate);
        a.bind(not_leaf);
        // Opening test: size2 < theta2 * dist2 -> accumulate as a cell.
        a.add(T1, A3, T0);
        a.flw(Fa4, T1, 0); // size2
        a.fmul(Fa5, Fs2, Fa3);
        a.flt(T2, Fa4, Fa5);
        a.bnez(T2, accumulate);
        // Open: push non-empty children.
        a.slli(T0, S7, 4);
        a.add(T1, A5, T0); // &children[ni][0]
        for q in 0..4i32 {
            let skip = a.new_label();
            a.lw(T2, T1, 4 * q);
            a.beq(T2, S8, skip);
            a.add(T3, S2, S6);
            a.sw(T2, T3, 0);
            a.addi(S6, S6, 4);
            a.bind(skip);
        }
        a.j(traverse);

        a.bind(accumulate);
        // inv = 1 / (dist2 * sqrt(dist2)); f = pm * mass * inv.
        a.fsqrt(Fa4, Fa3);
        a.fmul(Fa4, Fa3, Fa4);
        a.fdiv(Fa4, Fs9, Fa4);
        a.fmul(Fa5, Fs6, Fa2);
        a.fmul(Fa5, Fa5, Fa4);
        a.fmadd(Fs7, Fa5, Fa0, Fs7); // fx += f * dx
        a.fmadd(Fs8, Fa5, Fa1, Fs8); // fy += f * dy
        a.j(traverse);

        a.bind(body_done);
        a.slli(T0, S5, 2);
        a.add(T1, A7, T0);
        a.fsw(Fs7, T1, 0);
        a.add(T1, T1, S4);
        a.fsw(Fs8, T1, 0);
        a.j(body_loop);

        a.bind(all_done);
        a.fence();
        a.ecall();
        a.assemble(0).expect("barnes-hut assembles")
    }

    /// Runs and validates against [`golden::QuadTree::force`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        let bodies = gen::bodies(self.bodies as usize, 0xB4);
        let tree = golden::QuadTree::build(&bodies);
        let expect: Vec<(f32, f32)> = (0..bodies.len())
            .map(|b| tree.force(&bodies, b, THETA))
            .collect();

        // Serialize the tree into flat arrays.
        let nn = tree.nodes.len();
        let mut cx = Vec::with_capacity(nn);
        let mut cy = Vec::with_capacity(nn);
        let mut mass = Vec::with_capacity(nn);
        let mut size2 = Vec::with_capacity(nn);
        let mut leaf = Vec::with_capacity(nn);
        let mut child = Vec::with_capacity(nn * 4);
        for node in &tree.nodes {
            cx.push(node.com.0);
            cy.push(node.com.1);
            mass.push(node.mass);
            size2.push(node.size * node.size);
            leaf.push(if node.is_leaf {
                node.children[0]
            } else {
                u32::MAX
            });
            if node.is_leaf {
                child.extend_from_slice(&[u32::MAX; 4]);
            } else {
                child.extend_from_slice(&node.children);
            }
        }

        let mut machine = Machine::new(cfg.clone());
        let nthreads = cfg.cell_dim.tiles() as u32;
        let cell = machine.cell_mut(0);
        let alloc_u32 = |cell: &mut hb_core::Cell, data: &[u32]| {
            let p = cell.alloc((data.len() * 4) as u32, 64);
            cell.dram_mut().write_u32_slice(p, data);
            p
        };
        let alloc_f32 = |cell: &mut hb_core::Cell, data: &[f32]| {
            let p = cell.alloc((data.len() * 4) as u32, 64);
            cell.dram_mut().write_f32_slice(p, data);
            p
        };
        let cx_d = alloc_f32(cell, &cx);
        let cy_d = alloc_f32(cell, &cy);
        let mass_d = alloc_f32(cell, &mass);
        let size2_d = alloc_f32(cell, &size2);
        let leaf_d = alloc_u32(cell, &leaf);
        let child_d = alloc_u32(cell, &child);
        let n = self.bodies;
        let mut body_soa = Vec::with_capacity(3 * n as usize);
        body_soa.extend(bodies.iter().map(|b| b.0));
        body_soa.extend(bodies.iter().map(|b| b.1));
        body_soa.extend(bodies.iter().map(|b| b.2));
        let bodies_d = alloc_f32(cell, &body_soa);
        let out_d = cell.alloc(2 * n * 4, 64);
        let q0 = alloc_u32(cell, &[0]);
        let stack = cell.alloc(nthreads * 4096, 64);
        let desc = alloc_u32(
            cell,
            &[
                pgas::local_dram(cx_d),
                pgas::local_dram(cy_d),
                pgas::local_dram(mass_d),
                pgas::local_dram(size2_d),
                pgas::local_dram(leaf_d),
                pgas::local_dram(child_d),
                pgas::local_dram(bodies_d),
                pgas::local_dram(out_d),
                pgas::local_dram(q0),
                n,
                pgas::local_dram(stack),
                (THETA * THETA).to_bits(),
                EPS2.to_bits(),
            ],
        );
        debug_assert_eq!(DESC_WORDS, 13);

        let program = Arc::new(Self::program());
        machine.launch(0, &program, &[pgas::local_dram(desc)]);
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();
        let fx = machine.cell(0).dram().read_f32_slice(out_d, n as usize);
        let fy = machine
            .cell(0)
            .dram()
            .read_f32_slice(out_d + 4 * n, n as usize);
        for b in 0..n as usize {
            let (ex, ey) = expect[b];
            let scale = ex.abs().max(ey.abs()).max(1.0);
            assert!(
                (fx[b] - ex).abs() <= scale * 1e-2,
                "BH fx mismatch at body {b}: sim {} vs golden {ex}",
                fx[b]
            );
            assert!(
                (fy[b] - ey).abs() <= scale * 1e-2,
                "BH fy mismatch at body {b}: sim {} vs golden {ey}",
                fy[b]
            );
        }
        Ok(BenchStats::collect("BH", summary.cycles, &machine))
    }
}

impl Benchmark for BarnesHut {
    fn name(&self) -> &'static str {
        "BH"
    }

    fn dwarf(&self) -> &'static str {
        "N-Body Methods"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    #[test]
    fn bh_validates_against_tree_forces() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = BarnesHut::default().run(&cfg, SizeClass::Tiny).unwrap();
        assert!(
            stats.core.stall(hb_core::StallKind::FpBusy) > 0,
            "BH should hit the iterative fsqrt/fdiv unit"
        );
    }
}
