//! Telemetry wiring shared by the figure binaries and the `telemetry`
//! binary: `--telemetry <out>` argument parsing and an instrumented
//! single-kernel pass that writes a Chrome trace + NDJSON dump and prints
//! the mesh heatmaps.

use hb_core::MachineConfig;
use hb_kernels::{Benchmark, SizeClass};
use hb_obs::Keep;
use std::io::Write as _;

/// Telemetry output path from the command line: `--telemetry <path>` or
/// `--telemetry=<path>`, else `None` (telemetry stays off).
pub fn telemetry_out() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--telemetry" {
            return args.next();
        } else if let Some(v) = a.strip_prefix("--telemetry=") {
            return Some(v.to_owned());
        }
    }
    None
}

/// Sampling window from the command line: `--window N` or `--window=N`,
/// else `default`.
pub fn telemetry_window(default: u64) -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--window" {
            if let Some(n) = args.next().and_then(|v| v.parse::<u64>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--window=") {
            if let Ok(n) = v.parse::<u64>() {
                return n.max(1);
            }
        }
    }
    default
}

/// Runs one instrumented pass of `bench` on `cfg` with the given sampling
/// window, writes the Chrome trace to `out` and the NDJSON dump next to it
/// (`<out>.ndjson`), and prints the Cell-0 heatmaps to stdout.
///
/// The pass runs inline on the calling thread: the observer factory behind
/// [`hb_obs::attach`] is thread-local, so machines built by `run_ordered`
/// workers are never instrumented — only this one is. Simulated results
/// are bit-identical to the uninstrumented run.
///
/// # Errors
///
/// Returns a message (for the binaries to surface as one clean `error:`
/// line, not a panic backtrace) when the kernel faults, produces no
/// telemetry, or an output file cannot be written.
pub fn run_instrumented(
    bench: &dyn Benchmark,
    cfg: &MachineConfig,
    size: SizeClass,
    window: u64,
    out: &str,
) -> Result<(), String> {
    let inst_cfg = MachineConfig {
        telemetry_window: window,
        ..cfg.clone()
    };
    let (scope, store) = hb_obs::attach(Keep::All);
    let stats = bench
        .run(&inst_cfg, size)
        .map_err(|e| format!("instrumented {} failed: {e}", bench.name()))?;
    drop(scope);

    let t = store.lock().unwrap();
    if t.samples.is_empty() {
        return Err("instrumented run produced no telemetry windows".to_owned());
    }
    let mut f = std::fs::File::create(out).map_err(|e| format!("cannot write {out}: {e}"))?;
    hb_obs::chrome::write(&t, &mut f).map_err(|e| format!("cannot write {out}: {e}"))?;
    let nd = format!("{out}.ndjson");
    let mut f = std::fs::File::create(&nd).map_err(|e| format!("cannot write {nd}: {e}"))?;
    hb_obs::ndjson::write(&t, &mut f).map_err(|e| format!("cannot write {nd}: {e}"))?;

    println!(
        "\ntelemetry: {} @ window {window} -> {out} (Chrome trace, load at ui.perfetto.dev), \
         {nd} (NDJSON)",
        bench.name()
    );
    println!(
        "  {} windows, {} events, {} cycles, {} instrs",
        t.samples.len(),
        hb_obs::chrome::instant_event_count(&t),
        stats.cycles,
        stats.core.instrs
    );
    println!("\n{}", hb_obs::heatmap::tile_utilization(&t, 0));
    println!("{}", hb_obs::heatmap::link_occupancy(&t, 0));
    let _ = std::io::stdout().flush();
    Ok(())
}
