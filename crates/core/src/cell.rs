//! A HammerBlade Cell: the unit of replication — a 2-D tile array, two
//! cache-bank strips, the request/response Ruche networks, the refill strip
//! channels, one HBM2 pseudo-channel and the hardware barrier networks.

use crate::banknode::BankNode;
use crate::config::MachineConfig;
use crate::parallel::{PhaseTimes, TilePool};
use crate::payload::{Request, Response};
use crate::pgas::PgasMap;
use crate::sched::TileSched;
use crate::stats::CoreStats;
use crate::tile::{GroupInfo, Tile};
use hb_asm::Program;
use hb_cache::{CacheBank, CacheConfig, CacheStats, LineRequestKind};
use hb_mem::{ClockDivider, Dram, DramRequest, Hbm2Channel, Hbm2Stats};
use hb_noc::{
    BarrierNetwork, Coord, LinkStats, Network, NetworkConfig, Packet, RouteOrder, StripChannel,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A rectangular tile group within a Cell (the paper's unit of thread
/// management and barrier synchronization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSpec {
    /// Top-left tile of the group.
    pub origin: (u8, u8),
    /// Width and height in tiles.
    pub dim: (u8, u8),
}

impl GroupSpec {
    /// One group covering the whole Cell.
    pub fn whole_cell(cfg: &MachineConfig) -> GroupSpec {
        GroupSpec {
            origin: (0, 0),
            dim: (cfg.cell_dim.x, cfg.cell_dim.y),
        }
    }

    /// Splits the Cell into a grid of equally-sized groups.
    ///
    /// # Panics
    ///
    /// Panics if the Cell dimensions are not divisible by the group size.
    pub fn grid(cfg: &MachineConfig, gw: u8, gh: u8) -> Vec<GroupSpec> {
        assert_eq!(cfg.cell_dim.x % gw, 0);
        assert_eq!(cfg.cell_dim.y % gh, 0);
        let mut groups = Vec::new();
        for oy in (0..cfg.cell_dim.y).step_by(gh as usize) {
            for ox in (0..cfg.cell_dim.x).step_by(gw as usize) {
                groups.push(GroupSpec {
                    origin: (ox, oy),
                    dim: (gw, gh),
                });
            }
        }
        groups
    }
}

/// Packets a tile may receive from each network per cycle. Requests use it
/// as the `req_inbox` occupancy bound; responses as a hard per-cycle
/// ejection cap, so a burst of responses converging on one tile drains at
/// the latch rate instead of instantaneously (see `phase_network`).
pub const EJECT_PER_CYCLE: usize = 8;

/// An in-flight bank↔DRAM line operation.
#[derive(Debug)]
struct MemOp {
    bank: usize,
    line_addr: u32,
    write: bool,
    /// Fetched line contents (filled at HBM read completion, consumed at
    /// strip delivery).
    data: Option<Vec<u8>>,
}

/// One Cell of the machine. Ticked by [`Machine`](crate::Machine) on the
/// core clock.
#[derive(Debug)]
pub struct Cell {
    cfg: Arc<MachineConfig>,
    /// This Cell's id.
    pub id: u8,
    pgas: PgasMap,
    tiles: Vec<Tile>,
    banks: Vec<BankNode>,
    req_net: Network<Request>,
    resp_net: Network<Response>,
    strip_to_mem: [StripChannel; 2],
    strip_from_mem: [StripChannel; 2],
    hbm: Hbm2Channel,
    hbm_clock: ClockDivider,
    dram: Dram,
    hbm_retry: VecDeque<DramRequest>,
    mem_ops: HashMap<u64, MemOp>,
    next_mem_id: u64,
    barriers: Vec<BarrierNetwork>,
    active: Vec<bool>,
    /// Wake-list scheduler for the event-driven tile phase (see
    /// [`crate::sched`]); dormant when [`MachineConfig::event_core`] is
    /// off or tracing forces the dense schedule.
    sched: TileSched,
    alloc_ptr: u32,
    cycle: u64,
    /// Worker pool for the tile phase (shared across the machine's Cells);
    /// `None` steps tiles inline.
    pool: Option<Arc<TilePool>>,
    /// Tracing serializes the tile phase (the shared ring must observe
    /// events in deterministic tile order).
    traced: bool,
    /// Requests bound for other Cells (drained by the inter-Cell fabric).
    pub xreq_out: VecDeque<(u8, Packet<Request>)>,
    /// Responses bound for other Cells.
    pub xresp_out: VecDeque<(u8, Packet<Response>)>,
}

impl Cell {
    /// Builds an idle Cell.
    pub fn new(cfg: Arc<MachineConfig>, id: u8) -> Cell {
        cfg.validate_or_panic();
        let pgas = PgasMap {
            cell_id: id,
            num_cells: cfg.num_cells,
            cell_w: cfg.cell_dim.x,
            cell_h: cfg.cell_dim.y,
            spm_bytes: cfg.spm_bytes,
            line_bytes: cfg.line_bytes,
            dram_bytes: cfg.dram_bytes_per_cell,
            ipoly: cfg.ipoly_hashing,
        };
        let mut tiles = Vec::with_capacity(cfg.cell_dim.tiles());
        for y in 0..cfg.cell_dim.y {
            for x in 0..cfg.cell_dim.x {
                tiles.push(Tile::new(cfg.clone(), pgas, (x, y)));
            }
        }
        let bank_cfg = CacheConfig {
            sets: cfg.cache_sets,
            ways: cfg.cache_ways,
            line_bytes: cfg.line_bytes,
            bank_shift: (cfg.banks_per_cell() as u32).trailing_zeros(),
            write_validate: cfg.write_validate,
            blocking: !cfg.non_blocking_cache,
            mshrs: cfg.cache_mshrs,
            ..CacheConfig::default()
        };
        let banks = (0..cfg.banks_per_cell())
            .map(|b| BankNode::new(CacheBank::new(bank_cfg), pgas.bank_coord(b)))
            .collect();
        let net_cfg = |order| NetworkConfig {
            width: cfg.net_width(),
            height: cfg.net_height(),
            ruche_factor: cfg.ruche_factor,
            order,
            fifo_depth: cfg.net_fifo_depth,
            link_occupancy: cfg.link_occupancy,
        };
        // Each strip serves one row of `cell_w` banks regardless of the
        // configured default.
        let strip_cfg = hb_noc::StripConfig {
            banks: cfg.cell_dim.x as usize,
            ..cfg.strip
        };
        let strip = || StripChannel::new(strip_cfg);
        Cell {
            id,
            pgas,
            tiles,
            banks,
            req_net: Network::new(net_cfg(RouteOrder::XThenY)),
            resp_net: Network::new(net_cfg(RouteOrder::YThenX)),
            strip_to_mem: [strip(), strip()],
            strip_from_mem: [strip(), strip()],
            hbm: Hbm2Channel::new(cfg.hbm.clone()),
            hbm_clock: ClockDivider::new(u64::from(cfg.mem_freq_mhz), u64::from(cfg.core_freq_mhz)),
            dram: Dram::new(cfg.dram_bytes_per_cell as usize),
            hbm_retry: VecDeque::new(),
            mem_ops: HashMap::new(),
            next_mem_id: 0,
            barriers: Vec::new(),
            active: vec![false; cfg.cell_dim.tiles()],
            sched: TileSched::new(cfg.cell_dim.tiles()),
            alloc_ptr: 0,
            cycle: 0,
            pool: None,
            traced: false,
            xreq_out: VecDeque::new(),
            xresp_out: VecDeque::new(),
            cfg,
        }
    }

    /// Installs the shared tile-phase worker pool (see [`crate::parallel`]).
    pub fn set_pool(&mut self, pool: Arc<TilePool>) {
        self.pool = Some(pool);
    }

    /// The Cell's PGAS map (coordinate helpers).
    pub fn pgas(&self) -> &PgasMap {
        &self.pgas
    }

    /// Current core cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Host access to this Cell's DRAM contents.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mutable host access to this Cell's DRAM contents.
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// Bump-allocates `size` bytes of Cell DRAM, aligned to `align`.
    ///
    /// # Panics
    ///
    /// Panics when the window is exhausted or `align` is not a power of two.
    pub fn alloc(&mut self, size: u32, align: u32) -> u32 {
        assert!(align.is_power_of_two());
        let base = (self.alloc_ptr + align - 1) & !(align - 1);
        assert!(
            base + size <= self.cfg.dram_bytes_per_cell,
            "cell DRAM window exhausted ({} + {size} bytes)",
            base
        );
        self.alloc_ptr = base + size;
        base
    }

    /// Tile accessor (x, y in tile coordinates).
    pub fn tile(&self, x: u8, y: u8) -> &Tile {
        &self.tiles[y as usize * self.cfg.cell_dim.x as usize + x as usize]
    }

    /// Mutable tile accessor. Re-arms the tile in the event scheduler:
    /// any host or fault-injection mutation may unblock it, and a spurious
    /// wake is harmless (the tile steps once, records the same stall the
    /// dense schedule would, and parks again).
    pub fn tile_mut(&mut self, x: u8, y: u8) -> &mut Tile {
        let i = y as usize * self.cfg.cell_dim.x as usize + x as usize;
        self.sched.wake(i);
        &mut self.tiles[i]
    }

    /// Launches `program` on the given tile groups with per-group argument
    /// lists. Tiles outside every group stay idle.
    ///
    /// # Panics
    ///
    /// Panics if groups overlap or leave the Cell, or argument lists exceed
    /// 8 words.
    pub fn launch_groups(&mut self, program: &Arc<Program>, groups: &[(GroupSpec, Vec<u32>)]) {
        let (w, h) = (self.cfg.cell_dim.x, self.cfg.cell_dim.y);
        // Tiles still parked from a previous kernel owe stalls; settle the
        // debt into their (cumulative) stats before forgetting park state.
        self.sched.settle(&mut self.tiles, self.cycle);
        self.sched.reset();
        let mut owned = vec![false; w as usize * h as usize];
        self.barriers.clear();
        self.active = vec![false; w as usize * h as usize];
        for (gi, (g, args)) in groups.iter().enumerate() {
            assert!(
                g.origin.0 + g.dim.0 <= w && g.origin.1 + g.dim.1 <= h,
                "group leaves cell"
            );
            let mut barrier =
                BarrierNetwork::tree_for_group(g.dim.0, g.dim.1, self.cfg.ruche_factor);
            // Degraded mode: partition the group into live and
            // configured-dead members, bypass the dead ones in the barrier
            // tree, and pair each dead tile with a live adopter (row-major
            // on both sides) so kernels can redistribute its work.
            let mut live = Vec::new();
            let mut dead = Vec::new();
            for y in g.origin.1..g.origin.1 + g.dim.1 {
                for x in g.origin.0..g.origin.0 + g.dim.0 {
                    if self.cfg.disabled_tiles.contains(&(x, y)) {
                        dead.push((x, y));
                    } else {
                        live.push((x, y));
                    }
                }
            }
            assert!(
                dead.len() <= live.len(),
                "group has more disabled tiles than live ones"
            );
            for &(x, y) in &dead {
                barrier.bypass(Coord::new(x - g.origin.0, y - g.origin.1));
            }
            self.barriers.push(barrier);
            for y in g.origin.1..g.origin.1 + g.dim.1 {
                for x in g.origin.0..g.origin.0 + g.dim.0 {
                    let i = y as usize * w as usize + x as usize;
                    assert!(!owned[i], "tile ({x},{y}) in two groups");
                    owned[i] = true;
                    self.active[i] = true;
                    let live_pos = live.iter().position(|&p| p == (x, y));
                    let adopt = match live_pos {
                        Some(k) if k < dead.len() => {
                            let (dx, dy) = dead[k];
                            (u32::from(dx) << 8) | u32::from(dy)
                        }
                        _ => crate::pgas::NO_ADOPTEE,
                    };
                    let info = GroupInfo {
                        origin: g.origin,
                        dim: g.dim,
                        barrier_id: gi,
                        live_rank: live_pos.unwrap_or(0) as u32,
                        live_size: live.len() as u32,
                        adopt,
                    };
                    self.tiles[i].launch(program.clone(), args, info);
                    if live_pos.is_none() {
                        // Dead tiles stay addressable (their NI serves
                        // remote-SPM traffic) but never execute.
                        self.tiles[i].disable();
                    }
                }
            }
        }
    }

    /// Launches `program` on every tile as a single Cell-wide group.
    pub fn launch(&mut self, program: &Arc<Program>, args: &[u32]) {
        let spec = GroupSpec::whole_cell(&self.cfg);
        self.launch_groups(program, &[(spec, args.to_vec())]);
    }

    /// Whether every active tile has finished.
    pub fn all_done(&self) -> bool {
        self.tiles
            .iter()
            .zip(&self.active)
            .all(|(t, &a)| !a || t.is_finished())
    }

    /// The first tile fault, if any, with tile attribution and a
    /// disassembled window around the faulting pc.
    pub fn fault(&self) -> Option<crate::diag::FaultInfo> {
        self.tiles.iter().find_map(|t| {
            t.fault().map(|(pc, cause)| match t.program() {
                Some(p) => crate::diag::FaultInfo::at_tile(self.id as usize, t.xy, pc, cause, p),
                None => crate::diag::FaultInfo::host(cause),
            })
        })
    }

    /// Number of active tiles that have not retired `ecall`. Tiles parked
    /// in a barrier, blocked on the scoreboard, frozen or faulted all
    /// count: a timeout diagnosis needs every tile that is not *done*, not
    /// just the ones still retiring instructions.
    pub fn running_tiles(&self) -> usize {
        self.tiles
            .iter()
            .zip(&self.active)
            .filter(|(t, &a)| a && !t.is_finished())
            .count()
    }

    /// Aggregated core statistics over active tiles. Owed-aware: stalls a
    /// sleeping tile would have recorded under the dense schedule but has
    /// not yet been credited are added virtually, so the aggregate is
    /// bit-identical to the dense one at any observation point.
    pub fn core_stats(&self) -> CoreStats {
        let mut agg = CoreStats::default();
        for (i, (t, &a)) in self.tiles.iter().zip(&self.active).enumerate() {
            if a {
                agg += *t.stats();
                if let Some((kind, n)) = self.sched.owed(i, self.cycle) {
                    agg.add_stall_n(kind, n);
                }
            }
        }
        agg
    }

    /// One tile's core statistics, owed-aware (see
    /// [`core_stats`](Self::core_stats)): every per-tile stats consumer
    /// (telemetry windows, profiles) must read through here rather than
    /// `tile(x, y).stats()` so skipped tiles report dense-identical
    /// counters.
    pub fn tile_stats(&self, x: u8, y: u8) -> CoreStats {
        let i = y as usize * self.cfg.cell_dim.x as usize + x as usize;
        let mut stats = *self.tiles[i].stats();
        if let Some((kind, n)) = self.sched.owed(i, self.cycle) {
            stats.add_stall_n(kind, n);
        }
        stats
    }

    /// Folds every active tile's guest-code profile into `into` (creating
    /// it from the first profiled tile), row-major and owed-aware: stall
    /// debt of still-parked tiles is added virtually at their parking PC —
    /// the same dense-identical read [`core_stats`](Self::core_stats)
    /// performs — without touching any scheduler state.
    pub(crate) fn fold_guest_profile(&self, into: &mut Option<crate::gprof::GuestProfile>) {
        for (i, (t, &a)) in self.tiles.iter().zip(&self.active).enumerate() {
            if !a {
                continue;
            }
            let Some(tp) = t.guest_prof() else { continue };
            let gp = into.get_or_insert_with(|| {
                let p = t.program().expect("profiled tile has a program");
                crate::gprof::GuestProfile::new(p.base(), p.instrs().len())
            });
            gp.merge_tile(tp);
            if let Some((kind, n)) = self.sched.owed(i, self.cycle) {
                gp.add_owed(tp.cur_mark(), t.pc(), kind, n);
            }
        }
    }

    /// `(stepped, skipped)` tile-tick counters from the event scheduler:
    /// how many per-tile steps actually ran versus how many the wake list
    /// elided. Both zero under the dense schedule.
    pub fn tile_ticks(&self) -> (u64, u64) {
        self.sched.tick_counts()
    }

    /// Wake-list re-arms performed by the event scheduler (always zero
    /// under the dense schedule). A forward-progress signal: a machine
    /// that keeps re-arming tiles is quiescent-but-armed, not livelocked.
    pub fn sched_rearms(&self) -> u64 {
        self.sched.rearms()
    }

    /// HBM2 channel statistics.
    pub fn hbm_stats(&self) -> &Hbm2Stats {
        self.hbm.stats()
    }

    /// Aggregated cache-bank statistics.
    pub fn cache_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for b in &self.banks {
            let s = *b.bank.stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.secondary_misses += s.secondary_misses;
            agg.write_validate_fills += s.write_validate_fills;
            agg.evictions += s.evictions;
            agg.writebacks += s.writebacks;
            agg.rejected_input += s.rejected_input;
            agg.rejected_mshr += s.rejected_mshr;
            agg.amos += s.amos;
            agg.idle_cycles += s.idle_cycles;
            agg.blocked_cycles += s.blocked_cycles;
        }
        agg
    }

    /// Installs a shared trace buffer into every tile (see [`crate::trace`]).
    ///
    /// Tracing disables tile-phase parallelism for this Cell: the shared
    /// ring must record events in tile order for the cosim checker, so the
    /// tile phase falls back to the sequential schedule (which the parallel
    /// one is bit-identical to anyway).
    pub fn set_trace(&mut self, trace: crate::trace::TraceHandle) {
        self.traced = true;
        // Tracing switches to the dense schedule, which never settles the
        // wake list: materialize any owed stalls first.
        self.sched.settle(&mut self.tiles, self.cycle);
        for t in &mut self.tiles {
            t.set_trace(trace.clone());
        }
    }

    /// Turns telemetry event capture on or off for every tile (see
    /// [`crate::observe`]). Unlike [`Cell::set_trace`] this does not force
    /// the sequential tile phase: events land in tile-local buffers during
    /// the (possibly parallel) tile phase and are drained at the window
    /// boundary, after the sync phase.
    pub fn set_observed(&mut self, on: bool) {
        for t in &mut self.tiles {
            t.set_observed(on);
        }
    }

    /// Turns race-sanitizer capture on or off for every tile (see
    /// [`crate::race`]). Like telemetry, capture is tile-local during the
    /// (possibly parallel) tile phase; logs are drained after sync.
    pub fn set_race_check(&mut self, on: bool) {
        for t in &mut self.tiles {
            t.set_race_check(on);
        }
    }

    /// Drains every tile's race log into `checker`, in deterministic
    /// row-major tile order (which makes reports bit-identical across
    /// `HB_THREADS` settings).
    pub fn drain_race_logs(&mut self, checker: &mut crate::race::RaceChecker) {
        let cell = self.id;
        for t in &mut self.tiles {
            let tile = t.xy;
            if t.race_log_mut().is_empty() {
                continue;
            }
            let events = std::mem::take(t.race_log_mut());
            checker.process((cell, tile.0, tile.1), &events);
            // Hand the allocation back to the tile.
            let mut events = events;
            events.clear();
            *t.race_log_mut() = events;
        }
    }

    /// Drains every tile's captured instant events into `out`, in
    /// deterministic row-major tile order, followed by NoC retransmit
    /// events attributed to the tile row nearest each link's router.
    pub fn drain_obs_events(&mut self, out: &mut Vec<crate::observe::ObsEvent>) {
        let cell = self.id;
        for t in &mut self.tiles {
            let tile = t.xy;
            out.extend(
                t.drain_obs_events()
                    .map(|(cycle, kind)| crate::observe::ObsEvent {
                        cycle,
                        cell,
                        tile,
                        kind,
                    }),
            );
        }
        let (w, h) = (self.cfg.cell_dim.x, self.cfg.cell_dim.y);
        for ev in self
            .req_net
            .drain_retransmit_events()
            .into_iter()
            .chain(self.resp_net.drain_retransmit_events())
        {
            // Router row 0 is the top bank strip; tile rows start at 1.
            let tile = (ev.at.x.min(w - 1), ev.at.y.saturating_sub(1).min(h - 1));
            out.push(crate::observe::ObsEvent {
                cycle: ev.cycle,
                cell,
                tile,
                kind: crate::observe::ObsKind::Retransmit,
            });
        }
    }

    /// Schedules a transient link fault (see [`hb_noc::Network`]): the next
    /// packet crossing the output link at (`at`, `port`) at or after
    /// `cycle` is corrupted in flight, detected, and replayed after
    /// [`hb_noc::RETRY_PENALTY`] cycles.
    pub fn schedule_link_fault(&mut self, req: bool, cycle: u64, at: Coord, port: hb_noc::Port) {
        if req {
            self.req_net.schedule_link_fault(cycle, at, port);
        } else {
            self.resp_net.schedule_link_fault(cycle, at, port);
        }
    }

    /// Injects an HBM channel stall window of `window` memory-clock cycles
    /// (see [`hb_mem::Hbm2Channel::stall_for`]); the telemetry instant is
    /// attributed to tile (0,0) of the Cell.
    pub fn inject_hbm_stall(&mut self, window: u64, cycle: u64) {
        self.hbm.stall_for(window);
        self.tiles[0].push_obs(
            cycle,
            crate::observe::ObsKind::Inject(crate::observe::InjectKind::Hbm),
        );
    }

    /// Packets currently inside the request network.
    pub fn req_in_flight(&self) -> u64 {
        self.req_net.in_flight()
    }

    /// Packets currently inside the response network.
    pub fn resp_in_flight(&self) -> u64 {
        self.resp_net.in_flight()
    }

    /// Total packets delivered by both NoCs so far (a cheap forward-progress
    /// signal for the hang watchdog).
    pub fn net_ejected(&self) -> u64 {
        self.req_net.stats().ejected + self.resp_net.stats().ejected
    }

    /// Link-level retransmits performed by both NoCs (injected faults that
    /// were detected and replayed).
    pub fn net_retransmits(&self) -> u64 {
        self.req_net.stats().retransmits + self.resp_net.stats().retransmits
    }

    /// Stats of one cache bank.
    pub fn bank_stats(&self, bank: usize) -> &CacheStats {
        self.banks[bank].bank.stats()
    }

    /// Request-network link stats for the output link at (`at`, `port`).
    pub fn request_link(&self, at: Coord, port: hb_noc::Port) -> LinkStats {
        self.req_net.link_stats(at, port)
    }

    /// Response-network link stats for the output link at (`at`, `port`).
    pub fn response_link(&self, at: Coord, port: hb_noc::Port) -> LinkStats {
        self.resp_net.link_stats(at, port)
    }

    /// Per-router cumulative request-network counters (ports summed),
    /// indexed row-major over the Cell's router grid — the cheap snapshot
    /// the telemetry sampler diffs each window.
    pub fn request_net_snapshot(&self) -> Vec<LinkStats> {
        self.req_net.snapshot()
    }

    /// Per-router cumulative response-network counters (ports summed).
    pub fn response_net_snapshot(&self) -> Vec<LinkStats> {
        self.resp_net.snapshot()
    }

    /// Request-network bisection stats at the Cell's vertical midline.
    pub fn request_bisection(&self) -> LinkStats {
        self.req_net.bisection_stats(self.cfg.net_width() / 2)
    }

    /// Number of links crossing the request-network bisection.
    pub fn request_bisection_links(&self) -> usize {
        self.req_net.bisection_link_count(self.cfg.net_width() / 2)
    }

    /// Host operation: flushes every cache bank's dirty lines into DRAM so
    /// results written through the write-validate caches become visible to
    /// [`dram`](Self::dram). Call after a kernel finishes, never mid-run.
    pub fn flush_caches(&mut self) {
        for b in 0..self.banks.len() {
            for (line_addr, data, dirty) in self.banks[b].bank.flush_all() {
                for (i, &byte) in data.iter().enumerate() {
                    if dirty & (1 << i) != 0 {
                        self.dram.write_u8(line_addr + i as u32, byte);
                    }
                }
            }
        }
    }

    /// Delivers a request arriving from another Cell.
    pub fn deliver_remote_request(&mut self, pkt: Packet<Request>) {
        if let Some(b) = self.pgas.coord_to_bank(pkt.dst) {
            self.banks[b].inbox.push_back(pkt);
        } else if let Some((x, y)) = self.pgas.coord_to_tile(pkt.dst) {
            self.tile_mut(x, y).req_inbox.push_back(pkt);
        }
    }

    /// Delivers a response arriving from another Cell. Staged: the packet
    /// reaches the tile's `resp_inbox` on a later cycle, subject to the
    /// [`EJECT_PER_CYCLE`] delivery cap, so a cross-Cell response burst
    /// cannot exceed the latch rate a local response would observe.
    pub fn deliver_remote_response(&mut self, pkt: Packet<Response>) {
        if let Some((x, y)) = self.pgas.coord_to_tile(pkt.dst) {
            self.tile_mut(x, y).resp_stage.push_back(pkt);
        }
    }

    /// Advances the whole Cell one core-clock cycle.
    ///
    /// The cycle is a sequence of bulk-synchronous phases (see
    /// [`crate::parallel`] for the model and determinism argument):
    /// network → memory → tiles → sync → inject. Only the tile phase runs
    /// on the worker pool; every phase boundary is a full barrier, and
    /// tile inboxes/outboxes are written and drained in *different* phases,
    /// so they act as the double buffers between tile compute and the
    /// sequential Cell plumbing.
    pub fn tick(&mut self) {
        self.cycle += 1;
        let now = self.cycle;
        self.phase_network();
        self.phase_memory();
        self.phase_tiles(now);
        self.phase_sync();
        self.phase_inject();
    }

    /// Like [`tick`](Self::tick), accumulating per-phase wall-clock time.
    pub fn tick_profiled(&mut self, acc: &mut PhaseTimes) {
        self.cycle += 1;
        let now = self.cycle;
        let t0 = std::time::Instant::now();
        self.phase_network();
        let t1 = std::time::Instant::now();
        self.phase_memory();
        let t2 = std::time::Instant::now();
        // The event path splits its own time between `tiles` (stepping)
        // and `sched` (wake-list bookkeeping), so the Amdahl tile-share
        // report never counts scheduler overhead as parallelizable work.
        if self.event_schedule() {
            let pool = self.pool.as_deref();
            self.sched
                .run_cycle(&mut self.tiles, &self.active, now, pool, Some(acc));
        } else {
            self.phase_tiles(now);
        }
        let t3 = std::time::Instant::now();
        self.phase_sync();
        let t4 = std::time::Instant::now();
        self.phase_inject();
        let t5 = std::time::Instant::now();
        acc.network += t1 - t0;
        acc.memory += t2 - t1;
        if !self.event_schedule() {
            acc.tiles += t3 - t2;
        }
        acc.sync += t4 - t3;
        acc.inject += t5 - t4;
    }

    /// Whether this Cell runs the event-driven tile phase (tracing forces
    /// the dense schedule: the shared ring must observe events every
    /// cycle, in tile order).
    fn event_schedule(&self) -> bool {
        self.cfg.event_core && !self.traced
    }

    /// BSP phase 1 — networks advance, then ejection latches fill: requests
    /// to banks and tiles, responses to tiles. Delivery into a tile is
    /// rate-limited to [`EJECT_PER_CYCLE`] packets per network per cycle,
    /// matching the one-packet-per-cycle-per-port latch model (DESIGN.md,
    /// "Cycle model"): the request cap doubles as the inbox bound, the
    /// response cap throttles bursts that converge on one destination.
    fn phase_network(&mut self) {
        self.req_net.tick();
        self.resp_net.tick();
        for b in 0..self.banks.len() {
            let coord = self.banks[b].coord;
            while self.banks[b].can_take() {
                match self.req_net.eject(coord) {
                    Some(pkt) => self.banks[b].inbox.push_back(pkt),
                    None => break,
                }
            }
        }
        for i in 0..self.tiles.len() {
            let (x, y) = self.tiles[i].xy;
            let coord = self.pgas.tile_coord(x, y);
            let mut delivered = false;
            while self.tiles[i].req_inbox.len() < EJECT_PER_CYCLE {
                match self.req_net.eject(coord) {
                    Some(pkt) => {
                        self.tiles[i].req_inbox.push_back(pkt);
                        delivered = true;
                    }
                    None => break,
                }
            }
            let mut ejected = 0;
            while ejected < EJECT_PER_CYCLE {
                match self.resp_net.eject(coord) {
                    Some(pkt) => {
                        self.tiles[i].resp_inbox.push_back(pkt);
                        ejected += 1;
                    }
                    None => break,
                }
            }
            // Fabric-staged responses share the same delivery budget.
            while ejected < EJECT_PER_CYCLE {
                match self.tiles[i].resp_stage.pop_front() {
                    Some(pkt) => {
                        self.tiles[i].resp_inbox.push_back(pkt);
                        ejected += 1;
                    }
                    None => break,
                }
            }
            // A delivery un-quiesces the tile: it must drain its inboxes on
            // this very cycle, exactly when the dense schedule would.
            if delivered || ejected > 0 {
                self.sched.wake(i);
            }
        }
    }

    /// BSP phase 2 — cache banks, refill strips and the HBM2 channel.
    fn phase_memory(&mut self) {
        let w = self.cfg.cell_dim.x;
        // Banks: adapter + bank pipeline, then their DRAM side.
        for b in 0..self.banks.len() {
            self.banks[b].tick();
            while let Some(lr) = self.banks[b].bank.pop_mem_request() {
                let id = self.next_mem_id;
                self.next_mem_id += 1;
                let strip = usize::from(b >= w as usize);
                let pos = b % w as usize;
                let (write, bytes) = match lr.kind {
                    LineRequestKind::Fetch => (false, 8),
                    LineRequestKind::Writeback { data, valid } => {
                        // Functional data lands in DRAM at enqueue time so a
                        // later fetch of the same line (FIFO-ordered on the
                        // strip) observes it; timing continues below.
                        for (i, &byte) in data.iter().enumerate() {
                            if valid & (1 << i) != 0 {
                                self.dram.write_u8(lr.line_addr + i as u32, byte);
                            }
                        }
                        (true, 8 + self.cfg.line_bytes)
                    }
                };
                self.mem_ops.insert(
                    id,
                    MemOp {
                        bank: b,
                        line_addr: lr.line_addr,
                        write,
                        data: None,
                    },
                );
                self.strip_to_mem[strip].enqueue(hb_noc::StripTransfer {
                    id,
                    bank: pos,
                    bytes,
                    write,
                });
            }
        }

        // Strip channels toward memory -> HBM2 queue.
        for strip in &mut self.strip_to_mem {
            strip.tick();
            while let Some(t) = strip.pop_complete() {
                let op = &self.mem_ops[&t.id];
                self.hbm_retry.push_back(DramRequest {
                    id: t.id,
                    addr: op.line_addr,
                    write: op.write,
                });
            }
        }

        // HBM2 on its own clock.
        if self.hbm_clock.tick() {
            while let Some(&req) = self.hbm_retry.front() {
                if self.hbm.enqueue(req) {
                    self.hbm_retry.pop_front();
                } else {
                    break;
                }
            }
            self.hbm.tick();
            while let Some(resp) = self.hbm.pop_response() {
                if resp.write {
                    self.mem_ops.remove(&resp.id);
                } else {
                    let op = self
                        .mem_ops
                        .get_mut(&resp.id)
                        .expect("unknown HBM response");
                    let line = self
                        .dram
                        .slice(op.line_addr, self.cfg.line_bytes as usize)
                        .to_vec();
                    op.data = Some(line);
                    let strip = usize::from(op.bank >= w as usize);
                    let pos = op.bank % w as usize;
                    self.strip_from_mem[strip].enqueue(hb_noc::StripTransfer {
                        id: resp.id,
                        bank: pos,
                        bytes: 8 + self.cfg.line_bytes,
                        write: false,
                    });
                }
            }
        }

        // Strip channels from memory -> cache refill completion.
        for s in 0..2 {
            self.strip_from_mem[s].tick();
            while let Some(t) = self.strip_from_mem[s].pop_complete() {
                let op = self.mem_ops.remove(&t.id).expect("refill without op");
                let data = op.data.expect("refill without data");
                self.banks[op.bank].bank.complete_fetch(op.line_addr, &data);
            }
        }
    }

    /// BSP phase 3 — every active tile executes one pipeline cycle. This is
    /// the only phase the worker pool shards: tiles touch nothing but their
    /// own state here, so any execution order is bit-identical to the
    /// in-order loop. Tracing forces the sequential schedule so ring-buffer
    /// event order stays deterministic.
    fn phase_tiles(&mut self, now: u64) {
        if self.event_schedule() {
            let pool = self.pool.as_deref();
            self.sched
                .run_cycle(&mut self.tiles, &self.active, now, pool, None);
            return;
        }
        match &self.pool {
            Some(pool) if !self.traced => pool.step_tiles(&mut self.tiles, &self.active, now),
            _ => {
                for (t, &a) in self.tiles.iter_mut().zip(&self.active) {
                    if a {
                        t.step(now);
                    }
                }
            }
        }
    }

    /// BSP phase 4 — barrier joins and releases.
    fn phase_sync(&mut self) {
        for i in 0..self.tiles.len() {
            if self.tiles[i].wants_join {
                self.tiles[i].wants_join = false;
                let g = self.tiles[i].group();
                let (x, y) = self.tiles[i].xy;
                let local = Coord::new(x - g.origin.0, y - g.origin.1);
                self.barriers[g.barrier_id].join(local);
            }
        }
        for barrier in &mut self.barriers {
            barrier.tick();
        }
        for i in 0..self.tiles.len() {
            if self.active[i] && self.tiles[i].barrier_waiting {
                let g = self.tiles[i].group();
                let (x, y) = self.tiles[i].xy;
                let local = Coord::new(x - g.origin.0, y - g.origin.1);
                if self.barriers[g.barrier_id].is_released(local) {
                    self.barriers[g.barrier_id].consume_release(local);
                    self.tiles[i].barrier_waiting = false;
                    self.tiles[i].race_epoch_end();
                    // Barrier release re-arms the parked tile; it resumes on
                    // the next cycle's tile phase, as under the dense schedule.
                    self.sched.wake(i);
                }
            }
        }
    }

    /// Serializes the complete Cell: every tile (with a deduplicated
    /// program table — tiles share `Arc<Program>` images), every bank
    /// node, both NoCs with their in-flight packets, the four refill
    /// strips, the HBM2 channel and its clock divider, the full DRAM
    /// image, the in-flight bank↔DRAM operations, the barrier trees, the
    /// wake-list scheduler and the fabric-bound outboxes.
    ///
    /// Host-execution state (`pool`, `traced`) is not serialized: it is
    /// re-established by whoever owns the restored machine and cannot
    /// change simulated results.
    pub(crate) fn snap_save(&self, w: &mut hb_mem::SnapWriter) {
        use crate::payload::{
            snap_save_req_packet, snap_save_request, snap_save_resp_packet, snap_save_response,
        };
        w.tag(b"CELL");
        w.u64(self.cycle);
        w.u32(self.alloc_ptr);
        // Deduplicated program table: tiles launched from the same
        // `Arc<Program>` share one image, identified by pointer.
        let mut table: Vec<&Arc<Program>> = Vec::new();
        let mut indices: Vec<Option<u32>> = Vec::with_capacity(self.tiles.len());
        for t in &self.tiles {
            indices.push(
                t.program()
                    .map(|p| match table.iter().position(|q| Arc::ptr_eq(q, p)) {
                        Some(i) => i as u32,
                        None => {
                            table.push(p);
                            (table.len() - 1) as u32
                        }
                    }),
            );
        }
        w.usize(table.len());
        for p in &table {
            w.u32(p.base());
            w.usize(p.words().len());
            for &word in p.words() {
                w.u32(word);
            }
        }
        w.usize(self.tiles.len());
        for (t, idx) in self.tiles.iter().zip(&indices) {
            t.snap_save(w, *idx);
        }
        w.usize(self.banks.len());
        for b in &self.banks {
            b.snap_save(w);
        }
        self.req_net
            .snap_save_with(w, &|w, p| snap_save_request(w, p));
        self.resp_net
            .snap_save_with(w, &|w, p| snap_save_response(w, p));
        for s in &self.strip_to_mem {
            s.snap_save(w);
        }
        for s in &self.strip_from_mem {
            s.snap_save(w);
        }
        self.hbm.snap_save(w);
        self.hbm_clock.snap_save(w);
        self.dram.snap_save(w);
        w.usize(self.hbm_retry.len());
        for req in &self.hbm_retry {
            w.u64(req.id);
            w.u32(req.addr);
            w.bool(req.write);
        }
        let mut ops: Vec<(&u64, &MemOp)> = self.mem_ops.iter().collect();
        ops.sort_by_key(|(id, _)| **id);
        w.usize(ops.len());
        for (id, op) in ops {
            w.u64(*id);
            w.usize(op.bank);
            w.u32(op.line_addr);
            w.bool(op.write);
            if w.opt(op.data.is_some()) {
                w.bytes(op.data.as_ref().unwrap());
            }
        }
        w.u64(self.next_mem_id);
        w.usize(self.barriers.len());
        for b in &self.barriers {
            b.snap_save(w);
        }
        w.usize(self.active.len());
        for &a in &self.active {
            w.bool(a);
        }
        self.sched.snap_save(w);
        w.usize(self.xreq_out.len());
        for (cell, pkt) in &self.xreq_out {
            w.u8(*cell);
            snap_save_req_packet(w, pkt);
        }
        w.usize(self.xresp_out.len());
        for (cell, pkt) in &self.xresp_out {
            w.u8(*cell);
            snap_save_resp_packet(w, pkt);
        }
    }

    /// Restores state written by [`Cell::snap_save`] into a Cell built
    /// from the same configuration.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation, undecodable program words, or
    /// any geometry mismatch against this Cell's configuration.
    pub(crate) fn snap_load(
        &mut self,
        r: &mut hb_mem::SnapReader,
    ) -> Result<(), hb_mem::SnapError> {
        use crate::payload::{
            snap_load_req_packet, snap_load_request, snap_load_resp_packet, snap_load_response,
        };
        use hb_mem::SnapError;
        r.expect_tag(b"CELL", "Cell section")?;
        self.cycle = r.u64()?;
        self.alloc_ptr = r.u32()?;
        let mut programs: Vec<Arc<Program>> = Vec::new();
        for _ in 0..r.seq_len()? {
            let base = r.u32()?;
            let mut words = Vec::new();
            for _ in 0..r.seq_len()? {
                words.push(r.u32()?);
            }
            let p = Program::from_words(base, &words)
                .map_err(|_| SnapError::Bad("program word fails to decode"))?;
            programs.push(Arc::new(p));
        }
        if r.usize()? != self.tiles.len() {
            return Err(SnapError::Bad("Cell tile count mismatch"));
        }
        for t in &mut self.tiles {
            t.snap_load(r, &programs)?;
        }
        if r.usize()? != self.banks.len() {
            return Err(SnapError::Bad("Cell bank count mismatch"));
        }
        for b in &mut self.banks {
            b.snap_load(r)?;
        }
        self.req_net.snap_load_with(r, &snap_load_request)?;
        self.resp_net.snap_load_with(r, &snap_load_response)?;
        for s in &mut self.strip_to_mem {
            s.snap_load(r)?;
        }
        for s in &mut self.strip_from_mem {
            s.snap_load(r)?;
        }
        self.hbm.snap_load(r)?;
        self.hbm_clock = ClockDivider::snap_load(r)?;
        self.dram.snap_load(r)?;
        self.hbm_retry.clear();
        for _ in 0..r.seq_len()? {
            self.hbm_retry.push_back(DramRequest {
                id: r.u64()?,
                addr: r.u32()?,
                write: r.bool()?,
            });
        }
        self.mem_ops.clear();
        for _ in 0..r.seq_len()? {
            let id = r.u64()?;
            let bank = r.usize()?;
            if bank >= self.banks.len() {
                return Err(SnapError::Bad("mem op bank index out of range"));
            }
            let line_addr = r.u32()?;
            let write = r.bool()?;
            let data = if r.opt()? {
                Some(r.bytes()?.to_vec())
            } else {
                None
            };
            self.mem_ops.insert(
                id,
                MemOp {
                    bank,
                    line_addr,
                    write,
                    data,
                },
            );
        }
        self.next_mem_id = r.u64()?;
        let nbarriers = r.seq_len()?;
        self.barriers.clear();
        for _ in 0..nbarriers {
            self.barriers.push(BarrierNetwork::snap_load(r)?);
        }
        if r.usize()? != self.active.len() {
            return Err(SnapError::Bad("Cell active mask size mismatch"));
        }
        for a in &mut self.active {
            *a = r.bool()?;
        }
        self.sched.snap_load(r)?;
        self.xreq_out.clear();
        for _ in 0..r.seq_len()? {
            let cell = r.u8()?;
            self.xreq_out.push_back((cell, snap_load_req_packet(r)?));
        }
        self.xresp_out.clear();
        for _ in 0..r.seq_len()? {
            let cell = r.u8()?;
            self.xresp_out.push_back((cell, snap_load_resp_packet(r)?));
        }
        // A dense-schedule Cell never runs the wake-list phase, so stall
        // debt restored from an event-schedule checkpoint would accrue
        // forever and double-count against the densely recorded stalls.
        // Materialize it now, like the tracing dense-switch does.
        if !self.event_schedule() {
            self.sched.settle(&mut self.tiles, self.cycle);
        }
        Ok(())
    }

    /// BSP phase 5 — injections: tile and bank outboxes drain into the
    /// routers (cross-Cell traffic diverts to the fabric queues).
    fn phase_inject(&mut self) {
        for i in 0..self.tiles.len() {
            let (x, y) = self.tiles[i].xy;
            let coord = self.pgas.tile_coord(x, y);
            while let Some(&(cell, _)) = self.tiles[i].req_outbox.front() {
                if cell == self.id {
                    if !self.req_net.can_inject(coord) {
                        break;
                    }
                    let (_, pkt) = self.tiles[i].req_outbox.pop_front().unwrap();
                    self.req_net.inject(coord, pkt);
                } else {
                    let (cell, pkt) = self.tiles[i].req_outbox.pop_front().unwrap();
                    self.xreq_out.push_back((cell, pkt));
                }
            }
            while let Some(&(cell, _)) = self.tiles[i].resp_outbox.front() {
                if cell == self.id {
                    if !self.resp_net.can_inject(coord) {
                        break;
                    }
                    let (_, pkt) = self.tiles[i].resp_outbox.pop_front().unwrap();
                    self.resp_net.inject(coord, pkt);
                } else {
                    let (cell, pkt) = self.tiles[i].resp_outbox.pop_front().unwrap();
                    self.xresp_out.push_back((cell, pkt));
                }
            }
        }
        for b in 0..self.banks.len() {
            let coord = self.banks[b].coord;
            while let Some(&(cell, _)) = self.banks[b].resp_outbox.front() {
                if cell == self.id {
                    if !self.resp_net.can_inject(coord) {
                        break;
                    }
                    let (_, pkt) = self.banks[b].resp_outbox.pop_front().unwrap();
                    self.resp_net.inject(coord, pkt);
                } else {
                    let (cell, pkt) = self.banks[b].resp_outbox.pop_front().unwrap();
                    self.xresp_out.push_back((cell, pkt));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CellDim;
    use crate::payload::RespKind;

    fn small_cell() -> Cell {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            threads: 1,
            ..MachineConfig::baseline_16x8()
        };
        Cell::new(Arc::new(cfg), 0)
    }

    /// Regression for the response-inbox unboundedness asymmetry: request
    /// ejection was capped but responses could land in `resp_inbox` at an
    /// unbounded per-cycle rate through the fabric path. A burst of N
    /// responses must now take at least N / EJECT_PER_CYCLE cycles to
    /// deliver, and no cycle may deliver more than EJECT_PER_CYCLE.
    #[test]
    fn response_burst_delivery_is_rate_limited() {
        let mut cell = small_cell();
        let dst = cell.pgas().tile_coord(0, 0);
        let n = 4 * EJECT_PER_CYCLE;
        for i in 0..n {
            cell.deliver_remote_response(Packet {
                src: dst,
                dst,
                payload: crate::payload::Response {
                    op_id: i as u32,
                    kind: RespKind::StoreAck,
                },
            });
        }
        // The tile is idle (never launched), so delivered responses
        // accumulate in its inbox where the per-cycle rate is observable.
        let mut prev = 0usize;
        let mut cycles = 0u64;
        while cell.tile(0, 0).resp_inbox.len() < n {
            cell.tick();
            cycles += 1;
            let len = cell.tile(0, 0).resp_inbox.len();
            assert!(
                len - prev <= EJECT_PER_CYCLE,
                "{} responses delivered in one cycle (cap {EJECT_PER_CYCLE})",
                len - prev
            );
            prev = len;
            assert!(cycles <= 4 * n as u64, "burst failed to deliver");
        }
        let floor = (n / EJECT_PER_CYCLE) as u64;
        assert!(
            cycles >= floor,
            "a {n}-response burst must take >= {floor} cycles, took {cycles}"
        );
    }

    /// The phase split must not change what a cycle does: an idle Cell
    /// ticks without panicking and advances its cycle counter.
    #[test]
    fn idle_cell_ticks_through_phases() {
        let mut cell = small_cell();
        for _ in 0..32 {
            cell.tick();
        }
        assert_eq!(cell.cycle(), 32);
        assert!(cell.all_done());
    }
}
