//! Figure 16: HB (32x8 Cell) vs a hierarchical manycore model (ET-class)
//! on the irregular workloads, splitting run time into execution and
//! inter-phase sparse data transfer.

use hb_bench::{bench_cell, bench_size, header, row};
use hb_core::{CellDim, MachineConfig, MultiCellEstimator};
use hb_hier::{HierConfig, HierMachine, WorkloadProfile};
use hb_kernels::Benchmark;

fn main() {
    let base = bench_cell();
    let dim = CellDim {
        x: base.x * 2,
        y: base.y,
    }; // the paper's 32x8 point
    let cfg = MachineConfig {
        cell_dim: dim,
        ..MachineConfig::baseline_16x8()
    };
    let size = bench_size();
    // ET-class comparator normalized to the same DRAM bandwidth and ~1/4
    // the thread count, but far larger L2.
    let hier = HierMachine::new(HierConfig {
        shires: 4,
        cores_per_shire: (dim.tiles() / 16).max(8),
        ..HierConfig::default()
    });
    let est = MultiCellEstimator::from_config(&cfg);

    println!(
        "Figure 16 — irregular workloads: HB {}x{} vs hierarchical (ET-class)\n\
         run time split into execution + inter-phase sparse transfer (cycles)\n",
        dim.x, dim.y
    );
    let widths = [8usize, 12, 12, 12, 12, 10];
    header(
        &[
            "kernel", "HB exec", "HB xfer", "ET exec", "ET xfer", "ET/HB",
        ],
        &widths,
    );

    let irregular: Vec<Box<dyn Benchmark>> = vec![
        Box::new(hb_kernels::SpGemm::wiki_vote()),
        Box::new(hb_kernels::PageRank::default()),
        Box::new(hb_kernels::Bfs::default()),
        Box::new(hb_kernels::BarnesHut::default()),
    ];
    for bench in irregular {
        eprintln!("  running {} ...", bench.name());
        let stats = bench.run(&cfg, size).expect("HB run");
        // Characterize the kernel from measured counters.
        let unique_lines = stats.cache.misses + stats.cache.write_validate_fills;
        let sync = (stats.core.stall(hb_core::StallKind::Barrier)
            + stats.core.stall(hb_core::StallKind::Fence)) as f64
            / stats.core.total_cycles().max(1) as f64;
        let profile = WorkloadProfile {
            instrs: stats.core.instrs,
            mem_accesses: stats.core.remote_requests,
            unique_lines,
            random_fraction: 0.9,
            sync_fraction: sync.min(0.95),
        };
        let et = hier.estimate(&profile);
        // Inter-phase transfer: the partial results exchanged between
        // phases, approximated by the kernel's written lines.
        let xfer_bytes = stats.cache.write_validate_fills.max(64) * 64;
        let hb_xfer = est.transfer_cycles(xfer_bytes);
        let et_xfer = hier.transfer_cycles(xfer_bytes, true);
        let ratio = (et.cycles + et_xfer) as f64 / (stats.cycles + hb_xfer) as f64;
        row(
            &[
                bench.name().to_owned(),
                stats.cycles.to_string(),
                hb_xfer.to_string(),
                et.cycles.to_string(),
                et_xfer.to_string(),
                format!("{ratio:.2}x"),
            ],
            &widths,
        );
    }
    println!(
        "\npaper: higher independent-thread density favors HB on irregular\n\
         kernels overall (with a few cases where ET's larger L2 helps its\n\
         execution phase), and moving sparse data over wide block channels\n\
         inflates ET's transfer time."
    );
}
