//! 1-D wormhole cache-refill/evict strip channel.
//!
//! Each HammerBlade cache-bank strip carries refill and eviction traffic to
//! the off-chip memory interface over 1-D wormhole channels. Pairs of
//! *skipped* channels shorten the path for banks in the middle of the strip,
//! improving fairness and latency; the skip distance and channel width are
//! sized to match the HBM2 pseudo-channel bandwidth.
//!
//! The model: a transfer of `bytes` occupies the channel for
//! `ceil(bytes / bytes_per_cycle)` cycles after a per-bank latency of
//! `base_latency + hops(bank)` cycles, where `hops(bank)` is the bank's
//! distance to the memory interface divided by the skip distance.

use std::collections::VecDeque;

/// Configuration of a [`StripChannel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripConfig {
    /// Number of banks on the strip.
    pub banks: usize,
    /// Channel payload width in bytes per cycle (sized to HBM2 bandwidth).
    pub bytes_per_cycle: u32,
    /// Fixed pipeline latency before a transfer's first beat.
    pub base_latency: u64,
    /// Skip-channel hop distance (1 = plain chain).
    pub skip_distance: usize,
}

impl Default for StripConfig {
    fn default() -> StripConfig {
        StripConfig {
            banks: 16,
            bytes_per_cycle: 16,
            base_latency: 2,
            skip_distance: 4,
        }
    }
}

/// One line transfer riding the strip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripTransfer {
    /// Caller tag.
    pub id: u64,
    /// Index of the bank on the strip (0 is nearest the memory interface).
    pub bank: usize,
    /// Payload size in bytes.
    pub bytes: u32,
    /// Whether the transfer is an eviction (write toward memory).
    pub write: bool,
}

/// Utilization counters for a strip channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StripStats {
    /// Cycles the channel carried payload beats.
    pub busy_cycles: u64,
    /// Cycles transfers waited behind the wormhole head-of-line.
    pub wait_cycles: u64,
    /// Completed transfers.
    pub transfers: u64,
}

#[derive(Debug, Clone, Copy)]
struct Active {
    xfer: StripTransfer,
    done_at: u64,
}

/// A single-direction wormhole strip channel shared by all banks on a strip.
#[derive(Debug)]
pub struct StripChannel {
    cfg: StripConfig,
    queue: VecDeque<StripTransfer>,
    active: Option<Active>,
    done: VecDeque<StripTransfer>,
    cycle: u64,
    stats: StripStats,
}

impl StripChannel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` or `skip_distance` is zero.
    pub fn new(cfg: StripConfig) -> StripChannel {
        assert!(cfg.bytes_per_cycle > 0 && cfg.skip_distance > 0);
        StripChannel {
            cfg,
            queue: VecDeque::new(),
            active: None,
            done: VecDeque::new(),
            cycle: 0,
            stats: StripStats::default(),
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &StripConfig {
        &self.cfg
    }

    /// Enqueues a transfer.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is outside the strip.
    pub fn enqueue(&mut self, xfer: StripTransfer) {
        assert!(
            xfer.bank < self.cfg.banks,
            "bank {} outside strip",
            xfer.bank
        );
        self.queue.push_back(xfer);
    }

    /// Pops a completed transfer, if any.
    pub fn pop_complete(&mut self) -> Option<StripTransfer> {
        self.done.pop_front()
    }

    /// Transfers currently queued or in flight.
    pub fn pending(&self) -> usize {
        self.queue.len() + usize::from(self.active.is_some())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &StripStats {
        &self.stats
    }

    fn hop_latency(&self, bank: usize) -> u64 {
        (bank / self.cfg.skip_distance) as u64 + (bank % self.cfg.skip_distance) as u64
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
        if let Some(active) = self.active {
            if active.done_at <= self.cycle {
                self.done.push_back(active.xfer);
                self.stats.transfers += 1;
                self.active = None;
            } else {
                self.stats.busy_cycles += 1;
                self.stats.wait_cycles += self.queue.len() as u64;
                return;
            }
        }
        if let Some(next) = self.queue.pop_front() {
            let beats = u64::from(next.bytes.div_ceil(self.cfg.bytes_per_cycle));
            let latency = self.cfg.base_latency + self.hop_latency(next.bank);
            self.active = Some(Active {
                xfer: next,
                done_at: self.cycle + latency + beats,
            });
            self.stats.busy_cycles += 1;
            self.stats.wait_cycles += self.queue.len() as u64;
        }
    }

    /// Serializes all dynamic channel state.
    pub fn snap_save(&self, w: &mut hb_mem::SnapWriter) {
        let xfer = |w: &mut hb_mem::SnapWriter, x: &StripTransfer| {
            w.u64(x.id);
            w.usize(x.bank);
            w.u32(x.bytes);
            w.bool(x.write);
        };
        w.tag(b"STRP");
        w.usize(self.queue.len());
        for x in &self.queue {
            xfer(w, x);
        }
        if w.opt(self.active.is_some()) {
            let a = self.active.as_ref().unwrap();
            xfer(w, &a.xfer);
            w.u64(a.done_at);
        }
        w.usize(self.done.len());
        for x in &self.done {
            xfer(w, x);
        }
        w.u64(self.cycle);
        w.u64(self.stats.busy_cycles);
        w.u64(self.stats.wait_cycles);
        w.u64(self.stats.transfers);
    }

    /// Restores dynamic state into a freshly constructed channel of the
    /// same configuration.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation or an out-of-range bank.
    pub fn snap_load(&mut self, r: &mut hb_mem::SnapReader) -> Result<(), hb_mem::SnapError> {
        use hb_mem::SnapError;
        let banks = self.cfg.banks;
        let xfer = |r: &mut hb_mem::SnapReader| -> Result<StripTransfer, SnapError> {
            let x = StripTransfer {
                id: r.u64()?,
                bank: r.usize()?,
                bytes: r.u32()?,
                write: r.bool()?,
            };
            if x.bank >= banks {
                return Err(SnapError::Bad("StripChannel bank out of range"));
            }
            Ok(x)
        };
        r.expect_tag(b"STRP", "StripChannel section")?;
        self.queue.clear();
        for _ in 0..r.seq_len()? {
            self.queue.push_back(xfer(r)?);
        }
        self.active = if r.opt()? {
            Some(Active {
                xfer: xfer(r)?,
                done_at: r.u64()?,
            })
        } else {
            None
        };
        self.done.clear();
        for _ in 0..r.seq_len()? {
            self.done.push_back(xfer(r)?);
        }
        self.cycle = r.u64()?;
        self.stats = StripStats {
            busy_cycles: r.u64()?,
            wait_cycles: r.u64()?,
            transfers: r.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_one(ch: &mut StripChannel, limit: u64) -> u64 {
        for _ in 0..limit {
            ch.tick();
            if ch.pop_complete().is_some() {
                return ch.cycle;
            }
        }
        panic!("transfer never completed");
    }

    #[test]
    fn near_bank_latency_floor() {
        let mut ch = StripChannel::new(StripConfig::default());
        ch.enqueue(StripTransfer {
            id: 1,
            bank: 0,
            bytes: 64,
            write: false,
        });
        let t = complete_one(&mut ch, 100);
        // base 2 + 4 beats (64/16) + scheduling.
        assert!((6..=8).contains(&t), "near-bank transfer took {t}");
    }

    #[test]
    fn skip_channels_help_far_banks() {
        let plain = StripConfig {
            skip_distance: 1,
            ..StripConfig::default()
        };
        let skip = StripConfig::default(); // skip 4
        let mut a = StripChannel::new(plain);
        let mut b = StripChannel::new(skip);
        a.enqueue(StripTransfer {
            id: 1,
            bank: 15,
            bytes: 64,
            write: false,
        });
        b.enqueue(StripTransfer {
            id: 1,
            bank: 15,
            bytes: 64,
            write: false,
        });
        let ta = complete_one(&mut a, 100);
        let tb = complete_one(&mut b, 100);
        assert!(
            tb < ta,
            "skip channel ({tb}) not faster than plain chain ({ta})"
        );
    }

    #[test]
    fn serializes_transfers() {
        let mut ch = StripChannel::new(StripConfig::default());
        for id in 0..4 {
            ch.enqueue(StripTransfer {
                id,
                bank: 0,
                bytes: 64,
                write: id % 2 == 0,
            });
        }
        let mut order = Vec::new();
        for _ in 0..200 {
            ch.tick();
            while let Some(t) = ch.pop_complete() {
                order.push(t.id);
            }
        }
        assert_eq!(order, vec![0, 1, 2, 3], "wormhole must preserve FIFO order");
        assert_eq!(ch.stats().transfers, 4);
    }

    #[test]
    fn throughput_matches_channel_width() {
        // Steady-state: a 64B transfer should take ~4 busy beats + overhead.
        let mut ch = StripChannel::new(StripConfig::default());
        for id in 0..100 {
            ch.enqueue(StripTransfer {
                id,
                bank: 0,
                bytes: 64,
                write: false,
            });
        }
        let mut done = 0;
        let mut cycles = 0u64;
        while done < 100 {
            ch.tick();
            cycles += 1;
            while ch.pop_complete().is_some() {
                done += 1;
            }
            assert!(cycles < 10_000);
        }
        let per = cycles as f64 / 100.0;
        assert!(per < 12.0, "per-transfer cost {per} too high");
    }
}
