//! Textual mesh heatmaps over the telemetry store: where on the Cell the
//! time went, aggregated over the retained windows (the time-resolved
//! counterpart of `hb_core::profile::CellProfile`'s end-of-run maps).

use crate::Telemetry;
use std::fmt::Write as _;

/// Shade glyphs from cold to hot (same ramp as `hb_core::profile`).
const SHADES: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];

fn shade(v: f64) -> char {
    let i = ((v.clamp(0.0, 1.0)) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[i]
}

/// The shade ramp, for legends.
pub fn legend() -> String {
    format!("shade ramp: '{}' = 0% .. '@' = 100%", SHADES[0])
}

/// Per-tile utilization heatmap (execute cycles / covered cycles),
/// aggregated over the retained windows of `cell`. Row 0 is the north row.
pub fn tile_utilization(t: &Telemetry, cell: usize) -> String {
    let agg = t.aggregate(cell);
    let covered = t.covered_cycles().max(1) as f64;
    let (w, h) = t.dim;
    let mut out = format!(
        "tile utilization over {} windows, {} cycles (row 0 = north)\n",
        t.samples.len(),
        t.covered_cycles()
    );
    for y in 0..h {
        for x in 0..w {
            let s = &agg.tiles[y as usize * w as usize + x as usize];
            out.push(shade((s.int_cycles + s.fp_cycles) as f64 / covered));
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{}", legend());
    out
}

/// Per-router link occupancy heatmap (busy cycles, request + response
/// networks summed, normalized to the hottest router), aggregated over
/// the retained windows of `cell`. The router grid includes the two cache
/// I/O rows: row 0 and the last row are the north/south bank strips; the
/// tile rows sit between them.
pub fn link_occupancy(t: &Telemetry, cell: usize) -> String {
    let agg = t.aggregate(cell);
    let (w, h) = t.net_dim;
    let busy: Vec<u64> = agg
        .req_net
        .iter()
        .zip(&agg.resp_net)
        .map(|(a, b)| a.busy + b.busy)
        .collect();
    let max = busy.iter().copied().max().unwrap_or(0).max(1) as f64;
    let mut out = format!(
        "router occupancy over {} windows, hottest = {} busy cycles \
         (rows 0 and {} = cache strips)\n",
        t.samples.len(),
        busy.iter().copied().max().unwrap_or(0),
        h.saturating_sub(1)
    );
    for y in 0..h {
        for x in 0..w {
            out.push(shade(
                busy[y as usize * w as usize + x as usize] as f64 / max,
            ));
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{}", legend());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellWindow, WindowSample};
    use hb_core::CoreStats;
    use hb_noc::LinkStats;

    fn store() -> Telemetry {
        let hot = CoreStats {
            int_cycles: 100,
            ..CoreStats::default()
        };
        let hot_link = LinkStats {
            busy: 50,
            stalled: 0,
            flits: 50,
        };
        Telemetry {
            window: 100,
            dim: (2, 1),
            net_dim: (2, 3),
            num_cells: 1,
            samples: vec![WindowSample {
                start: 0,
                end: 100,
                cells: vec![CellWindow {
                    tiles: vec![hot, CoreStats::default()],
                    req_net: vec![
                        hot_link,
                        LinkStats::default(),
                        LinkStats::default(),
                        LinkStats::default(),
                        LinkStats::default(),
                        LinkStats::default(),
                    ],
                    resp_net: vec![LinkStats::default(); 6],
                    hbm: hb_mem::Hbm2Stats::default(),
                }],
            }],
            events: vec![],
            final_cycle: 100,
            dropped: 0,
        }
    }

    #[test]
    fn utilization_grid_shades_hot_and_cold_tiles() {
        let map = tile_utilization(&store(), 0);
        let grid: Vec<&str> = map.lines().collect();
        // title + 1 tile row + legend
        assert_eq!(grid.len(), 3, "{map}");
        assert_eq!(grid[1].chars().count(), 2);
        assert_eq!(grid[1].chars().next().unwrap(), '@');
        assert_eq!(grid[1].chars().nth(1).unwrap(), ' ');
    }

    #[test]
    fn occupancy_grid_covers_the_router_array() {
        let map = link_occupancy(&store(), 0);
        let grid: Vec<&str> = map.lines().collect();
        // title + 3 router rows + legend
        assert_eq!(grid.len(), 5, "{map}");
        assert_eq!(grid[1].chars().next().unwrap(), '@');
        assert!(map.contains("hottest = 50 busy cycles"), "{map}");
    }
}
