//! Randomized tests: every representable instruction encodes to a word that
//! decodes back to itself, and ALU semantics obey RISC-V identities.
//! Deterministically seeded (`hb_rng`) so failures replay exactly.

use hb_isa::*;
use hb_rng::Rng;

fn any_gpr(rng: &mut Rng) -> Gpr {
    Gpr::from_index(rng.range_u32(0, 32) as u8)
}

fn any_fpr(rng: &mut Rng) -> Fpr {
    Fpr::from_index(rng.range_u32(0, 32) as u8)
}

fn imm20(rng: &mut Rng) -> i32 {
    rng.range_i64(-(1 << 19), 1 << 19) as i32
}

fn imm12(rng: &mut Rng) -> i32 {
    rng.range_i64(-2048, 2048) as i32
}

/// Uniformly samples the full representable instruction space (with
/// encoding-legal immediates) — the same coverage the old proptest
/// strategy provided.
fn any_instr(rng: &mut Rng) -> Instr {
    match rng.index(25) {
        0 => Instr::Lui {
            rd: any_gpr(rng),
            imm: imm20(rng),
        },
        1 => Instr::Auipc {
            rd: any_gpr(rng),
            imm: imm20(rng),
        },
        2 => Instr::Jal {
            rd: any_gpr(rng),
            offset: imm20(rng) * 2,
        },
        3 => Instr::Jalr {
            rd: any_gpr(rng),
            rs1: any_gpr(rng),
            offset: imm12(rng),
        },
        4 => Instr::Branch {
            op: *rng.pick(&BranchOp::ALL),
            rs1: any_gpr(rng),
            rs2: any_gpr(rng),
            offset: imm12(rng) * 2,
        },
        5 => Instr::Load {
            width: *rng.pick(&LoadWidth::ALL),
            rd: any_gpr(rng),
            rs1: any_gpr(rng),
            offset: imm12(rng),
        },
        6 => Instr::Store {
            width: *rng.pick(&StoreWidth::ALL),
            rs1: any_gpr(rng),
            rs2: any_gpr(rng),
            offset: imm12(rng),
        },
        7 => {
            // Shift immediates are restricted to 0..32.
            let op = *rng.pick(&OpImmOp::ALL);
            let imm = match op {
                OpImmOp::Slli | OpImmOp::Srli | OpImmOp::Srai => rng.range_i64(0, 32) as i32,
                _ => imm12(rng),
            };
            Instr::OpImm {
                op,
                rd: any_gpr(rng),
                rs1: any_gpr(rng),
                imm,
            }
        }
        8 => Instr::Op {
            op: *rng.pick(&OpOp::ALL),
            rd: any_gpr(rng),
            rs1: any_gpr(rng),
            rs2: any_gpr(rng),
        },
        9 => Instr::Fence,
        10 => Instr::Ecall,
        11 => Instr::Ebreak,
        12 => Instr::Amo {
            op: *rng.pick(&AmoOp::ALL),
            rd: any_gpr(rng),
            rs1: any_gpr(rng),
            rs2: any_gpr(rng),
            aq: rng.chance(0.5),
            rl: rng.chance(0.5),
        },
        13 => Instr::LrW {
            rd: any_gpr(rng),
            rs1: any_gpr(rng),
            aq: rng.chance(0.5),
            rl: rng.chance(0.5),
        },
        14 => Instr::ScW {
            rd: any_gpr(rng),
            rs1: any_gpr(rng),
            rs2: any_gpr(rng),
            aq: rng.chance(0.5),
            rl: rng.chance(0.5),
        },
        15 => Instr::Flw {
            rd: any_fpr(rng),
            rs1: any_gpr(rng),
            offset: imm12(rng),
        },
        16 => Instr::Fsw {
            rs1: any_gpr(rng),
            rs2: any_fpr(rng),
            offset: imm12(rng),
        },
        17 => {
            // Sqrt canonicalizes rs2 to f0.
            let op = *rng.pick(&FpOp::ALL);
            let rs2 = if op == FpOp::Sqrt {
                Fpr::Ft0
            } else {
                any_fpr(rng)
            };
            Instr::FpOp {
                op,
                rd: any_fpr(rng),
                rs1: any_fpr(rng),
                rs2,
            }
        }
        18 => Instr::Fma {
            op: *rng.pick(&FmaOp::ALL),
            rd: any_fpr(rng),
            rs1: any_fpr(rng),
            rs2: any_fpr(rng),
            rs3: any_fpr(rng),
        },
        19 => Instr::FpCmp {
            op: *rng.pick(&FpCmp::ALL),
            rd: any_gpr(rng),
            rs1: any_fpr(rng),
            rs2: any_fpr(rng),
        },
        20 => Instr::FcvtWS {
            rd: any_gpr(rng),
            rs1: any_fpr(rng),
        },
        21 => Instr::FcvtWuS {
            rd: any_gpr(rng),
            rs1: any_fpr(rng),
        },
        22 => Instr::FcvtSW {
            rd: any_fpr(rng),
            rs1: any_gpr(rng),
        },
        23 => Instr::FcvtSWu {
            rd: any_fpr(rng),
            rs1: any_gpr(rng),
        },
        _ => {
            if rng.chance(0.5) {
                Instr::FmvXW {
                    rd: any_gpr(rng),
                    rs1: any_fpr(rng),
                }
            } else {
                Instr::FmvWX {
                    rd: any_fpr(rng),
                    rs1: any_gpr(rng),
                }
            }
        }
    }
}

/// decode(encode(i)) == i over the whole instruction space.
#[test]
fn encode_decode_round_trip() {
    let mut rng = Rng::seed_from_u64(0x150_0001);
    for _ in 0..4096 {
        let instr = any_instr(&mut rng);
        let word = instr.encode();
        assert_eq!(decode(word), Ok(instr), "round trip failed for {instr:?}");
    }
}

/// Disassembly never panics and never produces an empty string.
#[test]
fn disasm_total() {
    let mut rng = Rng::seed_from_u64(0x150_0002);
    for _ in 0..4096 {
        let instr = any_instr(&mut rng);
        assert!(!instr.to_string().is_empty());
    }
}

/// Decoding arbitrary words either fails or re-encodes to an equivalent
/// instruction (decode is a partial inverse of encode, modulo the
/// rounding-mode and fence-operand fields the core ignores).
#[test]
fn decode_is_partial_inverse() {
    let mut rng = Rng::seed_from_u64(0x150_0003);
    for _ in 0..65536 {
        let word = rng.next_u32();
        if let Ok(instr) = decode(word) {
            let reenc = instr.encode();
            assert_eq!(decode(reenc), Ok(instr), "word {word:#010x}");
        }
    }
}

/// M-extension division conventions.
#[test]
fn div_by_zero_conventions() {
    let mut rng = Rng::seed_from_u64(0x150_0004);
    for _ in 0..4096 {
        let a = rng.next_u32();
        assert_eq!(OpOp::Div.eval(a, 0), u32::MAX);
        assert_eq!(OpOp::Divu.eval(a, 0), u32::MAX);
        assert_eq!(OpOp::Rem.eval(a, 0), a);
        assert_eq!(OpOp::Remu.eval(a, 0), a);
    }
}

/// Division identity: a == div(a,b)*b + rem(a,b) for non-overflow cases.
#[test]
fn div_rem_identity() {
    let mut rng = Rng::seed_from_u64(0x150_0005);
    let mut checked = 0;
    while checked < 4096 {
        let a = rng.next_u32() as i32;
        let b = rng.next_u32() as i32;
        if b == 0 || (a == i32::MIN && b == -1) {
            continue;
        }
        let q = OpOp::Div.eval(a as u32, b as u32) as i32;
        let r = OpOp::Rem.eval(a as u32, b as u32) as i32;
        assert_eq!(q.wrapping_mul(b).wrapping_add(r), a, "a={a} b={b}");
        checked += 1;
    }
}

/// AMO min/max/and/or are idempotent on repeated application.
#[test]
fn amo_minmax_idempotent() {
    let mut rng = Rng::seed_from_u64(0x150_0006);
    for _ in 0..4096 {
        let (old, x) = (rng.next_u32(), rng.next_u32());
        for op in [
            AmoOp::Min,
            AmoOp::Max,
            AmoOp::Minu,
            AmoOp::Maxu,
            AmoOp::And,
            AmoOp::Or,
        ] {
            let once = op.apply(old, x);
            assert_eq!(op.apply(once, x), once, "{op:?} old={old:#x} x={x:#x}");
        }
    }
}
