//! Deterministic aggregation over stored campaign results.
//!
//! A report is a pure function of (manifest, store contents): it iterates
//! the manifest in submission order, fetches each job's record by hash, and
//! renders AVF tables, ablation sweep curves and completion counts. It
//! deliberately contains **no wall-clock or host information**, so a
//! campaign that was killed and resumed produces a byte-identical report to
//! one that ran uninterrupted — the CI smoke job asserts exactly that.

use crate::campaign::Campaign;
use crate::store::{JobRecord, Store};
use hb_fault::{AvfTable, Outcome, SiteKind};

/// Builds the report text for `campaign` against `store`.
///
/// Missing jobs are counted (and the report says so) rather than being an
/// error, so `report` is useful mid-campaign too.
pub fn build(campaign: &Campaign, store: &Store) -> String {
    let records: Vec<Option<JobRecord>> = campaign
        .specs
        .iter()
        .map(|spec| store.get(&spec.hash()))
        .collect();
    let done = records.iter().flatten().count();
    let missing = campaign.specs.len() - done;

    let mut out = String::new();
    out.push_str("hb-serve campaign report v1\n");
    out.push_str(&format!("name: {}\n", campaign.name));
    out.push_str(&format!(
        "jobs: total={} done={} missing={}\n",
        campaign.specs.len(),
        done,
        missing
    ));

    // Golden references, in manifest order.
    for rec in records.iter().flatten().filter(|r| r.kind == "golden") {
        out.push_str(&format!(
            "golden: kernel={} cycles={} instrs={} dram-digest={:#018x} checks={}\n",
            rec.kernel, rec.cycles, rec.instrs, rec.dram_digest, rec.checks
        ));
    }

    // Fault outcomes → AVF table.
    let faults: Vec<&JobRecord> = records
        .iter()
        .flatten()
        .filter(|r| r.kind == "fault")
        .collect();
    if !faults.is_empty() {
        let mut table = AvfTable::new();
        for rec in &faults {
            let kind = SiteKind::ALL.iter().find(|k| k.label() == rec.site);
            let outcome = Outcome::ALL.iter().find(|o| o.label() == rec.outcome);
            if let (Some(&kind), Some(&outcome)) = (kind, outcome) {
                table.record(kind, outcome);
            }
        }
        out.push('\n');
        out.push_str(&table.render());
        out.push_str(&format!("summary: {}\n", table.summary_line()));
    }

    // Ablation sweep points, in manifest order (the sweep harness submits
    // them in curve order, so this *is* the curve).
    let ablations: Vec<(&str, Option<&JobRecord>)> = campaign
        .specs
        .iter()
        .zip(records.iter())
        .filter(|(s, _)| matches!(s.kind, crate::spec::JobKind::Ablation { .. }))
        .map(|(s, r)| (s.label.as_str(), r.as_ref()))
        .collect();
    if !ablations.is_empty() {
        out.push('\n');
        out.push_str("sweep:\n");
        for (label, rec) in ablations {
            match rec {
                Some(r) => out.push_str(&format!(
                    "  {:<28} kernel={} cycles={} instrs={}\n",
                    label, r.kernel, r.cycles, r.instrs
                )),
                None => out.push_str(&format!("  {label:<28} (missing)\n")),
            }
        }
    }

    // Hot-block tables of profile jobs, in manifest order.
    let profiles: Vec<&JobRecord> = records
        .iter()
        .flatten()
        .filter(|r| r.kind.starts_with("profile:"))
        .collect();
    if !profiles.is_empty() {
        out.push('\n');
        out.push_str("hot blocks (top 5 per kernel, share of tile-cycles):\n");
        for rec in profiles {
            out.push_str(&format!(
                "  {}: cycles={} {}\n",
                rec.kernel, rec.cycles, rec.checks
            ));
            for b in hb_prof::parse_compact(&rec.profile) {
                out.push_str(&format!(
                    "    blk_{:#06x}  retired={:<10} stalled={:<10} {:>3}.{:02}%\n",
                    b.start_pc,
                    b.retired,
                    b.stall_cycles,
                    b.share_bp / 100,
                    b.share_bp % 100
                ));
            }
        }
    }
    out
}

/// Builds the report and writes it to `path` (atomic tmp+rename).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write(
    campaign: &Campaign,
    store: &Store,
    path: &std::path::Path,
) -> std::io::Result<String> {
    let text = build(campaign, store);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &text)?;
    std::fs::rename(&tmp, path)?;
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobKind, JobSpec, PlanSpec};
    use hb_core::MachineConfig;

    #[test]
    fn report_is_deterministic_and_wall_clock_free() {
        let dir = std::env::temp_dir().join(format!("hb-serve-report-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let cfg = MachineConfig {
            threads: 1,
            ..MachineConfig::baseline_16x8()
        };
        let campaign = Campaign::fault("avf", "sgemm", &cfg, 7, 3);

        // Golden + 2 of 3 fault results stored.
        let specs = &campaign.specs;
        store
            .put(&JobRecord {
                hash: specs[0].hash(),
                kind: "golden".to_owned(),
                kernel: "sgemm".to_owned(),
                outcome: "ok".to_owned(),
                cycles: 1000,
                instrs: 500,
                dram_digest: 0xabc,
                checks: "empty-plan-identity,iss-anchor".to_owned(),
                ..JobRecord::default()
            })
            .unwrap();
        for (i, (site, outcome)) in [("regfile", "masked"), ("spm", "sdc")].iter().enumerate() {
            store
                .put(&JobRecord {
                    hash: specs[i + 1].hash(),
                    kind: "fault".to_owned(),
                    kernel: "sgemm".to_owned(),
                    seed: specs[i + 1].seed,
                    outcome: (*outcome).to_owned(),
                    site: (*site).to_owned(),
                    inj_cycle: 150,
                    ..JobRecord::default()
                })
                .unwrap();
        }

        let text = build(&campaign, &store);
        assert!(text.contains("jobs: total=4 done=3 missing=1"));
        assert!(text.contains("golden: kernel=sgemm cycles=1000"));
        assert!(text.contains("summary: masked=1 sdc=1 detected=0 hang=0"));
        assert!(!text.contains("wall"), "report must be wall-clock free");
        // Pure function of inputs: building twice is byte-identical.
        assert_eq!(text, build(&campaign, &store));

        // Ablation labels render as a sweep section.
        let mut sweep = Campaign {
            name: "sweep".to_owned(),
            specs: vec![JobSpec {
                kind: JobKind::Ablation {
                    size: "small".to_owned(),
                },
                kernel: "SGEMM".to_owned(),
                seed: 0,
                plan: PlanSpec::None,
                config: cfg.clone(),
                label: "ruche=2".to_owned(),
            }],
        };
        store
            .put(&JobRecord {
                hash: sweep.specs[0].hash(),
                kind: "ablation:small".to_owned(),
                kernel: "SGEMM".to_owned(),
                outcome: "ok".to_owned(),
                cycles: 2222,
                instrs: 999,
                ..JobRecord::default()
            })
            .unwrap();
        let text = build(&sweep, &store);
        assert!(text.contains("sweep:"));
        assert!(text.contains("ruche=2"));
        assert!(text.contains("cycles=2222"));
        sweep.specs[0].label = "ruche=3".to_owned(); // same hash: label unhashed
        assert!(build(&sweep, &store).contains("ruche=3"));

        // Profile records render a hot-block table from the compact field.
        let prof = Campaign::profile("hot", &["SGEMM"], &cfg, "small");
        store
            .put(&JobRecord {
                hash: prof.specs[0].hash(),
                kind: "profile:small".to_owned(),
                kernel: "SGEMM".to_owned(),
                outcome: "ok".to_owned(),
                cycles: 1778,
                instrs: 3728,
                checks: "retired=3728,stalled=10496".to_owned(),
                profile: "0x0054:3328:7497:7610;0x0088:128:656:551".to_owned(),
                ..JobRecord::default()
            })
            .unwrap();
        let text = build(&prof, &store);
        assert!(text.contains("hot blocks (top 5 per kernel, share of tile-cycles):"));
        assert!(text.contains("SGEMM: cycles=1778 retired=3728,stalled=10496"));
        assert!(text.contains("blk_0x0054"));
        assert!(text.contains("76.10%"), "share renders as basis points");
        assert_eq!(text, build(&prof, &store));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
