//! PGAS address translation (paper Figure 5).
//!
//! Kernels execute in a Partitioned Global Address Space with five major
//! spaces, selected by the upper bits of a 32-bit EVA (endpoint virtual
//! address). Translation to a network destination is pure combinational
//! logic — no TLB:
//!
//! | bits 31:30 | space |
//! |---|---|
//! | `0b00` | **Local SPM / CSRs** — private to the issuing tile |
//! | `0b01` | **Group SPM** — `[29:24]` = tile Y, `[23:18]` = tile X, `[17:0]` offset |
//! | `0b10` | **Local / Group DRAM** — `[29:24]` = Cell id (63 ⇒ own Cell), `[23:0]` offset |
//! | `0b11` | **Global DRAM** — `[29:0]` offset hashed across every bank on the chip |
//!
//! Within a Cell's DRAM space, *Regional IPOLY hashing* pseudo-randomly
//! spreads cache lines over the Cell's banks, eliminating the partition
//! camping problem of 2^n-stride accesses. The ablation alternative is
//! plain modulo striping.

use hb_noc::Coord;

/// Cell id value meaning "the issuing tile's own Cell" (Local DRAM).
pub const OWN_CELL: u8 = 63;

/// Byte offset of the first CSR in the local space (SPM occupies
/// `0..spm_bytes`).
pub const CSR_BASE: u32 = 0x1000;

/// Tile CSR offsets (relative to address 0 of the local space).
pub mod csr {
    /// X coordinate of this tile within its Cell (read-only).
    pub const TILE_X: u32 = 0x1000;
    /// Y coordinate of this tile within its Cell (read-only).
    pub const TILE_Y: u32 = 0x1004;
    /// Tile-group origin X.
    pub const TG_X: u32 = 0x1008;
    /// Tile-group origin Y.
    pub const TG_Y: u32 = 0x100c;
    /// Tile-group width in tiles.
    pub const TG_W: u32 = 0x1010;
    /// Tile-group height in tiles.
    pub const TG_H: u32 = 0x1014;
    /// Rank of this tile within its group (row-major).
    pub const TG_RANK: u32 = 0x1018;
    /// Number of tiles in this tile's group.
    pub const TG_SIZE: u32 = 0x101c;
    /// Cell shape: tiles per row.
    pub const CELL_W: u32 = 0x1020;
    /// Cell shape: tile rows.
    pub const CELL_H: u32 = 0x1024;
    /// This Cell's id.
    pub const CELL_ID: u32 = 0x1028;
    /// Total Cells in the machine.
    pub const NUM_CELLS: u32 = 0x102c;
    /// Store: join the group barrier and stall until released.
    pub const BARRIER: u32 = 0x1030;
    /// Load: current core cycle (low 32 bits).
    pub const CYCLE: u32 = 0x1034;
    /// Kernel-phase marker (store-only). Architecturally a no-op: the
    /// store retires in one cycle and changes no simulated state, so
    /// kernels may mark phases unconditionally. When telemetry is
    /// attached, the stored value is recorded as an instant event.
    pub const MARK: u32 = 0x1038;
    /// Kernel arguments 0-7 (each 4 bytes).
    pub const ARG0: u32 = 0x1040;
    /// Load: this tile's rank among the *live* (non-disabled) members of
    /// its group, row-major. Equals `TG_RANK` when no tile is disabled;
    /// kernels that stride by rank read this instead so work redistributes
    /// around `MachineConfig::disabled_tiles`.
    pub const TG_LIVE_RANK: u32 = 0x1060;
    /// Load: number of live (non-disabled) tiles in the group. Equals
    /// `TG_SIZE` when no tile is disabled.
    pub const TG_LIVE_SIZE: u32 = 0x1064;
    /// Load: the disabled group-mate this tile adopts, packed as
    /// `(x << 8) | y` in tile coordinates, or `0xffff_ffff` when the tile
    /// has no adoptee. Coordinate-based kernels (Jacobi) use this to take
    /// over a dead tile's slice through its still-live scratchpad NI.
    pub const TG_ADOPT: u32 = 0x1068;
}

/// `TG_ADOPT` value meaning "no adoptee".
pub const NO_ADOPTEE: u32 = u32::MAX;

/// Builds a Local-SPM EVA (offset within the issuing tile's scratchpad).
pub const fn local_spm(offset: u32) -> u32 {
    offset
}

/// Builds a Group-SPM EVA addressing `offset` within tile (`x`, `y`) of the
/// issuing tile's Cell.
pub const fn group_spm(x: u8, y: u8, offset: u32) -> u32 {
    (1 << 30) | ((y as u32) << 24) | ((x as u32) << 18) | (offset & 0x3ffff)
}

/// Builds a Local-DRAM EVA (the issuing tile's own Cell).
pub const fn local_dram(offset: u32) -> u32 {
    (1 << 31) | ((OWN_CELL as u32) << 24) | (offset & 0xff_ffff)
}

/// Builds a Group-DRAM EVA addressing Cell `cell`'s Local DRAM.
pub const fn group_dram(cell: u8, offset: u32) -> u32 {
    (1 << 31) | ((cell as u32) << 24) | (offset & 0xff_ffff)
}

/// Builds a Global-DRAM EVA (hashed across all banks of all Cells).
pub const fn global_dram(offset: u32) -> u32 {
    (0b11 << 30) | (offset & 0x3fff_ffff)
}

/// Where a translated EVA lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The issuing tile's own scratchpad.
    LocalSpm {
        /// Byte offset within the SPM.
        offset: u32,
    },
    /// A tile CSR (local space above the SPM).
    Csr {
        /// CSR address (see [`csr`]).
        offset: u32,
    },
    /// Another tile's scratchpad in the same Cell.
    RemoteSpm {
        /// Target tile, in tile coordinates within the Cell.
        tile: Coord,
        /// Byte offset within that SPM.
        offset: u32,
    },
    /// A cache bank backed by some Cell's DRAM.
    Bank {
        /// Target Cell id.
        cell: u8,
        /// Bank index within that Cell (0..2*cell_width).
        bank: usize,
        /// Cell-local DRAM byte address.
        addr: u32,
    },
}

/// Error for EVAs that name nonexistent resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadEva {
    /// The offending address.
    pub eva: u32,
}

impl std::fmt::Display for BadEva {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EVA {:#010x} does not map to any resource", self.eva)
    }
}

impl std::error::Error for BadEva {}

/// The per-tile combinational translation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PgasMap {
    /// Issuing tile's Cell id.
    pub cell_id: u8,
    /// Total Cells.
    pub num_cells: u8,
    /// Cell tile-array width.
    pub cell_w: u8,
    /// Cell tile-array height.
    pub cell_h: u8,
    /// SPM size in bytes.
    pub spm_bytes: u32,
    /// Cache line size.
    pub line_bytes: u32,
    /// DRAM window per Cell.
    pub dram_bytes: u32,
    /// Regional IPOLY hashing (vs modulo striping).
    pub ipoly: bool,
}

impl PgasMap {
    /// Banks per Cell (two strips).
    pub fn banks(&self) -> usize {
        2 * self.cell_w as usize
    }

    /// Translates `eva` from the perspective of the owning tile.
    ///
    /// # Errors
    ///
    /// Returns [`BadEva`] for addresses outside every space (SPM overrun,
    /// nonexistent tile/Cell, DRAM window overrun).
    pub fn translate(&self, eva: u32) -> Result<Target, BadEva> {
        let bad = Err(BadEva { eva });
        match eva >> 30 {
            0b00 => {
                if eva < self.spm_bytes {
                    Ok(Target::LocalSpm { offset: eva })
                } else if (CSR_BASE..CSR_BASE + 0x100).contains(&eva) {
                    Ok(Target::Csr { offset: eva })
                } else {
                    bad
                }
            }
            0b01 => {
                let y = ((eva >> 24) & 0x3f) as u8;
                let x = ((eva >> 18) & 0x3f) as u8;
                let offset = eva & 0x3ffff;
                if x >= self.cell_w || y >= self.cell_h || offset >= self.spm_bytes {
                    return bad;
                }
                Ok(Target::RemoteSpm {
                    tile: Coord::new(x, y),
                    offset,
                })
            }
            0b10 => {
                let cell_field = ((eva >> 24) & 0x3f) as u8;
                let cell = if cell_field == OWN_CELL {
                    self.cell_id
                } else {
                    cell_field
                };
                let addr = eva & 0xff_ffff;
                if cell >= self.num_cells && cell_field != OWN_CELL {
                    return bad;
                }
                if addr >= self.dram_bytes {
                    return bad;
                }
                Ok(Target::Bank {
                    cell,
                    bank: self.bank_for(addr),
                    addr,
                })
            }
            _ => {
                // Global DRAM: hash the line over (cell, bank) across the
                // whole machine.
                let offset = eva & 0x3fff_ffff;
                let line = offset / self.line_bytes;
                let total_banks = self.banks() as u32 * u32::from(self.num_cells);
                let slot = if self.ipoly {
                    ipoly_hash(line, total_banks)
                } else {
                    line % total_banks
                };
                let cell = (slot / self.banks() as u32) as u8;
                let bank = (slot % self.banks() as u32) as usize;
                // Each Cell stores global lines in the top of its window.
                let addr = offset % self.dram_bytes;
                Ok(Target::Bank { cell, bank, addr })
            }
        }
    }

    /// Like [`PgasMap::translate`], but skips bank selection for Cell-local
    /// DRAM (the returned `bank` is 0). Bank choice only matters to the
    /// cycle-level memory system; functional consumers (the `hb-iss` bus)
    /// need just "which Cell, which byte", and the bank hash — two integer
    /// divisions plus an optional IPOLY reduction — dominates their
    /// per-access cost.
    ///
    /// # Errors
    ///
    /// Returns [`BadEva`] exactly when [`PgasMap::translate`] does.
    pub fn translate_flat(&self, eva: u32) -> Result<Target, BadEva> {
        if eva >> 30 == 0b10 {
            let cell_field = ((eva >> 24) & 0x3f) as u8;
            let cell = if cell_field == OWN_CELL {
                self.cell_id
            } else {
                cell_field
            };
            let addr = eva & 0xff_ffff;
            if (cell >= self.num_cells && cell_field != OWN_CELL) || addr >= self.dram_bytes {
                return Err(BadEva { eva });
            }
            return Ok(Target::Bank {
                cell,
                bank: 0,
                addr,
            });
        }
        self.translate(eva)
    }

    /// Bank selection for a Cell-local DRAM address.
    pub fn bank_for(&self, addr: u32) -> usize {
        let line = addr / self.line_bytes;
        let banks = self.banks() as u32;
        let b = if self.ipoly {
            ipoly_hash(line, banks)
        } else {
            line % banks
        };
        b as usize
    }

    /// Network coordinate of bank `bank` inside a Cell whose network grid is
    /// `cell_w x (cell_h + 2)` (strip rows at y = 0 and y = cell_h + 1).
    pub fn bank_coord(&self, bank: usize) -> Coord {
        let w = self.cell_w as usize;
        if bank < w {
            Coord::new(bank as u8, 0)
        } else {
            Coord::new((bank - w) as u8, self.cell_h + 1)
        }
    }

    /// Network coordinate of tile (`x`, `y`) (tiles occupy rows
    /// `1..=cell_h`).
    pub fn tile_coord(&self, x: u8, y: u8) -> Coord {
        Coord::new(x, y + 1)
    }

    /// Inverse of [`bank_coord`](Self::bank_coord): which bank sits at a
    /// strip-row network coordinate.
    pub fn coord_to_bank(&self, c: Coord) -> Option<usize> {
        if c.y == 0 {
            Some(c.x as usize)
        } else if c.y == self.cell_h + 1 {
            Some(c.x as usize + self.cell_w as usize)
        } else {
            None
        }
    }

    /// Inverse of [`tile_coord`](Self::tile_coord).
    pub fn coord_to_tile(&self, c: Coord) -> Option<(u8, u8)> {
        if c.y >= 1 && c.y <= self.cell_h {
            Some((c.x, c.y - 1))
        } else {
            None
        }
    }
}

/// Irreducible polynomials over GF(2) by degree, for IPOLY hashing
/// (Rau, "Pseudo-randomly interleaved memory", ISCA 1991).
const IPOLY: [u32; 9] = [
    0b1,         // degree 0 (unused)
    0b11,        // x + 1
    0b111,       // x^2 + x + 1
    0b1011,      // x^3 + x + 1
    0b10011,     // x^4 + x + 1
    0b100101,    // x^5 + x^2 + 1
    0b1000011,   // x^6 + x + 1
    0b10001001,  // x^7 + x^3 + 1
    0b100011011, // x^8 + x^4 + x^3 + x + 1
];

/// Hashes a line index into `banks` slots (power of two) using polynomial
/// residue over GF(2). Unlike modulo striping, stride-2^n access patterns
/// spread evenly over all banks.
pub fn ipoly_hash(line: u32, banks: u32) -> u32 {
    debug_assert!(banks.is_power_of_two() && banks > 0);
    let deg = banks.trailing_zeros();
    if deg == 0 {
        return 0;
    }
    let p = IPOLY[deg as usize];
    let mut v = line;
    let mut bit = 31u32;
    while bit >= deg {
        if v & (1 << bit) != 0 {
            v ^= p << (bit - deg);
        }
        if bit == 0 {
            break;
        }
        bit -= 1;
    }
    v & (banks - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> PgasMap {
        PgasMap {
            cell_id: 2,
            num_cells: 4,
            cell_w: 16,
            cell_h: 8,
            spm_bytes: 4096,
            line_bytes: 64,
            dram_bytes: 16 << 20,
            ipoly: true,
        }
    }

    #[test]
    fn local_spm_translation() {
        let m = map();
        assert_eq!(m.translate(0x0), Ok(Target::LocalSpm { offset: 0 }));
        assert_eq!(m.translate(0xfff), Ok(Target::LocalSpm { offset: 0xfff }));
        assert_eq!(
            m.translate(csr::TILE_X),
            Ok(Target::Csr {
                offset: csr::TILE_X
            })
        );
        assert!(m.translate(0x2000).is_err());
    }

    #[test]
    fn group_spm_translation() {
        let m = map();
        let eva = group_spm(5, 3, 0x40);
        assert_eq!(
            m.translate(eva),
            Ok(Target::RemoteSpm {
                tile: Coord::new(5, 3),
                offset: 0x40
            })
        );
        // Nonexistent tile.
        assert!(m.translate(group_spm(20, 3, 0)).is_err());
        assert!(m.translate(group_spm(5, 9, 0)).is_err());
        // SPM overrun.
        assert!(m.translate(group_spm(5, 3, 4096)).is_err());
    }

    #[test]
    fn local_dram_resolves_own_cell() {
        let m = map();
        match m.translate(local_dram(0x1234C0)).unwrap() {
            Target::Bank { cell, addr, .. } => {
                assert_eq!(cell, 2);
                assert_eq!(addr, 0x1234C0);
            }
            other => panic!("wrong target {other:?}"),
        }
    }

    #[test]
    fn group_dram_names_other_cells() {
        let m = map();
        match m.translate(group_dram(1, 0x40)).unwrap() {
            Target::Bank { cell, .. } => assert_eq!(cell, 1),
            other => panic!("wrong target {other:?}"),
        }
        assert!(
            m.translate(group_dram(7, 0)).is_err(),
            "cell 7 does not exist"
        );
    }

    #[test]
    fn global_dram_spreads_over_cells() {
        let m = map();
        let mut cells_seen = std::collections::HashSet::new();
        for i in 0..256u32 {
            match m.translate(global_dram(i * 64)).unwrap() {
                Target::Bank { cell, .. } => {
                    assert!(cell < 4);
                    cells_seen.insert(cell);
                }
                other => panic!("wrong target {other:?}"),
            }
        }
        assert_eq!(cells_seen.len(), 4, "global space must touch every cell");
    }

    #[test]
    fn ipoly_defeats_power_of_two_strides() {
        // The partition-camping scenario: stride of exactly `banks` lines.
        // Modulo striping pins every access to one bank; IPOLY spreads them.
        let banks = 32u32;
        let mut modulo_banks = std::collections::HashSet::new();
        let mut ipoly_banks = std::collections::HashSet::new();
        for i in 0..64 {
            let line = i * banks; // stride = banks
            modulo_banks.insert(line % banks);
            ipoly_banks.insert(ipoly_hash(line, banks));
        }
        assert_eq!(modulo_banks.len(), 1, "modulo striping camps on one bank");
        assert!(
            ipoly_banks.len() >= banks as usize / 2,
            "ipoly spread only {} banks",
            ipoly_banks.len()
        );
    }

    #[test]
    fn ipoly_is_uniform_for_sequential_lines() {
        let banks = 32u32;
        let mut counts = vec![0u32; banks as usize];
        for line in 0..(banks * 64) {
            counts[ipoly_hash(line, banks) as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c == 64),
            "sequential lines must balance: {counts:?}"
        );
    }

    #[test]
    fn bank_coords_cover_both_strips() {
        let m = map();
        assert_eq!(m.bank_coord(0), Coord::new(0, 0));
        assert_eq!(m.bank_coord(15), Coord::new(15, 0));
        assert_eq!(m.bank_coord(16), Coord::new(0, 9));
        assert_eq!(m.bank_coord(31), Coord::new(15, 9));
        for b in 0..32 {
            assert_eq!(m.coord_to_bank(m.bank_coord(b)), Some(b));
        }
    }

    #[test]
    fn tile_coords_round_trip() {
        let m = map();
        for y in 0..8 {
            for x in 0..16 {
                let c = m.tile_coord(x, y);
                assert_eq!(m.coord_to_tile(c), Some((x, y)));
                assert_eq!(m.coord_to_bank(c), None);
            }
        }
    }

    #[test]
    fn eva_builders_set_space_bits() {
        assert_eq!(local_spm(0x10) >> 30, 0b00);
        assert_eq!(group_spm(0, 0, 0) >> 30, 0b01);
        assert_eq!(local_dram(0) >> 30, 0b10);
        assert_eq!(group_dram(3, 0) >> 30, 0b10);
        assert_eq!(global_dram(0) >> 30, 0b11);
    }
}
