//! `replay` — deterministic post-mortem replay of a machine checkpoint.
//!
//! Usage:
//! `cargo run --release -p hb-bench --bin replay -- --ckpt <file> [--cycles N]`
//!
//! Loads a checkpoint file (e.g. the `ckpt/hang-<hash>.ckpt` a timed-out
//! `hb-serve` fault job dumps next to its hang report), rebuilds the machine
//! from the configuration embedded in the file, restores it bit-exactly and
//! runs up to N further cycles, reporting where the machine ends up.
//! Restore is deterministic, so every replay of the same file walks the
//! same post-mortem trajectory — add cycles to step further into the hang.

use hb_core::{Machine, SimError, SnapshotDram};

const USAGE: &str = "usage: replay --ckpt <file> [--cycles N]

  --ckpt FILE    checkpoint file to restore (required)
  --cycles N     further cycles to simulate  [100000]";

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("replay: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(1);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut ckpt_path: Option<std::path::PathBuf> = None;
    let mut cycles: u64 = 100_000;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--ckpt" => {
                i += 1;
                ckpt_path = Some(
                    argv.get(i)
                        .unwrap_or_else(|| fail("--ckpt needs a file"))
                        .into(),
                );
            }
            "--cycles" => {
                i += 1;
                cycles = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--cycles needs a number"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    let path = ckpt_path.unwrap_or_else(|| fail("--ckpt is required"));

    let bytes = std::fs::read(&path)
        .unwrap_or_else(|e| fail(format!("cannot read {}: {e}", path.display())));
    let ckpt = hb_ckpt::decode(&bytes).unwrap_or_else(|e| fail(e));
    let cfg = ckpt
        .config()
        .unwrap_or_else(|e| fail(format!("checkpoint config does not parse: {e}")));
    println!(
        "checkpoint: {} ({} bytes, captured at cycle {})",
        path.display(),
        bytes.len(),
        ckpt.cycle
    );
    println!(
        "machine: {} cell(s) of {}x{} tiles",
        cfg.num_cells, cfg.cell_dim.x, cfg.cell_dim.y
    );

    let mut machine = Machine::new(cfg.clone());
    hb_ckpt::apply(&mut machine, &ckpt).unwrap_or_else(|e| fail(e));

    let result = machine.run(cycles);
    machine.flush_all_caches();
    let mem = SnapshotDram::from_machine(&machine);
    let digest = hb_serve::exec::digest(&mem, cfg.num_cells);
    let stats = machine.cell(0).core_stats();
    match result {
        Ok(s) => println!(
            "finished: +{} cycles (total {}), {} instrs retired",
            s.cycles,
            machine.cycle(),
            s.core.instrs
        ),
        Err(SimError::Fault(info)) => println!("fault detected: {info}"),
        Err(SimError::Timeout { cycles, hang, .. }) => {
            println!(
                "still running after +{cycles} cycles (total {})",
                machine.cycle()
            );
            if let Some(hang) = hang {
                println!("hang: {hang}");
            }
        }
    }
    println!(
        "cell 0: {} instrs, {} remote requests",
        stats.instrs, stats.remote_requests
    );
    println!("dram digest: {digest:#018x}");
}
