//! The host-visible machine: one or more Cells plus the inter-Cell fabric
//! and the run loop.

use crate::cell::{Cell, GroupSpec};
use crate::config::MachineConfig;
use crate::diag::{FaultInfo, HangClass, HangReport};
use crate::payload::{Request, Response};
use crate::stats::CoreStats;
use hb_asm::Program;
use hb_fault::{Injection, Site};
use hb_noc::{Coord, Packet, Port};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Periodic checkpoint callback (see [`Machine::set_auto_checkpoint`]).
/// The machine passes itself back so the sink can serialize it; the sink
/// is detached for the duration of the call.
pub type CheckpointSink = Box<dyn FnMut(&mut Machine) + Send>;

/// The installed auto-checkpoint sink plus its firing interval.
struct CkptSinkSlot {
    every: u64,
    sink: CheckpointSink,
}

impl fmt::Debug for CkptSinkSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CkptSinkSlot")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// Simulation-terminating errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A tile trapped (boxed: [`FaultInfo`] carries a disasm window).
    Fault(Box<FaultInfo>),
    /// The run exceeded its cycle budget.
    Timeout {
        /// Cycles executed before giving up.
        cycles: u64,
        /// Active tiles that had not retired `ecall`, for diagnosis.
        running_tiles: usize,
        /// The progress watchdog's classification of the hang.
        hang: Option<Box<HangReport>>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Fault(info) => write!(f, "tile fault: {info}"),
            SimError::Timeout {
                cycles,
                running_tiles,
                hang,
            } => {
                write!(f, "simulation did not finish in {cycles} cycles ({running_tiles} tiles still running)")?;
                if let Some(h) = hang {
                    write!(f, ": {h}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed kernel run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Core-clock cycles from launch to the last tile's `ecall`.
    pub cycles: u64,
    /// Aggregated core statistics over all Cells.
    pub core: CoreStats,
}

/// Inter-Cell traffic item.
#[derive(Debug)]
enum XItem {
    Req(Packet<Request>),
    Resp(Packet<Response>),
}

/// A bandwidth/latency model of the uniform network between Cells.
///
/// In silicon the Ruche network extends seamlessly across Cell boundaries;
/// in this simulator each Cell's network is modelled standalone (following
/// the paper's own multi-Cell methodology), and cross-Cell packets ride
/// this fabric: fixed per-hop latency plus a per-Cell per-cycle word budget
/// equal to the Cell-boundary link count.
#[derive(Debug)]
struct Fabric {
    latency: u64,
    words_per_cycle: usize,
    in_flight: VecDeque<(u64, u8, XItem)>,
}

impl Fabric {
    fn new(cfg: &MachineConfig) -> Fabric {
        // Eastward + westward crossings per boundary row, mesh + Ruche.
        let per_row = if cfg.ruche_factor > 0 {
            1 + cfg.ruche_factor as usize
        } else {
            1
        };
        Fabric {
            latency: u64::from(cfg.cell_dim.x),
            words_per_cycle: 2 * per_row * cfg.cell_dim.y as usize,
            in_flight: VecDeque::new(),
        }
    }
}

/// The complete simulated machine. See the crate docs for a walkthrough.
#[derive(Debug)]
pub struct Machine {
    cfg: Arc<MachineConfig>,
    cells: Vec<Cell>,
    fabric: Fabric,
    cycle: u64,
    /// Attached telemetry sink, if any (see [`crate::observe`]).
    observer: Option<Box<dyn crate::observe::MachineObserver>>,
    /// Next cycle at which the observer fires; `u64::MAX` when detached,
    /// so the unobserved hot loop pays exactly one always-false branch.
    obs_due: u64,
    /// Machine-level injections (everything but NoC link faults, which arm
    /// inside the networks), sorted by cycle.
    fault_plan: Vec<Injection>,
    /// Index of the next undelivered entry in `fault_plan`.
    fault_cursor: usize,
    /// Cycle of the next injection; `u64::MAX` with no plan installed, so
    /// the zero-injection hot loop pays exactly one always-false branch
    /// (the same pattern as `obs_due`).
    fault_due: u64,
    /// Dynamic race sanitizer shadow map (see [`crate::race`]); `None`
    /// unless [`MachineConfig::race_check`] (or
    /// [`Machine::set_race_check`]) turned checking on, so the unchecked
    /// hot loop pays exactly one always-false branch (the same pattern as
    /// `obs_due`/`fault_due`).
    race: Option<Box<crate::race::RaceChecker>>,
    /// Periodic auto-checkpoint sink plus its interval, if installed (see
    /// [`Machine::set_auto_checkpoint`]).
    ckpt_sink: Option<CkptSinkSlot>,
    /// Next cycle the auto-checkpoint sink fires; `u64::MAX` when none is
    /// installed, so the uncheckpointed hot loop pays exactly one
    /// always-false branch (the same pattern as `obs_due`/`fault_due`).
    ckpt_due: u64,
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// If [`MachineConfig::threads`] is greater than one, a single
    /// [`TilePool`](crate::parallel::TilePool) is created and shared by all
    /// Cells; the tile phase of each cycle then runs across that pool. The
    /// simulated results are bit-identical either way (see
    /// `crates/core/src/parallel.rs`).
    pub fn new(cfg: MachineConfig) -> Machine {
        cfg.validate_or_panic();
        let cfg = Arc::new(cfg);
        let mut cells: Vec<Cell> = (0..cfg.num_cells)
            .map(|i| Cell::new(cfg.clone(), i))
            .collect();
        if cfg.threads > 1 {
            let pool = Arc::new(crate::parallel::TilePool::new(cfg.threads));
            for cell in &mut cells {
                cell.set_pool(pool.clone());
            }
        }
        let fabric = Fabric::new(&cfg);
        let mut machine = Machine {
            cfg,
            cells,
            fabric,
            cycle: 0,
            observer: None,
            obs_due: u64::MAX,
            fault_plan: Vec::new(),
            fault_cursor: 0,
            fault_due: u64::MAX,
            race: None,
            ckpt_sink: None,
            ckpt_due: u64::MAX,
        };
        if machine.cfg.race_check {
            machine.set_race_check(true);
        }
        if let Some(obs) = crate::observe::make_observer(&machine.cfg) {
            machine.attach_observer(obs);
        }
        machine
    }

    /// Turns the dynamic race sanitizer on or off (see [`crate::race`]).
    /// Turning it off discards all shadow state and accumulated reports.
    pub fn set_race_check(&mut self, on: bool) {
        for cell in &mut self.cells {
            cell.set_race_check(on);
        }
        self.race = if on {
            Some(Box::new(crate::race::RaceChecker::new()))
        } else {
            None
        };
    }

    /// Whether the dynamic race sanitizer is on.
    pub fn is_race_checked(&self) -> bool {
        self.race.is_some()
    }

    /// Race reports accumulated so far (pending tile logs are drained
    /// first). Empty when the sanitizer is off.
    pub fn race_reports(&mut self) -> &[crate::race::RaceReport] {
        self.drain_races();
        self.race.as_ref().map_or(&[][..], |r| r.reports())
    }

    /// Renders every accumulated race report, one string per report, with
    /// both PCs disassembled against the involved tiles' loaded programs.
    pub fn render_races(&mut self) -> Vec<String> {
        self.drain_races();
        let Some(race) = self.race.take() else {
            return Vec::new();
        };
        let out = race
            .reports()
            .iter()
            .map(|r| {
                r.render(|tile, pc| {
                    self.cells[usize::from(tile.0)]
                        .tile(tile.1, tile.2)
                        .disasm_at(pc)
                })
            })
            .collect();
        self.race = Some(race);
        out
    }

    /// Out-of-line race-log drain, so the unchecked [`Machine::tick`] only
    /// pays the `race.is_some()` comparison. New reports additionally land
    /// as [`ObsKind::Race`](crate::observe::ObsKind) instant events on the
    /// second-accessing tile when telemetry is attached.
    #[cold]
    fn drain_races(&mut self) {
        let Some(mut race) = self.race.take() else {
            return;
        };
        let before = race.reports().len();
        for cell in &mut self.cells {
            cell.drain_race_logs(&mut race);
        }
        for i in before..race.reports().len() {
            let r = race.reports()[i];
            self.cells[usize::from(r.b.tile.0)]
                .tile_mut(r.b.tile.1, r.b.tile.2)
                .push_obs(r.b.cycle, crate::observe::ObsKind::Race);
        }
        self.race = Some(race);
    }

    /// Attaches a telemetry observer: it will be sampled whenever the
    /// machine cycle reaches its [`next_due`](crate::observe::MachineObserver::next_due),
    /// and finished (final partial window) on detach or drop. Tiles start
    /// recording instant events (marks, barrier joins, fence retires,
    /// faults). Replaces any previously attached observer without
    /// finishing it.
    pub fn attach_observer(&mut self, obs: Box<dyn crate::observe::MachineObserver>) {
        self.obs_due = obs.next_due();
        for cell in &mut self.cells {
            cell.set_observed(true);
        }
        self.observer = Some(obs);
    }

    /// Detaches the observer after flushing its final partial window.
    pub fn detach_observer(&mut self) -> Option<Box<dyn crate::observe::MachineObserver>> {
        let mut obs = self.observer.take()?;
        obs.finish(self);
        self.obs_due = u64::MAX;
        for cell in &mut self.cells {
            cell.set_observed(false);
        }
        Some(obs)
    }

    /// Whether a telemetry observer is attached.
    pub fn is_observed(&self) -> bool {
        self.observer.is_some()
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of Cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Cell accessor.
    pub fn cell(&self, id: u8) -> &Cell {
        &self.cells[id as usize]
    }

    /// Mutable Cell accessor.
    pub fn cell_mut(&mut self, id: u8) -> &mut Cell {
        &mut self.cells[id as usize]
    }

    /// Current core cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// All Cells, mutably (functional fast-forward borrows every DRAM).
    pub(crate) fn cells_mut(&mut self) -> &mut [Cell] {
        &mut self.cells
    }

    /// Enables execution tracing: installs a shared ring buffer holding the
    /// most recent `capacity` events across all tiles and returns the
    /// handle for rendering (most useful after a fault).
    pub fn enable_tracing(&mut self, capacity: usize) -> crate::trace::TraceHandle {
        let handle = crate::trace::TraceBuffer::new(capacity);
        for cell in &mut self.cells {
            cell.set_trace(handle.clone());
        }
        handle
    }

    /// Resolves a Global-DRAM offset to its home `(cell, cell-local
    /// address)` using the chip-wide hash — the host-side counterpart of a
    /// tile's Global-DRAM access.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the 30-bit Global-DRAM window.
    pub fn global_location(&self, offset: u32) -> (u8, u32) {
        assert!(offset < (1 << 30), "global offset exceeds the EVA window");
        match self.cells[0]
            .pgas()
            .translate(crate::pgas::global_dram(offset))
        {
            Ok(crate::pgas::Target::Bank { cell, addr, .. }) => (cell, addr),
            other => unreachable!("global EVA translated to {other:?}"),
        }
    }

    /// Host write of a word into Global-DRAM space.
    pub fn global_write_u32(&mut self, offset: u32, value: u32) {
        let (cell, addr) = self.global_location(offset);
        self.cells[cell as usize].dram_mut().write_u32(addr, value);
    }

    /// Host read of a word from Global-DRAM space (flush caches first if a
    /// kernel wrote it).
    pub fn global_read_u32(&self, offset: u32) -> u32 {
        let (cell, addr) = self.global_location(offset);
        self.cells[cell as usize].dram().read_u32(addr)
    }

    /// Flushes every Cell's caches (host-side result readback).
    pub fn flush_all_caches(&mut self) {
        for cell in &mut self.cells {
            cell.flush_caches();
        }
    }

    /// Convenience: launch on every tile of Cell `cell`.
    pub fn launch(&mut self, cell: u8, program: &Arc<Program>, args: &[u32]) {
        self.reset_race_epochs();
        self.cells[cell as usize].launch(program, args);
    }

    /// Convenience: launch tile groups on Cell `cell`.
    pub fn launch_groups(
        &mut self,
        cell: u8,
        program: &Arc<Program>,
        groups: &[(GroupSpec, Vec<u32>)],
    ) {
        self.reset_race_epochs();
        self.cells[cell as usize].launch_groups(program, groups);
    }

    /// A host launch is a synchronization point: drain what the previous
    /// kernel logged, then clear the shadow state (epochs, histories) so
    /// accesses of different launches never pair up. Reports accumulate.
    fn reset_race_epochs(&mut self) {
        if self.race.is_some() {
            self.drain_races();
            if let Some(r) = &mut self.race {
                r.reset();
            }
        }
    }

    /// Installs a fault-injection plan (see [`hb_fault`]). NoC link faults
    /// arm directly inside the target Cell's networks; every other site
    /// lands through a machine-level due list checked once per cycle, in
    /// the sequential part of the cycle — injection order is therefore
    /// deterministic and independent of the tile-phase thread count.
    /// Replaces any previously installed plan.
    pub fn set_injection_plan(&mut self, plan: &hb_fault::InjectionPlan) {
        let mut rest = Vec::new();
        for inj in &plan.injections {
            if let Site::NocLink {
                cell,
                x,
                y,
                port,
                req,
            } = inj.site
            {
                let c = usize::from(cell) % self.cells.len();
                let at = Coord::new(x % self.cfg.net_width(), y % self.cfg.net_height());
                let port = Port::from_index(usize::from(port) % Port::COUNT);
                self.cells[c].schedule_link_fault(req, inj.cycle, at, port);
            } else {
                rest.push(*inj);
            }
        }
        rest.sort_by_key(|i| i.cycle);
        self.fault_due = rest.first().map_or(u64::MAX, |i| i.cycle);
        self.fault_plan = rest;
        self.fault_cursor = 0;
    }

    /// Advances the machine one core cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
        for cell in &mut self.cells {
            cell.tick();
        }
        self.tick_fabric();
        if self.cycle >= self.fault_due {
            self.inject_due();
        }
        if self.cycle >= self.obs_due {
            self.observe();
        }
        if self.race.is_some() {
            self.drain_races();
        }
        if self.cycle >= self.ckpt_due {
            self.auto_checkpoint();
        }
    }

    /// Installs a periodic checkpoint sink: `sink` is called at the end of
    /// every `every`-th machine cycle (after all Cell phases, the fabric,
    /// injections and observation — the same quiescent point
    /// [`Machine::save_checkpoint`] requires). The hot loop pays exactly
    /// one `cycle >= ckpt_due` branch when no sink is installed. Replaces
    /// any previous sink.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn set_auto_checkpoint(
        &mut self,
        every: u64,
        sink: impl FnMut(&mut Machine) + Send + 'static,
    ) {
        assert!(every > 0, "auto-checkpoint interval must be at least 1");
        self.ckpt_due = self.cycle + every;
        self.ckpt_sink = Some(CkptSinkSlot {
            every,
            sink: Box::new(sink),
        });
    }

    /// Removes the periodic checkpoint sink, if any.
    pub fn clear_auto_checkpoint(&mut self) {
        self.ckpt_sink = None;
        self.ckpt_due = u64::MAX;
    }

    /// Out-of-line auto-checkpoint dispatch, so the uncheckpointed
    /// [`Machine::tick`] only pays the `ckpt_due` comparison. The sink is
    /// detached while it runs (it receives the machine and may serialize
    /// it), mirroring the observer discipline.
    #[cold]
    fn auto_checkpoint(&mut self) {
        let Some(mut slot) = self.ckpt_sink.take() else {
            self.ckpt_due = u64::MAX;
            return;
        };
        (slot.sink)(self);
        // A sink may replace itself via set_auto_checkpoint; only rearm if
        // it did not.
        if self.ckpt_sink.is_none() {
            self.ckpt_due = self.cycle + slot.every;
            self.ckpt_sink = Some(slot);
        }
    }

    /// Serializes the complete simulated state — every Cell, the inter-Cell
    /// fabric's in-flight items, the cycle counter, the remaining fault
    /// plan with its cursor, and (if an observer is attached and supports
    /// it) the observer's in-progress window — as one deterministic byte
    /// payload. The same machine state always encodes to the same bytes,
    /// so the checkpoint layer can content-hash snapshots.
    ///
    /// Host-side scaffolding is deliberately not serialized: the thread
    /// pool, trace ring, race sanitizer (its per-cycle logs are drained
    /// every tick, so they are empty here) and the auto-checkpoint sink are
    /// all re-established by the host after restore. Call this only at the
    /// end-of-cycle quiescent point (between `tick`s, or from an
    /// auto-checkpoint sink, which runs there).
    pub fn save_checkpoint(&self) -> Vec<u8> {
        let mut w = hb_mem::SnapWriter::new();
        w.tag(b"MACH");
        w.u64(self.cycle);
        w.usize(self.cells.len());
        for cell in &self.cells {
            cell.snap_save(&mut w);
        }
        w.usize(self.fabric.in_flight.len());
        for (due, dst, item) in &self.fabric.in_flight {
            w.u64(*due);
            w.u8(*dst);
            match item {
                XItem::Req(pkt) => {
                    w.u8(0);
                    crate::payload::snap_save_req_packet(&mut w, pkt);
                }
                XItem::Resp(pkt) => {
                    w.u8(1);
                    crate::payload::snap_save_resp_packet(&mut w, pkt);
                }
            }
        }
        w.usize(self.fault_plan.len());
        for inj in &self.fault_plan {
            snap_save_injection(&mut w, inj);
        }
        w.usize(self.fault_cursor);
        w.u64(self.fault_due);
        let obs_blob = self.observer.as_ref().and_then(|o| o.snapshot());
        if w.opt(obs_blob.is_some()) {
            w.bytes(&obs_blob.unwrap());
        }
        w.into_bytes()
    }

    /// Restores state captured by [`Machine::save_checkpoint`] into this
    /// machine. The machine must have been built from the *same*
    /// configuration (the checkpoint layer verifies that before calling
    /// here; this method additionally validates all geometry it decodes).
    /// If the payload carries an observer blob and an observer is attached,
    /// its window state is restored too, so the continued run's telemetry
    /// is identical to the uninterrupted run's.
    ///
    /// On error the machine may be partially overwritten and must be
    /// discarded; nothing panics.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation, layout mismatch or any
    /// geometry/config disagreement.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), hb_mem::SnapError> {
        use hb_mem::SnapError;
        let mut r = hb_mem::SnapReader::new(bytes);
        r.expect_tag(b"MACH", "Machine section")?;
        self.cycle = r.u64()?;
        if r.usize()? != self.cells.len() {
            return Err(SnapError::Bad("Cell count mismatch"));
        }
        for cell in &mut self.cells {
            cell.snap_load(&mut r)?;
        }
        self.fabric.in_flight.clear();
        for _ in 0..r.seq_len()? {
            let due = r.u64()?;
            let dst = r.u8()?;
            if usize::from(dst) >= self.cells.len() {
                return Err(SnapError::Bad("fabric destination out of range"));
            }
            let item = match r.u8()? {
                0 => XItem::Req(crate::payload::snap_load_req_packet(&mut r)?),
                1 => XItem::Resp(crate::payload::snap_load_resp_packet(&mut r)?),
                _ => return Err(SnapError::Bad("unknown fabric item tag")),
            };
            self.fabric.in_flight.push_back((due, dst, item));
        }
        self.fault_plan.clear();
        for _ in 0..r.seq_len()? {
            self.fault_plan.push(snap_load_injection(&mut r)?);
        }
        self.fault_cursor = r.usize()?;
        if self.fault_cursor > self.fault_plan.len() {
            return Err(SnapError::Bad("fault cursor out of range"));
        }
        self.fault_due = r.u64()?;
        if r.opt()? {
            let blob = r.bytes()?;
            if let Some(obs) = &mut self.observer {
                obs.restore(&blob)?;
            }
        }
        r.finish()?;
        // The observer (re-)attached by the host decides its own next due
        // cycle from the restored window state.
        if let Some(obs) = &self.observer {
            self.obs_due = obs.next_due();
        }
        Ok(())
    }

    /// Out-of-line injection dispatch: delivers every plan entry due at or
    /// before the current cycle. Runs after the Cells' phases and the
    /// fabric, so the flipped state is what the *next* cycle observes —
    /// the same point in the cycle for every thread count.
    #[cold]
    fn inject_due(&mut self) {
        while let Some(&inj) = self.fault_plan.get(self.fault_cursor) {
            if inj.cycle > self.cycle {
                break;
            }
            self.fault_cursor += 1;
            self.apply_injection(&inj);
        }
        self.fault_due = self
            .fault_plan
            .get(self.fault_cursor)
            .map_or(u64::MAX, |i| i.cycle);
    }

    /// Lands one injection. Out-of-range coordinates wrap rather than
    /// panic, so randomly drawn plans are always applicable.
    fn apply_injection(&mut self, inj: &Injection) {
        let cycle = self.cycle;
        let (w, h) = (self.cfg.cell_dim.x, self.cfg.cell_dim.y);
        let ncells = self.cells.len();
        match inj.site {
            Site::RegFile {
                cell,
                x,
                y,
                reg,
                bit,
            } => {
                self.cells[usize::from(cell) % ncells]
                    .tile_mut(x % w, y % h)
                    .inject_reg_flip(reg, bit, cycle);
            }
            Site::Spm {
                cell,
                x,
                y,
                word,
                bit,
            } => {
                self.cells[usize::from(cell) % ncells]
                    .tile_mut(x % w, y % h)
                    .inject_spm_flip(word, bit, cycle);
            }
            Site::IcacheLine { cell, x, y, line } => {
                self.cells[usize::from(cell) % ncells]
                    .tile_mut(x % w, y % h)
                    .inject_icache_invalidate(line, cycle);
            }
            Site::HbmStall { cell, window } => {
                self.cells[usize::from(cell) % ncells].inject_hbm_stall(u64::from(window), cycle);
            }
            Site::TileFreeze { cell, x, y, cycles } => {
                self.cells[usize::from(cell) % ncells]
                    .tile_mut(x % w, y % h)
                    .freeze(cycles, cycle);
            }
            // Link faults were partitioned out in `set_injection_plan`.
            Site::NocLink { .. } => unreachable!("link faults arm inside the networks"),
        }
    }

    /// Out-of-line observer dispatch, so the unobserved [`Machine::tick`]
    /// only pays the `obs_due` comparison.
    #[cold]
    fn observe(&mut self) {
        let Some(mut obs) = self.observer.take() else {
            self.obs_due = u64::MAX;
            return;
        };
        obs.sample(self);
        self.obs_due = obs.next_due();
        self.observer = Some(obs);
    }

    /// Advances one core cycle while accumulating per-phase wall-clock time
    /// into `acc` (fabric time is accounted to the network phase). Used by
    /// the `sim_throughput` bench to measure the tile phase's share of a
    /// cycle — the Amdahl bound on tile-phase parallel scaling.
    pub fn tick_profiled(&mut self, acc: &mut crate::parallel::PhaseTimes) {
        self.cycle += 1;
        for cell in &mut self.cells {
            cell.tick_profiled(acc);
        }
        let t0 = std::time::Instant::now();
        self.tick_fabric();
        acc.network += t0.elapsed();
        if self.cycle >= self.fault_due {
            self.inject_due();
        }
        if self.cycle >= self.obs_due {
            self.observe();
        }
        if self.race.is_some() {
            self.drain_races();
        }
        if self.cycle >= self.ckpt_due {
            self.auto_checkpoint();
        }
    }

    /// Fabric: collect outbound traffic (budgeted) and deliver due items.
    fn tick_fabric(&mut self) {
        for ci in 0..self.cells.len() {
            let mut budget = self.fabric.words_per_cycle;
            while budget > 0 {
                if let Some((dst, pkt)) = self.cells[ci].xreq_out.pop_front() {
                    self.fabric.in_flight.push_back((
                        self.cycle + self.fabric.latency,
                        dst,
                        XItem::Req(pkt),
                    ));
                    budget -= 1;
                    continue;
                }
                if let Some((dst, pkt)) = self.cells[ci].xresp_out.pop_front() {
                    self.fabric.in_flight.push_back((
                        self.cycle + self.fabric.latency,
                        dst,
                        XItem::Resp(pkt),
                    ));
                    budget -= 1;
                    continue;
                }
                break;
            }
        }
        while let Some(&(due, dst, _)) = self.fabric.in_flight.front() {
            if due > self.cycle {
                break;
            }
            let (_, _, item) = self.fabric.in_flight.pop_front().unwrap();
            match item {
                XItem::Req(pkt) => self.cells[dst as usize].deliver_remote_request(pkt),
                XItem::Resp(pkt) => self.cells[dst as usize].deliver_remote_response(pkt),
            }
        }
    }

    /// Whether every Cell's active tiles have finished.
    pub fn all_done(&self) -> bool {
        self.cells.iter().all(Cell::all_done)
    }

    /// Runs until every active tile finishes.
    ///
    /// # Errors
    ///
    /// [`SimError::Fault`] if any tile traps; [`SimError::Timeout`] if the
    /// kernel does not finish within `max_cycles`. Fault detection takes
    /// precedence: a kernel that traps on the final cycle of its budget (or
    /// whose trap stops its tile so the rest "finish") reports the fault,
    /// never a timeout or a bogus success. A timeout carries the progress
    /// watchdog's [`HangReport`] classifying *why* the run never finished.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        let start = self.cycle;
        let wd_window = self.cfg.watchdog_window;
        let mut wd_sig = self.progress_signature();
        let mut wd_progress_cycle = self.cycle;
        let mut wd_next = self.cycle + wd_window;
        loop {
            if let Some(info) = self.cells.iter().find_map(Cell::fault) {
                return Err(SimError::Fault(Box::new(info)));
            }
            if self.all_done() {
                let mut core = CoreStats::default();
                for cell in &self.cells {
                    core += cell.core_stats();
                }
                return Ok(RunSummary {
                    cycles: self.cycle - start,
                    core,
                });
            }
            if self.cycle - start >= max_cycles {
                let running_tiles = self.cells.iter().map(Cell::running_tiles).sum();
                let sig = self.progress_signature();
                if sig != wd_sig {
                    wd_progress_cycle = self.cycle;
                }
                let hang = self.classify_hang(wd_progress_cycle, sig.0.saturating_sub(wd_sig.0));
                return Err(SimError::Timeout {
                    cycles: self.cycle - start,
                    running_tiles,
                    hang: Some(Box::new(hang)),
                });
            }
            if self.cycle >= wd_next {
                let sig = self.progress_signature();
                if sig != wd_sig {
                    wd_progress_cycle = self.cycle;
                    wd_sig = sig;
                }
                wd_next = self.cycle + wd_window;
            }
            self.tick();
        }
    }

    /// A cheap forward-progress fingerprint: total retired instructions,
    /// total packets delivered by the Cell NoCs, and event-scheduler wake
    /// re-arms. The re-arm count keeps a legitimately all-parked machine —
    /// e.g. every tile asleep across an injected HBM stall window while
    /// deliveries keep re-arming them — from reading as zero progress and
    /// being misclassified as a livelock.
    fn progress_signature(&self) -> (u64, u64, u64) {
        let instrs = self.cells.iter().map(|c| c.core_stats().instrs).sum();
        let ejected = self.cells.iter().map(Cell::net_ejected).sum();
        let rearms = self.cells.iter().map(Cell::sched_rearms).sum();
        (instrs, ejected, rearms)
    }

    /// Tile-phase tick counts over all Cells since launch:
    /// `(stepped, skipped)`, where `skipped` counts tile-cycles the event
    /// scheduler elided (always 0 under the dense schedule).
    pub fn tile_ticks(&self) -> (u64, u64) {
        self.cells.iter().fold((0, 0), |(s, k), c| {
            let (cs, ck) = c.tile_ticks();
            (s + cs, k + ck)
        })
    }

    /// Folds the guest-code profile of every profiled tile, machine-wide
    /// (see [`crate::gprof`]): Cells in id order, tiles row-major, with
    /// the stall debt of still-parked tiles added virtually at their
    /// parking PC. Read-only and safe at any point of a run; `None` when
    /// [`MachineConfig::profile`] is off or nothing has launched. Out of
    /// the hot path — profiling costs the simulation loop nothing beyond
    /// the tiles' own one-branch record sites.
    #[cold]
    pub fn guest_profile(&self) -> Option<crate::gprof::GuestProfile> {
        let mut gp = None;
        for cell in &self.cells {
            cell.fold_guest_profile(&mut gp);
        }
        gp
    }

    /// The program launched on `cell`'s tiles, if any (profiling consumers
    /// map histogram indices back onto instructions with it).
    pub fn launched_program(&self, cell: u8) -> Option<Arc<Program>> {
        let c = &self.cells[cell as usize];
        let (w, h) = (self.cfg.cell_dim.x, self.cfg.cell_dim.y);
        (0..h)
            .flat_map(|y| (0..w).map(move |x| (x, y)))
            .find_map(|(x, y)| c.tile(x, y).program().cloned())
    }

    /// Classifies a hang at timeout. Precedence: tiles parked in a barrier
    /// dominate (they explain every downstream symptom), then a leaked
    /// scoreboard with drained networks, then packets stuck inside a NoC;
    /// anything else — including tiles frozen by injection — is a livelock.
    fn classify_hang(&self, last_progress_cycle: u64, recent_instrs: u64) -> HangReport {
        let (w, h) = (self.cfg.cell_dim.x, self.cfg.cell_dim.y);
        let mut waiting = Vec::new();
        for (ci, cell) in self.cells.iter().enumerate() {
            for y in 0..h {
                for x in 0..w {
                    if cell.tile(x, y).barrier_waiting {
                        waiting.push((ci, x, y));
                    }
                }
            }
        }
        let class = if waiting.is_empty() {
            let req: u64 = self.cells.iter().map(Cell::req_in_flight).sum();
            let resp: u64 = self.cells.iter().map(Cell::resp_in_flight).sum();
            let mut leaks = Vec::new();
            let mut frozen = Vec::new();
            for (ci, cell) in self.cells.iter().enumerate() {
                for y in 0..h {
                    for x in 0..w {
                        let t = cell.tile(x, y);
                        if !t.is_finished() && t.outstanding() > 0 {
                            leaks.push((ci, x, y, t.outstanding()));
                        }
                        if t.is_frozen() {
                            frozen.push((ci, x, y));
                        }
                    }
                }
            }
            if req == 0 && resp == 0 && !leaks.is_empty() {
                HangClass::ScoreboardLeak { tiles: leaks }
            } else if req + resp > 0 {
                HangClass::NocBackpressure {
                    req_in_flight: req,
                    resp_in_flight: resp,
                }
            } else {
                HangClass::Livelock {
                    recent_instrs,
                    frozen,
                }
            }
        } else {
            // The waiters' unfinished group members that never joined are
            // who everyone is waiting for.
            let mut missing = Vec::new();
            for &(ci, wx, wy) in &waiting {
                let g = self.cells[ci].tile(wx, wy).group();
                for y in g.origin.1..g.origin.1 + g.dim.1 {
                    for x in g.origin.0..g.origin.0 + g.dim.0 {
                        let t = self.cells[ci].tile(x, y);
                        let m = (ci, x, y);
                        if !t.is_finished() && !t.barrier_waiting && !missing.contains(&m) {
                            missing.push(m);
                        }
                    }
                }
            }
            HangClass::BarrierStall { waiting, missing }
        };
        HangReport {
            class,
            last_progress_cycle,
        }
    }
}

/// Serializes one pending fault-plan entry. `NocLink` never appears in
/// `Machine::fault_plan` (link faults were partitioned into the networks by
/// `set_injection_plan` and travel with the `Network` snapshots), but the
/// codec still covers it so the format is total over [`Site`].
fn snap_save_injection(w: &mut hb_mem::SnapWriter, inj: &Injection) {
    w.u64(inj.cycle);
    match inj.site {
        Site::RegFile {
            cell,
            x,
            y,
            reg,
            bit,
        } => {
            w.u8(0);
            w.u8(cell);
            w.u8(x);
            w.u8(y);
            w.u8(reg);
            w.u8(bit);
        }
        Site::Spm {
            cell,
            x,
            y,
            word,
            bit,
        } => {
            w.u8(1);
            w.u8(cell);
            w.u8(x);
            w.u8(y);
            w.u16(word);
            w.u8(bit);
        }
        Site::IcacheLine { cell, x, y, line } => {
            w.u8(2);
            w.u8(cell);
            w.u8(x);
            w.u8(y);
            w.u16(line);
        }
        Site::NocLink {
            cell,
            x,
            y,
            port,
            req,
        } => {
            w.u8(3);
            w.u8(cell);
            w.u8(x);
            w.u8(y);
            w.u8(port);
            w.bool(req);
        }
        Site::HbmStall { cell, window } => {
            w.u8(4);
            w.u8(cell);
            w.u16(window);
        }
        Site::TileFreeze { cell, x, y, cycles } => {
            w.u8(5);
            w.u8(cell);
            w.u8(x);
            w.u8(y);
            w.u64(cycles);
        }
    }
}

/// Decodes one entry written by [`snap_save_injection`].
fn snap_load_injection(r: &mut hb_mem::SnapReader) -> Result<Injection, hb_mem::SnapError> {
    let cycle = r.u64()?;
    let site = match r.u8()? {
        0 => Site::RegFile {
            cell: r.u8()?,
            x: r.u8()?,
            y: r.u8()?,
            reg: r.u8()?,
            bit: r.u8()?,
        },
        1 => Site::Spm {
            cell: r.u8()?,
            x: r.u8()?,
            y: r.u8()?,
            word: r.u16()?,
            bit: r.u8()?,
        },
        2 => Site::IcacheLine {
            cell: r.u8()?,
            x: r.u8()?,
            y: r.u8()?,
            line: r.u16()?,
        },
        3 => Site::NocLink {
            cell: r.u8()?,
            x: r.u8()?,
            y: r.u8()?,
            port: r.u8()?,
            req: r.bool()?,
        },
        4 => Site::HbmStall {
            cell: r.u8()?,
            window: r.u16()?,
        },
        5 => Site::TileFreeze {
            cell: r.u8()?,
            x: r.u8()?,
            y: r.u8()?,
            cycles: r.u64()?,
        },
        _ => return Err(hb_mem::SnapError::Bad("unknown injection site tag")),
    };
    Ok(Injection { cycle, site })
}

impl Drop for Machine {
    /// Flushes the observer's final partial window: benchmark harnesses
    /// build and drop machines internally, and the telemetry store (shared
    /// out-of-band) must still see the tail of the run. Likewise, when a
    /// [`collect_races`](crate::race::collect_races) sink is installed on
    /// this thread, accumulated race reports are pushed there so harnesses
    /// that never see the machine can still observe them.
    fn drop(&mut self) {
        if self.observer.is_some() {
            self.detach_observer();
        }
        if self.race.is_some() && crate::race::sink_active() {
            let rendered = self.render_races();
            let reports = self.race_reports().to_vec();
            crate::race::sink_push(reports.into_iter().zip(rendered).collect());
        }
    }
}
