//! Randomized tests on the network (seeded via `hb_rng`): conservation, in-order pairwise
//! delivery, and correct destinations under arbitrary random traffic, for
//! both routing orders, with and without Ruche links and with narrow
//! links.

use hb_noc::{Coord, Network, NetworkConfig, Packet, RouteOrder};
use hb_rng::Rng;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Flow {
    src: Coord,
    dst: Coord,
}

fn any_flow(rng: &mut Rng, w: u8, h: u8) -> Flow {
    Flow {
        src: Coord::new(
            rng.range_u32(0, w.into()) as u8,
            rng.range_u32(0, h.into()) as u8,
        ),
        dst: Coord::new(
            rng.range_u32(0, w.into()) as u8,
            rng.range_u32(0, h.into()) as u8,
        ),
    }
}

fn flow_vec(rng: &mut Rng, w: u8, h: u8, max_len: usize) -> Vec<Flow> {
    let len = 1 + rng.index(max_len - 1);
    (0..len).map(|_| any_flow(rng, w, h)).collect()
}

fn run_traffic(cfg: NetworkConfig, flows: &[Flow]) {
    let mut net: Network<u64> = Network::new(cfg);
    let (w, h) = (cfg.width, cfg.height);
    let mut expected: HashMap<u64, Coord> = HashMap::new();
    let mut next_per_pair: HashMap<(Coord, Coord), u64> = HashMap::new();
    let mut queue: Vec<(Flow, u64)> = Vec::new();
    for (id, &f) in (0u64..).zip(flows) {
        queue.push((f, id));
        expected.insert(id, f.dst);
    }
    let mut qi = 0;
    for _ in 0..50_000 {
        // Inject in order (per source) as capacity allows.
        while qi < queue.len() {
            let (f, pid) = queue[qi];
            if net.inject(
                f.src,
                Packet {
                    src: f.src,
                    dst: f.dst,
                    payload: pid,
                },
            ) {
                qi += 1;
            } else {
                break;
            }
        }
        net.tick();
        for y in 0..h {
            for x in 0..w {
                let here = Coord::new(x, y);
                while let Some(p) = net.eject(here) {
                    let want = expected.remove(&p.payload).expect("duplicate delivery");
                    assert_eq!(want, here, "packet {} misrouted", p.payload);
                    // Same-(src,dst) packets must arrive in injection order
                    // (single-path dimension-ordered routing guarantees it).
                    let next = next_per_pair.entry((p.src, here)).or_insert(0);
                    assert!(
                        p.payload >= *next,
                        "pairwise order violated: got {} after {}",
                        p.payload,
                        *next
                    );
                    *next = p.payload + 1;
                }
            }
        }
        if expected.is_empty() && qi == queue.len() {
            assert!(net.is_drained(), "network retains phantom packets");
            return;
        }
    }
    panic!("{} packets undelivered", expected.len());
}

#[test]
fn mesh_xy_delivers_everything() {
    let mut rng = Rng::seed_from_u64(0x40C_0001);
    for _ in 0..24 {
        let flows = flow_vec(&mut rng, 6, 5, 150);
        run_traffic(
            NetworkConfig {
                width: 6,
                height: 5,
                ruche_factor: 0,
                order: RouteOrder::XThenY,
                fifo_depth: 2,
                link_occupancy: 1,
            },
            &flows,
        );
    }
}

#[test]
fn ruche_yx_delivers_everything() {
    let mut rng = Rng::seed_from_u64(0x40C_0002);
    for _ in 0..24 {
        let flows = flow_vec(&mut rng, 9, 4, 150);
        run_traffic(
            NetworkConfig {
                width: 9,
                height: 4,
                ruche_factor: 3,
                order: RouteOrder::YThenX,
                fifo_depth: 2,
                link_occupancy: 1,
            },
            &flows,
        );
    }
}

#[test]
fn narrow_links_deliver_everything() {
    let mut rng = Rng::seed_from_u64(0x40C_0003);
    for _ in 0..24 {
        let flows = flow_vec(&mut rng, 5, 5, 100);
        run_traffic(
            NetworkConfig {
                width: 5,
                height: 5,
                ruche_factor: 3,
                order: RouteOrder::XThenY,
                fifo_depth: 1,
                link_occupancy: 3,
            },
            &flows,
        );
    }
}
