//! SGEMM — dense single-precision matrix multiply (dense LA dwarf).
//!
//! Each tile computes a rank-strided set of C rows. The inner loop streams
//! the A row (sequential loads) and 4-wide column blocks of B rows
//! (sequential loads that Load Packet Compression merges), accumulating
//! with `fmadd.s`.

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::prologue;
use hb_asm::{Assembler, Program};
use hb_core::{pgas, Machine, MachineConfig, SimError};
use hb_isa::{Fpr::*, Gpr::*};
use hb_workloads::{gen, golden};
use std::sync::Arc;

/// The SGEMM benchmark: `C(MxN) = A(MxK) * B(KxN)`.
#[derive(Debug, Clone)]
pub struct Sgemm {
    /// Rows of A/C.
    pub m: u32,
    /// Inner dimension.
    pub k: u32,
    /// Columns of B/C (multiple of 4).
    pub n: u32,
    /// SPM-blocked variant: tiles copy 8x16 / 16x8 operand blocks into
    /// their scratchpads with large sequential loads, compute the 8x8
    /// output block entirely in SPM, then dump it — the paper's
    /// "load blocks, compute long, dump results" pattern for the
    /// compute-intensive sequential-access category.
    pub blocked: bool,
}

impl Default for Sgemm {
    fn default() -> Sgemm {
        Sgemm {
            m: 32,
            k: 32,
            n: 32,
            blocked: false,
        }
    }
}

impl Sgemm {
    /// The SPM-blocked variant (requires M, N multiples of 8 and K a
    /// multiple of 16).
    pub fn blocked() -> Sgemm {
        Sgemm {
            m: 32,
            k: 32,
            n: 32,
            blocked: true,
        }
    }

    fn sized(&self, size: SizeClass) -> Sgemm {
        match size {
            SizeClass::Tiny => Sgemm {
                m: 8,
                k: 16,
                n: 8,
                ..self.clone()
            },
            SizeClass::Small => self.clone(),
            SizeClass::Large => Sgemm {
                m: 64,
                k: 64,
                n: 64,
                ..self.clone()
            },
        }
    }

    /// Builds the kernel program.
    ///
    /// Arguments: `a0`=A, `a1`=B, `a2`=C (EVAs), `a3`=M, `a4`=K, `a5`=N.
    pub fn program() -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);
        // S9 = N*4 (B row stride in bytes), S8 = K*4.
        a.slli(S9, A5, 2);
        a.slli(S8, A4, 2);

        a.mv(S0, S10); // i = rank
        let row_loop = a.new_label();
        let done = a.new_label();
        a.bind(row_loop);
        a.bge(S0, A3, done);

        // T0 = &A[i*K], T3 = &C[i*N]
        a.mul(T0, S0, S8);
        a.add(T0, T0, A0);
        a.mul(T3, S0, S9);
        a.add(T3, T3, A2);

        a.li(S1, 0); // j
        let col_loop = a.here();
        {
            // acc = 0
            a.fmv_w_x(Fs0, Zero);
            a.fmv_w_x(Fs1, Zero);
            a.fmv_w_x(Fs2, Zero);
            a.fmv_w_x(Fs3, Zero);
            // T1 = &B[0*N + j], T2 = &A[i*K]
            a.slli(T1, S1, 2);
            a.add(T1, T1, A1);
            a.mv(T2, T0);
            a.li(S2, 0); // k
            let k_loop = a.here();
            {
                a.flw(Fa0, T2, 0);
                a.flw(Ft0, T1, 0);
                a.flw(Ft1, T1, 4);
                a.flw(Ft2, T1, 8);
                a.flw(Ft3, T1, 12);
                a.fmadd(Fs0, Fa0, Ft0, Fs0);
                a.fmadd(Fs1, Fa0, Ft1, Fs1);
                a.fmadd(Fs2, Fa0, Ft2, Fs2);
                a.fmadd(Fs3, Fa0, Ft3, Fs3);
                a.addi(T2, T2, 4);
                a.add(T1, T1, S9);
                a.addi(S2, S2, 1);
            }
            a.blt(S2, A4, k_loop);
            // Store C[i][j..j+4].
            a.slli(T4, S1, 2);
            a.add(T4, T4, T3);
            a.fsw(Fs0, T4, 0);
            a.fsw(Fs1, T4, 4);
            a.fsw(Fs2, T4, 8);
            a.fsw(Fs3, T4, 12);
            a.addi(S1, S1, 4);
        }
        a.blt(S1, A5, col_loop);

        a.add(S0, S0, S11); // i += nthreads
        a.j(row_loop);
        a.bind(done);
        a.fence();
        a.ecall();
        a.assemble(0).expect("sgemm assembles")
    }

    /// Builds the SPM-blocked kernel: each tile claims 8x8 output blocks,
    /// streams 8x16 A-blocks and 16x8 B-blocks into SPM (sequential loads,
    /// LPC-merged), accumulates in SPM and dumps the finished block.
    ///
    /// SPM layout: A-block at 0, B-block at 0x200, C-block at 0x400.
    /// Arguments as in [`Sgemm::program`].
    pub fn program_blocked() -> Program {
        const SPM_A: i32 = 0;
        const SPM_B: i32 = 0x200;
        const SPM_C: i32 = 0x400;
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);
        // S9 = N*4, S8 = K*4, S0 = N/8 (blocks per row), S1 = total blocks.
        a.slli(S9, A5, 2);
        a.slli(S8, A4, 2);
        a.srli(S0, A5, 3);
        a.srli(T0, A3, 3);
        a.mul(S1, T0, S0);

        a.mv(S2, S10); // b = rank
        let block_loop = a.new_label();
        let done = a.new_label();
        a.bind(block_loop);
        a.bge(S2, S1, done);
        // bi = b / (N/8), bj = b % (N/8).
        a.divu(S3, S2, S0);
        a.remu(S4, S2, S0);

        // Zero the 8x8 C block (64 words).
        for w in 0..64i32 {
            a.sw(Zero, Zero, SPM_C + 4 * w);
        }

        a.li(S5, 0); // k0
        let k0_loop = a.here();
        {
            // Copy A-block: 8 rows x 16 words from &A[(bi*8+r)*K + k0].
            a.slli(T0, S3, 3); // bi*8
            a.mul(T0, T0, S8); // *K*4
            a.add(T0, T0, A0);
            a.slli(T1, S5, 2);
            a.add(T0, T0, T1); // + k0*4
            a.li(T2, SPM_A);
            a.li(T3, 8);
            let copy_a = a.here();
            for w in 0..4 {
                a.lw(T4, T0, 16 * w);
                a.lw(T5, T0, 16 * w + 4);
                a.lw(S6, T0, 16 * w + 8);
                a.lw(S7, T0, 16 * w + 12);
                a.sw(T4, T2, 16 * w);
                a.sw(T5, T2, 16 * w + 4);
                a.sw(S6, T2, 16 * w + 8);
                a.sw(S7, T2, 16 * w + 12);
            }
            a.add(T0, T0, S8); // next A row
            a.addi(T2, T2, 64);
            a.addi(T3, T3, -1);
            a.bnez(T3, copy_a);

            // Copy B-block: 16 rows x 8 words from &B[(k0+r)*N + bj*8].
            a.mul(T0, S5, S9); // k0*N*4
            a.add(T0, T0, A1);
            a.slli(T1, S4, 5); // bj*8*4
            a.add(T0, T0, T1);
            a.li(T2, SPM_B);
            a.li(T3, 16);
            let copy_b = a.here();
            for w in 0..2 {
                a.lw(T4, T0, 16 * w);
                a.lw(T5, T0, 16 * w + 4);
                a.lw(S6, T0, 16 * w + 8);
                a.lw(S7, T0, 16 * w + 12);
                a.sw(T4, T2, 16 * w);
                a.sw(T5, T2, 16 * w + 4);
                a.sw(S6, T2, 16 * w + 8);
                a.sw(S7, T2, 16 * w + 12);
            }
            a.add(T0, T0, S9); // next B row
            a.addi(T2, T2, 32);
            a.addi(T3, T3, -1);
            a.bnez(T3, copy_b);

            // Accumulate: C[r][c] += sum_k A[r][k]*B[k][c], all in SPM.
            a.li(T0, 0); // r
            let r_loop = a.here();
            {
                a.li(T1, 0); // c
                let c_loop = a.here();
                {
                    // acc address: SPM_C + (r*8 + c)*4.
                    a.slli(T2, T0, 5);
                    a.slli(T3, T1, 2);
                    a.add(T2, T2, T3);
                    a.flw(Fa0, T2, SPM_C);
                    // a-ptr: SPM_A + r*64; b-ptr: SPM_B + c*4 (stride 32).
                    a.slli(T3, T0, 6);
                    a.slli(T4, T1, 2);
                    a.li(T5, 16); // k counter
                    let k_loop = a.here();
                    a.flw(Fa1, T3, SPM_A);
                    a.flw(Fa2, T4, SPM_B);
                    a.fmadd(Fa0, Fa1, Fa2, Fa0);
                    a.addi(T3, T3, 4);
                    a.addi(T4, T4, 32);
                    a.addi(T5, T5, -1);
                    a.bnez(T5, k_loop);
                    a.slli(T2, T0, 5);
                    a.slli(T3, T1, 2);
                    a.add(T2, T2, T3);
                    a.fsw(Fa0, T2, SPM_C);
                    a.addi(T1, T1, 1);
                }
                a.slti(T2, T1, 8);
                a.bnez(T2, c_loop);
                a.addi(T0, T0, 1);
            }
            a.slti(T1, T0, 8);
            a.bnez(T1, r_loop);

            a.addi(S5, S5, 16); // k0 += 16
        }
        a.blt(S5, A4, k0_loop);

        // Dump the C block: 8 rows x 8 words to &C[(bi*8+r)*N + bj*8].
        a.slli(T0, S3, 3);
        a.mul(T0, T0, S9);
        a.add(T0, T0, A2);
        a.slli(T1, S4, 5);
        a.add(T0, T0, T1);
        a.li(T2, SPM_C);
        a.li(T3, 8);
        let dump = a.here();
        for w in 0..2 {
            a.lw(T4, T2, 16 * w);
            a.lw(T5, T2, 16 * w + 4);
            a.lw(S6, T2, 16 * w + 8);
            a.lw(S7, T2, 16 * w + 12);
            a.sw(T4, T0, 16 * w);
            a.sw(T5, T0, 16 * w + 4);
            a.sw(S6, T0, 16 * w + 8);
            a.sw(S7, T0, 16 * w + 12);
        }
        a.add(T0, T0, S9);
        a.addi(T2, T2, 32);
        a.addi(T3, T3, -1);
        a.bnez(T3, dump);

        a.add(S2, S2, S11); // b += nthreads
        a.j(block_loop);
        a.bind(done);
        a.fence();
        a.ecall();
        a.assemble(0).expect("blocked sgemm assembles")
    }

    /// Runs and validates against [`golden::sgemm`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        assert_eq!(self.n % 4, 0, "N must be a multiple of 4");
        if self.blocked {
            assert!(
                self.m.is_multiple_of(8) && self.n.is_multiple_of(8) && self.k.is_multiple_of(16),
                "blocked SGEMM needs M,N % 8 == 0 and K % 16 == 0"
            );
        }
        let (m, k, n) = (self.m as usize, self.k as usize, self.n as usize);
        let a_host = gen::dense_matrix(m, k, 0xA);
        let b_host = gen::dense_matrix(k, n, 0xB);
        let expect = golden::sgemm(m, k, n, &a_host, &b_host);

        let mut machine = Machine::new(cfg.clone());
        let cell = machine.cell_mut(0);
        let a_dev = cell.alloc((m * k * 4) as u32, 64);
        let b_dev = cell.alloc((k * n * 4) as u32, 64);
        let c_dev = cell.alloc((m * n * 4) as u32, 64);
        cell.dram_mut().write_f32_slice(a_dev, &a_host);
        cell.dram_mut().write_f32_slice(b_dev, &b_host);

        let program = Arc::new(if self.blocked {
            Self::program_blocked()
        } else {
            Self::program()
        });
        machine.launch(
            0,
            &program,
            &[
                pgas::local_dram(a_dev),
                pgas::local_dram(b_dev),
                pgas::local_dram(c_dev),
                self.m,
                self.k,
                self.n,
            ],
        );
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();
        let got = machine.cell(0).dram().read_f32_slice(c_dev, m * n);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() <= e.abs() * 1e-3 + 1e-4,
                "SGEMM mismatch at {i}: sim {g} vs golden {e}"
            );
        }
        Ok(BenchStats::collect("SGEMM", summary.cycles, &machine))
    }
}

impl Benchmark for Sgemm {
    fn name(&self) -> &'static str {
        "SGEMM"
    }

    fn dwarf(&self) -> &'static str {
        "Dense Linear Algebra"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    #[test]
    fn blocked_sgemm_validates_and_merges_loads() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = Sgemm::blocked().run(&cfg, SizeClass::Tiny).unwrap();
        assert!(
            stats.core.lpc_merged > 0,
            "block copies are sequential loads and must trigger LPC"
        );
    }

    #[test]
    fn sgemm_validates_on_small_cell() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = Sgemm::default().run(&cfg, SizeClass::Tiny).unwrap();
        assert!(stats.cycles > 0);
        assert!(stats.core.fp_cycles > 0, "SGEMM must execute FP work");
    }

    #[test]
    fn sgemm_stays_golden_with_two_dead_tiles() {
        // Rank-strided kernels degrade through the live-rank prologue
        // alone: the six live tiles cover the dense 0..6 rank space.
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            disabled_tiles: vec![(1, 0), (2, 1)],
            ..MachineConfig::baseline_16x8()
        };
        Sgemm::default().run(&cfg, SizeClass::Tiny).unwrap();
    }
}
