//! Folded-stack exporter: one `frame;frame;...;frame count` line per
//! leaf, the interchange format of `flamegraph.pl` and Speedscope.
//!
//! Stacks are synthesized as `kernel;phase;block`, with one extra
//! `stall:<kind>` leaf per stall category, and counts are **cycles**:
//!
//! ```text
//! sgemm;main;blk_0x0040 5120
//! sgemm;main;blk_0x0040;stall:remote_ld 890
//! ```
//!
//! Execute cycles sit on the block frame itself, stall cycles nest one
//! frame deeper, so the rendered flamegraph's total width is the
//! machine's guest tile-cycles and each block's width is its inclusive
//! cost. Lines are emitted phases-then-blocks-then-kinds in the stored
//! deterministic order and zero counts are skipped, so the output is
//! byte-identical for bit-identical profiles.

use crate::Analysis;
use hb_core::StallKind;
use std::fmt::Write as _;
use std::io;

/// Renders the analysis as folded-stack text.
pub fn to_string(a: &Analysis) -> String {
    let mut out = String::new();
    for ph in &a.phases {
        let phase = crate::phase_name(ph.mark);
        for row in &ph.rows {
            let frame = row.label();
            if row.retired > 0 {
                let _ = writeln!(out, "{};{phase};{frame} {}", a.kernel, row.retired);
            }
            for kind in StallKind::ALL {
                let n = row.stalls[kind as usize];
                if n > 0 {
                    let _ = writeln!(
                        out,
                        "{};{phase};{frame};stall:{} {n}",
                        a.kernel,
                        kind.label()
                    );
                }
            }
        }
    }
    out
}

/// Writes [`to_string`] to `w`.
pub fn write<W: io::Write>(a: &Analysis, w: &mut W) -> io::Result<()> {
    w.write_all(to_string(a).as_bytes())
}

#[cfg(test)]
mod tests {
    use crate::{Analysis, ProfRun};
    use hb_core::{GuestProfile, Machine, MachineConfig, StallKind};
    use std::sync::Arc;

    fn tiny_run() -> ProfRun {
        // Assemble a 4-instruction program and profile it synthetically
        // by running a real machine (ensures GuestProfile's shape).
        let mut asm = hb_asm::Assembler::new();
        use hb_isa::Gpr::*;
        asm.li(A0, 1);
        asm.li(A1, 2);
        asm.add(A2, A0, A1);
        asm.ecall();
        let program = Arc::new(asm.assemble(0).unwrap());

        let (_scope, store) = crate::attach();
        let cfg = MachineConfig {
            cell_dim: hb_core::CellDim { x: 1, y: 1 },
            threads: 1,
            profile: true,
            ..MachineConfig::baseline_16x8()
        };
        let mut machine = Machine::new(cfg);
        machine.launch(0, &program, &[]);
        machine.run(10_000).unwrap();
        drop(machine);
        let run = store.lock().unwrap().last().unwrap().clone();
        run
    }

    #[test]
    fn stacks_sum_to_tile_cycles_and_frames_are_well_formed() {
        let a = Analysis::analyze("tiny", &tiny_run());
        let doc = super::to_string(&a);
        let mut total = 0u64;
        for line in doc.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("count suffix");
            total += count.parse::<u64>().unwrap();
            let frames: Vec<&str> = stack.split(';').collect();
            assert!(frames.len() == 3 || frames.len() == 4, "{line}");
            assert_eq!(frames[0], "tiny");
            assert_eq!(frames[1], "main");
            assert!(frames[2].starts_with("blk_0x"), "{line}");
            if let Some(leaf) = frames.get(3) {
                let kind = leaf.strip_prefix("stall:").expect("stall leaf");
                assert!(StallKind::ALL.iter().any(|k| k.label() == kind), "{line}");
            }
        }
        assert_eq!(total, a.tile_cycles());
        assert!(a.retired >= 4, "one tile retires all four instructions");
    }

    #[test]
    fn empty_profile_renders_empty() {
        let run = ProfRun {
            program: tiny_run().program,
            profile: GuestProfile {
                base: 0,
                instrs: 4,
                phases: Vec::new(),
            },
            cycles: 0,
        };
        let a = Analysis::analyze("tiny", &run);
        assert!(super::to_string(&a).is_empty());
        assert_eq!(a.phases.len(), 0);
    }
}
