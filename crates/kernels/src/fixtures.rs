//! Deliberately-racy fixture kernels for the race-checking loop.
//!
//! Each fixture is a tiny kernel with a *known* cross-tile race (or, for
//! the AMO mix, a known half-sanctioned one), used to confirm that the
//! static phase-conflict pass (`hb-lint`'s `phase-race` rule) and the
//! dynamic epoch sanitizer ([`hb_core::RaceChecker`]) both flag it — and
//! agree with each other. They are **not** part of [`crate::suite`]: the
//! benchmark suite must stay race-clean, and these exist to be dirty.
//!
//! Every fixture follows the same calling convention: `buffers` DRAM
//! buffers of `ranks + 1` words each, passed as launch arguments
//! `a0..` in order. Expected finding counts are exact — both checkers
//! deduplicate reports by instruction pair, so the counts are independent
//! of Cell shape (any shape with at least two tiles) and of `HB_THREADS`.

use hb_asm::{Assembler, Program};
use hb_core::HbOps;
use hb_isa::Gpr::*;

/// One racy fixture kernel and its exact expected finding counts.
pub struct Fixture {
    /// Stable name, used by the `race_check` CLI and CI.
    pub name: &'static str,
    /// One line on what the bug is.
    pub blurb: &'static str,
    /// Builds the program (base address 0).
    pub build: fn() -> Program,
    /// Number of DRAM buffers (= launch arguments), each `ranks + 1`
    /// words.
    pub buffers: usize,
    /// Exact number of `phase-race` diagnostics the static pass emits.
    pub expect_static: usize,
    /// Exact number of reports the dynamic sanitizer produces.
    pub expect_dynamic: usize,
}

/// Producer stores `a0[rank]`, joins the barrier **without a fence**, then
/// reads `a0[rank + 1]` — the neighbour's possibly-still-in-flight write.
fn unfenced_producer_consumer() -> Program {
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    a.slli(T1, T0, 2);
    a.add(T2, A0, T1);
    a.sw(T0, T2, 0); // a0[rank] = rank
    a.barrier(T6); // BUG: no fence before the join
    a.lw(T3, T2, 4); // a0[rank + 1]
    a.fence();
    a.ecall();
    a.assemble(0).expect("fixture must assemble")
}

/// Every rank stores to the *same* shared DRAM word in the same phase —
/// the canonical write-write conflict.
fn shared_row_ww() -> Program {
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    a.sw(T0, A0, 0); // a0[0] = rank, from every tile at once
    a.fence();
    a.ecall();
    a.assemble(0).expect("fixture must assemble")
}

/// Every rank accumulates into `a0[0]` with an AMO (sanctioned), but also
/// stores `a0[rank]` with a plain `sw` — and rank 0's plain store hits the
/// accumulator word. AMO-vs-AMO is exempt; AMO-vs-store is a race.
fn amo_store_mix() -> Program {
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    a.amoadd(T1, T0, A0); // a0[0] += rank (atomic: fine)
    a.slli(T2, T0, 2);
    a.add(T2, A0, T2);
    a.sw(T0, T2, 0); // BUG: rank 0's sw aliases the amo word
    a.fence();
    a.ecall();
    a.assemble(0).expect("fixture must assemble")
}

/// Double buffering with only *one* barrier per step: the write of buffer
/// B races with the previous iteration's reads of B (and likewise for A),
/// because one barrier cannot separate three access groups.
fn double_buffer_missing_barrier() -> Program {
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    a.slli(T1, T0, 2);
    a.add(T2, A0, T1); // &A[rank]
    a.add(T3, A1, T1); // &B[rank]
    a.li(T4, 3);
    let top = a.here();
    a.sw(T0, T2, 0); // write A[rank]
    a.lw(T5, T3, 4); // read  B[rank + 1]
    a.sw(T0, T3, 0); // BUG: write B[rank] in the same phase as the read
    a.lw(T5, T2, 4); // read  A[rank + 1], ditto
    a.fence();
    a.barrier(T6);
    a.addi(T4, T4, -1);
    a.bnez(T4, top);
    a.ecall();
    a.assemble(0).expect("fixture must assemble")
}

/// All fixtures, in stable order.
pub fn all() -> Vec<Fixture> {
    vec![
        Fixture {
            name: "unfenced-producer-consumer",
            blurb: "barrier join without a fence leaks the producer's write",
            build: unfenced_producer_consumer,
            buffers: 1,
            expect_static: 1,
            expect_dynamic: 1,
        },
        Fixture {
            name: "shared-row-ww",
            blurb: "same-phase write-write to one shared DRAM word",
            build: shared_row_ww,
            buffers: 1,
            expect_static: 1,
            expect_dynamic: 1,
        },
        Fixture {
            name: "amo-store-mix",
            blurb: "plain store aliases the AMO accumulator word",
            build: amo_store_mix,
            buffers: 1,
            expect_static: 1,
            expect_dynamic: 1,
        },
        Fixture {
            name: "double-buffer-missing-barrier",
            blurb: "one barrier per step cannot order a double buffer",
            build: double_buffer_missing_barrier,
            buffers: 2,
            expect_static: 2,
            expect_dynamic: 2,
        },
    ]
}

/// Looks a fixture up by name.
pub fn by_name(name: &str) -> Option<Fixture> {
    all().into_iter().find(|f| f.name == name)
}
