//! Small deterministic pseudo-random number generator.
//!
//! The simulator needs reproducible randomness in three places: the workload
//! generators (`hb-workloads`), randomized tests (differential fuzzing,
//! model-based cache checks, NoC traffic), and bench input synthesis. None of
//! them need cryptographic quality — they need *determinism across runs and
//! platforms* so that a failing seed can be replayed. This crate provides a
//! single dependency-free generator: `xoshiro256**` seeded via `splitmix64`,
//! the same construction rvr-style interpreters and test harnesses use.
//!
//! The stream for a given seed is part of this crate's contract: changing it
//! invalidates recorded failing seeds, so treat the output sequence as
//! stable.

/// `xoshiro256**` PRNG with a `splitmix64` seeding routine.
///
/// Deterministic for a given seed on every platform.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds give equal
    /// streams; nearby seeds give unrelated streams (splitmix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[0, bound)`. Debiased via Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)` (half-open, like `Range<u32>`).
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as u32
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(lo.abs_diff(hi)) as i64)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.f32() * (hi - lo)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniformly picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.index(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_stream_is_stable() {
        // Pins the stream: recorded failing seeds elsewhere depend on it.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let expect: Vec<u64> = vec![
            11091344671253066420,
            13793997310169335082,
            1900383378846508768,
            7684712102626143532,
        ];
        assert_eq!(first, expect);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.range_u32(10, 20);
            assert!((10..20).contains(&v));
            let f = r.f32();
            assert!((0.0..1.0).contains(&f));
            let i = r.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
        }
        // below(1) must always be 0.
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn shuffle_and_pick_cover_all_elements() {
        let mut r = Rng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..16).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*r.pick(&[0usize, 1, 2, 3])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
