//! `inspect` — the paper's §III.D performance-debugging workflow: run one
//! benchmark and print the full profile (tile/link heatmaps, stall blame,
//! cache and HBM2 tables, bottleneck verdict).
//!
//! Usage: `cargo run --release -p hb-bench --bin inspect -- [kernel]`
//! where `kernel` is one of the Table I names (default: SpGEMM).

use hb_bench::{bench_size, hb_config};

fn main() {
    let want = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "SpGEMM".to_owned());
    let cfg = hb_config();
    let size = bench_size();
    let suite = hb_kernels::suite();
    let bench = suite
        .iter()
        .find(|b| b.name().eq_ignore_ascii_case(&want))
        .unwrap_or_else(|| {
            eprintln!("unknown kernel '{want}'; options:");
            for b in &suite {
                eprintln!("  {}", b.name());
            }
            std::process::exit(1);
        });

    eprintln!(
        "running {} on a {}x{} Cell ...",
        bench.name(),
        cfg.cell_dim.x,
        cfg.cell_dim.y
    );
    let stats = bench.run(&cfg, size).expect("kernel validates");
    println!(
        "{} finished in {} cycles ({} instructions, {} remote requests)\n",
        bench.name(),
        stats.cycles,
        stats.core.instrs,
        stats.core.remote_requests
    );
    println!("{}", stats.profile.report());
}
