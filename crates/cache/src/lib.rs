//! Last-level cache banks for HammerBlade-RS.
//!
//! HammerBlade's cache hierarchy is flat: independent cache banks embedded
//! in the tile array are the last level before DRAM, each mapped to an
//! exclusive slice of the address space (so there is no coherence problem by
//! construction). The banks implement the paper's key policies:
//!
//! - **Write-validate** (Jouppi): write misses allocate a line *without*
//!   fetching it from DRAM, tracking per-byte validity — eliminating
//!   unnecessary DRAM reads for kernels that write results in large blocks.
//! - **Non-blocking** operation with consolidated MSHRs: primary and
//!   secondary misses drain out of the network so later hits can proceed.
//! - **Remote atomics**: AMOs execute at the bank, providing chip-wide
//!   synchronization without coherence hardware.
//!
//! Both policies have ablation knobs ([`CacheConfig::write_validate`],
//! [`CacheConfig::blocking`]) used by the paper's Figure 10 study.
//!
//! # Examples
//!
//! ```
//! use hb_cache::{AccessKind, CacheBank, CacheConfig, CacheRequest};
//!
//! let mut bank = CacheBank::new(CacheConfig::default());
//! // A store miss under write-validate completes without DRAM traffic.
//! bank.try_accept(CacheRequest {
//!     id: 1,
//!     addr: 0x80,
//!     kind: AccessKind::Store,
//!     data: 0xdead_beef,
//!     width: 4,
//! });
//! for _ in 0..4 {
//!     bank.tick();
//! }
//! assert!(bank.pop_response().is_some());
//! assert!(bank.pop_mem_request().is_none());
//! ```

mod bank;

pub use bank::{
    snap_load_request, snap_save_request, AccessKind, CacheBank, CacheConfig, CacheRequest,
    CacheResponse, CacheStats, LineRequest, LineRequestKind,
};
