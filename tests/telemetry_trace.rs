//! Golden-file tests for the telemetry exporters: the Chrome trace of an
//! instrumented SGEMM run must be syntactically valid JSON (checked by the
//! workspace's own strict validator — no serde anywhere) with exactly the
//! track and event population the store predicts, and the NDJSON dump must
//! be one valid object per line.

use hammerblade::core::{CellDim, HbOps, Machine, MachineConfig};
use hammerblade::kernels::{suite, SizeClass};
use hammerblade::obs::{chrome, json, ndjson, Keep};

fn sgemm_cfg(dim: CellDim, window: u64) -> MachineConfig {
    MachineConfig {
        cell_dim: dim,
        threads: 1,
        telemetry_window: window,
        ..MachineConfig::baseline_16x8()
    }
}

#[test]
fn chrome_trace_of_a_2x2_sgemm_matches_the_golden_structure() {
    let sgemm = suite()
        .into_iter()
        .find(|b| b.name() == "SGEMM")
        .expect("suite has SGEMM");
    let (scope, store) = hammerblade::obs::attach(Keep::All);
    let stats = sgemm
        .run(&sgemm_cfg(CellDim { x: 2, y: 2 }, 64), SizeClass::Tiny)
        .expect("sgemm runs");
    drop(scope);
    let t = store.lock().unwrap();

    let doc = chrome::to_string(&t);
    json::validate(&doc).unwrap_or_else(|e| panic!("invalid Chrome trace: {e}"));

    // Track population: 1 process + 4 tile threads.
    assert_eq!(t.tiles_per_cell(), 4);
    assert_eq!(chrome::metadata_event_count(&t), 5);
    assert_eq!(doc.matches("\"ph\":\"M\"").count(), 5);
    // Counter tracks: every window carries 4 tile-utilization points plus
    // the hbm and noc Cell tracks.
    let expected_counters = t.samples.len() * (4 + 2);
    assert_eq!(chrome::counter_event_count(&t), expected_counters);
    assert_eq!(doc.matches("\"ph\":\"C\"").count(), expected_counters);
    // Instants: SGEMM fences its result stores before `ecall`, so every
    // tile contributes at least one fence-retire event.
    let instants = chrome::instant_event_count(&t);
    assert_eq!(doc.matches("\"ph\":\"i\"").count(), instants);
    assert!(
        doc.matches("\"name\":\"fence retire\"").count() >= 4,
        "expected a fence retire per tile"
    );
    // Windows tile the run: the nominal window plus one possible tail.
    let full = stats.cycles / 64;
    let tail = u64::from(stats.cycles % 64 != 0);
    assert_eq!(t.samples.len() as u64, full + tail);
    assert!(doc.contains("\"name\":\"tile (1,1)\""), "all tiles tracked");
    assert!(doc.contains("\"displayTimeUnit\":\"ms\""));

    // The NDJSON dump: meta + (tiles + hbm + noc) per window + events.
    let nd = ndjson::to_string(&t);
    let lines: Vec<&str> = nd.lines().collect();
    assert_eq!(lines.len(), 1 + t.samples.len() * (4 + 2) + instants);
    for line in &lines {
        json::validate(line).unwrap_or_else(|e| panic!("bad NDJSON line: {e}\n{line}"));
    }
}

#[test]
fn full_cell_sgemm_trace_stays_valid() {
    // The acceptance-criteria shape: SGEMM on the paper's 16x8 Cell.
    let sgemm = suite()
        .into_iter()
        .find(|b| b.name() == "SGEMM")
        .expect("suite has SGEMM");
    let (scope, store) = hammerblade::obs::attach(Keep::All);
    sgemm
        .run(&sgemm_cfg(CellDim { x: 16, y: 8 }, 1000), SizeClass::Tiny)
        .expect("sgemm runs");
    drop(scope);
    let t = store.lock().unwrap();
    let doc = chrome::to_string(&t);
    json::validate(&doc).unwrap_or_else(|e| panic!("invalid Chrome trace: {e}"));
    assert_eq!(t.tiles_per_cell(), 128);
    assert_eq!(
        doc.matches("\"ph\":\"M\"").count(),
        chrome::metadata_event_count(&t)
    );
    assert_eq!(
        doc.matches("\"ph\":\"C\"").count(),
        chrome::counter_event_count(&t)
    );
}

#[test]
fn mark_csr_stores_become_instant_events() {
    // A hand-assembled kernel that brackets its (empty) phases with MARK
    // stores; the trace must carry them as named instants in order.
    let mut cfg = sgemm_cfg(CellDim { x: 2, y: 1 }, 32);
    cfg.telemetry_window = 32;
    let (scope, store) = hammerblade::obs::attach(Keep::All);
    let mut machine = Machine::new(cfg);
    let program = {
        use hammerblade::asm::Assembler;
        use hammerblade::isa::Gpr;
        let mut a = Assembler::new();
        a.mark(1, Gpr::T0, Gpr::T1);
        a.mark(2, Gpr::T0, Gpr::T1);
        a.ecall();
        std::sync::Arc::new(a.assemble(0).expect("marks assemble"))
    };
    machine.launch(0, &program, &[]);
    machine.run(10_000).expect("marks retire");
    drop(machine);
    drop(scope);
    let t = store.lock().unwrap();
    let marks: Vec<u32> = t
        .events
        .iter()
        .filter_map(|e| match e.kind {
            hammerblade::core::ObsKind::Mark(v) => Some(v),
            _ => None,
        })
        .collect();
    // Both tiles run the program: each retires mark 1 then mark 2.
    assert_eq!(marks.iter().filter(|&&v| v == 1).count(), 2);
    assert_eq!(marks.iter().filter(|&&v| v == 2).count(), 2);
    let doc = chrome::to_string(&t);
    assert!(doc.contains("\"name\":\"mark 1\""), "{doc}");
    assert!(doc.contains("\"name\":\"mark 2\""), "{doc}");
}
