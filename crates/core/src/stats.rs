//! Execution statistics: the per-core cycle taxonomy of the paper's
//! Figure 11 / Table III and aggregate Cell counters.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Why a core did not retire an instruction this cycle (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum StallKind {
    /// Instruction-cache miss refill.
    IcacheMiss = 0,
    /// Branch/jump misprediction penalty.
    BranchMiss,
    /// RAW dependency on an in-flight ALU/FPU result (bypass distance).
    Bypass,
    /// Load-use delay on a local scratchpad load.
    LocalLoad,
    /// Waiting for a remote load response (DRAM or remote SPM).
    RemoteLoad,
    /// Waiting for a remote atomic response.
    AmoDep,
    /// Could not inject a request: scoreboard full or network backpressure.
    RemoteCredit,
    /// `fence`: draining the remote-request scoreboard.
    Fence,
    /// Blocked in the hardware barrier.
    Barrier,
    /// Iterative FP divide/sqrt unit busy.
    FpBusy,
    /// Iterative integer divider busy.
    IntBusy,
    /// Frozen by an injected whole-tile fault (`hb-fault`).
    Frozen,
    /// Tile finished (idle until the kernel ends elsewhere).
    Done,
}

impl StallKind {
    /// Number of stall categories.
    pub const COUNT: usize = 13;

    /// Every category, in display order.
    pub const ALL: [StallKind; StallKind::COUNT] = [
        StallKind::IcacheMiss,
        StallKind::BranchMiss,
        StallKind::Bypass,
        StallKind::LocalLoad,
        StallKind::RemoteLoad,
        StallKind::AmoDep,
        StallKind::RemoteCredit,
        StallKind::Fence,
        StallKind::Barrier,
        StallKind::FpBusy,
        StallKind::IntBusy,
        StallKind::Frozen,
        StallKind::Done,
    ];

    /// Short label used in utilization reports.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::IcacheMiss => "icache",
            StallKind::BranchMiss => "branch_miss",
            StallKind::Bypass => "bypass",
            StallKind::LocalLoad => "local_ld",
            StallKind::RemoteLoad => "remote_ld",
            StallKind::AmoDep => "amo",
            StallKind::RemoteCredit => "credit",
            StallKind::Fence => "fence",
            StallKind::Barrier => "barrier",
            StallKind::FpBusy => "fdiv_fsqrt",
            StallKind::IntBusy => "idiv",
            StallKind::Frozen => "frozen",
            StallKind::Done => "done",
        }
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-core cycle and instruction counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles retiring an integer instruction (incl. memory and control,
    /// per the paper's taxonomy).
    pub int_cycles: u64,
    /// Cycles retiring a floating-point instruction.
    pub fp_cycles: u64,
    /// Stalled cycles by cause.
    pub stalls: [u64; StallKind::COUNT],
    /// Instructions retired.
    pub instrs: u64,
    /// Remote memory requests issued.
    pub remote_requests: u64,
    /// Remote load packets saved by Load Packet Compression.
    pub lpc_merged: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
}

impl Default for CoreStats {
    fn default() -> CoreStats {
        CoreStats {
            int_cycles: 0,
            fp_cycles: 0,
            stalls: [0; StallKind::COUNT],
            instrs: 0,
            remote_requests: 0,
            lpc_merged: 0,
            branch_misses: 0,
            branches: 0,
            icache_misses: 0,
        }
    }
}

impl CoreStats {
    /// Total cycles accounted (execute + stall).
    pub fn total_cycles(&self) -> u64 {
        self.int_cycles + self.fp_cycles + self.stalls.iter().sum::<u64>()
    }

    /// Stalled cycles of one kind.
    pub fn stall(&self, kind: StallKind) -> u64 {
        self.stalls[kind as usize]
    }

    /// Records a stall cycle.
    pub fn add_stall(&mut self, kind: StallKind) {
        self.stalls[kind as usize] += 1;
    }

    /// Records `n` stall cycles of one kind at once — the bulk catch-up
    /// used by the event scheduler when a tile that slept `n` cycles steps
    /// again (each skipped cycle owes exactly one stall of a constant
    /// kind, so the credit is a single add).
    pub fn add_stall_n(&mut self, kind: StallKind, n: u64) {
        self.stalls[kind as usize] += n;
    }

    /// Fraction of cycles doing useful work.
    pub fn utilization(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            (self.int_cycles + self.fp_cycles) as f64 / total as f64
        }
    }

    /// Serializes the counter block (fixed-width, no tags: `CoreStats`
    /// appears hundreds of times per snapshot).
    pub fn snap_save(&self, w: &mut hb_mem::SnapWriter) {
        w.u64(self.int_cycles);
        w.u64(self.fp_cycles);
        for &s in &self.stalls {
            w.u64(s);
        }
        w.u64(self.instrs);
        w.u64(self.remote_requests);
        w.u64(self.lpc_merged);
        w.u64(self.branch_misses);
        w.u64(self.branches);
        w.u64(self.icache_misses);
    }

    /// Restores a counter block.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError::Eof`] on truncation.
    pub fn snap_load(r: &mut hb_mem::SnapReader) -> Result<CoreStats, hb_mem::SnapError> {
        let int_cycles = r.u64()?;
        let fp_cycles = r.u64()?;
        let mut stalls = [0u64; StallKind::COUNT];
        for s in &mut stalls {
            *s = r.u64()?;
        }
        Ok(CoreStats {
            int_cycles,
            fp_cycles,
            stalls,
            instrs: r.u64()?,
            remote_requests: r.u64()?,
            lpc_merged: r.u64()?,
            branch_misses: r.u64()?,
            branches: r.u64()?,
            icache_misses: r.u64()?,
        })
    }

    /// One JSON object on a single line, hand-written (no serde). Shared
    /// between the telemetry exporters and anything that wants
    /// machine-readable per-core counters; stall buckets are keyed by
    /// [`StallKind::label`].
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"int_cycles\":{},\"fp_cycles\":{},\"instrs\":{},\
             \"remote_requests\":{},\"lpc_merged\":{},\"branch_misses\":{},\
             \"branches\":{},\"icache_misses\":{},\"stalls\":{{",
            self.int_cycles,
            self.fp_cycles,
            self.instrs,
            self.remote_requests,
            self.lpc_merged,
            self.branch_misses,
            self.branches,
            self.icache_misses,
        );
        for (i, kind) in StallKind::ALL.into_iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(out, "{comma}\"{}\":{}", kind.label(), self.stall(kind));
        }
        out.push_str("}}");
        out
    }
}

impl Add for CoreStats {
    type Output = CoreStats;

    fn add(mut self, rhs: CoreStats) -> CoreStats {
        self += rhs;
        self
    }
}

impl AddAssign for CoreStats {
    fn add_assign(&mut self, rhs: CoreStats) {
        self.int_cycles += rhs.int_cycles;
        self.fp_cycles += rhs.fp_cycles;
        for i in 0..StallKind::COUNT {
            self.stalls[i] += rhs.stalls[i];
        }
        self.instrs += rhs.instrs;
        self.remote_requests += rhs.remote_requests;
        self.lpc_merged += rhs.lpc_merged;
        self.branch_misses += rhs.branch_misses;
        self.branches += rhs.branches;
        self.icache_misses += rhs.icache_misses;
    }
}

impl Sub for CoreStats {
    type Output = CoreStats;

    fn sub(mut self, rhs: CoreStats) -> CoreStats {
        self.int_cycles -= rhs.int_cycles;
        self.fp_cycles -= rhs.fp_cycles;
        for i in 0..StallKind::COUNT {
            self.stalls[i] -= rhs.stalls[i];
        }
        self.instrs -= rhs.instrs;
        self.remote_requests -= rhs.remote_requests;
        self.lpc_merged -= rhs.lpc_merged;
        self.branch_misses -= rhs.branch_misses;
        self.branches -= rhs.branches;
        self.icache_misses -= rhs.icache_misses;
        self
    }
}

/// Formats a core-utilization breakdown as percentage rows (the Figure 11
/// report format), with a totals footer.
///
/// Rows below 0.01% are elided for readability, but the `all` row always
/// sums every category — hidden ones included — so it reads exactly
/// 100.00% whenever any cycle was accounted. That invariant is checked
/// here: a mismatch means a counter was double-booked or dropped.
pub fn utilization_report(stats: &CoreStats) -> String {
    use std::fmt::Write;
    let total = stats.total_cycles().max(1) as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>7.2}%",
        "int",
        stats.int_cycles as f64 / total * 100.0
    );
    let _ = writeln!(
        out,
        "{:<14} {:>7.2}%",
        "fp",
        stats.fp_cycles as f64 / total * 100.0
    );
    let mut all = (stats.int_cycles + stats.fp_cycles) as f64 / total * 100.0;
    for kind in StallKind::ALL {
        let v = stats.stall(kind) as f64 / total * 100.0;
        all += v;
        if v > 0.005 {
            let _ = writeln!(out, "{:<14} {:>7.2}%", kind.label(), v);
        }
    }
    if stats.total_cycles() > 0 {
        assert!(
            (all - 100.0).abs() < 1e-6,
            "cycle taxonomy does not cover the run: categories sum to {all}%"
        );
    }
    let _ = writeln!(out, "{:<14} {all:>7.2}%", "all");
    let ipc = stats.instrs as f64 / total;
    let _ = writeln!(out, "total          {} cycles", stats.total_cycles());
    let _ = writeln!(out, "instrs         {}", stats.instrs);
    let _ = writeln!(out, "ipc            {ipc:>7.2}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut s = CoreStats {
            int_cycles: 10,
            fp_cycles: 5,
            ..CoreStats::default()
        };
        s.add_stall(StallKind::RemoteLoad);
        s.add_stall(StallKind::RemoteLoad);
        s.add_stall(StallKind::Barrier);
        assert_eq!(s.total_cycles(), 18);
        assert_eq!(s.stall(StallKind::RemoteLoad), 2);
        assert!((s.utilization() - 15.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation_sums_fields() {
        let mut a = CoreStats {
            int_cycles: 3,
            ..CoreStats::default()
        };
        a.add_stall(StallKind::Fence);
        let mut b = CoreStats {
            fp_cycles: 4,
            ..CoreStats::default()
        };
        b.add_stall(StallKind::Fence);
        let c = a + b;
        assert_eq!(c.int_cycles, 3);
        assert_eq!(c.fp_cycles, 4);
        assert_eq!(c.stall(StallKind::Fence), 2);
    }

    #[test]
    fn report_mentions_active_categories() {
        let mut s = CoreStats {
            int_cycles: 50,
            ..CoreStats::default()
        };
        for _ in 0..50 {
            s.add_stall(StallKind::Barrier);
        }
        let report = utilization_report(&s);
        assert!(report.contains("barrier"));
        assert!(!report.contains("fence"));
    }

    #[test]
    fn report_footer_totals_and_invariant() {
        let mut s = CoreStats {
            int_cycles: 30,
            fp_cycles: 10,
            instrs: 40,
            ..CoreStats::default()
        };
        for _ in 0..60 {
            s.add_stall(StallKind::RemoteLoad);
        }
        let report = utilization_report(&s);
        assert!(report.contains("all             100.00%"), "{report}");
        assert!(report.contains("total          100 cycles"), "{report}");
        assert!(report.contains("instrs         40"), "{report}");
        assert!(report.contains("ipc               0.40"), "{report}");
    }

    #[test]
    fn report_footer_counts_hidden_categories() {
        // One stall cycle out of 100k renders below the 0.01% display
        // threshold, but the `all` row must still account for it.
        let mut s = CoreStats {
            int_cycles: 99_999,
            ..CoreStats::default()
        };
        s.add_stall(StallKind::Bypass);
        let report = utilization_report(&s);
        assert!(!report.contains("bypass"), "{report}");
        assert!(report.contains("all             100.00%"), "{report}");
    }

    #[test]
    fn json_line_is_complete_and_flat() {
        let mut s = CoreStats {
            int_cycles: 7,
            fp_cycles: 3,
            instrs: 10,
            ..CoreStats::default()
        };
        s.add_stall(StallKind::Barrier);
        let line = s.to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"int_cycles\":7"));
        assert!(line.contains("\"stalls\":{"));
        for kind in StallKind::ALL {
            assert!(line.contains(&format!("\"{}\":", kind.label())), "{line}");
        }
        assert!(line.contains("\"barrier\":1"));
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "{line}"
        );
    }

    #[test]
    fn window_deltas_subtract_fieldwise() {
        let mut before = CoreStats {
            int_cycles: 5,
            instrs: 5,
            ..CoreStats::default()
        };
        before.add_stall(StallKind::Fence);
        let mut after = before;
        after.int_cycles += 3;
        after.instrs += 3;
        after.add_stall(StallKind::Fence);
        after.add_stall(StallKind::Barrier);
        let d = after - before;
        assert_eq!(d.int_cycles, 3);
        assert_eq!(d.instrs, 3);
        assert_eq!(d.stall(StallKind::Fence), 1);
        assert_eq!(d.stall(StallKind::Barrier), 1);
        assert_eq!(before + d, after);
    }

    #[test]
    fn all_kinds_have_unique_labels() {
        let mut labels: Vec<_> = StallKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), StallKind::COUNT);
    }
}
