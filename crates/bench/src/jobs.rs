//! Host-level job parallelism for the figure/table sweep binaries.
//!
//! The fig10/fig15/ablation harnesses run many *independent* (kernel,
//! configuration) simulation points; [`run_ordered`] fans them out across a
//! scoped worker pool and collects results in submission order, so table
//! rows print exactly as in the sequential harness. This is the second
//! level of parallelism on top of the per-Machine tile-phase pool
//! (`hb_core::TilePool`): when job-level fan-out is active, Machines should
//! run with `threads = 1` (see [`point_config`]) so the host is not
//! oversubscribed.

use hb_core::MachineConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Job-level worker count for a sweep binary: `--threads N` (or
/// `--threads=N`) on the command line wins, else the `HB_THREADS`
/// environment variable, else 1.
pub fn job_threads() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    hb_core::threads_from_env()
}

/// The configuration a fanned-out simulation point should run with: when
/// more than one job runs at a time, each Machine keeps its tile phase
/// sequential (`threads = 1`) so total host threads ≈ `jobs`, not
/// `jobs * threads`. Simulated results are identical either way.
pub fn point_config(base: &MachineConfig, jobs: usize) -> MachineConfig {
    MachineConfig {
        threads: if jobs > 1 { 1 } else { base.threads },
        ..base.clone()
    }
}

/// Runs `f` over every item on up to `threads` scoped workers and returns
/// the results **in item order** (work-stealing execution, deterministic
/// collection). `threads <= 1` degrades to a plain in-order loop. A
/// panicking job propagates to the caller when the scope joins.
pub fn run_ordered<I, T, F>(items: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("item claimed once");
                let out = f(i, item);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = run_ordered(items, 4, |i, item| {
            assert_eq!(i, item);
            item * 10
        });
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_is_inline_and_ordered() {
        let out = run_ordered(vec!["a", "b", "c"], 1, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_ordered(vec![7usize], 16, |_, x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn point_config_forces_sequential_tiles_under_fanout() {
        let mut base = MachineConfig::baseline_16x8();
        base.threads = 8;
        assert_eq!(point_config(&base, 4).threads, 1);
        assert_eq!(point_config(&base, 1).threads, 8);
    }
}
