//! Property tests: every representable instruction encodes to a word that
//! decodes back to itself, and ALU semantics obey RISC-V identities.

use hb_isa::*;
use proptest::prelude::*;

fn any_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..32).prop_map(Gpr::from_index)
}

fn any_fpr() -> impl Strategy<Value = Fpr> {
    (0u8..32).prop_map(Fpr::from_index)
}

fn any_branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Eq),
        Just(BranchOp::Ne),
        Just(BranchOp::Lt),
        Just(BranchOp::Ge),
        Just(BranchOp::Ltu),
        Just(BranchOp::Geu),
    ]
}

fn any_op_op() -> impl Strategy<Value = OpOp> {
    prop_oneof![
        Just(OpOp::Add),
        Just(OpOp::Sub),
        Just(OpOp::Sll),
        Just(OpOp::Slt),
        Just(OpOp::Sltu),
        Just(OpOp::Xor),
        Just(OpOp::Srl),
        Just(OpOp::Sra),
        Just(OpOp::Or),
        Just(OpOp::And),
        Just(OpOp::Mul),
        Just(OpOp::Mulh),
        Just(OpOp::Mulhsu),
        Just(OpOp::Mulhu),
        Just(OpOp::Div),
        Just(OpOp::Divu),
        Just(OpOp::Rem),
        Just(OpOp::Remu),
    ]
}

fn any_amo_op() -> impl Strategy<Value = AmoOp> {
    prop_oneof![
        Just(AmoOp::Swap),
        Just(AmoOp::Add),
        Just(AmoOp::Xor),
        Just(AmoOp::And),
        Just(AmoOp::Or),
        Just(AmoOp::Min),
        Just(AmoOp::Max),
        Just(AmoOp::Minu),
        Just(AmoOp::Maxu),
    ]
}

fn any_fp_op() -> impl Strategy<Value = FpOp> {
    prop_oneof![
        Just(FpOp::Add),
        Just(FpOp::Sub),
        Just(FpOp::Mul),
        Just(FpOp::Div),
        Just(FpOp::Sgnj),
        Just(FpOp::Sgnjn),
        Just(FpOp::Sgnjx),
        Just(FpOp::Min),
        Just(FpOp::Max),
    ]
}

/// A strategy over the full representable instruction space (with
/// encoding-legal immediates).
fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_gpr(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (any_gpr(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm)| Instr::Auipc { rd, imm }),
        (any_gpr(), (-(1i32 << 19)..(1 << 19)).prop_map(|o| o * 2))
            .prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (any_gpr(), any_gpr(), -2048i32..2048)
            .prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (any_branch_op(), any_gpr(), any_gpr(), (-2048i32..2048).prop_map(|o| o * 2))
            .prop_map(|(op, rs1, rs2, offset)| Instr::Branch { op, rs1, rs2, offset }),
        (
            prop_oneof![
                Just(LoadWidth::B),
                Just(LoadWidth::H),
                Just(LoadWidth::W),
                Just(LoadWidth::Bu),
                Just(LoadWidth::Hu)
            ],
            any_gpr(),
            any_gpr(),
            -2048i32..2048
        )
            .prop_map(|(width, rd, rs1, offset)| Instr::Load { width, rd, rs1, offset }),
        (
            prop_oneof![Just(StoreWidth::B), Just(StoreWidth::H), Just(StoreWidth::W)],
            any_gpr(),
            any_gpr(),
            -2048i32..2048
        )
            .prop_map(|(width, rs1, rs2, offset)| Instr::Store { width, rs1, rs2, offset }),
        // Non-shift immediates.
        (
            prop_oneof![
                Just(OpImmOp::Addi),
                Just(OpImmOp::Slti),
                Just(OpImmOp::Sltiu),
                Just(OpImmOp::Xori),
                Just(OpImmOp::Ori),
                Just(OpImmOp::Andi)
            ],
            any_gpr(),
            any_gpr(),
            -2048i32..2048
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        // Shifts: imm restricted to 0..32.
        (
            prop_oneof![Just(OpImmOp::Slli), Just(OpImmOp::Srli), Just(OpImmOp::Srai)],
            any_gpr(),
            any_gpr(),
            0i32..32
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (any_op_op(), any_gpr(), any_gpr(), any_gpr())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        Just(Instr::Fence),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        (any_amo_op(), any_gpr(), any_gpr(), any_gpr(), any::<bool>(), any::<bool>())
            .prop_map(|(op, rd, rs1, rs2, aq, rl)| Instr::Amo { op, rd, rs1, rs2, aq, rl }),
        (any_gpr(), any_gpr(), any::<bool>(), any::<bool>())
            .prop_map(|(rd, rs1, aq, rl)| Instr::LrW { rd, rs1, aq, rl }),
        (any_gpr(), any_gpr(), any_gpr(), any::<bool>(), any::<bool>())
            .prop_map(|(rd, rs1, rs2, aq, rl)| Instr::ScW { rd, rs1, rs2, aq, rl }),
        (any_fpr(), any_gpr(), -2048i32..2048)
            .prop_map(|(rd, rs1, offset)| Instr::Flw { rd, rs1, offset }),
        (any_gpr(), any_fpr(), -2048i32..2048)
            .prop_map(|(rs1, rs2, offset)| Instr::Fsw { rs1, rs2, offset }),
        (any_fp_op(), any_fpr(), any_fpr(), any_fpr())
            .prop_map(|(op, rd, rs1, rs2)| Instr::FpOp { op, rd, rs1, rs2 }),
        // Sqrt canonicalizes rs2 to f0.
        (any_fpr(), any_fpr()).prop_map(|(rd, rs1)| Instr::FpOp {
            op: FpOp::Sqrt,
            rd,
            rs1,
            rs2: Fpr::Ft0
        }),
        (
            prop_oneof![Just(FmaOp::Madd), Just(FmaOp::Msub), Just(FmaOp::Nmsub), Just(FmaOp::Nmadd)],
            any_fpr(),
            any_fpr(),
            any_fpr(),
            any_fpr()
        )
            .prop_map(|(op, rd, rs1, rs2, rs3)| Instr::Fma { op, rd, rs1, rs2, rs3 }),
        (
            prop_oneof![Just(FpCmp::Eq), Just(FpCmp::Lt), Just(FpCmp::Le)],
            any_gpr(),
            any_fpr(),
            any_fpr()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::FpCmp { op, rd, rs1, rs2 }),
        (any_gpr(), any_fpr()).prop_map(|(rd, rs1)| Instr::FcvtWS { rd, rs1 }),
        (any_gpr(), any_fpr()).prop_map(|(rd, rs1)| Instr::FcvtWuS { rd, rs1 }),
        (any_fpr(), any_gpr()).prop_map(|(rd, rs1)| Instr::FcvtSW { rd, rs1 }),
        (any_fpr(), any_gpr()).prop_map(|(rd, rs1)| Instr::FcvtSWu { rd, rs1 }),
        (any_gpr(), any_fpr()).prop_map(|(rd, rs1)| Instr::FmvXW { rd, rs1 }),
        (any_fpr(), any_gpr()).prop_map(|(rd, rs1)| Instr::FmvWX { rd, rs1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// decode(encode(i)) == i over the whole instruction space.
    #[test]
    fn encode_decode_round_trip(instr in any_instr()) {
        let word = instr.encode();
        prop_assert_eq!(decode(word), Ok(instr));
    }

    /// Disassembly never panics and never produces an empty string.
    #[test]
    fn disasm_total(instr in any_instr()) {
        prop_assert!(!instr.to_string().is_empty());
    }

    /// Decoding arbitrary words either fails or re-encodes to an equivalent
    /// instruction (decode is a partial inverse of encode, modulo the
    /// rounding-mode and fence-operand fields the core ignores).
    #[test]
    fn decode_is_partial_inverse(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            let reenc = instr.encode();
            prop_assert_eq!(decode(reenc), Ok(instr));
        }
    }

    /// M-extension division conventions.
    #[test]
    fn div_by_zero_conventions(a in any::<u32>()) {
        prop_assert_eq!(OpOp::Div.eval(a, 0), u32::MAX);
        prop_assert_eq!(OpOp::Divu.eval(a, 0), u32::MAX);
        prop_assert_eq!(OpOp::Rem.eval(a, 0), a);
        prop_assert_eq!(OpOp::Remu.eval(a, 0), a);
    }

    /// Division identity: a == div(a,b)*b + rem(a,b) for non-overflow cases.
    #[test]
    fn div_rem_identity(a in any::<i32>(), b in any::<i32>()) {
        prop_assume!(b != 0 && !(a == i32::MIN && b == -1));
        let q = OpOp::Div.eval(a as u32, b as u32) as i32;
        let r = OpOp::Rem.eval(a as u32, b as u32) as i32;
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    /// AMO min/max are commutative-idempotent on repeated application.
    #[test]
    fn amo_minmax_idempotent(old in any::<u32>(), x in any::<u32>()) {
        for op in [AmoOp::Min, AmoOp::Max, AmoOp::Minu, AmoOp::Maxu, AmoOp::And, AmoOp::Or] {
            let once = op.apply(old, x);
            prop_assert_eq!(op.apply(once, x), once);
        }
    }
}
