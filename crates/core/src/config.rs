//! Machine configuration: geometry, feature knobs and timing parameters.
//!
//! Every architectural feature evaluated in the paper's Figure 10 ablation
//! has a knob here, and the Table II machine configurations are provided as
//! presets.

use hb_mem::Hbm2Config;
use hb_noc::StripConfig;

/// Tile-array shape of one Cell (x = columns, y = rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellDim {
    /// Tiles per row.
    pub x: u8,
    /// Tile rows.
    pub y: u8,
}

impl CellDim {
    /// Total tiles in the Cell.
    pub fn tiles(self) -> usize {
        self.x as usize * self.y as usize
    }
}

/// Full configuration of a simulated HammerBlade machine.
///
/// Construct via a preset ([`MachineConfig::baseline_16x8`] etc.) and adjust
/// fields, e.g. `MachineConfig { ruche_factor: 0, ..MachineConfig::baseline_16x8() }`
/// for the 2-D-mesh ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Tile array per Cell.
    pub cell_dim: CellDim,
    /// Number of Cells simulated together (multi-Cell runs follow the
    /// paper's methodology: independent single-Cell simulations plus an
    /// inter-Cell transfer estimate).
    pub num_cells: u8,

    // ---- Figure 10 feature knobs ----
    /// Horizontal Ruche link skip distance (3 in HB, 0 = plain 2-D mesh).
    pub ruche_factor: u8,
    /// Non-blocking remote loads via the 63-entry scoreboard. When `false`,
    /// every remote memory operation stalls the core until its response
    /// returns (the pre-HB baseline).
    pub non_blocking_loads: bool,
    /// Write-validate cache policy (write misses allocate without fetching).
    pub write_validate: bool,
    /// Load Packet Compression: up to four consecutive sequential remote
    /// loads to the same destination combine into one packet.
    pub load_packet_compression: bool,
    /// Regional IPOLY hashing of Local-DRAM lines across cache banks.
    /// When `false`, lines stripe bank = line mod banks (prone to partition
    /// camping under 2^n strides).
    pub ipoly_hashing: bool,
    /// Non-blocking cache banks with consolidated MSHRs. When `false`,
    /// banks block on any outstanding miss.
    pub non_blocking_cache: bool,

    // ---- Geometry ----
    /// Scratchpad bytes per tile.
    pub spm_bytes: u32,
    /// Instruction-cache bytes per tile (direct-mapped, 16 B lines).
    pub icache_bytes: u32,
    /// Cache-bank sets.
    pub cache_sets: usize,
    /// Cache-bank associativity.
    pub cache_ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// MSHRs per cache bank (outstanding primary misses).
    pub cache_mshrs: usize,
    /// DRAM window per Cell in bytes (EVA offset field is 24 bits).
    pub dram_bytes_per_cell: u32,

    // ---- Timing ----
    /// Fused multiply-add latency (cycles until a dependent may issue).
    pub fma_latency: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Iterative integer divide latency.
    pub div_latency: u64,
    /// FP divide latency (iterative unit, blocking).
    pub fdiv_latency: u64,
    /// FP square-root latency (iterative unit, blocking).
    pub fsqrt_latency: u64,
    /// Short FP op latency (add/sub/compare/convert).
    pub fp_latency: u64,
    /// Local scratchpad load-use latency.
    pub spm_load_latency: u64,
    /// Branch misprediction penalty.
    pub branch_miss_penalty: u64,
    /// Instruction-cache miss penalty.
    pub icache_miss_latency: u64,
    /// Maximum outstanding remote operations per tile (scoreboard size).
    pub max_outstanding: usize,
    /// Router input FIFO depth.
    pub net_fifo_depth: usize,
    /// Cycles one packet occupies a link (>1 models narrower channels).
    pub link_occupancy: u8,
    /// Core clock in MHz (1350 on silicon).
    pub core_freq_mhz: u32,
    /// Memory clock in MHz (1000 for HBM2).
    pub mem_freq_mhz: u32,
    /// HBM2 pseudo-channel parameters (one channel per Cell).
    pub hbm: Hbm2Config,
    /// Cache-strip refill channel parameters.
    pub strip: StripConfig,

    // ---- Resilience ----
    /// Tiles (Cell coordinates, applied to every Cell) configured dead:
    /// launched but never executing, bypassed in the barrier trees, with
    /// their group work redistributed over the `TG_LIVE_*`/`TG_ADOPT` CSRs.
    /// Their network interfaces stay alive so their scratchpads remain
    /// addressable. Empty on every preset.
    pub disabled_tiles: Vec<(u8, u8)>,

    // ---- Host execution (does not affect simulated results) ----
    /// Host worker threads for the tile phase of each cycle (see
    /// `hb_core::parallel`). `1` steps tiles inline; `>1` shards them
    /// across a persistent pool. Results are bit-identical either way.
    /// Presets seed this from the `HB_THREADS` environment variable.
    pub threads: usize,
    /// Telemetry sampling window in core cycles; `0` disables sampling.
    /// Consulted by the `hb-obs` observer factory (see `hb_core::observe`)
    /// when one is installed — without a factory the knob is inert.
    /// Sampling never changes simulated results; runs are bit-identical
    /// at any window.
    pub telemetry_window: u64,
    /// Dynamic race sanitizer (see `hb_core::race`): when `true`, every
    /// shared-location access (remote stores, AMOs, DRAM and SPM traffic)
    /// is stamped `(tile, barrier-epoch, kind)` into a shadow map and
    /// same-epoch conflicting pairs are reported. Checking is read-only:
    /// simulated results are bit-identical with the sanitizer on or off,
    /// and with it off the hot loop pays exactly one always-false branch
    /// (the same pattern as `telemetry_window`/fault hooks).
    pub race_check: bool,
    /// Event-driven tile scheduling (see `hb_core::parallel` and the
    /// "Event-driven core" section of DESIGN.md): quiescent tiles park on
    /// a wake list and are skipped until their wake cycle instead of being
    /// stepped every cycle. Purely a host-execution optimization — every
    /// counter, memory word and telemetry/fault/race observation is
    /// bit-identical with the flag on or off. Presets seed this from
    /// `HB_EVENT_CORE` (`0` = dense, anything else or unset = event).
    pub event_core: bool,
    /// Guest-code profiling (see `hb_core::gprof`): when `true`, every
    /// tile accumulates an exact retired-PC histogram plus per-PC
    /// stall-cycle attribution, folded on demand by
    /// `Machine::guest_profile`. Profiling is read-only — cycles, memory
    /// and every architectural counter are bit-identical with the flag on
    /// or off, and with it off each tile pays exactly one always-false
    /// branch per recorded event (the same pattern as `telemetry_window`
    /// and `race_check`). Host-only: excluded from the canonical text.
    pub profile: bool,
    /// Hang-watchdog probe interval in core cycles: `Machine::run` samples
    /// its progress signature every `watchdog_window` cycles and declares a
    /// hang after two unchanged samples (so detection latency is between
    /// one and two windows). Host-only: the watchdog merely *observes* a
    /// run, so the window is excluded from the canonical text and cannot
    /// change simulated results. Must be at least 1.
    pub watchdog_window: u64,
}

impl MachineConfig {
    /// The paper's baseline HB machine: a 16x8-tile Cell with 32 cache
    /// banks, all architectural features on (Table II column 1).
    pub fn baseline_16x8() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 16, y: 8 },
            num_cells: 1,
            ruche_factor: 3,
            non_blocking_loads: true,
            write_validate: true,
            load_packet_compression: true,
            ipoly_hashing: true,
            non_blocking_cache: true,
            spm_bytes: 4096,
            icache_bytes: 4096,
            cache_sets: 64,
            cache_ways: 8,
            line_bytes: 64,
            cache_mshrs: 8,
            dram_bytes_per_cell: 16 << 20,
            fma_latency: 3,
            mul_latency: 2,
            div_latency: 16,
            fdiv_latency: 12,
            fsqrt_latency: 12,
            fp_latency: 2,
            spm_load_latency: 2,
            branch_miss_penalty: 2,
            icache_miss_latency: 40,
            max_outstanding: 63,
            net_fifo_depth: 4,
            link_occupancy: 1,
            core_freq_mhz: 1350,
            mem_freq_mhz: 1000,
            hbm: Hbm2Config::default(),
            strip: StripConfig::default(),
            disabled_tiles: Vec::new(),
            threads: crate::parallel::threads_from_env(),
            telemetry_window: 0,
            race_check: false,
            event_core: crate::parallel::event_core_from_env(),
            profile: false,
            watchdog_window: 10_000,
        }
    }

    /// Table II column 2: Cell doubled vertically (16x16). Twice the tiles,
    /// same cache banks (half the cache capacity per tile).
    pub fn cell_16x16() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 16, y: 16 },
            ..MachineConfig::baseline_16x8()
        }
    }

    /// Table II column 3: Cell doubled horizontally (32x8). Twice the tiles
    /// *and* twice the cache banks/bandwidth, at the cost of bisection
    /// pressure.
    pub fn cell_32x8() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 32, y: 8 },
            ..MachineConfig::baseline_16x8()
        }
    }

    /// Table II column 4: two 16x8 Cells (2x16x8), each with its own
    /// Local-DRAM address space.
    pub fn two_cells_16x8() -> MachineConfig {
        MachineConfig {
            num_cells: 2,
            ..MachineConfig::baseline_16x8()
        }
    }

    /// The Figure 10 starting point: a "Baseline Manycore" normalized to a
    /// TILE64-class design — quarter core density (an 8x4 array in the same
    /// area), half-width router channels, half the cache, and none of HB's
    /// architectural features.
    pub fn baseline_manycore() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 8, y: 4 },
            ruche_factor: 0,
            non_blocking_loads: false,
            write_validate: false,
            load_packet_compression: false,
            ipoly_hashing: false,
            non_blocking_cache: false,
            cache_sets: 32,
            link_occupancy: 2,
            net_fifo_depth: 2,
            ..MachineConfig::baseline_16x8()
        }
    }

    /// The "Cellular Baseline" of Figure 10: HB's physical normalization
    /// (full router bandwidth, full cache, full core density) with all
    /// architectural features still off.
    pub fn cellular_baseline() -> MachineConfig {
        MachineConfig {
            ruche_factor: 0,
            non_blocking_loads: false,
            write_validate: false,
            load_packet_compression: false,
            ipoly_hashing: false,
            non_blocking_cache: false,
            ..MachineConfig::baseline_16x8()
        }
    }

    /// Cache banks per Cell (two strips of `cell_dim.x`).
    pub fn banks_per_cell(&self) -> usize {
        2 * self.cell_dim.x as usize
    }

    /// Cache capacity per Cell in bytes.
    pub fn cell_cache_bytes(&self) -> usize {
        self.banks_per_cell() * self.cache_sets * self.cache_ways * self.line_bytes as usize
    }

    /// Network grid width (tile columns).
    pub fn net_width(&self) -> u8 {
        self.cell_dim.x
    }

    /// Network grid height (tile rows plus the two cache-bank strips).
    pub fn net_height(&self) -> u8 {
        self.cell_dim.y + 2
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] describing why the configuration
    /// is impossible (zero tiles, non-power-of-two bank count, SPM too
    /// small, ...).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cell_dim.x == 0 || self.cell_dim.y == 0 {
            return Err(ConfigError::EmptyCell { dim: self.cell_dim });
        }
        if !self.banks_per_cell().is_power_of_two() {
            return Err(ConfigError::BankCountNotPowerOfTwo {
                banks: self.banks_per_cell(),
            });
        }
        if self.spm_bytes < 256 {
            return Err(ConfigError::SpmTooSmall {
                bytes: self.spm_bytes,
            });
        }
        if self.max_outstanding < 1 {
            return Err(ConfigError::ZeroScoreboard);
        }
        if self.num_cells < 1 {
            return Err(ConfigError::ZeroCells);
        }
        if self.watchdog_window == 0 {
            return Err(ConfigError::ZeroWatchdogWindow);
        }
        if self.dram_bytes_per_cell > (16 << 20) {
            return Err(ConfigError::DramWindowTooLarge {
                bytes: self.dram_bytes_per_cell,
            });
        }
        if let Some(&(x, y)) = self
            .disabled_tiles
            .iter()
            .find(|&&(x, y)| x >= self.cell_dim.x || y >= self.cell_dim.y)
        {
            return Err(ConfigError::DisabledTileOutOfRange {
                tile: (x, y),
                dim: self.cell_dim,
            });
        }
        Ok(())
    }

    /// Like [`MachineConfig::validate`], for call sites where an invalid
    /// configuration is a programming error.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message on an impossible
    /// configuration.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid machine configuration: {e}");
        }
    }
}

impl MachineConfig {
    /// Version of the canonical text layout produced by
    /// [`MachineConfig::canonical_text`]. Bump whenever a field is added,
    /// removed or re-interpreted so stale cached results never alias.
    pub const CANONICAL_VERSION: u32 = 1;

    /// Stable canonical serialization: every simulated-behaviour field in a
    /// fixed order as `key=value` pairs joined by `;`, prefixed with a
    /// layout version. Host-execution knobs that cannot change simulated
    /// results (`threads`) are deliberately excluded, so the text — and any
    /// content hash derived from it — is identical across `HB_THREADS`
    /// settings.
    pub fn canonical_text(&self) -> String {
        let disabled = self
            .disabled_tiles
            .iter()
            .map(|(x, y)| format!("{x},{y}"))
            .collect::<Vec<_>>()
            .join("+");
        format!(
            "cfgv={v};cell={cx}x{cy};cells={cells};ruche={ruche};nbl={nbl};wv={wv};\
             lpc={lpc};ipoly={ipoly};nbc={nbc};spm={spm};icache={ic};sets={sets};\
             ways={ways};line={line};mshrs={mshrs};dram={dram};fma={fma};mul={mul};\
             div={div};fdiv={fdiv};fsqrt={fsqrt};fp={fp};spmld={spmld};bmiss={bmiss};\
             icmiss={icmiss};outst={outst};fifo={fifo};linkocc={linkocc};\
             coremhz={coremhz};memmhz={memmhz};hbm={hbanks},{hrow},{hline},{hburst},\
             {hrcd},{hrp},{hcas},{hras},{hccd},{hrfc},{hrefi},{hqd};\
             strip={sbanks},{sbpc},{slat},{sskip};disabled={disabled};telw={telw}",
            v = MachineConfig::CANONICAL_VERSION,
            cx = self.cell_dim.x,
            cy = self.cell_dim.y,
            cells = self.num_cells,
            ruche = self.ruche_factor,
            nbl = u8::from(self.non_blocking_loads),
            wv = u8::from(self.write_validate),
            lpc = u8::from(self.load_packet_compression),
            ipoly = u8::from(self.ipoly_hashing),
            nbc = u8::from(self.non_blocking_cache),
            spm = self.spm_bytes,
            ic = self.icache_bytes,
            sets = self.cache_sets,
            ways = self.cache_ways,
            line = self.line_bytes,
            mshrs = self.cache_mshrs,
            dram = self.dram_bytes_per_cell,
            fma = self.fma_latency,
            mul = self.mul_latency,
            div = self.div_latency,
            fdiv = self.fdiv_latency,
            fsqrt = self.fsqrt_latency,
            fp = self.fp_latency,
            spmld = self.spm_load_latency,
            bmiss = self.branch_miss_penalty,
            icmiss = self.icache_miss_latency,
            outst = self.max_outstanding,
            fifo = self.net_fifo_depth,
            linkocc = self.link_occupancy,
            coremhz = self.core_freq_mhz,
            memmhz = self.mem_freq_mhz,
            hbanks = self.hbm.banks,
            hrow = self.hbm.row_bytes,
            hline = self.hbm.line_bytes,
            hburst = self.hbm.burst_cycles,
            hrcd = self.hbm.t_rcd,
            hrp = self.hbm.t_rp,
            hcas = self.hbm.t_cas,
            hras = self.hbm.t_ras,
            hccd = self.hbm.t_ccd,
            hrfc = self.hbm.t_rfc,
            hrefi = self.hbm.t_refi,
            hqd = self.hbm.queue_depth,
            sbanks = self.strip.banks,
            sbpc = self.strip.bytes_per_cycle,
            slat = self.strip.base_latency,
            sskip = self.strip.skip_distance,
            disabled = disabled,
            telw = self.telemetry_window,
        )
    }

    /// Parses a [`MachineConfig::canonical_text`] string back into a
    /// configuration. `threads` is not part of the canonical form and is
    /// restored to `1`; callers that simulate set it explicitly.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing, unknown or malformed field.
    /// A version other than [`MachineConfig::CANONICAL_VERSION`] is an
    /// error — stale text must not silently reparse.
    pub fn from_canonical_text(text: &str) -> Result<MachineConfig, String> {
        let mut map = std::collections::BTreeMap::new();
        for part in text.split(';') {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed field {part:?}"))?;
            if map.insert(k.trim(), v).is_some() {
                return Err(format!("duplicate field {k:?}"));
            }
        }
        fn req<'a>(
            map: &std::collections::BTreeMap<&str, &'a str>,
            key: &str,
        ) -> Result<&'a str, String> {
            map.get(key)
                .copied()
                .ok_or_else(|| format!("missing field {key:?}"))
        }
        fn num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String> {
            v.parse()
                .map_err(|_| format!("bad value for {key:?}: {v:?}"))
        }
        fn get<T: std::str::FromStr>(
            map: &std::collections::BTreeMap<&str, &str>,
            key: &str,
        ) -> Result<T, String> {
            num(key, req(map, key)?)
        }
        fn get_bool(
            map: &std::collections::BTreeMap<&str, &str>,
            key: &str,
        ) -> Result<bool, String> {
            Ok(get::<u8>(map, key)? != 0)
        }
        fn fields<'a, const N: usize>(key: &str, v: &'a str) -> Result<[&'a str; N], String> {
            let parts: Vec<&str> = v.split(',').collect();
            parts
                .try_into()
                .map_err(|_| format!("{key:?} wants {N} comma-separated values, got {v:?}"))
        }

        let version: u32 = get(&map, "cfgv")?;
        if version != MachineConfig::CANONICAL_VERSION {
            return Err(format!(
                "canonical config version {version} != supported {}",
                MachineConfig::CANONICAL_VERSION
            ));
        }
        let cell = req(&map, "cell")?;
        let (cx, cy) = cell
            .split_once('x')
            .ok_or_else(|| format!("bad cell dim {cell:?}"))?;
        let hbm = fields::<12>("hbm", req(&map, "hbm")?)?;
        let strip = fields::<4>("strip", req(&map, "strip")?)?;
        let disabled_text = req(&map, "disabled")?;
        let mut disabled_tiles = Vec::new();
        if !disabled_text.is_empty() {
            for pair in disabled_text.split('+') {
                let (x, y) = pair
                    .split_once(',')
                    .ok_or_else(|| format!("bad disabled tile {pair:?}"))?;
                disabled_tiles.push((num("disabled", x)?, num("disabled", y)?));
            }
        }
        let cfg = MachineConfig {
            cell_dim: CellDim {
                x: num("cell", cx)?,
                y: num("cell", cy)?,
            },
            num_cells: get(&map, "cells")?,
            ruche_factor: get(&map, "ruche")?,
            non_blocking_loads: get_bool(&map, "nbl")?,
            write_validate: get_bool(&map, "wv")?,
            load_packet_compression: get_bool(&map, "lpc")?,
            ipoly_hashing: get_bool(&map, "ipoly")?,
            non_blocking_cache: get_bool(&map, "nbc")?,
            spm_bytes: get(&map, "spm")?,
            icache_bytes: get(&map, "icache")?,
            cache_sets: get(&map, "sets")?,
            cache_ways: get(&map, "ways")?,
            line_bytes: get(&map, "line")?,
            cache_mshrs: get(&map, "mshrs")?,
            dram_bytes_per_cell: get(&map, "dram")?,
            fma_latency: get(&map, "fma")?,
            mul_latency: get(&map, "mul")?,
            div_latency: get(&map, "div")?,
            fdiv_latency: get(&map, "fdiv")?,
            fsqrt_latency: get(&map, "fsqrt")?,
            fp_latency: get(&map, "fp")?,
            spm_load_latency: get(&map, "spmld")?,
            branch_miss_penalty: get(&map, "bmiss")?,
            icache_miss_latency: get(&map, "icmiss")?,
            max_outstanding: get(&map, "outst")?,
            net_fifo_depth: get(&map, "fifo")?,
            link_occupancy: get(&map, "linkocc")?,
            core_freq_mhz: get(&map, "coremhz")?,
            mem_freq_mhz: get(&map, "memmhz")?,
            hbm: Hbm2Config {
                banks: num("hbm.banks", hbm[0])?,
                row_bytes: num("hbm.row_bytes", hbm[1])?,
                line_bytes: num("hbm.line_bytes", hbm[2])?,
                burst_cycles: num("hbm.burst_cycles", hbm[3])?,
                t_rcd: num("hbm.t_rcd", hbm[4])?,
                t_rp: num("hbm.t_rp", hbm[5])?,
                t_cas: num("hbm.t_cas", hbm[6])?,
                t_ras: num("hbm.t_ras", hbm[7])?,
                t_ccd: num("hbm.t_ccd", hbm[8])?,
                t_rfc: num("hbm.t_rfc", hbm[9])?,
                t_refi: num("hbm.t_refi", hbm[10])?,
                queue_depth: num("hbm.queue_depth", hbm[11])?,
            },
            strip: StripConfig {
                banks: num("strip.banks", strip[0])?,
                bytes_per_cycle: num("strip.bytes_per_cycle", strip[1])?,
                base_latency: num("strip.base_latency", strip[2])?,
                skip_distance: num("strip.skip_distance", strip[3])?,
            },
            disabled_tiles,
            threads: 1,
            telemetry_window: get(&map, "telw")?,
            race_check: false,
            event_core: true,
            profile: false,
            watchdog_window: 10_000,
        };
        // 34 top-level keys: every field accounted for, nothing unknown.
        if map.len() != 34 {
            return Err(format!("expected 34 canonical fields, got {}", map.len()));
        }
        Ok(cfg)
    }
}

/// Why a [`MachineConfig`] is internally inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A Cell dimension is zero.
    EmptyCell {
        /// The offending shape.
        dim: CellDim,
    },
    /// IPOLY hashing and the strip network require a power-of-two bank
    /// count (banks = 2 x cell width).
    BankCountNotPowerOfTwo {
        /// The computed bank count.
        banks: usize,
    },
    /// The scratchpad cannot hold even a minimal stack frame.
    SpmTooSmall {
        /// The configured size.
        bytes: u32,
    },
    /// The remote-op scoreboard must hold at least one entry.
    ZeroScoreboard,
    /// A machine needs at least one Cell.
    ZeroCells,
    /// The hang watchdog cannot probe on a zero-cycle interval.
    ZeroWatchdogWindow,
    /// The Local/Group-DRAM EVA offset field is 24 bits, capping the
    /// per-Cell window at 16 MiB.
    DramWindowTooLarge {
        /// The configured size.
        bytes: u32,
    },
    /// A configured-dead tile lies outside the Cell's tile array.
    DisabledTileOutOfRange {
        /// The offending coordinates.
        tile: (u8, u8),
        /// The Cell shape.
        dim: CellDim,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyCell { dim } => {
                write!(f, "empty cell: {}x{} tiles", dim.x, dim.y)
            }
            ConfigError::BankCountNotPowerOfTwo { banks } => {
                write!(f, "bank count {banks} must be a power of two")
            }
            ConfigError::SpmTooSmall { bytes } => {
                write!(f, "SPM of {bytes} bytes is too small (minimum 256)")
            }
            ConfigError::ZeroScoreboard => {
                write!(f, "max_outstanding must be at least 1")
            }
            ConfigError::ZeroCells => write!(f, "num_cells must be at least 1"),
            ConfigError::ZeroWatchdogWindow => {
                write!(f, "watchdog_window must be at least 1 cycle")
            }
            ConfigError::DisabledTileOutOfRange { tile, dim } => {
                write!(
                    f,
                    "disabled tile ({},{}) outside the {}x{} cell",
                    tile.0, tile.1, dim.x, dim.y
                )
            }
            ConfigError::DramWindowTooLarge { bytes } => {
                write!(
                    f,
                    "DRAM window of {bytes} bytes exceeds the 24-bit EVA offset field (16 MiB)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_geometry() {
        // Baseline: 32 banks, 1 MB of cache per Cell.
        let c = MachineConfig::baseline_16x8();
        c.validate().unwrap();
        assert_eq!(c.banks_per_cell(), 32);
        assert_eq!(c.cell_cache_bytes(), 1 << 20);
        assert_eq!(c.cell_dim.tiles(), 128);

        // 32x8: 64 banks, 2 MB.
        let c = MachineConfig::cell_32x8();
        c.validate().unwrap();
        assert_eq!(c.banks_per_cell(), 64);
        assert_eq!(c.cell_cache_bytes(), 2 << 20);

        // 16x16: same banks as baseline, twice the tiles.
        let c = MachineConfig::cell_16x16();
        c.validate().unwrap();
        assert_eq!(c.banks_per_cell(), 32);
        assert_eq!(c.cell_dim.tiles(), 256);
    }

    #[test]
    fn validate_reports_each_inconsistency() {
        let base = MachineConfig::baseline_16x8();

        let c = MachineConfig {
            cell_dim: CellDim { x: 0, y: 8 },
            ..base.clone()
        };
        assert!(matches!(c.validate(), Err(ConfigError::EmptyCell { .. })));

        let c = MachineConfig {
            cell_dim: CellDim { x: 6, y: 4 },
            ..base.clone()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::BankCountNotPowerOfTwo { banks: 12 })
        );

        let c = MachineConfig {
            spm_bytes: 128,
            ..base.clone()
        };
        assert_eq!(c.validate(), Err(ConfigError::SpmTooSmall { bytes: 128 }));

        let c = MachineConfig {
            max_outstanding: 0,
            ..base.clone()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroScoreboard));

        let c = MachineConfig {
            num_cells: 0,
            ..base.clone()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroCells));

        let c = MachineConfig {
            watchdog_window: 0,
            ..base.clone()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroWatchdogWindow));

        let c = MachineConfig {
            dram_bytes_per_cell: 32 << 20,
            ..base.clone()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::DramWindowTooLarge { bytes: 32 << 20 })
        );

        let c = MachineConfig {
            disabled_tiles: vec![(1, 1), (16, 0)],
            ..base
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::DisabledTileOutOfRange {
                tile: (16, 0),
                dim: CellDim { x: 16, y: 8 }
            })
        );
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn validate_or_panic_panics_on_bad_config() {
        MachineConfig {
            num_cells: 0,
            ..MachineConfig::baseline_16x8()
        }
        .validate_or_panic();
    }

    #[test]
    fn canonical_text_roundtrips_every_preset() {
        for cfg in [
            MachineConfig::baseline_16x8(),
            MachineConfig::cell_16x16(),
            MachineConfig::cell_32x8(),
            MachineConfig::two_cells_16x8(),
            MachineConfig::baseline_manycore(),
            MachineConfig::cellular_baseline(),
            MachineConfig {
                disabled_tiles: vec![(1, 1), (0, 2)],
                telemetry_window: 500,
                ..MachineConfig::baseline_16x8()
            },
        ] {
            let text = cfg.canonical_text();
            let back = MachineConfig::from_canonical_text(&text).unwrap();
            // threads/event_core/profile are host-only and restored to their
            // fixed values; everything else must survive the round trip
            // bit-exactly.
            let normalized = MachineConfig {
                threads: 1,
                event_core: true,
                profile: false,
                ..cfg
            };
            assert_eq!(back, normalized, "roundtrip of {text}");
            assert_eq!(back.canonical_text(), text);
        }
    }

    #[test]
    fn canonical_text_ignores_threads_and_sees_every_other_field() {
        let base = MachineConfig::baseline_16x8();
        let a = MachineConfig {
            threads: 1,
            ..base.clone()
        };
        let b = MachineConfig {
            threads: 8,
            ..base.clone()
        };
        assert_eq!(
            a.canonical_text(),
            b.canonical_text(),
            "threads must not leak into the canonical form"
        );
        let ev_on = MachineConfig {
            event_core: true,
            ..base.clone()
        };
        let ev_off = MachineConfig {
            event_core: false,
            ..base.clone()
        };
        assert_eq!(
            ev_on.canonical_text(),
            ev_off.canonical_text(),
            "event_core must not leak into the canonical form"
        );
        let prof_on = MachineConfig {
            profile: true,
            ..base.clone()
        };
        assert_eq!(
            prof_on.canonical_text(),
            base.canonical_text(),
            "profile must not leak into the canonical form"
        );

        // Mutating any simulated-behaviour field must change the text (and
        // therefore any content hash derived from it).
        let mutations: Vec<(&str, MachineConfig)> = vec![
            (
                "cell_dim",
                MachineConfig {
                    cell_dim: CellDim { x: 8, y: 8 },
                    ..base.clone()
                },
            ),
            (
                "num_cells",
                MachineConfig {
                    num_cells: 2,
                    ..base.clone()
                },
            ),
            (
                "ruche_factor",
                MachineConfig {
                    ruche_factor: 0,
                    ..base.clone()
                },
            ),
            (
                "non_blocking_loads",
                MachineConfig {
                    non_blocking_loads: false,
                    ..base.clone()
                },
            ),
            (
                "write_validate",
                MachineConfig {
                    write_validate: false,
                    ..base.clone()
                },
            ),
            (
                "load_packet_compression",
                MachineConfig {
                    load_packet_compression: false,
                    ..base.clone()
                },
            ),
            (
                "ipoly_hashing",
                MachineConfig {
                    ipoly_hashing: false,
                    ..base.clone()
                },
            ),
            (
                "non_blocking_cache",
                MachineConfig {
                    non_blocking_cache: false,
                    ..base.clone()
                },
            ),
            (
                "spm_bytes",
                MachineConfig {
                    spm_bytes: 8192,
                    ..base.clone()
                },
            ),
            (
                "icache_bytes",
                MachineConfig {
                    icache_bytes: 8192,
                    ..base.clone()
                },
            ),
            (
                "cache_sets",
                MachineConfig {
                    cache_sets: 128,
                    ..base.clone()
                },
            ),
            (
                "cache_ways",
                MachineConfig {
                    cache_ways: 4,
                    ..base.clone()
                },
            ),
            (
                "line_bytes",
                MachineConfig {
                    line_bytes: 32,
                    ..base.clone()
                },
            ),
            (
                "cache_mshrs",
                MachineConfig {
                    cache_mshrs: 4,
                    ..base.clone()
                },
            ),
            (
                "dram_bytes_per_cell",
                MachineConfig {
                    dram_bytes_per_cell: 8 << 20,
                    ..base.clone()
                },
            ),
            (
                "fma_latency",
                MachineConfig {
                    fma_latency: 4,
                    ..base.clone()
                },
            ),
            (
                "mul_latency",
                MachineConfig {
                    mul_latency: 3,
                    ..base.clone()
                },
            ),
            (
                "div_latency",
                MachineConfig {
                    div_latency: 17,
                    ..base.clone()
                },
            ),
            (
                "fdiv_latency",
                MachineConfig {
                    fdiv_latency: 13,
                    ..base.clone()
                },
            ),
            (
                "fsqrt_latency",
                MachineConfig {
                    fsqrt_latency: 13,
                    ..base.clone()
                },
            ),
            (
                "fp_latency",
                MachineConfig {
                    fp_latency: 3,
                    ..base.clone()
                },
            ),
            (
                "spm_load_latency",
                MachineConfig {
                    spm_load_latency: 3,
                    ..base.clone()
                },
            ),
            (
                "branch_miss_penalty",
                MachineConfig {
                    branch_miss_penalty: 3,
                    ..base.clone()
                },
            ),
            (
                "icache_miss_latency",
                MachineConfig {
                    icache_miss_latency: 41,
                    ..base.clone()
                },
            ),
            (
                "max_outstanding",
                MachineConfig {
                    max_outstanding: 32,
                    ..base.clone()
                },
            ),
            (
                "net_fifo_depth",
                MachineConfig {
                    net_fifo_depth: 8,
                    ..base.clone()
                },
            ),
            (
                "link_occupancy",
                MachineConfig {
                    link_occupancy: 2,
                    ..base.clone()
                },
            ),
            (
                "core_freq_mhz",
                MachineConfig {
                    core_freq_mhz: 1000,
                    ..base.clone()
                },
            ),
            (
                "mem_freq_mhz",
                MachineConfig {
                    mem_freq_mhz: 800,
                    ..base.clone()
                },
            ),
            (
                "hbm",
                MachineConfig {
                    hbm: Hbm2Config {
                        t_cas: 15,
                        ..base.hbm.clone()
                    },
                    ..base.clone()
                },
            ),
            (
                "strip",
                MachineConfig {
                    strip: StripConfig {
                        base_latency: 3,
                        ..base.strip
                    },
                    ..base.clone()
                },
            ),
            (
                "disabled_tiles",
                MachineConfig {
                    disabled_tiles: vec![(1, 1)],
                    ..base.clone()
                },
            ),
            (
                "telemetry_window",
                MachineConfig {
                    telemetry_window: 100,
                    ..base.clone()
                },
            ),
        ];
        let baseline_text = base.canonical_text();
        for (field, cfg) in mutations {
            assert_ne!(
                cfg.canonical_text(),
                baseline_text,
                "mutating {field} must change the canonical text"
            );
        }
    }

    #[test]
    fn canonical_parse_rejects_garbage() {
        assert!(MachineConfig::from_canonical_text("").is_err());
        assert!(MachineConfig::from_canonical_text("cfgv=1").is_err());
        let good = MachineConfig::baseline_16x8().canonical_text();
        // Wrong version must not silently reparse.
        let stale = good.replacen("cfgv=1", "cfgv=0", 1);
        assert!(MachineConfig::from_canonical_text(&stale).is_err());
        // A truncated tail (missing fields) is rejected.
        let cut = &good[..good.len() / 2];
        assert!(MachineConfig::from_canonical_text(cut).is_err());
    }

    #[test]
    fn presets_differ_only_in_documented_knobs() {
        let base = MachineConfig::baseline_16x8();
        let cellular = MachineConfig::cellular_baseline();
        assert_eq!(base.cell_dim, cellular.cell_dim);
        assert!(!cellular.non_blocking_loads);
        assert!(base.non_blocking_loads);
    }
}
