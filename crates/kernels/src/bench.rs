//! The [`Benchmark`] abstraction and the counter bundle figures draw from.

use hb_cache::CacheStats;
use hb_core::profile::CellProfile;
use hb_core::{CoreStats, Machine, MachineConfig, SimError};
use hb_mem::Hbm2Stats;
use hb_noc::LinkStats;

/// Input scale for a benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Seconds-long debug-mode runs; used by unit/integration tests.
    Tiny,
    /// Default benchmark scale (release mode).
    Small,
    /// Larger sweeps for the figure harnesses.
    Large,
}

/// Hardware counters gathered from one validated benchmark run.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name.
    pub name: &'static str,
    /// Cycles from launch to the last `ecall`.
    pub cycles: u64,
    /// Aggregated per-core counters (Figure 11 top).
    pub core: CoreStats,
    /// HBM2 utilization (Figure 11 bottom).
    pub hbm: Hbm2Stats,
    /// Cache-bank counters.
    pub cache: CacheStats,
    /// Request-network bisection counters (Figure 14).
    pub bisection: LinkStats,
    /// Number of bisection links (normalization).
    pub bisection_links: usize,
    /// Work units completed (1.0 unless the kernel's problem size scales
    /// with the machine, e.g. Jacobi's grid); cross-configuration
    /// comparisons should compare `work_units / cycles`.
    pub work_units: f64,
    /// Full §III.D profile snapshot (heatmaps, per-bank tables,
    /// bottleneck diagnosis) of Cell 0.
    pub profile: CellProfile,
    /// Tile-phase ticks actually executed across all Cells — host-side
    /// scheduler work, not an architectural counter; never compare it
    /// between schedules.
    pub ticks_stepped: u64,
    /// Tile-phase ticks the event scheduler elided (0 when dense).
    pub ticks_skipped: u64,
}

impl BenchStats {
    /// Collects counters from Cell 0 of a finished machine.
    pub fn collect(name: &'static str, cycles: u64, machine: &Machine) -> BenchStats {
        let cell = machine.cell(0);
        let (ticks_stepped, ticks_skipped) = machine.tile_ticks();
        BenchStats {
            name,
            cycles,
            core: cell.core_stats(),
            hbm: *cell.hbm_stats(),
            cache: cell.cache_stats(),
            bisection: cell.request_bisection(),
            bisection_links: cell.request_bisection_links(),
            work_units: 1.0,
            profile: CellProfile::capture(cell),
            ticks_stepped,
            ticks_skipped,
        }
    }

    /// Share of tile-phase ticks the event scheduler skipped, in
    /// `[0, 1]` (0.0 for a dense run or an empty machine).
    pub fn skipped_share(&self) -> f64 {
        let total = self.ticks_stepped + self.ticks_skipped;
        if total == 0 {
            return 0.0;
        }
        self.ticks_skipped as f64 / total as f64
    }

    /// Sets the work-unit count (builder style).
    pub fn with_work(mut self, work_units: f64) -> BenchStats {
        self.work_units = work_units;
        self
    }

    /// Work per cycle, the machine-size-independent figure of merit.
    pub fn throughput(&self) -> f64 {
        self.work_units / self.cycles.max(1) as f64
    }

    /// Fraction of bisection-link cycle-slots carrying packets.
    pub fn bisection_utilization(&self) -> f64 {
        if self.cycles == 0 || self.bisection_links == 0 {
            return 0.0;
        }
        self.bisection.busy as f64 / (self.cycles as f64 * self.bisection_links as f64)
    }
}

/// A runnable, self-validating benchmark.
pub trait Benchmark: Sync {
    /// Short name (paper Table I).
    fn name(&self) -> &'static str;

    /// The Berkeley dwarf it covers.
    fn dwarf(&self) -> &'static str;

    /// Builds a machine with `cfg`, runs the kernel at `size`, validates
    /// the output against the golden reference and returns the counters.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults/timeouts.
    ///
    /// # Panics
    ///
    /// Panics if the simulated output does not match the golden reference —
    /// a correctness bug, never acceptable in a benchmark result.
    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError>;
}

/// Cycle budget scaled to the machine size (debug builds are ~50x slower
/// than the silicon, so budgets are generous).
pub fn cycle_budget(cfg: &MachineConfig) -> u64 {
    let _ = cfg;
    200_000_000
}
