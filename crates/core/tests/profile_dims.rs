//! §III.D profiling tools across non-baseline Cell shapes.
//!
//! The fig15 resource-doubling sweeps build Cells well away from the 16x8
//! baseline; capture, heatmaps, hottest-tile navigation and the full
//! report must work on all of them (regression: tooling hardcoding the
//! baseline shape would panic or render truncated grids here).

use hb_asm::Assembler;
use hb_core::profile::{hottest_tile, CellProfile};
use hb_core::{pgas, CellDim, HbOps, Machine, MachineConfig, StallKind};
use std::sync::Arc;

/// Runs a small all-tiles kernel (rank into DRAM, then barrier) and
/// captures the resulting profile.
fn profiled(dim: CellDim) -> CellProfile {
    let cfg = MachineConfig {
        cell_dim: dim,
        ..MachineConfig::baseline_16x8()
    };
    let tiles = u32::from(dim.x) * u32::from(dim.y);
    let mut m = Machine::new(cfg);
    let mut a = Assembler::new();
    a.tg_rank(hb_isa::Gpr::T0, hb_isa::Gpr::T6);
    a.slli(hb_isa::Gpr::T1, hb_isa::Gpr::T0, 2);
    a.add(hb_isa::Gpr::A0, hb_isa::Gpr::A0, hb_isa::Gpr::T1);
    a.sw(hb_isa::Gpr::T0, hb_isa::Gpr::A0, 0);
    a.fence();
    a.barrier(hb_isa::Gpr::T6);
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    let out = m.cell_mut(0).alloc(tiles * 4, 64);
    m.launch(0, &p, &[pgas::local_dram(out)]);
    m.run(1_000_000).unwrap();
    CellProfile::capture(m.cell(0))
}

fn check_dim(dim: CellDim) {
    let p = profiled(dim);
    assert_eq!(p.dim, (dim.x, dim.y));
    assert_eq!(p.tiles.len(), dim.x as usize * dim.y as usize);
    assert_eq!(p.east_busy.len(), dim.x as usize * dim.y as usize);

    // Every grid renderer must emit exactly dim.y rows of dim.x glyphs.
    for map in [p.tile_heatmap(), p.link_heatmap()] {
        let rows: Vec<&str> = map.lines().skip(1).collect();
        assert_eq!(rows.len(), dim.y as usize, "grid rows for {dim:?}");
        for row in rows {
            assert_eq!(row.chars().count(), dim.x as usize, "grid cols for {dim:?}");
        }
    }
    let stall_map = p.stall_heatmap(StallKind::Barrier);
    assert_eq!(stall_map.lines().skip(1).count(), dim.y as usize);

    // Hottest-tile navigation stays inside the array.
    let (x, y, share) = hottest_tile(&p, StallKind::Barrier);
    assert!(x < dim.x && y < dim.y);
    assert!((0.0..=1.0).contains(&share));

    // The full report renders (includes the bottleneck verdict).
    let report = p.report();
    for needle in ["tile utilization", "stall blame", "HBM2", "verdict"] {
        assert!(report.contains(needle), "{dim:?} report missing {needle}");
    }
    assert!(p.bottleneck().contains("% of cycles") || p.bottleneck().contains("DRAM"));
}

#[test]
fn profile_tools_handle_1x1() {
    check_dim(CellDim { x: 1, y: 1 });
}

#[test]
fn profile_tools_handle_16x16() {
    check_dim(CellDim { x: 16, y: 16 });
}

#[test]
fn profile_tools_handle_32x8() {
    check_dim(CellDim { x: 32, y: 8 });
}
