//! Fault injection, hang diagnosis and degraded-mode tests: seeded
//! `hb-fault` plans applied to the cycle-level machine, end to end.

use hb_asm::Assembler;
use hb_core::{pgas, CellDim, HbOps, Machine, MachineConfig, SimError};
use hb_fault::{InjectionPlan, PlanShape, Site, FREEZE_FOREVER};
use hb_isa::Gpr::*;
use std::sync::Arc;

fn small_cfg() -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 4, y: 2 },
        ..MachineConfig::baseline_16x8()
    }
}

fn solo_cfg() -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 1, y: 1 },
        ..MachineConfig::baseline_16x8()
    }
}

/// `s0 = 5`, a ~1200-cycle delay loop, then `out[0] = s0`.
fn delay_store_kernel() -> Arc<hb_asm::Program> {
    let mut a = Assembler::new();
    a.li(S0, 5);
    a.li(T0, 400);
    let top = a.here();
    a.addi(T0, T0, -1);
    a.bnez(T0, top);
    a.sw(S0, A0, 0);
    a.fence();
    a.ecall();
    Arc::new(a.assemble(0).unwrap())
}

/// Regression for the `running_tiles` undercount: tiles parked inside the
/// hardware barrier have not retired `ecall` and must be counted as
/// running when the run times out. Rank 0 exits immediately without
/// joining, so the other 7 wait forever.
#[test]
fn timeout_counts_barrier_parked_tiles() {
    let mut m = Machine::new(small_cfg());
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    let fin = a.new_label();
    a.beqz(T0, fin);
    a.barrier(T6);
    a.bind(fin);
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[]);
    match m.run(25_000) {
        Err(SimError::Timeout {
            running_tiles,
            hang,
            ..
        }) => {
            assert_eq!(running_tiles, 7, "parked barrier waiters must count");
            let hang = hang.expect("watchdog should classify the hang");
            assert_eq!(hang.class.label(), "barrier-stall");
            let rendered = hang.to_string();
            assert!(rendered.contains("barrier"), "{rendered}");
        }
        other => panic!("expected timeout, got {other:?}"),
    }
}

/// Degraded mode: with two tiles disabled the live CSRs renumber the
/// survivors densely, the barrier bypasses the dead tiles, and each of
/// the first k live tiles adopts the k-th dead tile.
#[test]
fn live_csrs_and_adoption_with_disabled_tiles() {
    let mut cfg = small_cfg();
    cfg.disabled_tiles = vec![(1, 0), (2, 1)];
    let mut m = Machine::new(cfg);
    // out[tg_rank*3 ..] = [live_rank, live_size, adopt]
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    a.tg_live_rank(S0, T6);
    a.tg_live_size(S1, T6);
    a.tg_adopt(S2, T6);
    a.barrier(T6);
    a.li(T1, 12);
    a.mul(T0, T0, T1);
    a.add(A0, A0, T0);
    a.sw(S0, A0, 0);
    a.sw(S1, A0, 4);
    a.sw(S2, A0, 8);
    a.fence();
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());

    let out = m.cell_mut(0).alloc(8 * 3 * 4, 64);
    m.cell_mut(0)
        .dram_mut()
        .write_u32_slice(out, &[0xFFFF_FFFF; 24]);
    m.launch(0, &p, &[pgas::local_dram(out)]);
    m.run(500_000).unwrap();
    m.cell_mut(0).flush_caches();
    let vals = m.cell(0).dram().read_u32_slice(out, 24);

    let none = pgas::NO_ADOPTEE;
    // Live tiles in row-major order: (0,0) (2,0) (3,0) (0,1) (1,1) (3,1).
    // Live 0 adopts dead (1,0); live 1 adopts dead (2,1).
    let expect: [[u32; 3]; 8] = [
        [0, 6, 1 << 8],       // (0,0) adopts (1,0)
        [0xFFFF_FFFF; 3],     // (1,0) dead: sentinel untouched
        [1, 6, (2 << 8) | 1], // (2,0)
        [2, 6, none],         // (3,0)
        [3, 6, none],         // (0,1)
        [4, 6, none],         // (1,1)
        [0xFFFF_FFFF; 3],     // (2,1) dead
        [5, 6, none],         // (3,1)
    ];
    for (rank, row) in expect.iter().enumerate() {
        assert_eq!(
            &vals[rank * 3..rank * 3 + 3],
            row,
            "physical rank {rank} live CSRs"
        );
    }
}

/// A register-file flip landed mid-delay-loop shows up bit-exactly in the
/// stored result; a flip of `x0` is architecturally masked.
#[test]
fn reg_flip_perturbs_stored_result() {
    let run = |site: Option<Site>| -> u32 {
        let mut m = Machine::new(solo_cfg());
        let out = m.cell_mut(0).alloc(4, 64);
        m.launch(0, &delay_store_kernel(), &[pgas::local_dram(out)]);
        if let Some(site) = site {
            m.set_injection_plan(&InjectionPlan::explicit([(100, site)]));
        }
        m.run(100_000).unwrap();
        m.cell_mut(0).flush_caches();
        m.cell(0).dram().read_u32(out)
    };
    assert_eq!(run(None), 5);
    let s0 = Site::RegFile {
        cell: 0,
        x: 0,
        y: 0,
        reg: S0 as u8,
        bit: 3,
    };
    assert_eq!(run(Some(s0)), 5 ^ 8, "bit 3 of s0 flips into the result");
    let x0 = Site::RegFile {
        cell: 0,
        x: 0,
        y: 0,
        reg: 0,
        bit: 3,
    };
    assert_eq!(run(Some(x0)), 5, "x0 flips are architecturally masked");
}

/// A scratchpad flip between a store and the load that reads it back
/// corrupts exactly the flipped bit.
#[test]
fn spm_flip_perturbs_stored_word() {
    let kernel = || {
        let mut a = Assembler::new();
        a.li(T0, 0x55);
        a.li(T1, 0x100);
        a.sw(T0, T1, 0);
        a.li(T2, 300);
        let top = a.here();
        a.addi(T2, T2, -1);
        a.bnez(T2, top);
        a.lw(T3, T1, 0);
        a.sw(T3, A0, 0);
        a.fence();
        a.ecall();
        Arc::new(a.assemble(0).unwrap())
    };
    let run = |plan: Option<InjectionPlan>| -> u32 {
        let mut m = Machine::new(solo_cfg());
        let out = m.cell_mut(0).alloc(4, 64);
        m.launch(0, &kernel(), &[pgas::local_dram(out)]);
        if let Some(p) = plan {
            m.set_injection_plan(&p);
        }
        m.run(100_000).unwrap();
        m.cell_mut(0).flush_caches();
        m.cell(0).dram().read_u32(out)
    };
    assert_eq!(run(None), 0x55);
    let site = Site::Spm {
        cell: 0,
        x: 0,
        y: 0,
        word: 0x100 / 4,
        bit: 0,
    };
    assert_eq!(
        run(Some(InjectionPlan::explicit([(200, site)]))),
        0x54,
        "bit 0 of SPM word 0x40 flips into the read-back"
    );
}

/// A bounded tile freeze delays completion without corrupting the result;
/// FREEZE_FOREVER hangs the run and the watchdog pins it on the frozen
/// tile as a livelock.
#[test]
fn tile_freeze_delays_then_forever_hangs() {
    let run = |cycles: u64, budget: u64| {
        let mut m = Machine::new(solo_cfg());
        let out = m.cell_mut(0).alloc(4, 64);
        m.launch(0, &delay_store_kernel(), &[pgas::local_dram(out)]);
        m.set_injection_plan(&InjectionPlan::explicit([(
            50,
            Site::TileFreeze {
                cell: 0,
                x: 0,
                y: 0,
                cycles,
            },
        )]));
        let res = m.run(budget);
        m.cell_mut(0).flush_caches();
        (res, m.cell(0).dram().read_u32(out))
    };
    // Clean baseline.
    let mut clean = Machine::new(solo_cfg());
    let out = clean.cell_mut(0).alloc(4, 64);
    clean.launch(0, &delay_store_kernel(), &[pgas::local_dram(out)]);
    let base = clean.run(100_000).unwrap().cycles;

    let (res, val) = run(600, 100_000);
    let cycles = res.unwrap().cycles;
    assert_eq!(val, 5, "a bounded freeze never corrupts the result");
    assert!(
        cycles >= base + 500,
        "600-cycle freeze should delay completion: {cycles} vs {base}"
    );

    let (res, _) = run(FREEZE_FOREVER, 30_000);
    match res {
        Err(SimError::Timeout {
            running_tiles,
            hang,
            ..
        }) => {
            assert_eq!(running_tiles, 1);
            let hang = hang.expect("watchdog should classify the hang");
            assert_eq!(hang.class.label(), "livelock");
            assert!(hang.to_string().contains("frozen"), "{hang}");
        }
        other => panic!("expected timeout, got {other:?}"),
    }
}

/// HBM channel stalls and icache parity invalidations cost latency only:
/// the run still completes with bit-identical results.
#[test]
fn hbm_stall_and_icache_faults_are_latency_only() {
    let kernel = || {
        // sum = Σ in[0..256]; out[0] = sum
        let mut a = Assembler::new();
        a.li(T0, 256);
        a.mv(S1, A0);
        a.li(S2, 0);
        let top = a.here();
        a.lw(T2, S1, 0);
        a.add(S2, S2, T2);
        a.addi(S1, S1, 4);
        a.addi(T0, T0, -1);
        a.bnez(T0, top);
        a.sw(S2, A1, 0);
        a.fence();
        a.ecall();
        Arc::new(a.assemble(0).unwrap())
    };
    let data: Vec<u32> = (0..256u32).map(|i| i * 7 + 3).collect();
    let run = |plan: Option<InjectionPlan>| -> (u64, u32) {
        let mut m = Machine::new(solo_cfg());
        let input = m.cell_mut(0).alloc(256 * 4, 64);
        let out = m.cell_mut(0).alloc(4, 64);
        m.cell_mut(0).dram_mut().write_u32_slice(input, &data);
        m.launch(
            0,
            &kernel(),
            &[pgas::local_dram(input), pgas::local_dram(out)],
        );
        if let Some(p) = plan {
            m.set_injection_plan(&p);
        }
        let cycles = m.run(500_000).unwrap().cycles;
        m.cell_mut(0).flush_caches();
        (cycles, m.cell(0).dram().read_u32(out))
    };
    let expect: u32 = data.iter().sum();
    let (base, clean) = run(None);
    assert_eq!(clean, expect);
    let plan = InjectionPlan::explicit([
        (
            60,
            Site::IcacheLine {
                cell: 0,
                x: 0,
                y: 0,
                line: 2,
            },
        ),
        (
            80,
            Site::HbmStall {
                cell: 0,
                window: 300,
            },
        ),
    ]);
    let (cycles, val) = run(Some(plan));
    assert_eq!(val, expect, "detected faults never corrupt data");
    assert!(
        cycles > base,
        "stall + refill must cost latency: {cycles} vs {base}"
    );
}

/// `sum_kernel`: tile `rank` sums `words` consecutive DRAM words starting
/// at `in + rank*words*4` and stores the sum to `out[rank]`.
fn sum_kernel(words: i32) -> Arc<hb_asm::Program> {
    let mut a = Assembler::new();
    a.tg_rank(S0, T6);
    a.li(T1, words * 4);
    a.mul(T1, S0, T1);
    a.add(S1, A0, T1);
    a.li(T0, words);
    a.li(S2, 0);
    let top = a.here();
    a.lw(T2, S1, 0);
    a.add(S2, S2, T2);
    a.addi(S1, S1, 4);
    a.addi(T0, T0, -1);
    a.bnez(T0, top);
    a.slli(T3, S0, 2);
    a.add(T3, A1, T3);
    a.sw(S2, T3, 0);
    a.fence();
    a.ecall();
    Arc::new(a.assemble(0).unwrap())
}

fn fill_and_launch(m: &mut Machine, words: u32) -> (u32, Vec<u32>) {
    let data: Vec<u32> = (0..8 * words).map(|i| i * 3 + 1).collect();
    let input = m.cell_mut(0).alloc(8 * words * 4, 64);
    let out = m.cell_mut(0).alloc(8 * 4, 64);
    m.cell_mut(0).dram_mut().write_u32_slice(input, &data);
    m.launch(
        0,
        &sum_kernel(words as i32),
        &[pgas::local_dram(input), pgas::local_dram(out)],
    );
    let sums = (0..8)
        .map(|r| {
            data[(r * words) as usize..((r + 1) * words) as usize]
                .iter()
                .sum()
        })
        .collect();
    (out, sums)
}

/// Link-level faults on busy mesh links are detected and replayed: the
/// retransmit counters tick, and every loaded word still arrives intact.
#[test]
fn link_faults_retransmit_and_preserve_data() {
    let mut m = Machine::new(small_cfg());
    let (out, expect) = fill_and_launch(&mut m, 256);
    // Arm the north-bound request ports of both tile rows and the
    // south-bound response ports of the bank strip; the load storm is
    // still in full flight at these cycles.
    let mut sites = Vec::new();
    for x in 0..4u8 {
        sites.push((
            60,
            Site::NocLink {
                cell: 0,
                x,
                y: 1,
                port: 1, // North
                req: true,
            },
        ));
        sites.push((
            80,
            Site::NocLink {
                cell: 0,
                x,
                y: 2,
                port: 1,
                req: true,
            },
        ));
        sites.push((
            100,
            Site::NocLink {
                cell: 0,
                x,
                y: 0,
                port: 2, // South, on the response network
                req: false,
            },
        ));
    }
    m.set_injection_plan(&InjectionPlan::explicit(sites));
    m.run(2_000_000).unwrap();
    m.cell_mut(0).flush_caches();
    let vals = m.cell(0).dram().read_u32_slice(out, 8);
    assert_eq!(vals, expect, "retransmission must preserve every word");
    let retransmits = m.cell(0).net_retransmits();
    assert!(
        retransmits >= 4,
        "armed link faults on busy ports should replay: {retransmits}"
    );
}

/// The same seeded plan on the same kernel produces bit-identical outcomes
/// regardless of the worker thread count.
#[test]
fn injection_is_deterministic_across_thread_counts() {
    let run = |threads: usize| {
        let mut cfg = small_cfg();
        cfg.threads = threads;
        let mut m = Machine::new(cfg);
        let (out, _) = fill_and_launch(&mut m, 256);
        let shape = PlanShape {
            cells: 1,
            dim: (4, 2),
            spm_words: 1024,
            icache_lines: 256,
            cycles: (50, 3000),
        };
        m.set_injection_plan(&InjectionPlan::random(0x00C0_FFEE, 10, &shape));
        let res = m.run(50_000);
        let cycle = m.cycle();
        m.cell_mut(0).flush_caches();
        (
            format!("{res:?}"),
            cycle,
            m.cell(0).dram().read_u32_slice(out, 8),
        )
    };
    let single = run(1);
    let quad = run(4);
    assert_eq!(single, quad, "threads must not change injected outcomes");
}
