//! Ablation sweeps over the design choices DESIGN.md calls out, beyond the
//! paper's on/off feature analysis (Figure 10):
//!
//! - Ruche factor 0..4 (the paper fixes 3; this shows the knee),
//! - remote-op scoreboard depth 1..63 (the paper fixes 63),
//! - MSHRs per cache bank 1..16 (the paper consolidates MSHRs at the LLC).
//!
//! Each sweep uses the kernel most sensitive to the resource.

use hb_bench::{bench_size, hb_config, header, job_threads, point_config, row, run_ordered};
use hb_core::MachineConfig;
use hb_kernels::{Benchmark, PageRank, Sgemm, SpGemm};

fn sweep<B: Benchmark>(
    title: &str,
    bench: &B,
    points: &[(String, MachineConfig)],
    size: hb_kernels::SizeClass,
) {
    println!("{title}");
    let widths = [14usize, 12, 10];
    header(&["setting", "cycles", "speedup"], &widths);
    // Sweep points are independent simulations: fan them out, print the
    // ordered results (speedups are relative to the first point).
    let jobs = job_threads();
    let cycles = run_ordered(points.iter().collect(), jobs, |_, (label, cfg)| {
        eprintln!("  {} / {label} ...", bench.name());
        bench
            .run(&point_config(cfg, jobs), size)
            .expect("ablation run")
            .cycles
    });
    let base = cycles[0] as f64;
    for ((label, _), cyc) in points.iter().zip(&cycles) {
        row(
            &[
                label.clone(),
                cyc.to_string(),
                format!("{:.2}x", base / *cyc as f64),
            ],
            &widths,
        );
    }
    println!();
}

fn main() {
    let base = hb_config();
    let size = bench_size();
    println!(
        "Ablation sweeps ({}x{} Cell)\n",
        base.cell_dim.x, base.cell_dim.y
    );

    // Ruche factor: network-heavy dense kernel.
    let ruche_points: Vec<(String, MachineConfig)> = [0u8, 1, 2, 3, 4]
        .into_iter()
        .map(|rf| {
            (
                format!("ruche={rf}"),
                MachineConfig {
                    ruche_factor: rf,
                    ..base.clone()
                },
            )
        })
        .collect();
    sweep(
        "-- Ruche factor (SGEMM) --",
        &Sgemm::default(),
        &ruche_points,
        size,
    );

    // Scoreboard depth: MLP-hungry irregular kernel.
    let sb_points: Vec<(String, MachineConfig)> = [1usize, 2, 4, 8, 16, 32, 63]
        .into_iter()
        .map(|n| {
            (
                format!("outstanding={n}"),
                MachineConfig {
                    max_outstanding: n,
                    ..base.clone()
                },
            )
        })
        .collect();
    sweep(
        "-- scoreboard depth (SGEMM) --",
        &Sgemm::default(),
        &sb_points,
        size,
    );
    sweep(
        "-- scoreboard depth (PageRank) --",
        &PageRank::default(),
        &sb_points,
        size,
    );

    // MSHRs per bank: miss-heavy sparse kernel.
    let mshr_points: Vec<(String, MachineConfig)> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|n| {
            (
                format!("mshrs={n}"),
                MachineConfig {
                    cache_mshrs: n,
                    ..base.clone()
                },
            )
        })
        .collect();
    sweep(
        "-- MSHRs per bank (SpGEMM) --",
        &SpGemm::default(),
        &mshr_points,
        size,
    );

    // Kernel-structure ablation: DRAM-streaming vs SPM-blocked SGEMM (the
    // paper's recommended load-blocks/compute/dump structure).
    let style_points: Vec<(String, MachineConfig)> = vec![("streamed".into(), base.clone())];
    sweep(
        "-- SGEMM streamed --",
        &Sgemm::default(),
        &style_points,
        size,
    );
    sweep(
        "-- SGEMM SPM-blocked --",
        &Sgemm::blocked(),
        &style_points,
        size,
    );

    println!(
        "expected knees: ruche gains saturate by factor 3 (the silicon's\n\
         choice); scoreboard depth stops paying once it covers the memory\n\
         round trip; a few MSHRs per bank suffice because they are shared by\n\
         all tiles (the paper's consolidation argument); SPM blocking trades\n\
         scratchpad capacity for DRAM traffic."
    );
}
