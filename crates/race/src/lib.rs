//! Two-sided race checking for HammerBlade kernels.
//!
//! This crate closes the loop between the two independent race detectors
//! in the workspace:
//!
//! - the **static** side — `hb-lint`'s [`phase-race`](hb_lint::Rule::PhaseRace)
//!   pass ([`hb_lint::phases`]), which abstractly interprets a kernel over
//!   a symbolic tile rank and reports access pairs that can touch the same
//!   shared word in the same barrier phase;
//! - the **dynamic** side — the barrier-epoch sanitizer in the cycle model
//!   ([`hb_core::RaceChecker`]), which stamps every shared-location access
//!   with its tile's barrier epoch and reports same-epoch conflicting
//!   pairs as they happen.
//!
//! The contract between them is one-directional soundness: **every race
//! the sanitizer observes must have been statically flagged** (the static
//! pass over-approximates; the dynamic pass only sees what a particular
//! run did). [`cross_validate`] enforces that contract, and the racy
//! fixtures in [`hb_kernels::fixtures`] exercise it with exact expected
//! finding counts on both sides. The clean direction — the whole benchmark
//! suite produces zero findings from either checker — is covered by
//! [`check_suite`] and the `race_check` harness binary.

use hb_asm::Program;
use hb_core::{collect_races, pgas, Machine, MachineConfig, RaceReport};
use hb_kernels::fixtures::Fixture;
use hb_kernels::{
    Aes, BarnesHut, Benchmark, Bfs, BlackScholes, Fft, Jacobi, PageRank, Sgemm, SizeClass,
    SmithWaterman, SpGemm,
};
use hb_lint::phases::phase_conflicts;
pub use hb_lint::phases::PhaseConflict;
use hb_lint::LintConfig;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Runs the static phase-conflict analysis against `cfg`'s machine shape.
pub fn static_conflicts(program: &Program, cfg: &MachineConfig) -> Vec<PhaseConflict> {
    phase_conflicts(program, &LintConfig::for_machine(cfg))
}

/// Everything both checkers said about one fixture run.
pub struct FixtureOutcome {
    pub name: &'static str,
    /// Static `phase-race` findings for the fixture's program.
    pub statics: Vec<PhaseConflict>,
    /// Raw dynamic reports from the sanitized run.
    pub dynamic: Vec<RaceReport>,
    /// The same reports rendered with both PCs disassembled.
    pub rendered: Vec<String>,
}

/// Runs one fixture through both checkers: the static pass over its
/// program, then a sanitized run on a machine built from `cfg` (with
/// `race_check` forced on), one `ranks + 1`-word DRAM buffer per launch
/// argument.
///
/// # Panics
///
/// Panics if the simulated run itself fails (timeout, fault) — fixtures
/// are racy, not broken.
pub fn run_fixture(f: &Fixture, cfg: &MachineConfig) -> FixtureOutcome {
    let program = (f.build)();
    let statics = static_conflicts(&program, cfg);
    let cfg = MachineConfig {
        race_check: true,
        ..cfg.clone()
    };
    let ranks = u32::from(cfg.cell_dim.x) * u32::from(cfg.cell_dim.y);
    let mut m = Machine::new(cfg);
    let args: Vec<u32> = (0..f.buffers)
        .map(|_| pgas::local_dram(m.cell_mut(0).alloc((ranks + 1) * 4, 64)))
        .collect();
    let p = Arc::new(program);
    m.launch(0, &p, &args);
    m.run(10_000_000)
        .unwrap_or_else(|e| panic!("fixture {} did not complete: {e:?}", f.name));
    let rendered = m.render_races();
    let dynamic = m.race_reports().to_vec();
    FixtureOutcome {
        name: f.name,
        statics,
        dynamic,
        rendered,
    }
}

fn unordered(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

/// Checks the soundness contract: every dynamically observed race — an
/// unordered `(pc, pc)` instruction pair — must appear among the static
/// findings. The static side may (and usually does) over-approximate;
/// the reverse direction is *not* required.
pub fn cross_validate(statics: &[PhaseConflict], dynamic: &[RaceReport]) -> Result<(), String> {
    let known: BTreeSet<(u32, u32)> = statics.iter().map(|c| unordered(c.pc_a, c.pc_b)).collect();
    for r in dynamic {
        let pair = unordered(r.a.pc, r.b.pc);
        if !known.contains(&pair) {
            return Err(format!(
                "soundness regression: dynamic race between pcs {:#x} and {:#x} \
                 (on {}) was not statically flagged",
                pair.0,
                pair.1,
                r.loc.render()
            ));
        }
    }
    Ok(())
}

/// Canonical kernel tokens for the twelve checked parameterizations: the
/// ten suite defaults plus the direction-optimizing BFS and SPM-blocked
/// SGEMM variants. Tokens are `Name` or `Name@variant` (space-free, so
/// they fit the `hb-serve` canonical job line) and are what
/// [`parameterization`] accepts.
pub const SUITE_KERNELS: [&str; 12] = [
    "PR",
    "BFS",
    "BFS@diropt",
    "SpGEMM",
    "BH",
    "FFT",
    "Jacobi",
    "SGEMM",
    "SGEMM@blocked",
    "BS",
    "SW",
    "AES",
];

/// Resolves a kernel token (case-insensitive `Name` or `Name@variant`) to
/// the benchmark instance and the matching static program.
pub fn parameterization(kernel: &str) -> Option<(Box<dyn Benchmark>, Program)> {
    let b = |b: Box<dyn Benchmark>, p: Program| Some((b, p));
    match kernel.to_ascii_lowercase().as_str() {
        "pr" => b(Box::<PageRank>::default(), PageRank::program()),
        "bfs" => b(Box::<Bfs>::default(), Bfs::program(false)),
        "bfs@diropt" => b(Box::new(Bfs::direction_optimizing()), Bfs::program(true)),
        "spgemm" => b(Box::<SpGemm>::default(), SpGemm::program()),
        "bh" => b(Box::<BarnesHut>::default(), BarnesHut::program()),
        "fft" => b(Box::<Fft>::default(), Fft::program()),
        "jacobi" => b(Box::<Jacobi>::default(), Jacobi::program()),
        "sgemm" => b(Box::<Sgemm>::default(), Sgemm::program()),
        "sgemm@blocked" => b(Box::new(Sgemm::blocked()), Sgemm::program_blocked()),
        "bs" => b(Box::<BlackScholes>::default(), BlackScholes::program()),
        "sw" => b(Box::<SmithWaterman>::default(), SmithWaterman::program()),
        "aes" => b(Box::<Aes>::default(), Aes::program()),
        _ => None,
    }
}

/// Every checked parameterization: `(token, benchmark, program)`.
pub fn suite_parameterizations() -> Vec<(&'static str, Box<dyn Benchmark>, Program)> {
    SUITE_KERNELS
        .iter()
        .map(|k| {
            let (bench, program) = parameterization(k).expect("token list is exhaustive");
            (*k, bench, program)
        })
        .collect()
}

/// Verdict for one suite kernel: finding counts from both checkers.
pub struct SuiteEntry {
    pub name: &'static str,
    pub static_findings: usize,
    pub dynamic_findings: usize,
    /// Rendered dynamic reports (empty for a clean kernel).
    pub races: Vec<String>,
}

impl SuiteEntry {
    pub fn is_clean(&self) -> bool {
        self.static_findings == 0 && self.dynamic_findings == 0
    }
}

/// Runs every suite parameterization through both checkers: the static
/// pass against `cfg`'s shape and a full sanitized benchmark run (which
/// also golden-validates the output, proving the sanitizer is read-only).
///
/// # Panics
///
/// Panics if a benchmark run fails or mis-validates.
pub fn check_suite(cfg: &MachineConfig, size: SizeClass) -> Vec<SuiteEntry> {
    let run_cfg = MachineConfig {
        race_check: true,
        ..cfg.clone()
    };
    suite_parameterizations()
        .into_iter()
        .map(|(name, bench, program)| {
            let statics = static_conflicts(&program, cfg);
            let scope = collect_races();
            bench
                .run(&run_cfg, size)
                .unwrap_or_else(|e| panic!("{name} failed under the sanitizer: {e:?}"));
            let races = scope.take();
            SuiteEntry {
                name,
                static_findings: statics.len(),
                dynamic_findings: races.len(),
                races: races.into_iter().map(|(_, s)| s).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    fn cfg(threads: usize) -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            threads,
            ..MachineConfig::baseline_16x8()
        }
    }

    #[test]
    fn fixtures_match_expected_counts_and_cross_validate() {
        for f in hb_kernels::fixtures::all() {
            let out = run_fixture(&f, &cfg(1));
            assert_eq!(
                out.statics.len(),
                f.expect_static,
                "{}: static findings {:#?}",
                f.name,
                out.statics
            );
            assert_eq!(
                out.dynamic.len(),
                f.expect_dynamic,
                "{}: dynamic reports:\n{}",
                f.name,
                out.rendered.join("\n")
            );
            cross_validate(&out.statics, &out.dynamic)
                .unwrap_or_else(|e| panic!("{}: {e}", f.name));
            // Rendered reports carry both disassembled PCs.
            for r in &out.rendered {
                assert!(r.contains("race on"), "{r}");
                assert!(!r.contains("[?]"), "PC failed to disassemble: {r}");
            }
        }
    }

    #[test]
    fn fixture_reports_are_bit_identical_across_thread_counts() {
        for f in hb_kernels::fixtures::all() {
            let one = run_fixture(&f, &cfg(1));
            let four = run_fixture(&f, &cfg(4));
            assert_eq!(one.dynamic, four.dynamic, "{}", f.name);
            assert_eq!(one.rendered, four.rendered, "{}", f.name);
        }
    }

    #[test]
    fn clean_kernel_is_clean_on_both_sides() {
        use hb_core::HbOps;
        use hb_isa::Gpr::*;
        let mut a = hb_asm::Assembler::new();
        a.tg_rank(T0, T6);
        a.slli(T1, T0, 2);
        a.add(T2, A0, T1);
        a.sw(T0, T2, 0);
        a.fence();
        a.barrier(T6);
        a.lw(T3, T2, 4);
        a.fence();
        a.ecall();
        let program = a.assemble(0).unwrap();

        let c = cfg(1);
        assert!(static_conflicts(&program, &c).is_empty());
        let run_cfg = MachineConfig {
            race_check: true,
            ..c
        };
        let mut m = Machine::new(run_cfg);
        let buf = m.cell_mut(0).alloc(9 * 4, 64);
        let p = Arc::new(program);
        m.launch(0, &p, &[pgas::local_dram(buf)]);
        m.run(1_000_000).unwrap();
        assert!(m.race_reports().is_empty());
    }

    #[test]
    fn sink_captures_reports_from_an_internally_dropped_machine() {
        let f = hb_kernels::fixtures::by_name("shared-row-ww").unwrap();
        let scope = collect_races();
        {
            let c = MachineConfig {
                race_check: true,
                ..cfg(1)
            };
            let mut m = Machine::new(c);
            let buf = m.cell_mut(0).alloc(9 * 4, 64);
            let p = Arc::new((f.build)());
            m.launch(0, &p, &[pgas::local_dram(buf)]);
            m.run(1_000_000).unwrap();
            // No explicit report read: Drop must push to the sink.
        }
        let got = scope.take();
        assert_eq!(got.len(), 1);
        assert!(got[0].1.contains("race on"));
        // And the sink is uninstalled with the scope.
        drop(scope);
        let orphan = collect_races();
        assert!(orphan.take().is_empty());
    }
}
