//! Execution tracing: a bounded ring buffer of per-tile events for
//! debugging kernels (companion to the paper's performance-debugging
//! tools). Enable with [`Machine::enable_tracing`](crate::Machine::enable_tracing);
//! the most recent events (instruction retires, remote-operation issue,
//! barrier joins, faults) are then available as disassembled text — most
//! useful right after a [`SimError::Fault`](crate::SimError).

use hb_isa::Instr;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instruction retired.
    Retire {
        /// Core cycle.
        cycle: u64,
        /// Tile coordinates within the Cell.
        tile: (u8, u8),
        /// Program counter.
        pc: u32,
        /// The instruction.
        instr: Instr,
    },
    /// A remote memory operation left the tile.
    RemoteIssue {
        /// Core cycle.
        cycle: u64,
        /// Tile coordinates.
        tile: (u8, u8),
        /// Tile-local operation id.
        op_id: u32,
        /// Short description ("load x4 @0x80001234", "amoadd @...").
        what: String,
    },
    /// The tile joined its group barrier.
    BarrierJoin {
        /// Core cycle.
        cycle: u64,
        /// Tile coordinates.
        tile: (u8, u8),
    },
    /// The tile trapped.
    Fault {
        /// Core cycle.
        cycle: u64,
        /// Tile coordinates.
        tile: (u8, u8),
        /// Fault message.
        message: String,
    },
}

impl TraceEvent {
    /// The Cell cycle stamped on the event when it was pushed.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Retire { cycle, .. }
            | TraceEvent::RemoteIssue { cycle, .. }
            | TraceEvent::BarrierJoin { cycle, .. }
            | TraceEvent::Fault { cycle, .. } => *cycle,
        }
    }

    /// One-line disassembled rendering of the event.
    pub fn render(&self) -> String {
        match self {
            TraceEvent::Retire {
                cycle,
                tile,
                pc,
                instr,
            } => {
                format!("[{cycle:>8}] ({},{}) {pc:08x}: {instr}", tile.0, tile.1)
            }
            TraceEvent::RemoteIssue {
                cycle,
                tile,
                op_id,
                what,
            } => {
                format!(
                    "[{cycle:>8}] ({},{}) -> net op#{op_id} {what}",
                    tile.0, tile.1
                )
            }
            TraceEvent::BarrierJoin { cycle, tile } => {
                format!("[{cycle:>8}] ({},{}) barrier join", tile.0, tile.1)
            }
            TraceEvent::Fault {
                cycle,
                tile,
                message,
            } => {
                format!("[{cycle:>8}] ({},{}) FAULT: {message}", tile.0, tile.1)
            }
        }
    }
}

/// A bounded, shared event ring (newest events win).
#[derive(Debug)]
pub struct TraceBuffer {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

/// Shared handle installed into every tile.
pub type TraceHandle = Arc<TraceBuffer>;

impl TraceBuffer {
    /// Creates a buffer holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> TraceHandle {
        Arc::new(TraceBuffer {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        })
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether nothing has been traced.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().unwrap().is_empty()
    }

    /// Configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Removes and returns all retained events, oldest first.
    ///
    /// Consumers that must observe *every* event (e.g. the lockstep
    /// co-simulation checker) drain the ring each cycle so nothing is
    /// evicted between observations.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().drain(..).collect()
    }

    /// Renders the retained events, one line each, oldest first.
    ///
    /// Note that "oldest first" means *push order*: when the Cell executes
    /// its tile phase, every event a tile generates in one cycle lands
    /// before any event of the next tile, so a raw dump groups by tile
    /// rather than by time. Use [`TraceBuffer::render_all`] for a
    /// time-ordered dump.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in self.ring.lock().unwrap().iter() {
            let _ = writeln!(out, "{}", ev.render());
        }
        out
    }

    /// Snapshot of the retained events re-ordered by cycle stamp.
    ///
    /// The sort is stable, so events of the same cycle keep the
    /// deterministic tile iteration order they were pushed in.
    pub fn events_sorted(&self) -> Vec<TraceEvent> {
        let mut evs = self.events();
        evs.sort_by_key(TraceEvent::cycle);
        evs
    }

    /// Renders the retained events merge-sorted by cycle, so a post-fault
    /// dump interleaves tiles in true time order instead of grouping each
    /// tile's events together.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        for ev in self.events_sorted() {
            let _ = writeln!(out, "{}", ev.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_isa::Gpr;

    fn retire(cycle: u64) -> TraceEvent {
        TraceEvent::Retire {
            cycle,
            tile: (1, 2),
            pc: 4 * cycle as u32,
            instr: Instr::OpImm {
                op: hb_isa::OpImmOp::Addi,
                rd: Gpr::A0,
                rs1: Gpr::A0,
                imm: 1,
            },
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let t = TraceBuffer::new(3);
        for c in 0..10 {
            t.push(retire(c));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert!(matches!(evs[0], TraceEvent::Retire { cycle: 7, .. }));
        assert!(matches!(evs[2], TraceEvent::Retire { cycle: 9, .. }));
    }

    #[test]
    fn render_disassembles() {
        let t = TraceBuffer::new(4);
        t.push(retire(5));
        t.push(TraceEvent::Fault {
            cycle: 6,
            tile: (0, 0),
            message: "boom".into(),
        });
        let text = t.render();
        assert!(text.contains("addi a0, a0, 1"));
        assert!(text.contains("FAULT: boom"));
    }

    #[test]
    fn drain_empties_the_ring_and_preserves_order() {
        let t = TraceBuffer::new(8);
        for c in 0..5 {
            t.push(retire(c));
        }
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        let drained = t.drain();
        assert_eq!(drained.len(), 5);
        for (i, ev) in drained.iter().enumerate() {
            assert!(
                matches!(ev, TraceEvent::Retire { cycle, .. } if *cycle == i as u64),
                "drain must keep oldest-first order"
            );
        }
        assert!(t.is_empty());
        assert_eq!(t.drain(), vec![], "second drain finds nothing");
        // The ring keeps working after a drain.
        t.push(retire(9));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mixed_event_kinds_keep_push_order() {
        let t = TraceBuffer::new(8);
        t.push(retire(1));
        t.push(TraceEvent::RemoteIssue {
            cycle: 2,
            tile: (1, 2),
            op_id: 7,
            what: "load x4 @0x80001234".into(),
        });
        t.push(TraceEvent::BarrierJoin {
            cycle: 3,
            tile: (1, 2),
        });
        t.push(retire(4));
        let evs = t.events();
        assert!(matches!(evs[0], TraceEvent::Retire { cycle: 1, .. }));
        assert!(matches!(
            evs[1],
            TraceEvent::RemoteIssue {
                cycle: 2,
                op_id: 7,
                ..
            }
        ));
        assert!(matches!(evs[2], TraceEvent::BarrierJoin { cycle: 3, .. }));
        assert!(matches!(evs[3], TraceEvent::Retire { cycle: 4, .. }));
        // events() is a snapshot, not a drain.
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn dump_formats_every_event_kind() {
        let t = TraceBuffer::new(8);
        t.push(retire(12));
        t.push(TraceEvent::RemoteIssue {
            cycle: 13,
            tile: (3, 4),
            op_id: 42,
            what: "amoadd @0x80000040".into(),
        });
        t.push(TraceEvent::BarrierJoin {
            cycle: 14,
            tile: (3, 4),
        });
        t.push(TraceEvent::Fault {
            cycle: 15,
            tile: (0, 7),
            message: "ebreak".into(),
        });
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "one line per event:\n{text}");
        assert!(
            lines[0].contains("(1,2) 00000030: addi a0, a0, 1"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("(3,4) -> net op#42 amoadd @0x80000040"),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("(3,4) barrier join"), "{}", lines[2]);
        assert!(lines[3].contains("(0,7) FAULT: ebreak"), "{}", lines[3]);
        // Cycle columns are right-aligned to 8 so dumps line up.
        assert!(lines[0].starts_with("[      12]"), "{}", lines[0]);
    }

    #[test]
    fn render_all_interleaves_tiles_by_cycle() {
        // Two tiles pushing in per-tile phase order: tile (0,0) logs its
        // whole history before tile (1,0) does, the way a post-fault dump
        // sees them.
        let t = TraceBuffer::new(8);
        for c in [10u64, 20, 30] {
            t.push(TraceEvent::RemoteIssue {
                cycle: c,
                tile: (0, 0),
                op_id: c as u32,
                what: "load".into(),
            });
        }
        t.push(TraceEvent::BarrierJoin {
            cycle: 15,
            tile: (1, 0),
        });
        t.push(TraceEvent::Fault {
            cycle: 25,
            tile: (1, 0),
            message: "trap".into(),
        });
        // Raw order groups by tile; sorted order interleaves.
        let raw: Vec<u64> = t.events().iter().map(TraceEvent::cycle).collect();
        assert_eq!(raw, vec![10, 20, 30, 15, 25]);
        let sorted: Vec<u64> = t.events_sorted().iter().map(TraceEvent::cycle).collect();
        assert_eq!(sorted, vec![10, 15, 20, 25, 30]);
        let text = t.render_all();
        let fault_line = text.lines().position(|l| l.contains("FAULT")).unwrap();
        let last_load = text.lines().position(|l| l.contains("op#30")).unwrap();
        assert!(
            fault_line < last_load,
            "cycle-25 fault must render before the cycle-30 issue:\n{text}"
        );
    }

    #[test]
    fn stable_sort_keeps_same_cycle_push_order() {
        let t = TraceBuffer::new(4);
        t.push(TraceEvent::BarrierJoin {
            cycle: 5,
            tile: (0, 0),
        });
        t.push(TraceEvent::BarrierJoin {
            cycle: 5,
            tile: (1, 0),
        });
        let evs = t.events_sorted();
        assert!(matches!(
            evs[0],
            TraceEvent::BarrierJoin { tile: (0, 0), .. }
        ));
        assert!(matches!(
            evs[1],
            TraceEvent::BarrierJoin { tile: (1, 0), .. }
        ));
    }

    #[test]
    fn capacity_is_reported_and_zero_capacity_holds_nothing() {
        let t = TraceBuffer::new(16);
        assert_eq!(t.capacity(), 16);
        assert!(t.is_empty());
        let z = TraceBuffer::new(0);
        z.push(retire(1));
        assert_eq!(z.len(), 0, "a zero-capacity ring drops everything");
    }
}
