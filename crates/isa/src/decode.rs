//! Decoding of 32-bit RV32 machine words into [`Instr`].

use crate::encode::*;
use crate::instr::*;
use crate::reg::{Fpr, Gpr};
use std::fmt;

/// Error returned by [`decode`] for words that are not valid RV32IMAF
/// instructions understood by the HammerBlade core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending machine word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rd(w: u32) -> Gpr {
    Gpr::from_index(((w >> 7) & 0x1f) as u8)
}
fn rs1(w: u32) -> Gpr {
    Gpr::from_index(((w >> 15) & 0x1f) as u8)
}
fn rs2(w: u32) -> Gpr {
    Gpr::from_index(((w >> 20) & 0x1f) as u8)
}
fn frd(w: u32) -> Fpr {
    Fpr::from_index(((w >> 7) & 0x1f) as u8)
}
fn frs1(w: u32) -> Fpr {
    Fpr::from_index(((w >> 15) & 0x1f) as u8)
}
fn frs2(w: u32) -> Fpr {
    Fpr::from_index(((w >> 20) & 0x1f) as u8)
}
fn frs3(w: u32) -> Fpr {
    Fpr::from_index(((w >> 27) & 0x1f) as u8)
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}

/// Sign-extends the low `bits` bits of `v`.
fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

fn imm_i(w: u32) -> i32 {
    sext(w >> 20, 12)
}

fn imm_s(w: u32) -> i32 {
    sext(((w >> 25) << 5) | ((w >> 7) & 0x1f), 12)
}

fn imm_b(w: u32) -> i32 {
    let imm = (((w >> 31) & 1) << 12)
        | (((w >> 7) & 1) << 11)
        | (((w >> 25) & 0x3f) << 5)
        | (((w >> 8) & 0xf) << 1);
    sext(imm, 13)
}

fn imm_u(w: u32) -> i32 {
    sext(w >> 12, 20)
}

fn imm_j(w: u32) -> i32 {
    let imm = (((w >> 31) & 1) << 20)
        | (((w >> 12) & 0xff) << 12)
        | (((w >> 20) & 1) << 11)
        | (((w >> 21) & 0x3ff) << 1);
    sext(imm, 21)
}

/// Decodes a 32-bit machine word into an [`Instr`].
///
/// The decoder accepts any rounding-mode field on floating-point arithmetic
/// (the core always rounds to nearest even) but otherwise requires exact
/// RV32IMAF encodings.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a supported instruction.
///
/// # Examples
///
/// ```
/// use hb_isa::{decode, Gpr, Instr, OpImmOp};
///
/// // addi x1, x2, 100
/// let instr = decode(0x0641_0093)?;
/// assert_eq!(
///     instr,
///     Instr::OpImm { op: OpImmOp::Addi, rd: Gpr::Ra, rs1: Gpr::Sp, imm: 100 }
/// );
/// # Ok::<(), hb_isa::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = Err(DecodeError { word });
    let opc = word & 0x7f;
    let instr = match opc {
        OPC_LUI => Instr::Lui {
            rd: rd(word),
            imm: imm_u(word),
        },
        OPC_AUIPC => Instr::Auipc {
            rd: rd(word),
            imm: imm_u(word),
        },
        OPC_JAL => Instr::Jal {
            rd: rd(word),
            offset: imm_j(word),
        },
        OPC_JALR => {
            if funct3(word) != 0 {
                return err;
            }
            Instr::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            }
        }
        OPC_BRANCH => {
            let f3 = funct3(word);
            let op = BranchOp::ALL
                .into_iter()
                .find(|op| op.funct3() == f3)
                .ok_or(DecodeError { word })?;
            Instr::Branch {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            }
        }
        OPC_LOAD => {
            let f3 = funct3(word);
            let width = LoadWidth::ALL
                .into_iter()
                .find(|wd| wd.funct3() == f3)
                .ok_or(DecodeError { word })?;
            Instr::Load {
                width,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            }
        }
        OPC_STORE => {
            let f3 = funct3(word);
            let width = StoreWidth::ALL
                .into_iter()
                .find(|wd| wd.funct3() == f3)
                .ok_or(DecodeError { word })?;
            Instr::Store {
                width,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_s(word),
            }
        }
        OPC_OP_IMM => {
            let f3 = funct3(word);
            let op = match f3 {
                0b000 => OpImmOp::Addi,
                0b010 => OpImmOp::Slti,
                0b011 => OpImmOp::Sltiu,
                0b100 => OpImmOp::Xori,
                0b110 => OpImmOp::Ori,
                0b111 => OpImmOp::Andi,
                0b001 => {
                    if funct7(word) != 0 {
                        return err;
                    }
                    OpImmOp::Slli
                }
                0b101 => match funct7(word) {
                    0b000_0000 => OpImmOp::Srli,
                    0b010_0000 => OpImmOp::Srai,
                    _ => return err,
                },
                _ => unreachable!(),
            };
            let imm = if op.is_shift() {
                ((word >> 20) & 0x1f) as i32
            } else {
                imm_i(word)
            };
            Instr::OpImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            }
        }
        OPC_OP => {
            let (f3, f7) = (funct3(word), funct7(word));
            let op = OpOp::ALL
                .into_iter()
                .find(|op| op.funct3() == f3 && op.funct7() == f7)
                .ok_or(DecodeError { word })?;
            Instr::Op {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            }
        }
        OPC_MISC_MEM => Instr::Fence,
        OPC_SYSTEM => match word >> 20 {
            0 => Instr::Ecall,
            1 => Instr::Ebreak,
            _ => return err,
        },
        OPC_AMO => {
            if funct3(word) != 0b010 {
                return err;
            }
            let f7 = funct7(word);
            let f5 = f7 >> 2;
            let aq = (f7 >> 1) & 1 == 1;
            let rl = f7 & 1 == 1;
            match f5 {
                0b00010 => {
                    if rs2(word) != Gpr::Zero {
                        return err;
                    }
                    Instr::LrW {
                        rd: rd(word),
                        rs1: rs1(word),
                        aq,
                        rl,
                    }
                }
                0b00011 => Instr::ScW {
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                    aq,
                    rl,
                },
                _ => {
                    let op = AmoOp::ALL
                        .into_iter()
                        .find(|op| op.funct5() == f5)
                        .ok_or(DecodeError { word })?;
                    Instr::Amo {
                        op,
                        rd: rd(word),
                        rs1: rs1(word),
                        rs2: rs2(word),
                        aq,
                        rl,
                    }
                }
            }
        }
        OPC_LOAD_FP => {
            if funct3(word) != 0b010 {
                return err;
            }
            Instr::Flw {
                rd: frd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            }
        }
        OPC_STORE_FP => {
            if funct3(word) != 0b010 {
                return err;
            }
            Instr::Fsw {
                rs1: rs1(word),
                rs2: frs2(word),
                offset: imm_s(word),
            }
        }
        OPC_MADD | OPC_MSUB | OPC_NMSUB | OPC_NMADD => {
            if (word >> 25) & 0x3 != 0 {
                return err; // fmt must be S (single precision)
            }
            let op = match opc {
                OPC_MADD => FmaOp::Madd,
                OPC_MSUB => FmaOp::Msub,
                OPC_NMSUB => FmaOp::Nmsub,
                _ => FmaOp::Nmadd,
            };
            Instr::Fma {
                op,
                rd: frd(word),
                rs1: frs1(word),
                rs2: frs2(word),
                rs3: frs3(word),
            }
        }
        OPC_OP_FP => decode_op_fp(word)?,
        _ => return err,
    };
    Ok(instr)
}

fn decode_op_fp(word: u32) -> Result<Instr, DecodeError> {
    let err = Err(DecodeError { word });
    let f7 = funct7(word);
    let f3 = funct3(word);
    let rs2_field = (word >> 20) & 0x1f;
    let instr = match f7 {
        0b000_0000 => Instr::FpOp {
            op: FpOp::Add,
            rd: frd(word),
            rs1: frs1(word),
            rs2: frs2(word),
        },
        0b000_0100 => Instr::FpOp {
            op: FpOp::Sub,
            rd: frd(word),
            rs1: frs1(word),
            rs2: frs2(word),
        },
        0b000_1000 => Instr::FpOp {
            op: FpOp::Mul,
            rd: frd(word),
            rs1: frs1(word),
            rs2: frs2(word),
        },
        0b000_1100 => Instr::FpOp {
            op: FpOp::Div,
            rd: frd(word),
            rs1: frs1(word),
            rs2: frs2(word),
        },
        0b010_1100 => {
            if rs2_field != 0 {
                return err;
            }
            Instr::FpOp {
                op: FpOp::Sqrt,
                rd: frd(word),
                rs1: frs1(word),
                rs2: Fpr::Ft0,
            }
        }
        0b001_0000 => {
            let op = match f3 {
                0b000 => FpOp::Sgnj,
                0b001 => FpOp::Sgnjn,
                0b010 => FpOp::Sgnjx,
                _ => return err,
            };
            Instr::FpOp {
                op,
                rd: frd(word),
                rs1: frs1(word),
                rs2: frs2(word),
            }
        }
        0b001_0100 => {
            let op = match f3 {
                0b000 => FpOp::Min,
                0b001 => FpOp::Max,
                _ => return err,
            };
            Instr::FpOp {
                op,
                rd: frd(word),
                rs1: frs1(word),
                rs2: frs2(word),
            }
        }
        0b101_0000 => {
            let op = match f3 {
                0b010 => FpCmp::Eq,
                0b001 => FpCmp::Lt,
                0b000 => FpCmp::Le,
                _ => return err,
            };
            Instr::FpCmp {
                op,
                rd: rd(word),
                rs1: frs1(word),
                rs2: frs2(word),
            }
        }
        0b110_0000 => match rs2_field {
            0 => Instr::FcvtWS {
                rd: rd(word),
                rs1: frs1(word),
            },
            1 => Instr::FcvtWuS {
                rd: rd(word),
                rs1: frs1(word),
            },
            _ => return err,
        },
        0b110_1000 => match rs2_field {
            0 => Instr::FcvtSW {
                rd: frd(word),
                rs1: rs1(word),
            },
            1 => Instr::FcvtSWu {
                rd: frd(word),
                rs1: rs1(word),
            },
            _ => return err,
        },
        0b111_0000 => {
            if rs2_field != 0 || f3 != 0 {
                return err;
            }
            Instr::FmvXW {
                rd: rd(word),
                rs1: frs1(word),
            }
        }
        0b111_1000 => {
            if rs2_field != 0 || f3 != 0 {
                return err;
            }
            Instr::FmvWX {
                rd: frd(word),
                rs1: rs1(word),
            }
        }
        _ => return err,
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Gpr::*;

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        // Unsupported opcode (custom-0).
        assert!(decode(0x0000_000b).is_err());
    }

    #[test]
    fn decode_negative_immediates() {
        // addi a0, a0, -1
        let i = Instr::OpImm {
            op: OpImmOp::Addi,
            rd: A0,
            rs1: A0,
            imm: -1,
        };
        assert_eq!(decode(i.encode()), Ok(i));
        // lw t0, -64(sp)
        let i = Instr::Load {
            width: LoadWidth::W,
            rd: T0,
            rs1: Sp,
            offset: -64,
        };
        assert_eq!(decode(i.encode()), Ok(i));
        // jal ra, -1048576 (minimum J offset)
        let i = Instr::Jal {
            rd: Ra,
            offset: -(1 << 20),
        };
        assert_eq!(decode(i.encode()), Ok(i));
        // beq with minimum B offset
        let i = Instr::Branch {
            op: BranchOp::Eq,
            rs1: A0,
            rs2: A1,
            offset: -4096,
        };
        assert_eq!(decode(i.encode()), Ok(i));
    }

    #[test]
    fn decode_fence_ecall() {
        assert_eq!(decode(Instr::Fence.encode()), Ok(Instr::Fence));
        assert_eq!(decode(0x0000_0073), Ok(Instr::Ecall));
        assert_eq!(decode(0x0010_0073), Ok(Instr::Ebreak));
    }

    #[test]
    fn decode_lr_sc() {
        let i = Instr::LrW {
            rd: A0,
            rs1: A1,
            aq: true,
            rl: false,
        };
        assert_eq!(decode(i.encode()), Ok(i));
        let i = Instr::ScW {
            rd: A0,
            rs1: A1,
            rs2: A2,
            aq: false,
            rl: true,
        };
        assert_eq!(decode(i.encode()), Ok(i));
    }
}
