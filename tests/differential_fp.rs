//! Differential testing of the floating-point pipeline: random
//! straight-line RV32F programs run on the cycle-level tile and on an
//! architectural interpreter must produce bit-identical FP register
//! files, regardless of pipelining, bypass latencies and the iterative
//! divide/sqrt unit.

use hammerblade::asm::Assembler;
use hammerblade::core::{CellDim, Machine, MachineConfig};
use hammerblade::isa::{FmaOp, FpOp, Fpr, Gpr, Instr};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
enum Step {
    /// Load a constant bit pattern into an FP register (li + fmv.w.x).
    Set(Fpr, u32),
    /// Two-operand FP op.
    Op(FpOp, Fpr, Fpr, Fpr),
    /// Fused multiply-add.
    Fma(FmaOp, Fpr, Fpr, Fpr, Fpr),
    /// Square root.
    Sqrt(Fpr, Fpr),
    /// Int -> FP conversion of a small constant.
    CvtFromInt(Fpr, i32),
}

fn any_fpr() -> impl Strategy<Value = Fpr> {
    (0u8..32).prop_map(Fpr::from_index)
}

/// Finite, comfortably-ranged f32 bit patterns (no NaN/inf/subnormal
/// corner semantics; those are covered by unit tests of `FpOp::eval`).
fn finite_bits() -> impl Strategy<Value = u32> {
    (-1_000_000i32..1_000_000).prop_map(|v| ((v as f32) / 128.0).to_bits())
}

fn any_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any_fpr(), finite_bits()).prop_map(|(r, b)| Step::Set(r, b)),
        (
            prop_oneof![
                Just(FpOp::Add),
                Just(FpOp::Sub),
                Just(FpOp::Mul),
                Just(FpOp::Div),
                Just(FpOp::Min),
                Just(FpOp::Max),
                Just(FpOp::Sgnj),
                Just(FpOp::Sgnjn),
                Just(FpOp::Sgnjx)
            ],
            any_fpr(),
            any_fpr(),
            any_fpr()
        )
            .prop_map(|(op, rd, rs1, rs2)| Step::Op(op, rd, rs1, rs2)),
        (
            prop_oneof![Just(FmaOp::Madd), Just(FmaOp::Msub), Just(FmaOp::Nmsub), Just(FmaOp::Nmadd)],
            any_fpr(),
            any_fpr(),
            any_fpr(),
            any_fpr()
        )
            .prop_map(|(op, rd, rs1, rs2, rs3)| Step::Fma(op, rd, rs1, rs2, rs3)),
        (any_fpr(), any_fpr()).prop_map(|(rd, rs1)| Step::Sqrt(rd, rs1)),
        (any_fpr(), 0i32..2000).prop_map(|(rd, v)| Step::CvtFromInt(rd, v)),
    ]
}

/// Architectural reference.
fn interpret(steps: &[Step]) -> [u32; 32] {
    let mut f = [0.0f32; 32];
    for &s in steps {
        match s {
            Step::Set(r, bits) => f[r.index() as usize] = f32::from_bits(bits),
            Step::Op(op, rd, rs1, rs2) => {
                f[rd.index() as usize] = op.eval(f[rs1.index() as usize], f[rs2.index() as usize]);
            }
            Step::Fma(op, rd, a, b, c) => {
                f[rd.index() as usize] =
                    op.eval(f[a.index() as usize], f[b.index() as usize], f[c.index() as usize]);
            }
            Step::Sqrt(rd, rs1) => {
                f[rd.index() as usize] = FpOp::Sqrt.eval(f[rs1.index() as usize], 0.0);
            }
            Step::CvtFromInt(rd, v) => f[rd.index() as usize] = v as f32,
        }
    }
    let mut bits = [0u32; 32];
    for i in 0..32 {
        bits[i] = f[i].to_bits();
    }
    bits
}

fn emit(a: &mut Assembler, steps: &[Step]) {
    for &s in steps {
        match s {
            Step::Set(r, bits) => {
                a.li_u(Gpr::T0, bits);
                a.fmv_w_x(r, Gpr::T0);
            }
            Step::Op(op, rd, rs1, rs2) => {
                a.emit(Instr::FpOp { op, rd, rs1, rs2 });
            }
            Step::Fma(op, rd, rs1, rs2, rs3) => {
                a.emit(Instr::Fma { op, rd, rs1, rs2, rs3 });
            }
            Step::Sqrt(rd, rs1) => {
                a.fsqrt(rd, rs1);
            }
            Step::CvtFromInt(rd, v) => {
                a.li(Gpr::T0, v);
                a.fcvt_s_w(rd, Gpr::T0);
            }
        }
    }
    a.ecall();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fp_pipeline_matches_interpreter(steps in prop::collection::vec(any_step(), 1..50)) {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 1, y: 1 },
            ..MachineConfig::baseline_16x8()
        };
        let mut machine = Machine::new(cfg);
        let mut a = Assembler::new();
        emit(&mut a, &steps);
        let image = Arc::new(a.assemble(0).unwrap());
        machine.launch(0, &image, &[]);
        machine.run(1_000_000).expect("straight-line FP code terminates");

        let expect = interpret(&steps);
        let tile = machine.cell(0).tile(0, 0);
        for r in Fpr::ALL {
            let got = tile.freg(r).to_bits();
            prop_assert_eq!(
                got,
                expect[r.index() as usize],
                "FP register {} diverged: sim {:#010x} vs ref {:#010x}",
                r, got, expect[r.index() as usize]
            );
        }
    }
}
