//! Differential testing: random straight-line RV32IM programs run on the
//! cycle-level tile and on the `hb-iss` golden model must produce
//! identical register files, regardless of pipelining, bypass latencies
//! and the iterative divide unit.

use hammerblade::asm::Assembler;
use hammerblade::core::{CellDim, Machine, MachineConfig};
use hammerblade::isa::{Gpr, Instr, OpImmOp, OpOp};
use hammerblade::iss::{Hart, SparseMem};
use hammerblade::rng::Rng;
use std::sync::Arc;

fn any_gpr(rng: &mut Rng) -> Gpr {
    Gpr::from_index(rng.below(32) as u8)
}

/// One random ALU instruction (no memory, no control flow).
fn any_alu_instr(rng: &mut Rng) -> Instr {
    const IMM_OPS: [OpImmOp; 6] = [
        OpImmOp::Addi,
        OpImmOp::Slti,
        OpImmOp::Sltiu,
        OpImmOp::Xori,
        OpImmOp::Ori,
        OpImmOp::Andi,
    ];
    const SHIFT_OPS: [OpImmOp; 3] = [OpImmOp::Slli, OpImmOp::Srli, OpImmOp::Srai];
    match rng.below(4) {
        0 => Instr::Lui {
            rd: any_gpr(rng),
            imm: rng.range_i64(-(1 << 19), 1 << 19) as i32,
        },
        1 => Instr::OpImm {
            op: *rng.pick(&IMM_OPS),
            rd: any_gpr(rng),
            rs1: any_gpr(rng),
            imm: rng.range_i64(-2048, 2048) as i32,
        },
        2 => Instr::OpImm {
            op: *rng.pick(&SHIFT_OPS),
            rd: any_gpr(rng),
            rs1: any_gpr(rng),
            imm: rng.range_i64(0, 32) as i32,
        },
        _ => Instr::Op {
            op: *rng.pick(&OpOp::ALL),
            rd: any_gpr(rng),
            rs1: any_gpr(rng),
            rs2: any_gpr(rng),
        },
    }
}

#[test]
fn simulator_matches_iss() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xD1F_A100 + case);
        let len = 1 + rng.below(60) as usize;
        let program: Vec<Instr> = (0..len).map(|_| any_alu_instr(&mut rng)).collect();

        // Simulator side: single 1x1 Cell.
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 1, y: 1 },
            ..MachineConfig::baseline_16x8()
        };
        let mut machine = Machine::new(cfg);
        let mut a = Assembler::new();
        for &i in &program {
            a.emit(i);
        }
        a.ecall();
        let image = Arc::new(a.assemble(0).unwrap());
        machine.launch(0, &image, &[]);
        machine
            .run(1_000_000)
            .expect("straight-line code terminates");

        // Golden model, from the same launch state.
        let mut hart = Hart::new();
        hart.launch(image.base(), &[], machine.config().spm_bytes);
        let mut mem = SparseMem::new();
        hart.run(&image, &mut mem, 1_000_000)
            .expect("iss runs the same code");

        let tile = machine.cell(0).tile(0, 0);
        for r in Gpr::ALL {
            assert_eq!(
                tile.reg(r),
                hart.regs[r.index() as usize],
                "case {case}: register {r} diverged"
            );
        }
        assert_eq!(tile.pc(), hart.pc, "case {case}: final pc diverged");
    }
}

/// The golden model agrees with a hand-computed example.
#[test]
fn iss_smoke() {
    let mut a = Assembler::new();
    a.emit(Instr::OpImm {
        op: OpImmOp::Addi,
        rd: Gpr::A0,
        rs1: Gpr::Zero,
        imm: 7,
    });
    a.emit(Instr::Op {
        op: OpOp::Add,
        rd: Gpr::A1,
        rs1: Gpr::A0,
        rs2: Gpr::A0,
    });
    a.ecall();
    let p = a.assemble(0).unwrap();
    let mut hart = Hart::new();
    hart.launch(p.base(), &[], 4096);
    hart.run(&p, &mut SparseMem::new(), 100).unwrap();
    assert_eq!(hart.regs[Gpr::A1.index() as usize], 14);
}
