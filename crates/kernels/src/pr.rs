//! PR — PageRank (sparse LA / graph dwarf).
//!
//! Pull-based power iteration in three barrier-separated phases per
//! iteration: (1) every tile computes contributions `pr[v]/deg[v]` for a
//! static stride of vertices and accumulates its dangling mass,
//! (2) rank 0 reduces the dangling partials into the per-iteration base
//! term, (3) every tile gathers in-edge contributions — the irregular,
//! memory-bound phase the paper characterizes as HBM2-latency dominated.

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::prologue;
use hb_asm::{Assembler, Program};
use hb_core::{pgas, HbOps, Machine, MachineConfig, SimError};
use hb_isa::{Fpr::*, Gpr::*};
use hb_workloads::{gen, golden, CsrMatrix};
use std::sync::Arc;

const D_TG_RP: u32 = 0;
const D_TG_CI: u32 = 1;
const D_DEG: u32 = 2;
const D_PR_A: u32 = 3;
const D_PR_B: u32 = 4;
const D_CONTRIB: u32 = 5;
const D_PARTIALS: u32 = 6;
const D_BASE: u32 = 7;
const D_N: u32 = 8;
const D_ITERS: u32 = 9;
const DESC_WORDS: u32 = 10;

const DAMPING: f32 = 0.85;

/// The PageRank benchmark.
#[derive(Debug, Clone)]
pub struct PageRank {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Directed edges.
    pub edges: usize,
    /// Power iterations.
    pub iters: u32,
    /// Power-law (true) or road-grid-like input.
    pub power_law: bool,
}

impl Default for PageRank {
    fn default() -> PageRank {
        PageRank {
            scale: 8,
            edges: 2048,
            iters: 4,
            power_law: true,
        }
    }
}

impl PageRank {
    fn sized(&self, size: SizeClass) -> PageRank {
        match size {
            SizeClass::Tiny => PageRank {
                scale: 6,
                edges: 512,
                iters: 2,
                power_law: self.power_law,
            },
            SizeClass::Small => self.clone(),
            SizeClass::Large => PageRank {
                scale: 10,
                edges: 16384,
                iters: 8,
                power_law: self.power_law,
            },
        }
    }

    fn graph(&self) -> CsrMatrix {
        if self.power_law {
            gen::rmat(self.scale, self.edges, 0xBB)
        } else {
            let side = 1u32 << (self.scale / 2);
            gen::road_grid(side, side)
        }
    }

    /// Builds the kernel. Argument: `a0` = descriptor EVA (10 words).
    pub fn program() -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);
        // Unpack.
        a.lw(T0, A0, (D_TG_RP * 4) as i32);
        a.lw(T1, A0, (D_TG_CI * 4) as i32);
        a.lw(T2, A0, (D_DEG * 4) as i32);
        a.lw(T3, A0, (D_PR_A * 4) as i32);
        a.lw(T4, A0, (D_PR_B * 4) as i32);
        a.lw(T5, A0, (D_CONTRIB * 4) as i32);
        a.lw(A6, A0, (D_PARTIALS * 4) as i32);
        a.lw(A7, A0, (D_BASE * 4) as i32);
        a.lw(S0, A0, (D_N * 4) as i32);
        a.lw(S1, A0, (D_ITERS * 4) as i32);
        a.mv(A0, T0);
        a.mv(A1, T1);
        a.mv(A2, T2);
        a.mv(A3, T3);
        a.mv(A4, T4);
        a.mv(A5, T5);

        // FP constants: fs0 = damping, fs2 = (1-d), fs3 = 1/n as float of n.
        a.lif(Fs0, T0, DAMPING);
        a.fcvt_s_wu(Fs3, S0); // (f32)n

        let iter_loop = a.new_label();
        let finished = a.new_label();
        a.bind(iter_loop);
        a.beqz(S1, finished);

        // ---- Phase 1: contributions + dangling partial ----
        a.fmv_w_x(Fs1, Zero); // dangling = 0
        a.mv(S2, S10); // v = rank
        let p1 = a.new_label();
        let p1_done = a.new_label();
        a.bind(p1);
        a.bge(S2, S0, p1_done);
        a.slli(T0, S2, 2);
        a.add(T1, A2, T0);
        a.lw(T2, T1, 0); // deg[v]
        a.add(T1, A3, T0);
        a.flw(Fa0, T1, 0); // pr[v]
        let dangling = a.new_label();
        let p1_next = a.new_label();
        a.beqz(T2, dangling);
        a.fcvt_s_wu(Fa1, T2);
        a.fdiv(Fa2, Fa0, Fa1);
        a.add(T1, A5, T0);
        a.fsw(Fa2, T1, 0); // contrib[v]
        a.j(p1_next);
        a.bind(dangling);
        a.fadd(Fs1, Fs1, Fa0);
        a.bind(p1_next);
        a.add(S2, S2, S11);
        a.j(p1);
        a.bind(p1_done);
        // partials[rank] = dangling
        a.slli(T0, S10, 2);
        a.add(T1, A6, T0);
        a.fsw(Fs1, T1, 0);
        a.fence();
        a.barrier(T6);

        // ---- Phase 2 (rank 0): base = (1-d)/n + d*dangling/n ----
        let p2_skip = a.new_label();
        a.bnez(S10, p2_skip);
        a.fmv_w_x(Fa0, Zero);
        a.li(T0, 0);
        let sum_partials = a.here();
        a.slli(T1, T0, 2);
        a.add(T1, A6, T1);
        a.flw(Fa1, T1, 0);
        a.fadd(Fa0, Fa0, Fa1);
        a.addi(T0, T0, 1);
        a.blt(T0, S11, sum_partials);
        // fa2 = (1-d)/n
        a.lif(Fa2, T0, 1.0 - DAMPING);
        a.fdiv(Fa2, Fa2, Fs3);
        // fa0 = d*dangling/n
        a.fmul(Fa0, Fa0, Fs0);
        a.fdiv(Fa0, Fa0, Fs3);
        a.fadd(Fa2, Fa2, Fa0);
        a.fsw(Fa2, A7, 0);
        a.fence();
        a.bind(p2_skip);
        a.barrier(T6);

        // ---- Phase 3: gather ----
        a.flw(Fs4, A7, 0); // base
        a.mv(S2, S10);
        let p3 = a.new_label();
        let p3_done = a.new_label();
        a.bind(p3);
        a.bge(S2, S0, p3_done);
        a.slli(T0, S2, 2);
        a.add(T1, A0, T0);
        a.lw(S3, T1, 0); // edge begin
        a.lw(S4, T1, 4); // edge end
        a.fmv_w_x(Fa0, Zero); // sum
        let gather = a.new_label();
        let gather_done = a.new_label();
        a.bind(gather);
        a.bge(S3, S4, gather_done);
        a.slli(T1, S3, 2);
        a.add(T1, A1, T1);
        a.lw(T2, T1, 0); // u
        a.slli(T2, T2, 2);
        a.add(T2, A5, T2);
        a.flw(Fa1, T2, 0); // contrib[u]
        a.fadd(Fa0, Fa0, Fa1);
        a.addi(S3, S3, 1);
        a.j(gather);
        a.bind(gather_done);
        // next[v] = base + d * sum
        a.fmadd(Fa0, Fa0, Fs0, Fs4);
        a.add(T1, A4, T0);
        a.fsw(Fa0, T1, 0);
        a.add(S2, S2, S11);
        a.j(p3);
        a.bind(p3_done);
        a.fence();
        a.barrier(T6);

        // Swap pr buffers; next iteration.
        a.mv(T0, A3);
        a.mv(A3, A4);
        a.mv(A4, T0);
        a.addi(S1, S1, -1);
        a.j(iter_loop);

        a.bind(finished);
        a.ecall();
        a.assemble(0).expect("pagerank assembles")
    }

    /// Runs and validates against [`golden::pagerank`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        let g = self.graph();
        let n = g.rows;
        let expect = golden::pagerank(&g, self.iters);
        let tg = g.transpose();
        let deg: Vec<u32> = (0..n).map(|v| g.degree(v)).collect();

        let mut machine = Machine::new(cfg.clone());
        let nthreads = cfg.cell_dim.tiles() as u32;
        let cell = machine.cell_mut(0);
        let alloc_u32 = |cell: &mut hb_core::Cell, data: &[u32]| {
            let p = cell.alloc((data.len() * 4) as u32, 64);
            cell.dram_mut().write_u32_slice(p, data);
            p
        };
        let tg_rp = alloc_u32(cell, &tg.row_ptr);
        let tg_ci = alloc_u32(cell, &tg.col_idx);
        let deg_dev = alloc_u32(cell, &deg);
        let pr_a = cell.alloc(n * 4, 64);
        let pr_b = cell.alloc(n * 4, 64);
        let contrib = cell.alloc(n * 4, 64);
        let partials = cell.alloc(nthreads * 4, 64);
        let base_slot = cell.alloc(4, 64);
        cell.dram_mut()
            .write_f32_slice(pr_a, &vec![1.0 / n as f32; n as usize]);
        let desc = alloc_u32(
            cell,
            &[
                pgas::local_dram(tg_rp),
                pgas::local_dram(tg_ci),
                pgas::local_dram(deg_dev),
                pgas::local_dram(pr_a),
                pgas::local_dram(pr_b),
                pgas::local_dram(contrib),
                pgas::local_dram(partials),
                pgas::local_dram(base_slot),
                n,
                self.iters,
            ],
        );
        debug_assert_eq!(DESC_WORDS, 10);

        let program = Arc::new(Self::program());
        machine.launch(0, &program, &[pgas::local_dram(desc)]);
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();
        // Result buffer depends on iteration parity.
        let result = if self.iters.is_multiple_of(2) {
            pr_a
        } else {
            pr_b
        };
        let got = machine.cell(0).dram().read_f32_slice(result, n as usize);
        for (v, (g_val, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g_val - e).abs() <= 1e-5 + e.abs() * 1e-3,
                "PageRank mismatch at vertex {v}: sim {g_val} vs golden {e}"
            );
        }
        Ok(BenchStats::collect("PR", summary.cycles, &machine))
    }
}

impl Benchmark for PageRank {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn dwarf(&self) -> &'static str {
        "Sparse Linear Algebra / Graph"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    #[test]
    fn pagerank_validates_power_law() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = PageRank::default().run(&cfg, SizeClass::Tiny).unwrap();
        assert!(stats.core.stall(hb_core::StallKind::Barrier) > 0);
    }
}
