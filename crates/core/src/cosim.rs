//! Lockstep co-simulation: the cycle-level tile checked against the
//! functional golden model, instruction by instruction.
//!
//! The cycle-level [`Tile`](crate::Tile) is ~1.1k lines of pipelined,
//! scoreboarded, network-coupled state machine; the [`hb_iss::Hart`] is a
//! few hundred lines of direct interpretation. Running them in lockstep —
//! the checker consumes the tile's [`TraceEvent::Retire`] stream and steps
//! the ISS once per retire — catches any architectural disagreement at the
//! first diverging instruction instead of as a corrupted result buffer a
//! million cycles later.
//!
//! What is compared:
//!
//! * every retire: the PC of the retiring instruction;
//! * whenever the tile is quiescent (no outstanding remote operations, so
//!   no in-flight register fills): the full integer and FP register files;
//! * at the end of the run, after draining the network and flushing the
//!   caches: PC, both register files, the scratchpad, and all DRAM.
//!
//! A divergence produces a [`Divergence`] carrying the disassembled recent
//! retire history.

use crate::func::IssTile;
use crate::machine::{Machine, RunSummary, SimError};
use crate::stats::CoreStats;
use crate::trace::TraceEvent;
use hb_isa::Instr;
use hb_iss::Step;
use std::collections::VecDeque;
use std::fmt;

/// How many retires of context a [`Divergence`] carries.
const CONTEXT_DEPTH: usize = 12;

/// Cycles the post-run drain may take before giving up.
const DRAIN_BUDGET: u64 = 100_000;

/// First architectural disagreement between the tile and the ISS.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Core cycle of the diverging retire (or the final comparison).
    pub cycle: u64,
    /// PC at the divergence.
    pub pc: u32,
    /// What disagreed.
    pub what: String,
    /// Disassembled recent retire history, oldest first.
    pub context: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cosim divergence at cycle {}, pc {:#010x}: {}",
            self.cycle, self.pc, self.what
        )?;
        write!(f, "recent retires (oldest first):\n{}", self.context)
    }
}

/// Why a co-simulated run stopped short.
#[derive(Debug)]
pub enum CosimError {
    /// The cycle-level simulation itself failed (fault or timeout).
    Sim(SimError),
    /// The two models disagreed.
    Diverged(Box<Divergence>),
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CosimError::Sim(e) => write!(f, "{e}"),
            CosimError::Diverged(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for CosimError {}

impl From<SimError> for CosimError {
    fn from(e: SimError) -> CosimError {
        CosimError::Sim(e)
    }
}

/// Summary of a clean co-simulated run.
#[derive(Debug, Clone, Copy)]
pub struct CosimReport {
    /// Instructions checked in lockstep.
    pub instrs: u64,
    /// Full register-file comparisons performed.
    pub reg_compares: u64,
}

/// The lockstep oracle for one tile.
///
/// Create it *after* launching the kernel (it snapshots the launched
/// state), feed it the machine's drained trace events as the simulation
/// advances, and call [`CosimChecker::finish`] once the machine is done.
/// [`Machine::run_cosim`] wraps the whole protocol for the common
/// single-tile case.
#[derive(Debug)]
pub struct CosimChecker {
    iss: IssTile,
    cell: u8,
    xy: (u8, u8),
    recent: VecDeque<(u64, u32, Instr)>,
    instrs: u64,
    reg_compares: u64,
}

impl CosimChecker {
    /// Snapshots tile `xy` of Cell `cell` (which must be launched) into a
    /// fresh golden model.
    pub fn new(machine: &Machine, cell: u8, xy: (u8, u8)) -> CosimChecker {
        CosimChecker {
            iss: IssTile::from_machine(machine, cell, xy),
            cell,
            xy,
            recent: VecDeque::with_capacity(CONTEXT_DEPTH),
            instrs: 0,
            reg_compares: 0,
        }
    }

    /// Disassembled recent retire history, oldest first.
    pub fn context(&self) -> String {
        let mut out = String::new();
        for (cycle, pc, instr) in &self.recent {
            out.push_str(&format!("  [{cycle:>8}] {pc:08x}: {instr}\n"));
        }
        if out.is_empty() {
            out.push_str("  (no retires observed)\n");
        }
        out
    }

    fn diverge(&self, cycle: u64, pc: u32, what: String) -> Box<Divergence> {
        Box::new(Divergence {
            cycle,
            pc,
            what,
            context: self.context(),
        })
    }

    fn compare_regfiles(
        &mut self,
        machine: &Machine,
        cycle: u64,
        pc: u32,
    ) -> Result<(), Box<Divergence>> {
        let tile = machine.cell(self.cell).tile(self.xy.0, self.xy.1);
        self.reg_compares += 1;
        for i in 0..32 {
            let t = tile.arch_regs()[i];
            let s = self.iss.hart.regs[i];
            if t != s {
                return Err(self.diverge(
                    cycle,
                    pc,
                    format!("x{i} mismatch: tile={t:#010x} iss={s:#010x}"),
                ));
            }
            let tf = tile.arch_fregs()[i].to_bits();
            let sf = self.iss.hart.fregs[i].to_bits();
            if tf != sf {
                return Err(self.diverge(
                    cycle,
                    pc,
                    format!("f{i} mismatch: tile bits={tf:#010x} iss bits={sf:#010x}"),
                ));
            }
        }
        Ok(())
    }

    /// Consumes one batch of drained trace events, stepping the ISS once
    /// per retire of the checked tile and comparing as it goes. Call every
    /// cycle (or at least often enough that the trace ring cannot evict).
    ///
    /// # Errors
    ///
    /// The first architectural disagreement, with disassembled context.
    pub fn observe(
        &mut self,
        machine: &Machine,
        events: &[TraceEvent],
    ) -> Result<(), Box<Divergence>> {
        let mut retired = false;
        let mut last = (0u64, 0u32);
        for ev in events {
            let TraceEvent::Retire {
                cycle,
                tile,
                pc,
                instr,
            } = ev
            else {
                continue;
            };
            if *tile != self.xy {
                continue;
            }
            if self.iss.hart.pc != *pc {
                return Err(self.diverge(
                    *cycle,
                    *pc,
                    format!(
                        "pc mismatch: tile retired {pc:#010x}, iss expects {:#010x}",
                        self.iss.hart.pc
                    ),
                ));
            }
            self.iss.bus.set_now(*cycle);
            match self.iss.hart.step(&self.iss.program, &mut self.iss.bus) {
                Ok(Step::Retired | Step::Barrier | Step::Ecall) => {}
                Err(f) => {
                    return Err(self.diverge(
                        *cycle,
                        *pc,
                        format!("iss faulted where the tile retired: {f}"),
                    ));
                }
            }
            if self.recent.len() == CONTEXT_DEPTH {
                self.recent.pop_front();
            }
            self.recent.push_back((*cycle, *pc, *instr));
            self.instrs += 1;
            retired = true;
            last = (*cycle, *pc);
        }
        // Register files are only comparable when no remote fills are in
        // flight (the tile retires remote loads at issue and writes the
        // destination later).
        if retired
            && machine
                .cell(self.cell)
                .tile(self.xy.0, self.xy.1)
                .outstanding()
                == 0
        {
            self.compare_regfiles(machine, last.0, last.1)?;
        }
        Ok(())
    }

    /// Final full-state comparison: PC, register files, scratchpad and all
    /// DRAM. The machine must be done and flushed (`run_cosim` handles the
    /// draining and flushing).
    ///
    /// # Errors
    ///
    /// The first disagreement found.
    pub fn finish(mut self, machine: &Machine) -> Result<CosimReport, Box<Divergence>> {
        let cycle = machine.cycle();
        let tile = machine.cell(self.cell).tile(self.xy.0, self.xy.1);
        let pc = tile.pc();
        if self.iss.hart.pc != pc {
            return Err(self.diverge(
                cycle,
                pc,
                format!(
                    "final pc mismatch: tile {pc:#010x}, iss {:#010x}",
                    self.iss.hart.pc
                ),
            ));
        }
        self.compare_regfiles(machine, cycle, pc)?;
        let tile = machine.cell(self.cell).tile(self.xy.0, self.xy.1);
        let tile_spm = tile.spm();
        let iss_spm = self.iss.bus.spm(0);
        if let Some(off) = (0..tile_spm.len()).find(|&i| tile_spm[i] != iss_spm[i]) {
            return Err(self.diverge(
                cycle,
                pc,
                format!(
                    "SPM mismatch at offset {off:#x}: tile byte {:#04x}, iss byte {:#04x}",
                    tile_spm[off], iss_spm[off]
                ),
            ));
        }
        for c in 0..machine.num_cells() {
            let dram = machine.cell(c as u8).dram();
            let real = dram.slice(0, dram.len());
            let shadow = self.iss.bus.dram.cell(c as u8);
            if let Some(off) = (0..real.len()).find(|&i| real[i] != shadow[i]) {
                let a = off & !3;
                return Err(self.diverge(
                    cycle,
                    pc,
                    format!(
                        "DRAM mismatch in cell {c} at {a:#010x}: tile word {:#010x}, iss word {:#010x}",
                        u32::from_le_bytes(real[a..a + 4].try_into().unwrap()),
                        u32::from_le_bytes(shadow[a..a + 4].try_into().unwrap()),
                    ),
                ));
            }
        }
        Ok(CosimReport {
            instrs: self.instrs,
            reg_compares: self.reg_compares,
        })
    }
}

impl Machine {
    /// Runs the machine to completion with a lockstep golden-model check
    /// on its single running tile.
    ///
    /// Call after launching exactly one tile (a 1x1 tile group). The tile's
    /// every retire is checked against the ISS; at the end the caches are
    /// flushed and the full architectural state — registers, scratchpad,
    /// DRAM — must match bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`CosimError::Sim`] if the simulation faults or times out,
    /// [`CosimError::Diverged`] on the first disagreement.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one tile is running.
    pub fn run_cosim(&mut self, max_cycles: u64) -> Result<(RunSummary, CosimReport), CosimError> {
        let dim = self.config().cell_dim;
        let mut target = None;
        for c in 0..self.num_cells() as u8 {
            for y in 0..dim.y {
                for x in 0..dim.x {
                    if self.cell(c).tile(x, y).is_running() {
                        assert!(
                            target.is_none(),
                            "run_cosim checks exactly one running tile"
                        );
                        target = Some((c, (x, y)));
                    }
                }
            }
        }
        let (cell, xy) = target.expect("run_cosim needs one launched tile");

        let mut checker = CosimChecker::new(self, cell, xy);
        let trace = self.enable_tracing(64);
        trace.drain();

        let start = self.cycle();
        loop {
            // Fault first, mirroring `Machine::run`: a trap on the final
            // budgeted cycle must surface as a fault, not a timeout.
            if let Some(info) = (0..self.num_cells() as u8).find_map(|c| self.cell(c).fault()) {
                return Err(SimError::Fault(Box::new(info)).into());
            }
            if self.all_done() {
                break;
            }
            if self.cycle() - start >= max_cycles {
                let running = (0..self.num_cells() as u8)
                    .map(|c| self.cell(c).running_tiles())
                    .sum();
                return Err(SimError::Timeout {
                    cycles: self.cycle() - start,
                    running_tiles: running,
                    hang: None,
                }
                .into());
            }
            self.tick();
            let events = trace.drain();
            checker
                .observe(self, &events)
                .map_err(CosimError::Diverged)?;
        }
        let cycles = self.cycle() - start;

        // Drain in-flight responses (stores issued right before ecall may
        // still be in the network) and flush the caches so DRAM holds the
        // architectural truth.
        let mut spare = 0;
        while self.cell(cell).tile(xy.0, xy.1).outstanding() > 0 {
            assert!(
                spare < DRAIN_BUDGET,
                "network failed to drain after completion"
            );
            self.tick();
            spare += 1;
        }
        checker
            .observe(self, &trace.drain())
            .map_err(CosimError::Diverged)?;
        self.flush_all_caches();

        let mut core = CoreStats::default();
        for c in 0..self.num_cells() as u8 {
            core += self.cell(c).core_stats();
        }
        let report = checker.finish(self).map_err(CosimError::Diverged)?;
        Ok((RunSummary { cycles, core }, report))
    }
}
