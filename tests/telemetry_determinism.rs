//! The tentpole guarantee of the telemetry subsystem: observation never
//! perturbs the simulation. Every kernel runs with telemetry off (the
//! baseline) and then with the sampler attached at several windows —
//! including the pathological `window = 1` (a sample every machine tick)
//! and a coprime window (1009) — and every architectural counter must be
//! bit-identical. Sampling also composes with the parallel tile phase:
//! an instrumented `threads = 4` run matches the uninstrumented
//! `threads = 1` baseline too.

use hammerblade::core::{CellDim, MachineConfig};
use hammerblade::kernels::{suite, SizeClass};
use hammerblade::obs::Keep;

fn cfg(threads: usize, window: u64) -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 4, y: 2 },
        threads,
        telemetry_window: window,
        ..MachineConfig::baseline_16x8()
    }
}

#[test]
fn telemetry_never_perturbs_any_kernel() {
    for bench in suite() {
        let name = bench.name();
        let base = bench
            .run(&cfg(1, 0), SizeClass::Tiny)
            .unwrap_or_else(|e| panic!("{name} baseline failed: {e}"));
        for (window, threads) in [(1u64, 1usize), (64, 1), (1009, 1), (64, 4)] {
            // Bound retention at window = 1: one sample per machine tick.
            let keep = if window == 1 {
                Keep::Last(8)
            } else {
                Keep::All
            };
            let (scope, store) = hammerblade::obs::attach(keep);
            let run = bench
                .run(&cfg(threads, window), SizeClass::Tiny)
                .unwrap_or_else(|e| {
                    panic!("{name} (window={window}, threads={threads}) failed: {e}")
                });
            drop(scope);
            let label = format!("{name} window={window} threads={threads}");
            assert_eq!(base.cycles, run.cycles, "{label}: cycle count diverged");
            assert_eq!(base.core, run.core, "{label}: core counters diverged");
            assert_eq!(base.hbm, run.hbm, "{label}: HBM2 counters diverged");
            assert_eq!(base.cache, run.cache, "{label}: cache counters diverged");
            assert_eq!(
                base.bisection, run.bisection,
                "{label}: NoC bisection counters diverged"
            );
            let t = store.lock().unwrap();
            assert!(!t.samples.is_empty(), "{label}: sampler never fired");
            assert_eq!(t.final_cycle, run.cycles, "{label}: final sample cycle");
        }
    }
}

#[test]
fn telemetry_windows_cover_the_whole_run() {
    let bench = &suite()[0];
    let (scope, store) = hammerblade::obs::attach(Keep::All);
    let stats = bench.run(&cfg(1, 64), SizeClass::Tiny).unwrap();
    drop(scope);
    let t = store.lock().unwrap();
    // Windows tile [0, final] exactly: contiguous, no gaps, no overlap.
    assert_eq!(t.covered_cycles(), stats.cycles);
    let mut prev_end = 0;
    for s in &t.samples {
        assert_eq!(s.start, prev_end);
        assert!(s.end > s.start);
        prev_end = s.end;
    }
    assert_eq!(prev_end, stats.cycles);
    // The windowed deltas sum back to the end-of-run aggregates.
    let agg = t.aggregate(0);
    let total: u64 = agg.tiles.iter().map(|s| s.instrs).sum();
    assert_eq!(total, stats.core.instrs);
}
