//! Execution tracing: a bounded ring buffer of per-tile events for
//! debugging kernels (companion to the paper's performance-debugging
//! tools). Enable with [`Machine::enable_tracing`](crate::Machine::enable_tracing);
//! the most recent events (instruction retires, remote-operation issue,
//! barrier joins, faults) are then available as disassembled text — most
//! useful right after a [`SimError::Fault`](crate::SimError).

use hb_isa::Instr;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instruction retired.
    Retire {
        /// Core cycle.
        cycle: u64,
        /// Tile coordinates within the Cell.
        tile: (u8, u8),
        /// Program counter.
        pc: u32,
        /// The instruction.
        instr: Instr,
    },
    /// A remote memory operation left the tile.
    RemoteIssue {
        /// Core cycle.
        cycle: u64,
        /// Tile coordinates.
        tile: (u8, u8),
        /// Tile-local operation id.
        op_id: u32,
        /// Short description ("load x4 @0x80001234", "amoadd @...").
        what: String,
    },
    /// The tile joined its group barrier.
    BarrierJoin {
        /// Core cycle.
        cycle: u64,
        /// Tile coordinates.
        tile: (u8, u8),
    },
    /// The tile trapped.
    Fault {
        /// Core cycle.
        cycle: u64,
        /// Tile coordinates.
        tile: (u8, u8),
        /// Fault message.
        message: String,
    },
}

impl TraceEvent {
    fn render(&self) -> String {
        match self {
            TraceEvent::Retire { cycle, tile, pc, instr } => {
                format!("[{cycle:>8}] ({},{}) {pc:08x}: {instr}", tile.0, tile.1)
            }
            TraceEvent::RemoteIssue { cycle, tile, op_id, what } => {
                format!("[{cycle:>8}] ({},{}) -> net op#{op_id} {what}", tile.0, tile.1)
            }
            TraceEvent::BarrierJoin { cycle, tile } => {
                format!("[{cycle:>8}] ({},{}) barrier join", tile.0, tile.1)
            }
            TraceEvent::Fault { cycle, tile, message } => {
                format!("[{cycle:>8}] ({},{}) FAULT: {message}", tile.0, tile.1)
            }
        }
    }
}

/// A bounded, shared event ring (newest events win).
#[derive(Debug)]
pub struct TraceBuffer {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

/// Shared handle installed into every tile.
pub type TraceHandle = Arc<TraceBuffer>;

impl TraceBuffer {
    /// Creates a buffer holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> TraceHandle {
        Arc::new(TraceBuffer { ring: Mutex::new(VecDeque::with_capacity(capacity)), capacity })
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether nothing has been traced.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Renders the retained events, one line each, oldest first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in self.ring.lock().iter() {
            let _ = writeln!(out, "{}", ev.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_isa::Gpr;

    fn retire(cycle: u64) -> TraceEvent {
        TraceEvent::Retire {
            cycle,
            tile: (1, 2),
            pc: 4 * cycle as u32,
            instr: Instr::OpImm {
                op: hb_isa::OpImmOp::Addi,
                rd: Gpr::A0,
                rs1: Gpr::A0,
                imm: 1,
            },
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let t = TraceBuffer::new(3);
        for c in 0..10 {
            t.push(retire(c));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert!(matches!(evs[0], TraceEvent::Retire { cycle: 7, .. }));
        assert!(matches!(evs[2], TraceEvent::Retire { cycle: 9, .. }));
    }

    #[test]
    fn render_disassembles() {
        let t = TraceBuffer::new(4);
        t.push(retire(5));
        t.push(TraceEvent::Fault { cycle: 6, tile: (0, 0), message: "boom".into() });
        let text = t.render();
        assert!(text.contains("addi a0, a0, 1"));
        assert!(text.contains("FAULT: boom"));
    }
}
