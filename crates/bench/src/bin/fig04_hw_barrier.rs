//! Figure 4: hardware-barrier latency vs group size — Ruche vs plain
//! mesh barrier wiring vs a software tree barrier estimate.

use hb_bench::{header, row};
use hb_noc::{BarrierNetwork, Coord};

/// One full barrier round (all tiles join at cycle 0): cycles until the
/// last release.
fn hw_latency(w: u8, h: u8, rf: u8) -> u64 {
    let mut net = BarrierNetwork::tree_for_group(w, h, rf);
    for y in 0..h {
        for x in 0..w {
            net.join(Coord::new(x, y));
        }
    }
    for _ in 0..100_000 {
        net.tick();
        if (0..h).all(|y| (0..w).all(|x| net.is_released(Coord::new(x, y)))) {
            return net.cycle();
        }
    }
    panic!("barrier never completed");
}

/// Software tree barrier estimate: log2(n) combining rounds, each a
/// remote atomic round trip (~2 network traversals + cache-bank access).
fn sw_estimate(tiles: u32, round_trip: u64) -> u64 {
    let rounds = 32 - (tiles - 1).leading_zeros();
    2 * u64::from(rounds) * round_trip
}

fn main() {
    println!("Figure 4 — barrier latency vs tile-group size\n");
    let widths = [10usize, 12, 12, 14];
    header(
        &["group", "HW ruche-3", "HW mesh", "SW tree (est)"],
        &widths,
    );
    for (w, h) in [
        (2u8, 2u8),
        (4, 2),
        (4, 4),
        (8, 4),
        (8, 8),
        (16, 8),
        (16, 16),
        (32, 8),
    ] {
        let tiles = u32::from(w) * u32::from(h);
        row(
            &[
                format!("{w}x{h}"),
                hw_latency(w, h, 3).to_string(),
                hw_latency(w, h, 0).to_string(),
                sw_estimate(tiles, 40).to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\npaper: with Ruche-3 links the remotest tile's signal reaches the root\n\
         of a 16-wide Cell in ~8 cycles; HW barrier latency scales far better\n\
         than software barriers as the group grows."
    );
}
