//! SW — Smith-Waterman local sequence alignment (dynamic-programming
//! dwarf).
//!
//! Each tile aligns a rank-strided set of (query, reference) pairs with
//! the single-row DP recurrence, keeping the sequences and the DP row in
//! Local SPM. The inner loop's max() chains are deliberately branchy: the
//! paper calls out SW's high branch-miss rate (fixable with min/max ISA
//! extensions).

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::prologue;
use hb_asm::{Assembler, Program};
use hb_core::{pgas, Machine, MachineConfig, SimError};
use hb_isa::Gpr::*;
use hb_workloads::{gen, golden};
use std::sync::Arc;

/// SPM layout: query at 0, reference at `0x80`, DP row at `0x100`.
const SPM_QUERY: i32 = 0;
const SPM_REF: i32 = 0x80;
const SPM_ROW: i32 = 0x100;

/// The Smith-Waterman benchmark: `pairs` alignments of `len`-character
/// sequences (match +2, mismatch -1, gap -1).
#[derive(Debug, Clone)]
pub struct SmithWaterman {
    /// Number of sequence pairs.
    pub pairs: u32,
    /// Sequence length (<= 128).
    pub len: u32,
}

impl Default for SmithWaterman {
    fn default() -> SmithWaterman {
        SmithWaterman { pairs: 64, len: 32 }
    }
}

impl SmithWaterman {
    fn sized(&self, size: SizeClass) -> SmithWaterman {
        match size {
            SizeClass::Tiny => SmithWaterman { pairs: 8, len: 16 },
            SizeClass::Small => self.clone(),
            SizeClass::Large => SmithWaterman {
                pairs: 128,
                len: 64,
            },
        }
    }

    /// Builds the kernel. Arguments: `a0`=queries, `a1`=references,
    /// `a2`=scores out, `a3`=pair count, `a4`=sequence length.
    pub fn program() -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);

        a.mv(S0, S10); // p = rank
        let pair_loop = a.new_label();
        let done = a.new_label();
        a.bind(pair_loop);
        a.bge(S0, A3, done);

        // Copy query and reference into SPM (byte loop).
        a.mul(T0, S0, A4); // p * len
        a.add(T1, A0, T0); // &query[p*len]
        a.add(T2, A1, T0); // &ref[p*len]
        a.li(T3, 0);
        let copy = a.here();
        a.add(T4, T1, T3);
        a.lbu(T5, T4, 0);
        a.add(T4, T3, Zero);
        a.sb(T5, T4, SPM_QUERY);
        a.add(T4, T2, T3);
        a.lbu(T5, T4, 0);
        a.sb(T5, T3, SPM_REF);
        a.addi(T3, T3, 1);
        a.blt(T3, A4, copy);

        // Zero the DP row (len+1 words).
        a.li(T3, 0);
        let zero = a.here();
        a.slli(T4, T3, 2);
        a.sw(Zero, T4, SPM_ROW);
        a.addi(T3, T3, 1);
        a.ble(T3, A4, zero);

        a.li(S4, 0); // best
        a.li(S1, 0); // i
        let i_loop = a.here();
        {
            a.lbu(S6, S1, SPM_QUERY); // a[i]
            a.li(S3, 0); // diag
            a.li(S2, 0); // j
            a.li(S5, SPM_ROW); // &prev[j]
            let j_loop = a.here();
            {
                a.mv(T0, S3); // up_left = diag
                a.lw(S3, S5, 4); // diag = prev[j+1]
                                 // score = up_left + (q[i]==r[j] ? 2 : -1)
                a.lbu(T1, S2, SPM_REF);
                let mismatch = a.new_label();
                let scored = a.new_label();
                a.bne(S6, T1, mismatch);
                a.addi(T0, T0, 2);
                a.j(scored);
                a.bind(mismatch);
                a.addi(T0, T0, -1);
                a.bind(scored);
                // h = max(score, diag-1, prev[j]-1, 0)
                a.addi(T1, S3, -1);
                let m1 = a.new_label();
                a.bge(T0, T1, m1);
                a.mv(T0, T1);
                a.bind(m1);
                a.lw(T1, S5, 0);
                a.addi(T1, T1, -1);
                let m2 = a.new_label();
                a.bge(T0, T1, m2);
                a.mv(T0, T1);
                a.bind(m2);
                let m3 = a.new_label();
                a.bge(T0, Zero, m3);
                a.li(T0, 0);
                a.bind(m3);
                a.sw(T0, S5, 4); // prev[j+1] = h
                let m4 = a.new_label();
                a.bge(S4, T0, m4);
                a.mv(S4, T0); // best = h
                a.bind(m4);
                a.addi(S5, S5, 4);
                a.addi(S2, S2, 1);
            }
            a.blt(S2, A4, j_loop);
            a.addi(S1, S1, 1);
        }
        a.blt(S1, A4, i_loop);

        // scores[p] = best
        a.slli(T0, S0, 2);
        a.add(T0, T0, A2);
        a.sw(S4, T0, 0);

        a.add(S0, S0, S11);
        a.j(pair_loop);
        a.bind(done);
        a.fence();
        a.ecall();
        a.assemble(0).expect("smith-waterman assembles")
    }

    /// Runs and validates against [`golden::smith_waterman`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        assert!(self.len <= 128, "DP row must fit the SPM layout");
        let n = (self.pairs * self.len) as usize;
        let queries = gen::dna_sequence(n, 0x51);
        let refs = gen::dna_sequence(n, 0x52);
        let expect: Vec<u32> = (0..self.pairs as usize)
            .map(|p| {
                let lo = p * self.len as usize;
                let hi = lo + self.len as usize;
                golden::smith_waterman(&queries[lo..hi], &refs[lo..hi]) as u32
            })
            .collect();

        let mut machine = Machine::new(cfg.clone());
        let cell = machine.cell_mut(0);
        let q = cell.alloc(n as u32, 64);
        let r = cell.alloc(n as u32, 64);
        let out = cell.alloc(self.pairs * 4, 64);
        cell.dram_mut().write_bytes(q, &queries);
        cell.dram_mut().write_bytes(r, &refs);

        let program = Arc::new(Self::program());
        machine.launch(
            0,
            &program,
            &[
                pgas::local_dram(q),
                pgas::local_dram(r),
                pgas::local_dram(out),
                self.pairs,
                self.len,
            ],
        );
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();
        let got = machine
            .cell(0)
            .dram()
            .read_u32_slice(out, self.pairs as usize);
        assert_eq!(got, expect, "SW score mismatch");
        Ok(BenchStats::collect("SW", summary.cycles, &machine))
    }
}

impl Benchmark for SmithWaterman {
    fn name(&self) -> &'static str {
        "SW"
    }

    fn dwarf(&self) -> &'static str {
        "Dynamic Programming"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::{CellDim, StallKind};

    #[test]
    fn sw_validates_and_is_branchy() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = SmithWaterman::default().run(&cfg, SizeClass::Tiny).unwrap();
        assert!(stats.core.branch_misses > 0, "SW should mispredict");
        assert!(stats.core.stall(StallKind::BranchMiss) > 0);
    }
}
