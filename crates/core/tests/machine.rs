//! End-to-end machine tests: kernels assembled to RV32IMAF, run on the
//! cycle-level simulator, results read back through DRAM.

use hb_asm::Assembler;
use hb_core::{pgas, CellDim, GroupSpec, HbOps, Machine, MachineConfig, SimError, StallKind};
use hb_isa::Gpr::*;
use std::sync::Arc;

fn small_cfg() -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 4, y: 2 },
        ..MachineConfig::baseline_16x8()
    }
}

fn machine(cfg: MachineConfig) -> Machine {
    Machine::new(cfg)
}

#[test]
fn tiles_write_identity() {
    let mut m = machine(small_cfg());
    // out[rank] = tile_x * 100 + tile_y
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    a.csr_load(T1, pgas::csr::TILE_X, T6);
    a.csr_load(T2, pgas::csr::TILE_Y, T6);
    a.li(T3, 100);
    a.mul(T1, T1, T3);
    a.add(T1, T1, T2);
    a.slli(T0, T0, 2);
    a.add(A0, A0, T0);
    a.sw(T1, A0, 0);
    a.fence();
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());

    let out = m.cell_mut(0).alloc(8 * 4, 64);
    m.launch(0, &p, &[pgas::local_dram(out)]);
    m.run(200_000).unwrap();
    m.cell_mut(0).flush_caches();
    let vals = m.cell(0).dram().read_u32_slice(out, 8);
    // Rank is row-major: rank = y*4 + x.
    for y in 0..2u32 {
        for x in 0..4u32 {
            assert_eq!(vals[(y * 4 + x) as usize], x * 100 + y);
        }
    }
}

#[test]
fn amoadd_counts_every_tile() {
    let mut m = machine(small_cfg());
    // 50 times: amoadd.w zero, 1, (counter)
    let mut a = Assembler::new();
    a.li(T0, 50);
    a.li(T2, 1);
    let top = a.here();
    a.amoadd(Zero, T2, A0);
    a.addi(T0, T0, -1);
    a.bnez(T0, top);
    a.fence();
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());

    let counter = m.cell_mut(0).alloc(4, 64);
    m.launch(0, &p, &[pgas::local_dram(counter)]);
    m.run(500_000).unwrap();
    m.cell_mut(0).flush_caches();
    assert_eq!(m.cell(0).dram().read_u32(counter), 8 * 50);
}

#[test]
fn parallel_for_sums_array() {
    // The paper's Figure 8 idiom: work distribution with amoadd.
    let mut m = machine(small_cfg());
    const N: u32 = 256;
    // for (i = amoadd(q0,1); i < N; i = amoadd(q0,1)) sum += in[i]
    // partial sums combined with amoadd into a result word.
    let mut a = Assembler::new();
    // a0 = q0 ptr, a1 = in ptr, a2 = result ptr
    a.li(S0, 0); // local sum
    a.li(T2, 1);
    a.li(T3, N as i32);
    let loop_top = a.new_label();
    let done = a.new_label();
    a.bind(loop_top);
    a.amoadd(T0, T2, A0); // t0 = next index
    a.bge(T0, T3, done);
    a.slli(T1, T0, 2);
    a.add(T1, A1, T1);
    a.lw(T4, T1, 0);
    a.add(S0, S0, T4);
    a.j(loop_top);
    a.bind(done);
    a.amoadd(Zero, S0, A2);
    a.fence();
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());

    let q0 = m.cell_mut(0).alloc(4, 64);
    let input = m.cell_mut(0).alloc(N * 4, 64);
    let result = m.cell_mut(0).alloc(4, 64);
    let data: Vec<u32> = (0..N).map(|i| i * 3 + 1).collect();
    m.cell_mut(0).dram_mut().write_u32_slice(input, &data);
    m.launch(
        0,
        &p,
        &[
            pgas::local_dram(q0),
            pgas::local_dram(input),
            pgas::local_dram(result),
        ],
    );
    m.run(2_000_000).unwrap();
    m.cell_mut(0).flush_caches();
    let expect: u32 = data.iter().sum();
    assert_eq!(m.cell(0).dram().read_u32(result), expect);
}

#[test]
fn group_spm_neighbor_exchange() {
    // Each tile writes its rank into its east neighbor's SPM (wrapping),
    // barriers, then reports what landed in its own SPM.
    let mut m = machine(small_cfg());
    let mut a = Assembler::new();
    a.tg_rank(S0, T6);
    a.csr_load(T0, pgas::csr::TILE_X, T6); // x
    a.csr_load(T1, pgas::csr::TILE_Y, T6); // y
                                           // neighbor x = (x+1) % 4
    a.addi(T0, T0, 1);
    a.andi(T0, T0, 3);
    // EVA = (1<<30) | y<<24 | x<<18 | 0x200
    a.slli(T2, T1, 24);
    a.slli(T3, T0, 18);
    a.or(T2, T2, T3);
    a.li_u(T4, (1 << 30) | 0x200);
    a.or(T2, T2, T4);
    a.sw(S0, T2, 0);
    a.fence();
    a.barrier(T6);
    // Read own SPM 0x200 and store to out[rank].
    a.li(T5, 0x200);
    a.lw(T5, T5, 0);
    a.slli(S1, S0, 2);
    a.add(A0, A0, S1);
    a.sw(T5, A0, 0);
    a.fence();
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());

    let out = m.cell_mut(0).alloc(8 * 4, 64);
    m.launch(0, &p, &[pgas::local_dram(out)]);
    m.run(500_000).unwrap();
    m.cell_mut(0).flush_caches();
    let vals = m.cell(0).dram().read_u32_slice(out, 8);
    for y in 0..2u32 {
        for x in 0..4u32 {
            // The west neighbor (x-1 mod 4) wrote its rank here.
            let writer = y * 4 + (x + 3) % 4;
            assert_eq!(vals[(y * 4 + x) as usize], writer, "tile ({x},{y})");
        }
    }
}

#[test]
fn barrier_stalls_are_counted() {
    let mut m = machine(small_cfg());
    // Rank 0 spins a while before the barrier; everyone else waits in it.
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    let join = a.new_label();
    a.bnez(T0, join);
    a.li(T1, 2000);
    let spin = a.here();
    a.addi(T1, T1, -1);
    a.bnez(T1, spin);
    a.bind(join);
    a.barrier(T6);
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[]);
    let summary = m.run(100_000).unwrap();
    assert!(
        summary.core.stall(StallKind::Barrier) > 1000,
        "expected barrier stalls, got {}",
        summary.core.stall(StallKind::Barrier)
    );
}

/// A strided load kernel with rotating destination registers, so
/// non-blocking loads can overlap (no WAW serialization). Stride 256
/// avoids LPC merging.
fn load_chain_kernel(n: i32) -> Arc<hb_asm::Program> {
    let mut a = Assembler::new();
    a.li(T0, n / 4);
    a.mv(S1, A0);
    let top = a.here();
    a.lw(T1, S1, 0);
    a.lw(T2, S1, 256);
    a.lw(T3, S1, 512);
    a.lw(T4, S1, 768);
    a.addi(S1, S1, 1024);
    a.addi(T0, T0, -1);
    a.bnez(T0, top);
    a.fence();
    a.ecall();
    Arc::new(a.assemble(0).unwrap())
}

#[test]
fn blocking_loads_are_slower() {
    let run = |non_blocking: bool| -> u64 {
        let mut cfg = small_cfg();
        cfg.non_blocking_loads = non_blocking;
        let mut m = machine(cfg);
        let base = m.cell_mut(0).alloc(64 * 1024, 64);
        let p = load_chain_kernel(64);
        m.launch(0, &p, &[pgas::local_dram(base)]);
        m.run(5_000_000).unwrap().cycles
    };
    let nb = run(true);
    let blocking = run(false);
    assert!(
        blocking > nb,
        "blocking loads ({blocking} cycles) should be slower than non-blocking ({nb})"
    );
}

#[test]
fn lpc_merges_sequential_loads() {
    let seq_kernel = || {
        let mut a = Assembler::new();
        // 16 iterations of 4 sequential loads (unrolled).
        a.li(T0, 16);
        a.mv(S1, A0);
        let top = a.here();
        a.lw(T1, S1, 0);
        a.lw(T2, S1, 4);
        a.lw(T3, S1, 8);
        a.lw(T4, S1, 12);
        a.addi(S1, S1, 16);
        a.addi(T0, T0, -1);
        a.bnez(T0, top);
        a.fence();
        a.ecall();
        Arc::new(a.assemble(0).unwrap())
    };
    let run = |lpc: bool| {
        let mut cfg = small_cfg();
        cfg.load_packet_compression = lpc;
        let mut m = machine(cfg);
        let base = m.cell_mut(0).alloc(4096, 64);
        m.launch(0, &p_clone(&seq_kernel()), &[pgas::local_dram(base)]);
        let s = m.run(2_000_000).unwrap();
        (s.core.remote_requests, s.core.lpc_merged)
    };
    let (req_on, merged_on) = run(true);
    let (req_off, merged_off) = run(false);
    assert_eq!(merged_off, 0);
    assert!(merged_on > 0, "LPC should merge sequential loads");
    assert!(
        req_on < req_off,
        "LPC should reduce packet count: {req_on} vs {req_off}"
    );
}

fn p_clone(p: &Arc<hb_asm::Program>) -> Arc<hb_asm::Program> {
    p.clone()
}

#[test]
fn ipoly_defeats_partition_camping() {
    // Stride over DRAM by exactly (banks * line) bytes: modulo striping
    // pins every access on one bank.
    let strided_kernel = |stride: i32| {
        let mut a = Assembler::new();
        a.li(T0, 32);
        a.mv(S1, A0);
        a.li(S2, stride);
        let top = a.here();
        // Four independent in-flight loads per iteration.
        a.lw(T1, S1, 0);
        a.add(S1, S1, S2);
        a.lw(T2, S1, 0);
        a.add(S1, S1, S2);
        a.lw(T3, S1, 0);
        a.add(S1, S1, S2);
        a.lw(T4, S1, 0);
        a.add(S1, S1, S2);
        a.addi(T0, T0, -1);
        a.bnez(T0, top);
        a.fence();
        a.ecall();
        Arc::new(a.assemble(0).unwrap())
    };
    let run = |ipoly: bool| -> u64 {
        let mut cfg = small_cfg();
        cfg.ipoly_hashing = ipoly;
        let banks = cfg.banks_per_cell() as i32;
        let mut m = machine(cfg);
        let base = m.cell_mut(0).alloc(1 << 20, 64);
        let p = strided_kernel(banks * 64);
        m.launch(0, &p, &[pgas::local_dram(base)]);
        m.run(5_000_000).unwrap().cycles
    };
    let with_ipoly = run(true);
    let without = run(false);
    assert!(
        with_ipoly < without,
        "IPOLY ({with_ipoly} cycles) should beat striping ({without}) on 2^n strides"
    );
}

#[test]
fn write_validate_eliminates_fetches() {
    // Pure output-writing kernel.
    let mut a = Assembler::new();
    a.li(T0, 64);
    a.mv(S1, A0);
    let top = a.here();
    a.sw(T0, S1, 0);
    a.addi(S1, S1, 4);
    a.addi(T0, T0, -1);
    a.bnez(T0, top);
    a.fence();
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());

    let run = |wv: bool| -> (u64, u64) {
        let mut cfg = small_cfg();
        cfg.write_validate = wv;
        let mut m = machine(cfg);
        let base = m.cell_mut(0).alloc(4096, 64);
        m.launch(0, &p.clone(), &[pgas::local_dram(base)]);
        m.run(2_000_000).unwrap();
        let cs = m.cell(0).cache_stats();
        (cs.misses, cs.write_validate_fills)
    };
    let (misses_wv, fills_wv) = run(true);
    let (misses_wa, fills_wa) = run(false);
    assert_eq!(fills_wa, 0);
    assert!(fills_wv > 0);
    assert!(
        misses_wv < misses_wa,
        "write-validate should avoid fetch misses: {misses_wv} vs {misses_wa}"
    );
}

#[test]
fn producer_consumer_across_cells() {
    // Paper Figure 6: Cell 0 produces into Cell 1's Local DRAM, then sets a
    // flag; Cell 1 spins on the flag and checks the data.
    let mut cfg = small_cfg();
    cfg.num_cells = 2;
    let mut m = machine(cfg);
    let data = m.cell_mut(1).alloc(16 * 4, 64);
    let flag = m.cell_mut(1).alloc(4, 64);
    let out = m.cell_mut(1).alloc(4, 64);

    // Producer (cell 0, only rank 0 does the work).
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    let skip = a.new_label();
    a.bnez(T0, skip);
    // a0 = group_dram(1, data), a1 = group_dram(1, flag)
    a.li(T1, 16);
    a.li(T2, 7);
    let top = a.here();
    a.sw(T2, A0, 0);
    a.addi(A0, A0, 4);
    a.addi(T2, T2, 3);
    a.addi(T1, T1, -1);
    a.bnez(T1, top);
    a.fence();
    a.li(T3, 1);
    a.sw(T3, A1, 0);
    a.fence();
    a.bind(skip);
    a.ecall();
    let producer = Arc::new(a.assemble(0).unwrap());

    // Consumer (cell 1, rank 0): spin on flag, then sum data.
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    let skip = a.new_label();
    a.bnez(T0, skip);
    let spin = a.here();
    a.lw(T1, A1, 0);
    a.beqz(T1, spin);
    a.li(T2, 16);
    a.li(S0, 0);
    let top = a.here();
    a.lw(T3, A0, 0);
    a.add(S0, S0, T3);
    a.addi(A0, A0, 4);
    a.addi(T2, T2, -1);
    a.bnez(T2, top);
    a.sw(S0, A2, 0);
    a.fence();
    a.bind(skip);
    a.ecall();
    let consumer = Arc::new(a.assemble(0).unwrap());

    m.launch(
        0,
        &producer,
        &[pgas::group_dram(1, data), pgas::group_dram(1, flag)],
    );
    m.launch(
        1,
        &consumer,
        &[
            pgas::local_dram(data),
            pgas::local_dram(flag),
            pgas::local_dram(out),
        ],
    );
    m.run(5_000_000).unwrap();
    m.cell_mut(1).flush_caches();
    // sum of 7, 10, 13, ... (16 terms) = 16*7 + 3*(0+..+15)
    assert_eq!(m.cell(1).dram().read_u32(out), 16 * 7 + 3 * (15 * 16 / 2));
}

#[test]
fn infinite_loop_times_out() {
    let mut m = machine(small_cfg());
    let mut a = Assembler::new();
    let spin = a.here();
    a.j(spin);
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[]);
    match m.run(10_000) {
        Err(SimError::Timeout { running_tiles, .. }) => assert_eq!(running_tiles, 8),
        other => panic!("expected timeout, got {other:?}"),
    }
}

#[test]
fn bad_eva_faults() {
    let mut m = machine(small_cfg());
    let mut a = Assembler::new();
    a.li_u(T0, 0x2000); // outside SPM and CSRs
    a.lw(T1, T0, 0);
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());
    m.launch(0, &p, &[]);
    match m.run(10_000) {
        Err(SimError::Fault(msg)) => assert!(msg.cause.contains("does not map")),
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn fault_at_cycle_limit_reports_fault_not_timeout() {
    // A kernel that traps (load from an unmapped EVA) run with the cycle
    // budget expiring on exactly the trap cycle: fault detection must take
    // precedence over the timeout (and over "all done").
    let trap_kernel = || {
        let mut a = Assembler::new();
        a.li_u(T0, 0x2000); // outside SPM and CSRs
        a.lw(T1, T0, 0);
        a.ecall();
        Arc::new(a.assemble(0).unwrap())
    };
    // Probe run: find the exact cycle on which the trap surfaces.
    let mut probe = machine(small_cfg());
    probe.launch(0, &trap_kernel(), &[]);
    let mut fault_cycle = 0;
    while probe.cycle() < 10_000 {
        probe.tick();
        if probe.cell(0).fault().is_some() {
            fault_cycle = probe.cycle();
            break;
        }
    }
    assert!(fault_cycle > 0, "probe kernel never faulted");
    // Budget expires on the trap cycle itself.
    let mut m = machine(small_cfg());
    m.launch(0, &trap_kernel(), &[]);
    match m.run(fault_cycle) {
        Err(SimError::Fault(msg)) => assert!(msg.cause.contains("does not map"), "{msg}"),
        other => panic!("expected fault at the cycle limit, got {other:?}"),
    }
}

#[test]
fn ruche_speeds_up_cross_cell_traffic() {
    // All tiles hammer the far-column banks; ruche should finish faster on
    // a wide cell.
    let kernel = || {
        let mut a = Assembler::new();
        a.li(T0, 128);
        a.mv(S1, A0);
        let top = a.here();
        a.lw(T1, S1, 0);
        a.addi(S1, S1, 64);
        a.addi(T0, T0, -1);
        a.bnez(T0, top);
        a.fence();
        a.ecall();
        Arc::new(a.assemble(0).unwrap())
    };
    let run = |rf: u8| -> u64 {
        let mut cfg = MachineConfig::baseline_16x8();
        cfg.ruche_factor = rf;
        let mut m = machine(cfg);
        let base = m.cell_mut(0).alloc(1 << 20, 64);
        m.launch(0, &kernel(), &[pgas::local_dram(base)]);
        m.run(10_000_000).unwrap().cycles
    };
    let ruche = run(3);
    let mesh = run(0);
    assert!(
        ruche <= mesh,
        "ruche ({ruche} cycles) should not be slower than mesh ({mesh})"
    );
}

#[test]
fn tile_groups_partition_the_cell() {
    // Two 2x2 groups, each with its own barrier and rank space.
    let mut m = machine(small_cfg());
    let mut a = Assembler::new();
    a.tg_rank(T0, T6);
    a.tg_size(T1, T6);
    a.barrier(T6);
    // out[arg1 + rank] = size
    a.slli(T0, T0, 2);
    a.add(A0, A0, T0);
    a.sw(T1, A0, 0);
    a.fence();
    a.ecall();
    let p = Arc::new(a.assemble(0).unwrap());

    let out = m.cell_mut(0).alloc(8 * 4, 64);
    let g0 = GroupSpec {
        origin: (0, 0),
        dim: (2, 2),
    };
    let g1 = GroupSpec {
        origin: (2, 0),
        dim: (2, 2),
    };
    let base0 = pgas::local_dram(out);
    let base1 = pgas::local_dram(out + 16);
    m.launch_groups(0, &p, &[(g0, vec![base0]), (g1, vec![base1])]);
    m.run(500_000).unwrap();
    m.cell_mut(0).flush_caches();
    let vals = m.cell(0).dram().read_u32_slice(out, 8);
    assert_eq!(vals, vec![4; 8], "each group of 4 tiles writes its size");
}
