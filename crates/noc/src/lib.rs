//! On-chip networks for HammerBlade-RS.
//!
//! HammerBlade's NoC design is deliberately minimal: all core traffic rides
//! two physically separate *Half-Ruche* networks (one for requests with X→Y
//! dimension-ordered routing, one for responses with Y→X), every RISC-V
//! remote memory operation is a **single-flit packet**, tiles synchronize on
//! a 1-bit barrier network with the same Ruche topology, and cache banks
//! refill/evict over dedicated 1-D wormhole strip channels.
//!
//! This crate models all four:
//!
//! - [`Network`] — a cycle-level 2-D mesh optionally augmented with
//!   horizontal Ruche links ([`RucheFactor`]), with per-link utilization and
//!   bisection statistics (paper Figures 3 and 14).
//! - [`BarrierNetwork`] — the reconfigurable 1-bit HW barrier (Figure 4).
//! - [`StripChannel`] — the 1-D refill/evict channel along a cache-bank
//!   strip with skip links.
//!
//! # Examples
//!
//! ```
//! use hb_noc::{Coord, Network, NetworkConfig, Packet, RouteOrder};
//!
//! let mut net: Network<u32> = Network::new(NetworkConfig {
//!     width: 4,
//!     height: 4,
//!     ruche_factor: 0,
//!     order: RouteOrder::XThenY,
//!     fifo_depth: 2,
//!     link_occupancy: 1,
//! });
//! let src = Coord::new(0, 0);
//! let dst = Coord::new(3, 3);
//! net.inject(src, Packet { src, dst, payload: 42 });
//! let mut got = None;
//! for _ in 0..32 {
//!     net.tick();
//!     if let Some(p) = net.eject(dst) {
//!         got = Some(p);
//!         break;
//!     }
//! }
//! assert_eq!(got.unwrap().payload, 42);
//! ```

mod barrier;
mod net;
mod strip;

pub use barrier::{BarrierConfig, BarrierNetwork, Dir};
pub use net::{
    Coord, LinkStats, Network, NetworkConfig, NetworkStats, Packet, Port, RetransmitEvent,
    RouteOrder, RETRY_PENALTY,
};
pub use strip::{StripChannel, StripConfig, StripStats, StripTransfer};

/// Ruche factor: how many tiles a horizontal Ruche link skips.
///
/// HammerBlade uses factor 3, which boosts peak bisection bandwidth 4× over
/// a plain 2-D mesh. Factor 0 means no Ruche links (plain mesh).
pub type RucheFactor = u8;
