//! Differential fuzzing: deterministic seeded RV32IMAF sequences run on
//! the cycle-level single-tile machine in lockstep with the `hb-iss`
//! golden model. `Machine::run_cosim` checks every retire's PC, the
//! register files whenever the tile is quiescent, and the final
//! architectural state (registers, scratchpad, DRAM) bit-for-bit.
//!
//! Unlike the straight-line differential tests, these sequences cover
//! loads/stores to both the scratchpad and DRAM windows, AMOs, forward
//! control flow, fences and the full FP set — the whole memory system sits
//! between the two models.

use hammerblade::asm::Assembler;
use hammerblade::core::{pgas, CellDim, CosimChecker, CosimError, Machine, MachineConfig};
use hammerblade::fault::{InjectionPlan, Site};
use hammerblade::isa::Gpr;
use hammerblade::iss::fuzz::{gen_sequence, FuzzConfig};
use hammerblade::rng::Rng;
use std::sync::Arc;

const SEQUENCES: u64 = 1000;
const SEED_BASE: u64 = 0xF022_0000;

fn fuzz_machine_config() -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 1, y: 1 },
        // Small DRAM keeps the per-sequence snapshot cheap.
        dram_bytes_per_cell: 1 << 16,
        ..MachineConfig::baseline_16x8()
    }
}

#[test]
fn thousand_seeded_sequences_match_the_iss() {
    let fuzz = FuzzConfig {
        len: 120,
        spm_base: 0x100,
        spm_len: 1024,
        dram_base: pgas::local_dram(0x1000),
        dram_len: 2048,
    };
    for seed in SEED_BASE..SEED_BASE + SEQUENCES {
        let body = gen_sequence(seed, &fuzz);
        let mut a = Assembler::new();
        for &i in &body {
            a.emit(i);
        }
        let image = Arc::new(a.assemble(0).unwrap());

        let mut machine = Machine::new(fuzz_machine_config());
        // Nonzero initial DRAM so window loads observe real data.
        let mut content = Rng::seed_from_u64(seed ^ 0x5eed);
        for w in 0..2048 / 4 {
            machine
                .cell_mut(0)
                .dram_mut()
                .write_u32(0x1000 + w * 4, content.next_u32());
        }
        machine.launch(0, &image, &[]);

        let (_, report) = machine
            .run_cosim(1_000_000)
            .unwrap_or_else(|e| panic!("seed {seed:#x}:\n{e}"));
        assert!(report.instrs > 0, "seed {seed:#x} retired nothing");
    }
}

/// The checker is not vacuously green: corrupting the tile's SPM after
/// the ISS snapshot makes the very first load disagree, and the reported
/// divergence carries the disassembled context.
#[test]
fn cosim_catches_a_real_divergence() {
    // Program: a0 = SPM[0]; ecall.
    let mut a = Assembler::new();
    a.li(Gpr::T0, 0);
    a.lw(Gpr::A0, Gpr::T0, 0);
    a.fence();
    a.ecall();
    let image = Arc::new(a.assemble(0).unwrap());

    let mut machine = Machine::new(fuzz_machine_config());
    machine.launch(0, &image, &[]);
    let mut checker = CosimChecker::new(&machine, 0, (0, 0));
    // The checker snapshot saw SPM[0] == 0; the tile will now load this.
    machine
        .cell_mut(0)
        .tile_mut(0, 0)
        .spm_write_u32(0, 0xdead_beef);
    let trace = machine.enable_tracing(64);
    let mut divergence = None;
    for _ in 0..100_000 {
        if machine.all_done() {
            break;
        }
        machine.tick();
        if let Err(d) = checker.observe(&machine, &trace.drain()) {
            divergence = Some(d);
            break;
        }
    }
    let d = divergence.expect("corrupted SPM must diverge the register files");
    assert!(
        d.what.contains("mismatch"),
        "unexpected divergence: {}",
        d.what
    );
    let rendered = format!("{}", CosimError::Diverged(d));
    assert!(rendered.contains("recent retires"), "{rendered}");
}

/// Injection mode: a seeded register flip landed mid-run via the hb-fault
/// plan must surface as a cosim divergence naming the first divergent
/// register — never as a silent pass. (The ISS shadow never sees
/// injections; divergence detection *is* the fault-detection story for
/// cosim runs.)
#[test]
fn cosim_flags_an_injected_register_flip() {
    // s0 = 5; ~600-cycle delay loop; a0 = s0; ecall.
    let mut a = Assembler::new();
    a.li(Gpr::S0, 5);
    a.li(Gpr::T0, 200);
    let top = a.here();
    a.addi(Gpr::T0, Gpr::T0, -1);
    a.bnez(Gpr::T0, top);
    a.mv(Gpr::A0, Gpr::S0);
    a.fence();
    a.ecall();
    let image = Arc::new(a.assemble(0).unwrap());

    let mut machine = Machine::new(fuzz_machine_config());
    machine.launch(0, &image, &[]);
    machine.set_injection_plan(&InjectionPlan::explicit([(
        100,
        Site::RegFile {
            cell: 0,
            x: 0,
            y: 0,
            reg: Gpr::S0 as u8,
            bit: 1,
        },
    )]));
    match machine.run_cosim(1_000_000) {
        Err(CosimError::Diverged(d)) => {
            let reg = format!("x{} mismatch", Gpr::S0 as u8);
            assert!(d.what.contains(&reg), "wrong divergence: {}", d.what);
        }
        other => panic!("injected flip must diverge the cosim, got {other:?}"),
    }

    // Same launch with no plan: the checker stays green.
    let mut clean = Machine::new(fuzz_machine_config());
    clean.launch(0, &image, &[]);
    let (_, report) = clean.run_cosim(1_000_000).expect("clean run matches ISS");
    assert!(report.instrs > 0);
}
