//! Dynamic barrier-epoch race sanitizer (the FastTrack idea specialized to
//! a BSP machine).
//!
//! HammerBlade kernels order cross-tile communication with exactly two
//! primitives: the `fence` instruction (drain my outstanding remote
//! operations) and the hardware barrier (everyone reached the join). That
//! collapses the general vector-clock problem to a single scalar per tile —
//! its **barrier epoch**, the number of barrier releases it has consumed.
//! Two accesses to the same shared word can race only if they carry the
//! same epoch and come from different tiles.
//!
//! When [`MachineConfig::race_check`](crate::MachineConfig) is on, every
//! shared-location access — remote stores and loads over the fabric, AMOs,
//! DRAM traffic, and local-SPM traffic (local SPM is remotely addressable,
//! so a neighbour's remote store can race with the owner's own load) — is
//! stamped `(tile, epoch, kind)` into the per-tile log that
//! [`RaceChecker`] folds into a shadow map. Same-epoch pairs touching the
//! same word from different tiles with at least one write are reported,
//! except AMO-vs-AMO pairs (atomics commute in the memory's FIFO and are
//! the sanctioned same-phase communication idiom).
//!
//! One subtlety: a barrier join issued with remote operations still
//! outstanding (`outstanding > 0` at the join store — the condition
//! `hb-lint` flags as `barrier-without-fence`) does *not* retire those
//! writes. The checker models this by re-stamping the tile's current-epoch
//! remote writes into the next epoch (`extended` accesses), so an unfenced
//! producer is caught racing with its phase-`p+1` consumer.
//!
//! Checking is read-only: the sanitizer never perturbs simulated state, so
//! cycle counts and DRAM contents are bit-identical with it on or off, and
//! reports are bit-identical across `HB_THREADS` settings (logs are drained
//! in cell-id then row-major tile order every cycle).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Canonical identity of one shared 32-bit word.
///
/// Addresses are canonicalized past the EVA map, so the same physical word
/// reached through different windows (own-tile local window vs. a
/// neighbour's group-SPM window, local-DRAM vs. hashed-global window)
/// compares equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RaceLoc {
    /// A word of some tile's scratchpad (mesh coordinates within `cell`).
    Spm { cell: u8, x: u8, y: u8, word: u32 },
    /// A word of a DRAM bank.
    Dram { cell: u8, bank: u8, word: u32 },
}

impl RaceLoc {
    /// Human-readable form used in reports.
    pub fn render(&self) -> String {
        match *self {
            RaceLoc::Spm { cell, x, y, word } => {
                format!("spm cell {cell} tile ({x},{y}) +{word:#x}")
            }
            RaceLoc::Dram { cell, bank, word } => {
                format!("dram cell {cell} bank {bank} +{word:#x}")
            }
        }
    }
}

/// What an access did to the word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
    /// Atomic read-modify-write; two AMOs never race with each other.
    Amo,
}

impl AccessKind {
    pub fn is_write(self) -> bool {
        !matches!(self, AccessKind::Read)
    }

    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Amo => "amo",
        }
    }
}

/// One entry of a tile's race log, drained by the machine each cycle.
#[derive(Clone, Copy, Debug)]
pub(crate) enum TileRaceEvent {
    Access {
        cycle: u64,
        loc: RaceLoc,
        pc: u32,
        kind: AccessKind,
        /// `true` for credited fabric operations (remote store/load, AMO)
        /// whose completion a fence would wait for; only these leak past an
        /// unfenced barrier join.
        remote: bool,
    },
    /// The tile consumed a barrier release. `unfenced` records whether the
    /// join was issued with remote operations still outstanding.
    EpochEnd { unfenced: bool },
}

/// One side of a reported race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessInfo {
    /// (cell, mesh-x, mesh-y) of the accessing tile.
    pub tile: (u8, u8, u8),
    pub pc: u32,
    pub kind: AccessKind,
    pub cycle: u64,
    /// The access happened in the previous epoch but leaked across an
    /// unfenced barrier join.
    pub extended: bool,
}

/// A same-epoch conflicting pair. `a` is the access the checker saw first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RaceReport {
    pub loc: RaceLoc,
    pub epoch: u32,
    pub a: AccessInfo,
    pub b: AccessInfo,
}

impl RaceReport {
    /// Renders the report, disassembling each side's PC through `disasm`
    /// (called with that side's tile identity).
    pub fn render(&self, mut disasm: impl FnMut((u8, u8, u8), u32) -> Option<String>) -> String {
        let side = |i: &AccessInfo, disasm: &mut dyn FnMut((u8, u8, u8), u32) -> Option<String>| {
            format!(
                "{} by cell {} tile ({},{}) at pc {:#x} [{}] cycle {}{}",
                i.kind.label(),
                i.tile.0,
                i.tile.1,
                i.tile.2,
                i.pc,
                disasm(i.tile, i.pc).unwrap_or_else(|| "?".to_owned()),
                i.cycle,
                if i.extended {
                    " (unfenced, leaked past barrier)"
                } else {
                    ""
                },
            )
        };
        format!(
            "race on {} in epoch {}:\n  {}\n  {}",
            self.loc.render(),
            self.epoch,
            side(&self.a, &mut disasm),
            side(&self.b, &mut disasm),
        )
    }
}

#[derive(Clone, Copy, Debug)]
struct Stored {
    tile: (u8, u8, u8),
    pc: u32,
    kind: AccessKind,
    cycle: u64,
    extended: bool,
}

/// One tile's not-yet-fenced remote writes, keyed `(loc, pc)`.
type PendingWrites = HashMap<(RaceLoc, u32), (AccessKind, u64)>;

#[derive(Debug)]
struct LocState {
    epoch: u32,
    accesses: Vec<Stored>,
}

/// The shadow map: folds per-tile logs into per-word access history and
/// reports conflicts.
///
/// Reports are deduplicated by `(pc, kind)` pair — a racy instruction pair
/// is reported once no matter how many words or tiles it races over — so
/// fixture kernels have exact, stable expected counts.
#[derive(Debug, Default)]
pub struct RaceChecker {
    epochs: HashMap<(u8, u8, u8), u32>,
    locs: HashMap<RaceLoc, LocState>,
    /// Remote writes of each tile's current epoch, deduplicated by
    /// `(loc, pc)`; re-stamped into the next epoch on an unfenced join.
    pending_writes: HashMap<(u8, u8, u8), PendingWrites>,
    seen: HashSet<(u32, AccessKind, u32, AccessKind)>,
    reports: Vec<RaceReport>,
}

impl RaceChecker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one tile's drained log into the shadow map.
    pub(crate) fn process(&mut self, tile: (u8, u8, u8), events: &[TileRaceEvent]) {
        for ev in events {
            match *ev {
                TileRaceEvent::Access {
                    cycle,
                    loc,
                    pc,
                    kind,
                    remote,
                } => {
                    let epoch = self.epochs.get(&tile).copied().unwrap_or(0);
                    self.record(
                        epoch,
                        loc,
                        Stored {
                            tile,
                            pc,
                            kind,
                            cycle,
                            extended: false,
                        },
                    );
                    if remote && kind.is_write() {
                        self.pending_writes
                            .entry(tile)
                            .or_default()
                            .insert((loc, pc), (kind, cycle));
                    }
                }
                TileRaceEvent::EpochEnd { unfenced } => {
                    let e = self.epochs.entry(tile).or_insert(0);
                    *e += 1;
                    let next = *e;
                    let pending = self
                        .pending_writes
                        .entry(tile)
                        .or_default()
                        .drain()
                        .collect::<Vec<_>>();
                    if unfenced {
                        // Deterministic replay order for the leaked writes.
                        let mut leaked = pending;
                        leaked.sort_by_key(|&((loc, pc), (_, cycle))| (cycle, pc, loc));
                        for ((loc, pc), (kind, cycle)) in leaked {
                            self.record(
                                next,
                                loc,
                                Stored {
                                    tile,
                                    pc,
                                    kind,
                                    cycle,
                                    extended: true,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn record(&mut self, epoch: u32, loc: RaceLoc, acc: Stored) {
        let st = self.locs.entry(loc).or_insert(LocState {
            epoch,
            accesses: Vec::new(),
        });
        if st.epoch < epoch {
            st.accesses.clear();
            st.epoch = epoch;
        } else if st.epoch > epoch {
            // A lagging tile (epochs of independent groups are not
            // comparable); only same-epoch pairs are checked.
            return;
        }
        let incoming = AccessInfo {
            tile: acc.tile,
            pc: acc.pc,
            kind: acc.kind,
            cycle: acc.cycle,
            extended: acc.extended,
        };
        for prior in &st.accesses {
            if prior.tile == acc.tile {
                continue; // program order on one tile is never a race
            }
            if !(acc.kind.is_write() || prior.kind.is_write()) {
                continue;
            }
            if acc.kind == AccessKind::Amo && prior.kind == AccessKind::Amo {
                continue;
            }
            if self.seen.insert((prior.pc, prior.kind, acc.pc, acc.kind)) {
                self.reports.push(RaceReport {
                    loc,
                    epoch,
                    a: AccessInfo {
                        tile: prior.tile,
                        pc: prior.pc,
                        kind: prior.kind,
                        cycle: prior.cycle,
                        extended: prior.extended,
                    },
                    b: incoming,
                });
            }
        }
        // Deduplicate the stored history by (tile, pc, kind): repeats add
        // no new conflict pairs and this bounds the per-word scan.
        if !st
            .accesses
            .iter()
            .any(|a| a.tile == acc.tile && a.pc == acc.pc && a.kind == acc.kind)
        {
            st.accesses.push(acc);
        }
    }

    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Clears all shadow state (epochs, histories, dedup) for a fresh
    /// launch; accumulated reports are kept.
    pub fn reset(&mut self) {
        self.epochs.clear();
        self.locs.clear();
        self.pending_writes.clear();
    }
}

thread_local! {
    /// Report sink installed by [`collect_races`]; when active, a dropped
    /// [`Machine`](crate::Machine) with race checking on pushes its
    /// accumulated reports here instead of discarding them. This lets
    /// harnesses that run kernels through interfaces that build and drop
    /// the machine internally (the `Benchmark` trait) still observe races.
    static SINK: RefCell<Option<Vec<(RaceReport, String)>>> = const { RefCell::new(None) };
}

/// Installs a thread-local race-report sink for the scope of the returned
/// guard. While active, any [`Machine`](crate::Machine) with
/// `race_check` on that is dropped on this thread appends its reports —
/// raw and rendered — to the sink.
///
/// ```
/// let scope = hb_core::collect_races();
/// // ... run benchmarks that construct Machines internally ...
/// let races = scope.take();
/// assert!(races.is_empty());
/// ```
pub fn collect_races() -> RaceSinkScope {
    SINK.with(|s| *s.borrow_mut() = Some(Vec::new()));
    RaceSinkScope { _priv: () }
}

/// Guard returned by [`collect_races`]; uninstalls the sink on drop.
pub struct RaceSinkScope {
    _priv: (),
}

impl RaceSinkScope {
    /// Takes the reports accumulated so far, leaving the sink installed
    /// and empty.
    pub fn take(&self) -> Vec<(RaceReport, String)> {
        SINK.with(|s| {
            s.borrow_mut()
                .as_mut()
                .map(std::mem::take)
                .unwrap_or_default()
        })
    }
}

impl Drop for RaceSinkScope {
    fn drop(&mut self) {
        SINK.with(|s| *s.borrow_mut() = None);
    }
}

/// Whether a sink is installed on this thread.
pub(crate) fn sink_active() -> bool {
    SINK.with(|s| s.borrow().is_some())
}

/// Appends reports to the active sink (no-op without one).
pub(crate) fn sink_push(items: Vec<(RaceReport, String)>) {
    SINK.with(|s| {
        if let Some(v) = s.borrow_mut().as_mut() {
            v.extend(items);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: (u8, u8, u8) = (0, 0, 1);
    const T1: (u8, u8, u8) = (0, 1, 1);
    const LOC: RaceLoc = RaceLoc::Dram {
        cell: 0,
        bank: 0,
        word: 0x40,
    };

    fn access(cycle: u64, pc: u32, kind: AccessKind, remote: bool) -> TileRaceEvent {
        TileRaceEvent::Access {
            cycle,
            loc: LOC,
            pc,
            kind,
            remote,
        }
    }

    #[test]
    fn same_epoch_write_write_conflicts() {
        let mut c = RaceChecker::new();
        c.process(T0, &[access(1, 0x10, AccessKind::Write, true)]);
        c.process(T1, &[access(2, 0x20, AccessKind::Write, true)]);
        assert_eq!(c.reports().len(), 1);
        let r = &c.reports()[0];
        assert_eq!(r.a.tile, T0);
        assert_eq!(r.b.tile, T1);
        assert_eq!(r.epoch, 0);
    }

    #[test]
    fn barrier_separates_epochs() {
        let mut c = RaceChecker::new();
        c.process(
            T0,
            &[
                access(1, 0x10, AccessKind::Write, true),
                TileRaceEvent::EpochEnd { unfenced: false },
            ],
        );
        c.process(T1, &[TileRaceEvent::EpochEnd { unfenced: false }]);
        c.process(T1, &[access(5, 0x20, AccessKind::Read, true)]);
        assert!(c.reports().is_empty());
    }

    #[test]
    fn unfenced_join_leaks_writes_into_next_epoch() {
        let mut c = RaceChecker::new();
        c.process(
            T0,
            &[
                access(1, 0x10, AccessKind::Write, true),
                TileRaceEvent::EpochEnd { unfenced: true },
            ],
        );
        c.process(T1, &[TileRaceEvent::EpochEnd { unfenced: false }]);
        c.process(T1, &[access(5, 0x20, AccessKind::Read, true)]);
        assert_eq!(c.reports().len(), 1);
        assert!(c.reports()[0].a.extended);
        assert_eq!(c.reports()[0].epoch, 1);
    }

    #[test]
    fn amo_amo_is_exempt_but_amo_store_is_not() {
        let mut c = RaceChecker::new();
        c.process(T0, &[access(1, 0x10, AccessKind::Amo, true)]);
        c.process(T1, &[access(2, 0x20, AccessKind::Amo, true)]);
        assert!(c.reports().is_empty());
        c.process(T1, &[access(3, 0x24, AccessKind::Write, true)]);
        assert_eq!(c.reports().len(), 1);
    }

    #[test]
    fn reads_never_conflict_and_pairs_dedup() {
        let mut c = RaceChecker::new();
        c.process(T0, &[access(1, 0x10, AccessKind::Read, true)]);
        c.process(T1, &[access(2, 0x20, AccessKind::Read, true)]);
        assert!(c.reports().is_empty());
        c.process(T0, &[access(3, 0x14, AccessKind::Write, true)]);
        c.process(T0, &[access(4, 0x14, AccessKind::Write, true)]);
        assert_eq!(c.reports().len(), 1); // one pair vs T1's read, deduped
    }
}
