//! The tentpole guarantee of the parallel tile engine: running the tile
//! phase across worker threads is *bit-identical* to the single-threaded
//! schedule. Every kernel in the suite runs twice — `threads = 1` and
//! `threads = 4` — and every architectural counter must match exactly.
//!
//! Tiles step independently during the tile phase (inboxes are latched in
//! the network phase, outboxes drain in the inject phase), so shard
//! assignment and thread interleaving must not be observable anywhere:
//! not in cycle counts, not in stall blame, not in cache/HBM/NoC traffic.

use hammerblade::core::{CellDim, MachineConfig};
use hammerblade::kernels::{suite, SizeClass};

fn cfg_with_threads(threads: usize) -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 4, y: 2 },
        // Explicit, not from HB_THREADS/HB_EVENT_CORE: runs must differ
        // only where each test says they do.
        threads,
        event_core: true,
        ..MachineConfig::baseline_16x8()
    }
}

fn cfg_dense(threads: usize) -> MachineConfig {
    MachineConfig {
        event_core: false,
        ..cfg_with_threads(threads)
    }
}

#[test]
fn parallel_tile_phase_is_bit_identical_for_every_kernel() {
    let seq_cfg = cfg_with_threads(1);
    let par_cfg = cfg_with_threads(4);
    for bench in suite() {
        let name = bench.name();
        let seq = bench
            .run(&seq_cfg, SizeClass::Tiny)
            .unwrap_or_else(|e| panic!("{name} (threads=1) failed: {e}"));
        let par = bench
            .run(&par_cfg, SizeClass::Tiny)
            .unwrap_or_else(|e| panic!("{name} (threads=4) failed: {e}"));
        assert_eq!(seq.cycles, par.cycles, "{name}: cycle count diverged");
        assert_eq!(seq.core, par.core, "{name}: core counters diverged");
        assert_eq!(seq.hbm, par.hbm, "{name}: HBM2 counters diverged");
        assert_eq!(seq.cache, par.cache, "{name}: cache counters diverged");
        assert_eq!(
            seq.bisection, par.bisection,
            "{name}: NoC bisection counters diverged"
        );
        assert_eq!(
            seq.profile.east_busy, par.profile.east_busy,
            "{name}: per-router link activity diverged"
        );
    }
}

#[test]
fn event_schedule_is_bit_identical_to_dense_for_every_kernel() {
    // The event-driven core (quiescent tiles parked on a wake list) is a
    // host-side scheduling optimization only: for every kernel, at 1 and
    // 4 worker threads, every architectural counter must match the dense
    // every-tile-every-cycle schedule exactly.
    for threads in [1, 4] {
        let dense_cfg = cfg_dense(threads);
        let event_cfg = cfg_with_threads(threads);
        for bench in suite() {
            let name = bench.name();
            let dense = bench
                .run(&dense_cfg, SizeClass::Tiny)
                .unwrap_or_else(|e| panic!("{name} (dense, threads={threads}) failed: {e}"));
            let event = bench
                .run(&event_cfg, SizeClass::Tiny)
                .unwrap_or_else(|e| panic!("{name} (event, threads={threads}) failed: {e}"));
            assert_eq!(
                dense.cycles, event.cycles,
                "{name} (threads={threads}): cycle count diverged"
            );
            assert_eq!(
                dense.core, event.core,
                "{name} (threads={threads}): core counters diverged"
            );
            assert_eq!(
                dense.hbm, event.hbm,
                "{name} (threads={threads}): HBM2 counters diverged"
            );
            assert_eq!(
                dense.cache, event.cache,
                "{name} (threads={threads}): cache counters diverged"
            );
            assert_eq!(
                dense.bisection, event.bisection,
                "{name} (threads={threads}): NoC bisection counters diverged"
            );
            assert_eq!(
                dense.profile.east_busy, event.profile.east_busy,
                "{name} (threads={threads}): per-router link activity diverged"
            );
            // Host-side sanity, not an architectural counter: the dense
            // schedule never skips, the event schedule is allowed to.
            assert_eq!(dense.ticks_skipped, 0, "{name}: dense run skipped ticks");
        }
    }
}

#[test]
fn race_sanitizer_is_read_only_and_suite_is_clean() {
    // The dynamic race sanitizer only observes: every kernel must simulate
    // bit-identically with `race_check` on or off — and, while we're
    // watching, the suite must be race-free.
    let off_cfg = cfg_with_threads(1);
    let on_cfg = MachineConfig {
        race_check: true,
        ..cfg_with_threads(1)
    };
    let scope = hammerblade::core::collect_races();
    for bench in suite() {
        let name = bench.name();
        let off = bench
            .run(&off_cfg, SizeClass::Tiny)
            .unwrap_or_else(|e| panic!("{name} (race_check off) failed: {e}"));
        let on = bench
            .run(&on_cfg, SizeClass::Tiny)
            .unwrap_or_else(|e| panic!("{name} (race_check on) failed: {e}"));
        assert_eq!(off.cycles, on.cycles, "{name}: sanitizer changed cycles");
        assert_eq!(off.core, on.core, "{name}: sanitizer changed core counters");
        assert_eq!(off.hbm, on.hbm, "{name}: sanitizer changed HBM2 counters");
        let races = scope.take();
        assert!(
            races.is_empty(),
            "{name} is racy:\n{}",
            races
                .iter()
                .map(|(_, s)| s.as_str())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn oversubscribed_pool_is_still_deterministic() {
    // More worker threads than tiles (4x2 Cell, 16 threads): empty and
    // tiny shards must not change anything either.
    let bench = &suite()[0];
    let a = bench.run(&cfg_with_threads(1), SizeClass::Tiny).unwrap();
    let b = bench.run(&cfg_with_threads(16), SizeClass::Tiny).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.core, b.core);
}
