//! Producer-consumer across Cells (paper Figure 6): Cell 0 runs a
//! producer kernel that writes results directly into Cell 1's Local DRAM
//! through a Group-DRAM pointer, then raises a flag; Cell 1's consumer
//! spins on the flag and post-processes the data — no host round trip.
//!
//! Run with: `cargo run --release --example producer_consumer`

use hammerblade::asm::Assembler;
use hammerblade::core::{pgas, HbOps, Machine, MachineConfig};
use hammerblade::isa::Gpr::*;
use std::sync::Arc;

const N: u32 = 512;

/// Producer: out[i] = 3*i + 1, written into the *other* Cell's DRAM.
fn producer() -> Assembler {
    let mut a = Assembler::new();
    a.tg_rank(S0, T6);
    a.tg_size(S1, T6);
    let loop_top = a.new_label();
    let done = a.new_label();
    a.bind(loop_top);
    a.bge(S0, A2, done);
    a.slli(T0, S0, 1);
    a.add(T0, T0, S0);
    a.addi(T0, T0, 1); // 3i + 1
    a.slli(T1, S0, 2);
    a.add(T1, A0, T1);
    a.sw(T0, T1, 0); // group-DRAM store into Cell 1
    a.add(S0, S0, S1);
    a.j(loop_top);
    a.bind(done);
    a.fence();
    a.barrier(T6);
    // Rank 0 raises the flag once every producer tile has drained.
    a.tg_rank(S0, T6);
    let skip = a.new_label();
    a.bnez(S0, skip);
    a.li(T0, 1);
    a.sw(T0, A1, 0);
    a.fence();
    a.bind(skip);
    a.ecall();
    a
}

/// Consumer: rank 0 spins on the flag, then all tiles sum the data with
/// a parallel amoadd reduction.
fn consumer() -> Assembler {
    let mut a = Assembler::new();
    a.tg_rank(S0, T6);
    a.tg_size(S1, T6);
    // Rank 0 waits for the flag; everyone else waits at the barrier.
    let go = a.new_label();
    a.bnez(S0, go);
    let spin = a.here();
    a.lw(T0, A1, 0);
    a.beqz(T0, spin);
    a.bind(go);
    a.barrier(T6);
    // Parallel sum: each tile accumulates a stride, then amoadds once.
    a.li(S2, 0);
    a.mv(S3, S0);
    let loop_top = a.new_label();
    let done = a.new_label();
    a.bind(loop_top);
    a.bge(S3, A3, done);
    a.slli(T0, S3, 2);
    a.add(T0, A0, T0);
    a.lw(T1, T0, 0);
    a.add(S2, S2, T1);
    a.add(S3, S3, S1);
    a.j(loop_top);
    a.bind(done);
    a.amoadd(Zero, S2, A2);
    a.fence();
    a.ecall();
    a
}

fn main() {
    let cfg = MachineConfig {
        num_cells: 2,
        ..MachineConfig::baseline_16x8()
    };
    let mut machine = Machine::new(cfg);

    // Buffers live in Cell 1's DRAM; Cell 0 reaches them via Group DRAM.
    let data = machine.cell_mut(1).alloc(N * 4, 64);
    let flag = machine.cell_mut(1).alloc(4, 64);
    let total = machine.cell_mut(1).alloc(4, 64);

    let producer = Arc::new(producer().assemble(0).unwrap());
    let consumer = Arc::new(consumer().assemble(0).unwrap());
    machine.launch(
        0,
        &producer,
        &[pgas::group_dram(1, data), pgas::group_dram(1, flag), N],
    );
    machine.launch(
        1,
        &consumer,
        &[
            pgas::local_dram(data),
            pgas::local_dram(flag),
            pgas::local_dram(total),
            N,
        ],
    );
    let summary = machine.run(50_000_000).expect("pipeline completes");
    machine.cell_mut(1).flush_caches();

    let got = machine.cell(1).dram().read_u32(total);
    let expect: u32 = (0..N).map(|i| 3 * i + 1).sum();
    assert_eq!(got, expect);
    println!("producer-consumer pipeline over 2 Cells: sum = {got} (expected {expect})");
    println!("total cycles: {}", summary.cycles);
}
