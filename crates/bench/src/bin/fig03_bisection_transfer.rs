//! Figure 3: utilization of the bisection links between two adjacent
//! Cells while 1 MB of sparse, random data transfers to the neighbor
//! Cell's banks — HB's word-per-packet uniform network vs a hierarchical
//! manycore's 1024-bit block channels.

use hb_bench::{header, row, scale};
use hb_hier::BlockChannel;
use hb_kernels::SizeClass;
use hb_noc::{Coord, Network, NetworkConfig, Packet, RouteOrder};
use hb_rng::Rng;

fn main() {
    let words: usize = match scale() {
        SizeClass::Tiny => 16 * 1024 / 4,
        _ => 1024 * 1024 / 4, // the paper's 1 MB
    };
    println!(
        "Figure 3 — bisection utilization during a {}-word sparse random transfer\n",
        words
    );

    // Two 16x8 Cells side by side: a 32-wide network; the inter-Cell
    // bisection is the x=16 cut. Every left-Cell tile streams stores to
    // random right-Cell bank locations.
    let (horiz, h_cycles) = run_transfer(words, true);
    let (vert, v_cycles) = run_transfer(words, false);

    // Hierarchical comparator: the same words over a 128-byte-block
    // channel pair.
    let mut hier = BlockChannel::new(128, BlockChannel::random_workload(words, 1 << 20, 7));
    while !hier.is_done() {
        hier.tick();
    }

    let widths = [34usize, 12, 12];
    header(&["configuration", "mean util", "cycles"], &widths);
    row(
        &[
            "HB horizontal (Ruche bisection)".into(),
            format!("{:.1}%", horiz * 100.0),
            h_cycles.to_string(),
        ],
        &widths,
    );
    row(
        &[
            "HB vertical (mesh bisection)".into(),
            format!("{:.1}%", vert * 100.0),
            v_cycles.to_string(),
        ],
        &widths,
    );
    row(
        &[
            "Hierarchical 1024-bit channels".into(),
            format!("{:.1}%", hier.mean_utilization() * 100.0),
            hier.cycle().to_string(),
        ],
        &widths,
    );
    println!(
        "\npaper: HB sustains 80-90% on sparse random inter-Cell transfers;\n\
         block-channel hierarchical designs waste the wide links on sparse data."
    );
}

/// Streams `words` random single-word packets from one Cell into the
/// adjacent Cell; returns (mean bisection utilization, cycles).
fn run_transfer(words: usize, horizontal: bool) -> (f64, u64) {
    // Horizontal adjacency: 32x10 grid, cut at x=16 (Ruche links count).
    // Vertical adjacency: 16x20 grid, traffic crosses mesh N/S links; we
    // measure delivered words per cycle over the 16-link cut.
    let (w, h) = if horizontal { (32u8, 10u8) } else { (16, 20) };
    let mut net: Network<u32> = Network::new(NetworkConfig {
        width: w,
        height: h,
        ruche_factor: 3,
        order: RouteOrder::XThenY,
        fifo_depth: 4,
        link_occupancy: 1,
    });
    let mut rng = Rng::seed_from_u64(0xF163);
    let mut sent = 0usize;
    let mut received = 0usize;
    let start = net.cycle();
    // Injection sources: every node of the source Cell (tiles and banks
    // both generate traffic in the paper's transfer scenario).
    let sources: Vec<Coord> = if horizontal {
        (0..16u8)
            .flat_map(|x| (0..10u8).map(move |y| Coord::new(x, y)))
            .collect()
    } else {
        (0..16u8)
            .flat_map(|x| (0..10u8).map(move |y| Coord::new(x, y)))
            .collect()
    };
    while received < words {
        for &src in &sources {
            if sent < words && net.can_inject(src) {
                // Random bank node in the destination Cell.
                let dst = if horizontal {
                    let x = 16 + rng.range_u32(0, 16) as u8;
                    let y = if rng.chance(0.5) { 0 } else { 9 };
                    Coord::new(x, y)
                } else {
                    let x = rng.range_u32(0, 16) as u8;
                    let y = if rng.chance(0.5) { 10 } else { 19 };
                    Coord::new(x, y)
                };
                net.inject(
                    src,
                    Packet {
                        src,
                        dst,
                        payload: sent as u32,
                    },
                );
                sent += 1;
            }
        }
        net.tick();
        for y in 0..h {
            for x in 0..w {
                while net.eject(Coord::new(x, y)).is_some() {
                    received += 1;
                }
            }
        }
    }
    let cycles = net.cycle() - start;
    // Utilization: words that crossed the cut / (cut links * cycles).
    // Every word crosses exactly once.
    let links = if horizontal {
        // One direction of the x=16 cut carries the payload.
        net.bisection_link_count(16) / 2
    } else {
        16 // southward mesh links on the y=10 cut
    };
    let util = words as f64 / (links as f64 * cycles as f64);
    (util, cycles)
}
