//! `race_check` — the two-sided race-checking harness.
//!
//! Two modes:
//!
//! - `--suite` (the default): every suite kernel parameterization runs
//!   through **both** checkers — the static `phase-race` pass and a full
//!   golden-validating benchmark run under the dynamic epoch sanitizer —
//!   and must come back clean on both. Exit 1 on any finding.
//! - `--fixture NAME`: one deliberately-racy fixture from
//!   `hb_kernels::fixtures` runs through both checkers; findings are
//!   printed, cross-validated (every dynamic race must be statically
//!   flagged), and optionally compared against exact expected counts with
//!   `--expect static=N,dynamic=M` (mismatch exits 1). Pass `--fixture
//!   list` to enumerate the fixtures.
//!
//! Reports are bit-identical across `--threads` settings, so CI runs the
//! same expectations on `HB_THREADS=1` and `4`.
//!
//! ```text
//! cargo run --release -p hb-bench --bin race_check -- \
//!   [--suite] [--fixture NAME] [--expect static=N,dynamic=M] \
//!   [--cell WxH] [--threads T] [--verbose]
//! ```

use hb_bench::cli;
use hb_core::{CellDim, MachineConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: race_check [--suite] [--fixture NAME] \
[--expect static=N,dynamic=M] [--cell WxH] [--threads T] [--verbose]";

struct Args {
    fixture: Option<String>,
    expect: Option<(usize, usize)>,
    cell: Option<CellDim>,
    threads: usize,
    verbose: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        fixture: None,
        expect: None,
        cell: None,
        threads: hb_bench::job_threads(),
        verbose: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--suite" => {} // the default mode; accepted for explicitness
            "--fixture" => out.fixture = Some(cli::flag_value(&argv, &mut i, USAGE)),
            "--expect" => {
                let v = cli::flag_value(&argv, &mut i, USAGE);
                let mut want = (None, None);
                for part in v.split(',') {
                    match part.split_once('=') {
                        Some(("static", n)) => {
                            want.0 = Some(cli::parse_value("--expect", n.trim(), USAGE));
                        }
                        Some(("dynamic", n)) => {
                            want.1 = Some(cli::parse_value("--expect", n.trim(), USAGE));
                        }
                        _ => cli::usage_fail(USAGE, format!("bad --expect component {part:?}")),
                    }
                }
                let (Some(s), Some(d)) = want else {
                    cli::usage_fail(USAGE, "--expect needs both static=N and dynamic=M");
                };
                out.expect = Some((s, d));
            }
            "--cell" => {
                out.cell = Some(cli::parse_cell(
                    &cli::flag_value(&argv, &mut i, USAGE),
                    USAGE,
                ))
            }
            "--threads" => {
                // Consumed for arity; job_threads() already parsed it.
                let _ = cli::flag_value(&argv, &mut i, USAGE);
            }
            "--verbose" => out.verbose = true,
            other => cli::usage_fail(USAGE, format!("unknown option {other:?}")),
        }
        i += 1;
    }
    out
}

fn check_fixtures(args: &Args, name: &str) -> ExitCode {
    if name == "list" {
        for f in hb_kernels::fixtures::all() {
            println!(
                "{:32} static={} dynamic={}  {}",
                f.name, f.expect_static, f.expect_dynamic, f.blurb
            );
        }
        return ExitCode::SUCCESS;
    }
    let Some(f) = hb_kernels::fixtures::by_name(name) else {
        cli::fail(format!("unknown fixture {name:?} (try --fixture list)"));
    };
    let cfg = MachineConfig {
        cell_dim: args.cell.unwrap_or(CellDim { x: 4, y: 2 }),
        threads: args.threads,
        ..MachineConfig::baseline_16x8()
    };
    if let Err(e) = cfg.validate() {
        cli::fail(format!("invalid configuration: {e}"));
    }
    let out = hb_race::run_fixture(&f, &cfg);
    println!(
        "fixture {}: {} static finding(s), {} dynamic report(s)",
        out.name,
        out.statics.len(),
        out.dynamic.len()
    );
    if args.verbose {
        for c in &out.statics {
            println!(
                "static: {} at {:#x} vs {} at {:#x} ({}, phase {})",
                c.kind_a.label(),
                c.pc_a,
                c.kind_b.label(),
                c.pc_b,
                c.space,
                c.phase
            );
        }
    }
    for r in &out.rendered {
        println!("{r}");
    }
    if let Err(e) = hb_race::cross_validate(&out.statics, &out.dynamic) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!("cross-validation: every dynamic race statically flagged");
    if let Some((ws, wd)) = args.expect {
        if (out.statics.len(), out.dynamic.len()) != (ws, wd) {
            eprintln!(
                "expectation mismatch: wanted static={ws} dynamic={wd}, \
                 got static={} dynamic={}",
                out.statics.len(),
                out.dynamic.len()
            );
            return ExitCode::FAILURE;
        }
        println!("expected finding counts: ok");
    }
    ExitCode::SUCCESS
}

fn check_suite(args: &Args) -> ExitCode {
    let cfg = MachineConfig {
        cell_dim: args.cell.unwrap_or_else(hb_bench::bench_cell),
        threads: args.threads,
        ..MachineConfig::baseline_16x8()
    };
    if let Err(e) = cfg.validate() {
        cli::fail(format!("invalid configuration: {e}"));
    }
    let size = hb_bench::bench_size();
    println!(
        "race_check: suite cell={}x{} size={:?} (static + sanitized golden-validating runs)",
        cfg.cell_dim.x, cfg.cell_dim.y, size
    );
    let mut dirty = 0usize;
    for e in hb_race::check_suite(&cfg, size) {
        println!(
            "{:16} static={} dynamic={}  {}",
            e.name,
            e.static_findings,
            e.dynamic_findings,
            if e.is_clean() { "clean" } else { "RACY" }
        );
        for r in &e.races {
            println!("{r}");
        }
        if !e.is_clean() {
            dirty += 1;
        }
    }
    if dirty > 0 {
        eprintln!("error: {dirty} kernel(s) with race findings");
        return ExitCode::FAILURE;
    }
    println!(
        "all {} parameterizations race-clean",
        hb_race::SUITE_KERNELS.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    match &args.fixture {
        Some(name) => check_fixtures(&args, &name.clone()),
        None => check_suite(&args),
    }
}
