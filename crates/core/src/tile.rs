//! The HammerBlade tile: an area-optimized, single-issue, in-order RV32IMAF
//! core with a 4 KB scratchpad, 4 KB icache, static branch predictor,
//! non-blocking remote memory operations through a 63-entry scoreboard, and
//! Load Packet Compression — plus its network interface.
//!
//! The timing model is cycle-level: each [`Tile::step`] call advances one
//! core cycle, either retiring one instruction or recording exactly one
//! categorized stall cycle ([`StallKind`]). Result latencies are modelled
//! with per-register ready times (bypass-visible latency), remote operations
//! with pending bits cleared by response packets.

use crate::config::MachineConfig;
use crate::icache::ICache;
use crate::payload::{NodeId, ReqKind, Request, RespKind, Response};
use crate::pgas::{csr, PgasMap, Target};
use crate::stats::{CoreStats, StallKind};
use crate::trace::{TraceEvent, TraceHandle};
use hb_asm::Program;
use hb_isa::{Fpr, Gpr, Instr};
use hb_noc::{Coord, Packet};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Destination of an in-flight remote load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dst {
    /// Integer register (x0 = discard).
    Int(Gpr),
    /// FP register.
    Fp(Fpr),
}

/// Book-keeping for one outstanding remote operation.
#[derive(Debug, Clone)]
enum PendingOp {
    /// A (possibly compressed) load: one destination per word.
    Load {
        dsts: Vec<Dst>,
        width: u8,
        signed: bool,
    },
    /// A posted store awaiting its scoreboard credit.
    Store,
    /// An atomic op returning the old value.
    Amo { rd: Gpr },
}

/// Load-packet-compression combining latch.
#[derive(Debug, Clone)]
struct Combine {
    dst_cell: u8,
    dst_coord: Coord,
    base_addr: u32,
    dsts: Vec<Dst>,
    op_id: u32,
    /// Flush deadline (cycles the latch may hold the packet).
    flush_at: u64,
}

/// Tile-group identity exposed through CSRs.
///
/// The `live_*` fields carry the degraded-mode view when the machine runs
/// with [`crate::MachineConfig::disabled_tiles`]: each tile's copy holds
/// its own rank among the *live* group members plus an optional dead tile
/// it adopts. With no disabled tiles they mirror `TG_RANK`/`TG_SIZE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupInfo {
    /// Group origin within the Cell (tile coordinates).
    pub origin: (u8, u8),
    /// Group shape.
    pub dim: (u8, u8),
    /// Index of this group's barrier network in the Cell.
    pub barrier_id: usize,
    /// This tile's rank among live (non-disabled) group members, row-major.
    pub live_rank: u32,
    /// Number of live group members.
    pub live_size: u32,
    /// Packed Cell coordinates `(x << 8) | y` of the disabled tile this
    /// one adopts the work of, or [`crate::pgas::NO_ADOPTEE`].
    pub adopt: u32,
}

/// One HammerBlade tile (core + SPM + network interface).
#[derive(Debug)]
pub struct Tile {
    cfg: Arc<MachineConfig>,
    pgas: PgasMap,
    /// Tile coordinates within the Cell.
    pub xy: (u8, u8),
    group: GroupInfo,

    // Architectural state.
    regs: [u32; 32],
    fregs: [f32; 32],
    pc: u32,
    spm: Vec<u8>,
    args: [u32; 8],

    // Hazard tracking.
    int_ready: [u64; 32],
    fp_ready: [u64; 32],
    int_ready_kind: [StallKind; 32],
    fp_ready_kind: [StallKind; 32],
    int_pending: [bool; 32],
    fp_pending: [bool; 32],
    fpu_busy_until: u64,
    div_busy_until: u64,
    penalty_until: u64,
    penalty_kind: StallKind,

    // Frontend.
    icache: ICache,
    program: Option<Arc<Program>>,

    // Remote-op scoreboard.
    outstanding: usize,
    next_op_id: u32,
    pending_ops: HashMap<u32, PendingOp>,
    blocking_on: Option<u32>,
    combine: Option<Combine>,

    // Network interface queues (drained/filled by the Cell).
    /// Requests this tile wants to send (cross-cell requests included;
    /// the Cell separates them).
    pub req_outbox: VecDeque<(u8, Packet<Request>)>,
    /// Responses to remote-SPM requests from other tiles.
    pub resp_outbox: VecDeque<(u8, Packet<Response>)>,
    /// Incoming remote-SPM requests.
    pub req_inbox: VecDeque<Packet<Request>>,
    /// Incoming responses for this tile's remote ops.
    pub resp_inbox: VecDeque<Packet<Response>>,
    /// Responses arriving from the inter-Cell fabric, staged so delivery
    /// into [`resp_inbox`](Self::resp_inbox) respects the per-cycle
    /// ejection cap (see [`crate::EJECT_PER_CYCLE`]).
    pub resp_stage: VecDeque<Packet<Response>>,

    // Barrier interface (handled by the Cell).
    /// Set when the core executed a barrier join this cycle.
    pub wants_join: bool,
    /// True while blocked in the barrier.
    pub barrier_waiting: bool,

    /// Execution state.
    running: bool,
    finished: bool,
    /// `(pc, cause)` of the trap, if the tile trapped.
    fault: Option<(u32, String)>,
    stats: CoreStats,
    trace: Option<TraceHandle>,
    last_cycle: u64,

    /// Telemetry capture (see [`crate::observe`]): when set, the rare
    /// event paths (mark stores, barrier joins, fence retires, faults)
    /// append to `obs_events`; the sampler drains the buffer each window.
    observed: bool,
    obs_events: Vec<(u64, crate::observe::ObsKind)>,

    /// Race-sanitizer capture (see [`crate::race`]): when set, every
    /// shared-location access appends an epoch-log entry; the machine
    /// drains the log each cycle into the [`crate::race::RaceChecker`].
    race_check: bool,
    race_log: Vec<crate::race::TileRaceEvent>,
    /// Captured at the barrier-join store: whether remote operations were
    /// still outstanding (an unfenced join lets writes leak into the next
    /// epoch).
    race_join_unfenced: bool,

    /// Guest-code profile capture (see [`crate::gprof`]): allocated at
    /// launch when [`MachineConfig::profile`](crate::MachineConfig) is
    /// set, `None` otherwise — every record site pays exactly one branch
    /// on the option when profiling is off.
    prof: Option<Box<crate::gprof::TileProfile>>,
}

const OUTBOX_CAP: usize = 4;

fn extend(value: u32, width: u8, signed: bool) -> u32 {
    match (width, signed) {
        (1, false) => value & 0xff,
        (1, true) => value as u8 as i8 as i32 as u32,
        (2, false) => value & 0xffff,
        (2, true) => value as u16 as i16 as i32 as u32,
        _ => value,
    }
}

fn read_bytes(buf: &[u8], offset: u32, width: u8) -> u32 {
    let o = offset as usize;
    let mut v = 0u32;
    for i in (0..width as usize).rev() {
        v = (v << 8) | u32::from(buf[o + i]);
    }
    v
}

fn write_bytes(buf: &mut [u8], offset: u32, width: u8, value: u32) {
    let o = offset as usize;
    for i in 0..width as usize {
        buf[o + i] = (value >> (8 * i)) as u8;
    }
}

// ---- Snapshot helpers for tile-private types ----

fn snap_load_stall_kind(r: &mut hb_mem::SnapReader) -> Result<StallKind, hb_mem::SnapError> {
    let t = r.u8()? as usize;
    if t >= StallKind::COUNT {
        return Err(hb_mem::SnapError::Bad("stall kind out of range"));
    }
    Ok(StallKind::ALL[t])
}

fn snap_save_dst(w: &mut hb_mem::SnapWriter, d: Dst) {
    match d {
        Dst::Int(rd) => {
            w.u8(0);
            w.u8(rd.index());
        }
        Dst::Fp(rd) => {
            w.u8(1);
            w.u8(rd.index());
        }
    }
}

fn snap_load_dst(r: &mut hb_mem::SnapReader) -> Result<Dst, hb_mem::SnapError> {
    let tag = r.u8()?;
    let idx = r.u8()?;
    if idx >= 32 {
        return Err(hb_mem::SnapError::Bad("register index out of range"));
    }
    match tag {
        0 => Ok(Dst::Int(Gpr::from_index(idx))),
        1 => Ok(Dst::Fp(Fpr::from_index(idx))),
        _ => Err(hb_mem::SnapError::Bad("unknown load destination tag")),
    }
}

fn snap_save_pending(w: &mut hb_mem::SnapWriter, op: &PendingOp) {
    match op {
        PendingOp::Load {
            dsts,
            width,
            signed,
        } => {
            w.u8(0);
            w.usize(dsts.len());
            for &d in dsts {
                snap_save_dst(w, d);
            }
            w.u8(*width);
            w.bool(*signed);
        }
        PendingOp::Store => w.u8(1),
        PendingOp::Amo { rd } => {
            w.u8(2);
            w.u8(rd.index());
        }
    }
}

fn snap_load_pending(r: &mut hb_mem::SnapReader) -> Result<PendingOp, hb_mem::SnapError> {
    Ok(match r.u8()? {
        0 => {
            let mut dsts = Vec::new();
            for _ in 0..r.seq_len()? {
                dsts.push(snap_load_dst(r)?);
            }
            PendingOp::Load {
                dsts,
                width: r.u8()?,
                signed: r.bool()?,
            }
        }
        1 => PendingOp::Store,
        2 => {
            let idx = r.u8()?;
            if idx >= 32 {
                return Err(hb_mem::SnapError::Bad("register index out of range"));
            }
            PendingOp::Amo {
                rd: Gpr::from_index(idx),
            }
        }
        _ => return Err(hb_mem::SnapError::Bad("unknown pending op tag")),
    })
}

impl Tile {
    /// Creates an idle tile.
    pub fn new(cfg: Arc<MachineConfig>, pgas: PgasMap, xy: (u8, u8)) -> Tile {
        let spm = vec![0; cfg.spm_bytes as usize];
        let icache = ICache::new(cfg.icache_bytes);
        Tile {
            cfg,
            pgas,
            xy,
            group: GroupInfo {
                origin: (0, 0),
                dim: (1, 1),
                barrier_id: 0,
                live_rank: 0,
                live_size: 1,
                adopt: crate::pgas::NO_ADOPTEE,
            },
            regs: [0; 32],
            fregs: [0.0; 32],
            pc: 0,
            spm,
            args: [0; 8],
            int_ready: [0; 32],
            fp_ready: [0; 32],
            int_ready_kind: [StallKind::Bypass; 32],
            fp_ready_kind: [StallKind::Bypass; 32],
            int_pending: [false; 32],
            fp_pending: [false; 32],
            fpu_busy_until: 0,
            div_busy_until: 0,
            penalty_until: 0,
            penalty_kind: StallKind::IcacheMiss,
            icache,
            program: None,
            outstanding: 0,
            next_op_id: 0,
            pending_ops: HashMap::new(),
            blocking_on: None,
            combine: None,
            req_outbox: VecDeque::new(),
            resp_outbox: VecDeque::new(),
            req_inbox: VecDeque::new(),
            resp_inbox: VecDeque::new(),
            resp_stage: VecDeque::new(),
            wants_join: false,
            barrier_waiting: false,
            running: false,
            finished: false,
            fault: None,
            stats: CoreStats::default(),
            trace: None,
            last_cycle: 0,
            observed: false,
            obs_events: Vec::new(),
            race_check: false,
            race_log: Vec::new(),
            race_join_unfenced: false,
            prof: None,
        }
    }

    /// Installs a shared trace buffer (see [`crate::trace`]).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Turns telemetry event capture on or off (off discards any
    /// undrained events).
    pub fn set_observed(&mut self, on: bool) {
        self.observed = on;
        if !on {
            self.obs_events.clear();
        }
    }

    /// Drains the captured `(cycle, kind)` instant events, oldest first.
    pub fn drain_obs_events(&mut self) -> std::vec::Drain<'_, (u64, crate::observe::ObsKind)> {
        self.obs_events.drain(..)
    }

    /// Turns race-sanitizer capture on or off (off discards any undrained
    /// log entries).
    pub fn set_race_check(&mut self, on: bool) {
        self.race_check = on;
        if !on {
            self.race_log.clear();
        }
    }

    /// The undrained race log (drained by the machine each cycle).
    pub(crate) fn race_log_mut(&mut self) -> &mut Vec<crate::race::TileRaceEvent> {
        &mut self.race_log
    }

    /// Appends a shared-location access to the race log. One always-false
    /// branch when the sanitizer is off.
    #[inline]
    fn push_race(
        &mut self,
        cycle: u64,
        loc: crate::race::RaceLoc,
        kind: crate::race::AccessKind,
        remote: bool,
    ) {
        if self.race_check {
            self.race_log.push(crate::race::TileRaceEvent::Access {
                cycle,
                loc,
                pc: self.pc,
                kind,
                remote,
            });
        }
    }

    /// Called by the Cell when this tile consumes a barrier release: closes
    /// the tile's current epoch in the race log.
    pub(crate) fn race_epoch_end(&mut self) {
        if self.race_check {
            self.race_log.push(crate::race::TileRaceEvent::EpochEnd {
                unfenced: self.race_join_unfenced,
            });
        }
        self.race_join_unfenced = false;
    }

    /// Disassembles the instruction at `pc` of the loaded program, if any.
    pub fn disasm_at(&self, pc: u32) -> Option<String> {
        self.program
            .as_ref()
            .and_then(|p| p.instr_at(pc))
            .map(|i| i.to_string())
    }

    /// Launches the kernel: resets architectural state, loads `args` into
    /// `a0..a7` (and the ARG CSRs), points the PC at the program base.
    pub fn launch(&mut self, program: Arc<Program>, args: &[u32], group: GroupInfo) {
        assert!(args.len() <= 8, "at most 8 kernel arguments");
        self.regs = [0; 32];
        self.fregs = [0.0; 32];
        self.int_ready = [0; 32];
        self.fp_ready = [0; 32];
        self.int_pending = [false; 32];
        self.fp_pending = [false; 32];
        self.args = [0; 8];
        for (i, &a) in args.iter().enumerate() {
            self.args[i] = a;
            self.regs[Gpr::A0.index() as usize + i] = a;
        }
        // Stack at the top of the scratchpad.
        self.regs[Gpr::Sp.index() as usize] = self.cfg.spm_bytes;
        self.pc = program.base();
        self.prof = self.cfg.profile.then(|| {
            Box::new(crate::gprof::TileProfile::new(
                program.base(),
                program.instrs().len(),
            ))
        });
        self.program = Some(program);
        self.group = group;
        self.running = true;
        self.finished = false;
        self.fault = None;
        self.blocking_on = None;
        self.combine = None;
    }

    /// Whether the tile has executed `ecall` (kernel complete).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Whether the tile is executing.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// The `(pc, cause)` of the trap, if the tile trapped.
    pub fn fault(&self) -> Option<(u32, &str)> {
        self.fault.as_ref().map(|(pc, cause)| (*pc, cause.as_str()))
    }

    /// Outstanding remote operations (scoreboard occupancy).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// This tile's group info.
    pub fn group(&self) -> GroupInfo {
        self.group
    }

    /// Reads a word from the scratchpad (host/debug access).
    pub fn spm_read_u32(&self, offset: u32) -> u32 {
        read_bytes(&self.spm, offset, 4)
    }

    /// Writes a word to the scratchpad (host/debug access).
    pub fn spm_write_u32(&mut self, offset: u32, value: u32) {
        write_bytes(&mut self.spm, offset, 4, value);
    }

    /// Reads an integer register (debug).
    pub fn reg(&self, r: Gpr) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Reads an FP register (debug).
    pub fn freg(&self, r: Fpr) -> f32 {
        self.fregs[r.index() as usize]
    }

    /// The whole integer register file (functional snapshot).
    pub fn arch_regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// The whole FP register file (functional snapshot).
    pub fn arch_fregs(&self) -> &[f32; 32] {
        &self.fregs
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The full scratchpad image.
    pub fn spm(&self) -> &[u8] {
        &self.spm
    }

    /// The loaded program, if launched.
    pub fn program(&self) -> Option<&Arc<Program>> {
        self.program.as_ref()
    }

    /// Kernel arguments as loaded at launch (ARG CSRs).
    pub fn args(&self) -> [u32; 8] {
        self.args
    }

    /// Overwrites the architectural state — registers, PC, scratchpad —
    /// with a functionally-computed snapshot (fast-forward injection).
    ///
    /// Clears all hazard/scoreboard timing state; the caller must only
    /// inject while the tile is quiescent (no outstanding remote ops), which
    /// [`crate::Machine::warmup_functional`] guarantees by running before
    /// the first cycle.
    ///
    /// # Panics
    ///
    /// Panics if the tile has outstanding remote operations or `spm` does
    /// not match the configured scratchpad size.
    pub fn restore_arch_state(&mut self, regs: &[u32; 32], fregs: &[f32; 32], pc: u32, spm: &[u8]) {
        assert_eq!(
            self.outstanding, 0,
            "cannot inject state over in-flight remote ops"
        );
        assert_eq!(spm.len(), self.spm.len(), "SPM image size mismatch");
        self.regs = *regs;
        self.fregs = *fregs;
        self.pc = pc;
        self.spm.copy_from_slice(spm);
        self.int_ready = [0; 32];
        self.fp_ready = [0; 32];
        self.int_pending = [false; 32];
        self.fp_pending = [false; 32];
        self.wants_join = false;
        self.barrier_waiting = false;
        self.blocking_on = None;
        self.combine = None;
    }

    /// Marks this tile as configured-dead: it stays addressable (its NI
    /// keeps serving remote-SPM traffic and its barrier node is bypassed by
    /// the Cell) but never executes an instruction. Called after
    /// [`Tile::launch`] for tiles in
    /// [`crate::MachineConfig::disabled_tiles`].
    pub fn disable(&mut self) {
        self.running = false;
        self.finished = true;
    }

    /// Whether the tile is currently frozen by an injected fault.
    pub fn is_frozen(&self) -> bool {
        self.penalty_kind == StallKind::Frozen && self.penalty_until > self.last_cycle
    }

    /// Appends an instant event if telemetry capture is on (used by the
    /// Cell for events it attributes to this tile, e.g. HBM stalls).
    pub(crate) fn push_obs(&mut self, cycle: u64, kind: crate::observe::ObsKind) {
        if self.observed {
            self.obs_events.push((cycle, kind));
        }
    }

    fn note_inject(&mut self, cycle: u64, kind: crate::observe::InjectKind) {
        self.push_obs(cycle, crate::observe::ObsKind::Inject(kind));
    }

    /// Injects a single-bit flip into an integer register. Flips aimed at
    /// `x0` are masked by the hardwired zero; returns whether the flip
    /// landed in architectural state.
    pub fn inject_reg_flip(&mut self, reg: u8, bit: u8, cycle: u64) -> bool {
        let r = usize::from(reg) % 32;
        if r == 0 {
            return false;
        }
        self.regs[r] ^= 1 << (bit % 32);
        self.note_inject(cycle, crate::observe::InjectKind::Reg);
        true
    }

    /// Injects a single-bit flip into one scratchpad word (word index wraps
    /// to the SPM size).
    pub fn inject_spm_flip(&mut self, word: u16, bit: u8, cycle: u64) {
        let nwords = self.spm.len() / 4;
        let off = (usize::from(word) % nwords) as u32 * 4;
        let v = read_bytes(&self.spm, off, 4) ^ (1 << (bit % 32));
        write_bytes(&mut self.spm, off, 4, v);
        self.note_inject(cycle, crate::observe::InjectKind::Spm);
    }

    /// Injects a detected icache parity flip: the line is invalidated, so
    /// the next fetch of it refills (one extra miss, never corruption).
    pub fn inject_icache_invalidate(&mut self, line: u16, cycle: u64) {
        self.icache.invalidate_line(usize::from(line));
        self.note_inject(cycle, crate::observe::InjectKind::Icache);
    }

    /// Freezes the core for `cycles` (or forever, for
    /// [`hb_fault::FREEZE_FOREVER`]-style `u64::MAX`): the pipeline stalls
    /// as [`StallKind::Frozen`] but the network interface keeps serving
    /// remote-SPM traffic, like a clock-gated core behind a live NI.
    pub fn freeze(&mut self, cycles: u64, now: u64) {
        self.penalty_until = now.saturating_add(cycles);
        self.penalty_kind = StallKind::Frozen;
        self.note_inject(now, crate::observe::InjectKind::Freeze);
    }

    fn stall(&mut self, kind: StallKind) {
        self.stats.add_stall(kind);
        if let Some(p) = &mut self.prof {
            p.record_stall(self.pc, kind);
        }
    }

    /// Bulk stall catch-up from the event scheduler: the tile slept `n`
    /// cycles during which the dense schedule would have recorded one
    /// stall of `kind` each (see `crate::sched`). The PC cannot have moved
    /// since the tile parked, so attributing the whole span to the current
    /// PC reproduces the dense schedule's cycle-by-cycle attribution.
    pub(crate) fn credit_stalls(&mut self, kind: StallKind, n: u64) {
        self.stats.add_stall_n(kind, n);
        if let Some(p) = &mut self.prof {
            p.record_stall_n(self.pc, kind, n);
        }
    }

    /// The guest-code profile buffer, when profiling is configured and the
    /// tile has launched.
    pub(crate) fn guest_prof(&self) -> Option<&crate::gprof::TileProfile> {
        self.prof.as_deref()
    }

    /// Serializes the complete tile state: architectural (registers, PC,
    /// SPM), microarchitectural (hazard timers, scoreboard, combining
    /// latch, icache tags), every network-interface queue, execution
    /// flags, counters and the optional profile buffer. `prog_idx` is this
    /// tile's index into the Cell's deduplicated program table (tiles
    /// share `Arc<Program>` images; the Cell owns the table).
    ///
    /// Host-side capture channels that feed *external* consumers — the
    /// trace buffer and the race-sanitizer log — are not serialized: the
    /// race log is drained every cycle (empty at any checkpoint boundary)
    /// and its checker lives outside the snapshot by design.
    pub(crate) fn snap_save(&self, w: &mut hb_mem::SnapWriter, prog_idx: Option<u32>) {
        use crate::payload::{snap_save_coord, snap_save_req_packet, snap_save_resp_packet};
        w.tag(b"TILE");
        // Group identity (set at launch).
        w.u8(self.group.origin.0);
        w.u8(self.group.origin.1);
        w.u8(self.group.dim.0);
        w.u8(self.group.dim.1);
        w.usize(self.group.barrier_id);
        w.u32(self.group.live_rank);
        w.u32(self.group.live_size);
        w.u32(self.group.adopt);
        // Architectural state.
        for r in self.regs {
            w.u32(r);
        }
        for f in self.fregs {
            w.f32(f);
        }
        w.u32(self.pc);
        w.bytes(&self.spm);
        for a in self.args {
            w.u32(a);
        }
        // Hazard tracking.
        for v in self.int_ready {
            w.u64(v);
        }
        for v in self.fp_ready {
            w.u64(v);
        }
        for k in self.int_ready_kind {
            w.u8(k as u8);
        }
        for k in self.fp_ready_kind {
            w.u8(k as u8);
        }
        for p in self.int_pending {
            w.bool(p);
        }
        for p in self.fp_pending {
            w.bool(p);
        }
        w.u64(self.fpu_busy_until);
        w.u64(self.div_busy_until);
        w.u64(self.penalty_until);
        w.u8(self.penalty_kind as u8);
        // Frontend.
        self.icache.snap_save(w);
        if w.opt(prog_idx.is_some()) {
            w.u32(prog_idx.unwrap());
        }
        // Scoreboard (map serialized sorted by op id for determinism).
        w.usize(self.outstanding);
        w.u32(self.next_op_id);
        let mut ops: Vec<(&u32, &PendingOp)> = self.pending_ops.iter().collect();
        ops.sort_by_key(|(id, _)| **id);
        w.usize(ops.len());
        for (id, op) in ops {
            w.u32(*id);
            snap_save_pending(w, op);
        }
        if w.opt(self.blocking_on.is_some()) {
            w.u32(self.blocking_on.unwrap());
        }
        if w.opt(self.combine.is_some()) {
            let c = self.combine.as_ref().unwrap();
            w.u8(c.dst_cell);
            snap_save_coord(w, c.dst_coord);
            w.u32(c.base_addr);
            w.usize(c.dsts.len());
            for &d in &c.dsts {
                snap_save_dst(w, d);
            }
            w.u32(c.op_id);
            w.u64(c.flush_at);
        }
        // Network-interface queues.
        w.usize(self.req_outbox.len());
        for (cell, pkt) in &self.req_outbox {
            w.u8(*cell);
            snap_save_req_packet(w, pkt);
        }
        w.usize(self.resp_outbox.len());
        for (cell, pkt) in &self.resp_outbox {
            w.u8(*cell);
            snap_save_resp_packet(w, pkt);
        }
        w.usize(self.req_inbox.len());
        for pkt in &self.req_inbox {
            snap_save_req_packet(w, pkt);
        }
        w.usize(self.resp_inbox.len());
        for pkt in &self.resp_inbox {
            snap_save_resp_packet(w, pkt);
        }
        w.usize(self.resp_stage.len());
        for pkt in &self.resp_stage {
            snap_save_resp_packet(w, pkt);
        }
        // Execution flags and counters.
        w.bool(self.wants_join);
        w.bool(self.barrier_waiting);
        w.bool(self.running);
        w.bool(self.finished);
        if w.opt(self.fault.is_some()) {
            let (pc, cause) = self.fault.as_ref().unwrap();
            w.u32(*pc);
            w.str(cause);
        }
        self.stats.snap_save(w);
        w.u64(self.last_cycle);
        w.bool(self.observed);
        w.usize(self.obs_events.len());
        for &(cycle, kind) in &self.obs_events {
            w.u64(cycle);
            kind.snap_save(w);
        }
        if w.opt(self.prof.is_some()) {
            self.prof.as_ref().unwrap().snap_save(w);
        }
    }

    /// Restores tile state written by [`Tile::snap_save`] into a tile of
    /// the same configuration. `programs` is the Cell's decoded program
    /// table; the tile's saved index resolves against it.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation, an out-of-range tag/index, or
    /// a geometry mismatch (SPM/icache size).
    pub(crate) fn snap_load(
        &mut self,
        r: &mut hb_mem::SnapReader,
        programs: &[Arc<Program>],
    ) -> Result<(), hb_mem::SnapError> {
        use crate::payload::{snap_load_coord, snap_load_req_packet, snap_load_resp_packet};
        use hb_mem::SnapError;
        r.expect_tag(b"TILE", "Tile section")?;
        self.group = GroupInfo {
            origin: (r.u8()?, r.u8()?),
            dim: (r.u8()?, r.u8()?),
            barrier_id: r.usize()?,
            live_rank: r.u32()?,
            live_size: r.u32()?,
            adopt: r.u32()?,
        };
        for reg in &mut self.regs {
            *reg = r.u32()?;
        }
        for f in &mut self.fregs {
            *f = r.f32()?;
        }
        self.pc = r.u32()?;
        let spm = r.bytes()?;
        if spm.len() != self.spm.len() {
            return Err(SnapError::Bad("SPM size mismatch"));
        }
        self.spm.copy_from_slice(&spm);
        for a in &mut self.args {
            *a = r.u32()?;
        }
        for v in &mut self.int_ready {
            *v = r.u64()?;
        }
        for v in &mut self.fp_ready {
            *v = r.u64()?;
        }
        for k in &mut self.int_ready_kind {
            *k = snap_load_stall_kind(r)?;
        }
        for k in &mut self.fp_ready_kind {
            *k = snap_load_stall_kind(r)?;
        }
        for p in &mut self.int_pending {
            *p = r.bool()?;
        }
        for p in &mut self.fp_pending {
            *p = r.bool()?;
        }
        self.fpu_busy_until = r.u64()?;
        self.div_busy_until = r.u64()?;
        self.penalty_until = r.u64()?;
        self.penalty_kind = snap_load_stall_kind(r)?;
        self.icache.snap_load(r)?;
        self.program = if r.opt()? {
            let idx = r.u32()? as usize;
            Some(
                programs
                    .get(idx)
                    .ok_or(SnapError::Bad("program table index out of range"))?
                    .clone(),
            )
        } else {
            None
        };
        self.outstanding = r.usize()?;
        self.next_op_id = r.u32()?;
        self.pending_ops.clear();
        for _ in 0..r.seq_len()? {
            let id = r.u32()?;
            self.pending_ops.insert(id, snap_load_pending(r)?);
        }
        self.blocking_on = if r.opt()? { Some(r.u32()?) } else { None };
        self.combine = if r.opt()? {
            let dst_cell = r.u8()?;
            let dst_coord = snap_load_coord(r)?;
            let base_addr = r.u32()?;
            let mut dsts = Vec::new();
            for _ in 0..r.seq_len()? {
                dsts.push(snap_load_dst(r)?);
            }
            Some(Combine {
                dst_cell,
                dst_coord,
                base_addr,
                dsts,
                op_id: r.u32()?,
                flush_at: r.u64()?,
            })
        } else {
            None
        };
        self.req_outbox.clear();
        for _ in 0..r.seq_len()? {
            let cell = r.u8()?;
            self.req_outbox.push_back((cell, snap_load_req_packet(r)?));
        }
        self.resp_outbox.clear();
        for _ in 0..r.seq_len()? {
            let cell = r.u8()?;
            self.resp_outbox
                .push_back((cell, snap_load_resp_packet(r)?));
        }
        self.req_inbox.clear();
        for _ in 0..r.seq_len()? {
            self.req_inbox.push_back(snap_load_req_packet(r)?);
        }
        self.resp_inbox.clear();
        for _ in 0..r.seq_len()? {
            self.resp_inbox.push_back(snap_load_resp_packet(r)?);
        }
        self.resp_stage.clear();
        for _ in 0..r.seq_len()? {
            self.resp_stage.push_back(snap_load_resp_packet(r)?);
        }
        self.wants_join = r.bool()?;
        self.barrier_waiting = r.bool()?;
        self.running = r.bool()?;
        self.finished = r.bool()?;
        self.fault = if r.opt()? {
            Some((r.u32()?, r.str()?.to_string()))
        } else {
            None
        };
        self.stats = CoreStats::snap_load(r)?;
        self.last_cycle = r.u64()?;
        self.observed = r.bool()?;
        self.obs_events.clear();
        for _ in 0..r.seq_len()? {
            let cycle = r.u64()?;
            let kind = crate::observe::ObsKind::snap_load(r)?;
            self.obs_events.push((cycle, kind));
        }
        self.prof = if r.opt()? {
            Some(Box::new(crate::gprof::TileProfile::snap_load(r)?))
        } else {
            None
        };
        Ok(())
    }

    fn trap(&mut self, msg: String) {
        if let Some(t) = &self.trace {
            t.push(TraceEvent::Fault {
                cycle: self.last_cycle,
                tile: self.xy,
                message: msg.clone(),
            });
        }
        if self.observed {
            self.obs_events
                .push((self.last_cycle, crate::observe::ObsKind::Fault));
        }
        self.fault = Some((self.pc, msg));
        self.running = false;
    }

    fn write_int(&mut self, rd: Gpr, value: u32) {
        if rd != Gpr::Zero {
            self.regs[rd.index() as usize] = value;
        }
    }

    fn set_int_latency(&mut self, rd: Gpr, now: u64, lat: u64, kind: StallKind) {
        if rd != Gpr::Zero && lat > 1 {
            self.int_ready[rd.index() as usize] = now + lat;
            self.int_ready_kind[rd.index() as usize] = kind;
        }
    }

    fn set_fp_latency(&mut self, rd: Fpr, now: u64, lat: u64, kind: StallKind) {
        if lat > 1 {
            self.fp_ready[rd.index() as usize] = now + lat;
            self.fp_ready_kind[rd.index() as usize] = kind;
        }
    }

    /// Checks an integer source register; returns the stall cause if it is
    /// not yet usable.
    fn int_hazard(&self, r: Gpr, now: u64) -> Option<StallKind> {
        let i = r.index() as usize;
        if self.int_pending[i] {
            return Some(StallKind::RemoteLoad);
        }
        if self.int_ready[i] > now {
            return Some(self.int_ready_kind[i]);
        }
        None
    }

    fn fp_hazard(&self, r: Fpr, now: u64) -> Option<StallKind> {
        let i = r.index() as usize;
        if self.fp_pending[i] {
            return Some(StallKind::RemoteLoad);
        }
        if self.fp_ready[i] > now {
            return Some(self.fp_ready_kind[i]);
        }
        None
    }

    /// Processes all arrived responses: fills registers, releases the
    /// scoreboard.
    fn drain_responses(&mut self, now: u64) {
        while let Some(pkt) = self.resp_inbox.pop_front() {
            let resp = pkt.payload;
            let Some(op) = self.pending_ops.remove(&resp.op_id) else {
                self.trap(format!("response for unknown op {}", resp.op_id));
                return;
            };
            match (op, resp.kind) {
                (
                    PendingOp::Load {
                        dsts,
                        width,
                        signed,
                    },
                    RespKind::Load { data, count },
                ) => {
                    debug_assert_eq!(dsts.len(), count as usize);
                    for (i, dst) in dsts.iter().enumerate() {
                        let v = extend(data[i], width, signed);
                        match *dst {
                            Dst::Int(rd) => {
                                self.write_int(rd, v);
                                self.int_pending[rd.index() as usize] = false;
                            }
                            Dst::Fp(rd) => {
                                self.fregs[rd.index() as usize] = f32::from_bits(v);
                                self.fp_pending[rd.index() as usize] = false;
                            }
                        }
                        self.outstanding -= 1;
                    }
                }
                (PendingOp::Store, RespKind::StoreAck) => {
                    self.outstanding -= 1;
                }
                (PendingOp::Amo { rd }, RespKind::AmoOld { data }) => {
                    self.write_int(rd, data);
                    self.int_pending[rd.index() as usize] = false;
                    self.outstanding -= 1;
                }
                (op, kind) => {
                    self.trap(format!("mismatched response {kind:?} for {op:?}"));
                    return;
                }
            }
            if self.blocking_on == Some(resp.op_id) {
                self.blocking_on = None;
            }
            let _ = now;
        }
    }

    /// Services one incoming remote-SPM request per cycle.
    fn service_spm_request(&mut self) {
        if self.resp_outbox.len() >= OUTBOX_CAP {
            return;
        }
        let Some(pkt) = self.req_inbox.pop_front() else {
            return;
        };
        let req = pkt.payload;
        let kind = match req.kind {
            ReqKind::Load { addr, width, count } => {
                let mut data = [0u32; 4];
                for (i, slot) in data.iter_mut().enumerate().take(count as usize) {
                    let a = addr + (i as u32) * u32::from(width);
                    *slot = if a + u32::from(width) > self.cfg.spm_bytes {
                        0
                    } else {
                        read_bytes(&self.spm, a, width)
                    };
                }
                RespKind::Load { data, count }
            }
            ReqKind::Store { addr, width, data } => {
                if addr + u32::from(width) <= self.cfg.spm_bytes {
                    write_bytes(&mut self.spm, addr, width, data);
                }
                RespKind::StoreAck
            }
            ReqKind::Amo { addr, op, data } => {
                // AMOs on scratchpads are allowed for flags/mailboxes.
                let old = read_bytes(&self.spm, addr, 4);
                write_bytes(&mut self.spm, addr, 4, op.apply(old, data));
                RespKind::AmoOld { data: old }
            }
        };
        let resp = Response {
            op_id: req.op_id,
            kind,
        };
        self.resp_outbox.push_back((
            req.from.cell,
            Packet {
                src: pkt.dst,
                dst: req.from.coord,
                payload: resp,
            },
        ));
    }

    fn flush_combine(&mut self) {
        let Some(c) = self.combine.take() else {
            return;
        };
        let count = c.dsts.len() as u8;
        if count > 1 {
            self.stats.lpc_merged += u64::from(count) - 1;
        }
        let req = Request {
            from: NodeId {
                cell: self.pgas.cell_id,
                coord: self.pgas.tile_coord(self.xy.0, self.xy.1),
            },
            op_id: c.op_id,
            kind: ReqKind::Load {
                addr: c.base_addr,
                width: 4,
                count,
            },
        };
        self.req_outbox.push_back((
            c.dst_cell,
            Packet {
                src: self.pgas.tile_coord(self.xy.0, self.xy.1),
                dst: c.dst_coord,
                payload: req,
            },
        ));
        self.stats.remote_requests += 1;
    }

    /// Issues a remote word load, possibly merging into the combining
    /// latch. Returns `false` if it must retry (no scoreboard/queue space).
    #[allow(clippy::too_many_arguments)]
    fn issue_remote_load(
        &mut self,
        now: u64,
        cell: u8,
        coord: Coord,
        addr: u32,
        width: u8,
        signed: bool,
        dst: Dst,
    ) -> bool {
        if self.outstanding >= self.cfg.max_outstanding {
            return false;
        }
        // Try to merge into the combining latch.
        if self.cfg.load_packet_compression && width == 4 {
            if let Some(c) = &mut self.combine {
                let next = c.base_addr + 4 * c.dsts.len() as u32;
                if c.dst_cell == cell && c.dst_coord == coord && next == addr && c.dsts.len() < 4 {
                    c.dsts.push(dst);
                    c.flush_at = now + 2;
                    let op_id = c.op_id;
                    match self.pending_ops.get_mut(&op_id) {
                        Some(PendingOp::Load { dsts, .. }) => dsts.push(dst),
                        _ => unreachable!("combine latch without pending op"),
                    }
                    self.mark_pending(dst);
                    self.outstanding += 1;
                    return true;
                }
            }
            self.flush_combine();
            if self.req_outbox.len() >= OUTBOX_CAP {
                return false;
            }
            let op_id = self.alloc_op_id();
            self.pending_ops.insert(
                op_id,
                PendingOp::Load {
                    dsts: vec![dst],
                    width,
                    signed,
                },
            );
            self.combine = Some(Combine {
                dst_cell: cell,
                dst_coord: coord,
                base_addr: addr,
                dsts: vec![dst],
                op_id,
                flush_at: now + 2,
            });
            self.mark_pending(dst);
            self.outstanding += 1;
            return true;
        }
        // Uncompressed path.
        self.flush_combine();
        if self.req_outbox.len() >= OUTBOX_CAP {
            return false;
        }
        let op_id = self.alloc_op_id();
        self.pending_ops.insert(
            op_id,
            PendingOp::Load {
                dsts: vec![dst],
                width,
                signed,
            },
        );
        self.send_request(
            cell,
            coord,
            op_id,
            ReqKind::Load {
                addr,
                width,
                count: 1,
            },
        );
        self.mark_pending(dst);
        self.outstanding += 1;
        true
    }

    fn mark_pending(&mut self, dst: Dst) {
        match dst {
            Dst::Int(rd) => {
                if rd != Gpr::Zero {
                    self.int_pending[rd.index() as usize] = true;
                }
            }
            Dst::Fp(rd) => self.fp_pending[rd.index() as usize] = true,
        }
    }

    fn alloc_op_id(&mut self) -> u32 {
        let id = self.next_op_id;
        self.next_op_id = self.next_op_id.wrapping_add(1);
        id
    }

    fn send_request(&mut self, cell: u8, coord: Coord, op_id: u32, kind: ReqKind) {
        let from = NodeId {
            cell: self.pgas.cell_id,
            coord: self.pgas.tile_coord(self.xy.0, self.xy.1),
        };
        self.req_outbox.push_back((
            cell,
            Packet {
                src: from.coord,
                dst: coord,
                payload: Request { from, op_id, kind },
            },
        ));
        if let Some(t) = &self.trace {
            t.push(TraceEvent::RemoteIssue {
                cycle: self.last_cycle,
                tile: self.xy,
                op_id,
                what: format!("{kind:?} -> cell {cell} {coord}"),
            });
        }
        self.stats.remote_requests += 1;
    }

    fn csr_read(&self, offset: u32, now: u64) -> Option<u32> {
        Some(match offset {
            csr::TILE_X => u32::from(self.xy.0),
            csr::TILE_Y => u32::from(self.xy.1),
            csr::TG_X => u32::from(self.group.origin.0),
            csr::TG_Y => u32::from(self.group.origin.1),
            csr::TG_W => u32::from(self.group.dim.0),
            csr::TG_H => u32::from(self.group.dim.1),
            csr::TG_RANK => {
                let lx = u32::from(self.xy.0 - self.group.origin.0);
                let ly = u32::from(self.xy.1 - self.group.origin.1);
                ly * u32::from(self.group.dim.0) + lx
            }
            csr::TG_SIZE => u32::from(self.group.dim.0) * u32::from(self.group.dim.1),
            csr::TG_LIVE_RANK => self.group.live_rank,
            csr::TG_LIVE_SIZE => self.group.live_size,
            csr::TG_ADOPT => self.group.adopt,
            csr::CELL_W => u32::from(self.pgas.cell_w),
            csr::CELL_H => u32::from(self.pgas.cell_h),
            csr::CELL_ID => u32::from(self.pgas.cell_id),
            csr::NUM_CELLS => u32::from(self.pgas.num_cells),
            csr::CYCLE => now as u32,
            o if (csr::ARG0..csr::ARG0 + 32).contains(&o) => {
                self.args[((o - csr::ARG0) / 4) as usize]
            }
            _ => return None,
        })
    }

    /// Advances the tile one core cycle.
    pub fn step(&mut self, now: u64) {
        self.last_cycle = now;
        // Response draining and SPM servicing happen even while stalled.
        self.drain_responses(now);
        self.service_spm_request();

        // Flush an expired combining latch.
        if let Some(c) = &self.combine {
            if now >= c.flush_at {
                self.flush_combine();
            }
        }

        if !self.running {
            if self.finished {
                self.stall(StallKind::Done);
            }
            return;
        }

        if self.barrier_waiting {
            self.stall(StallKind::Barrier);
            return;
        }

        if self.blocking_on.is_some() {
            self.stall(StallKind::RemoteLoad);
            return;
        }

        if now < self.penalty_until {
            self.stall(self.penalty_kind);
            return;
        }

        // Fetch.
        if !self.icache.access(self.pc) {
            self.stats.icache_misses += 1;
            self.penalty_until = now + self.cfg.icache_miss_latency;
            self.penalty_kind = StallKind::IcacheMiss;
            self.stall(StallKind::IcacheMiss);
            return;
        }
        let program = self.program.clone().expect("running tile without program");
        let Some(instr) = program.instr_at(self.pc) else {
            self.trap("pc outside program image".to_owned());
            return;
        };

        self.execute(instr, now);
    }

    /// Scheduling hint for the event-driven core (see `crate::sched`),
    /// computed after [`Tile::step`] ran for cycle `now`: may the Cell
    /// skip this tile, and until when?
    ///
    /// The contract: a `Sleep { kind, wake_at }` promises that a dense
    /// step at every cycle in `(now, wake_at)` would drain nothing, serve
    /// nothing, and record exactly one stall of `kind` (none for `None`) —
    /// unless an external event re-arms the tile first, which the Cell
    /// guarantees happens on any delivery, barrier release or host/fault
    /// mutation. Anything not provably in that shape stays `Awake`.
    pub(crate) fn park_hint(&self, now: u64) -> crate::sched::Park {
        use crate::sched::Park;
        // Pending inbox/staged traffic or an armed combining latch needs
        // per-cycle service regardless of pipeline state.
        if !self.resp_inbox.is_empty()
            || !self.req_inbox.is_empty()
            || !self.resp_stage.is_empty()
            || self.combine.is_some()
        {
            return Park::Awake;
        }
        // A pending penalty window also bounds event-only sleeps: the tile
        // must step at expiry so `last_cycle` (and thus `is_frozen`) tracks
        // the dense schedule.
        let bound = |wake: u64| {
            if self.penalty_until > now {
                wake.min(self.penalty_until)
            } else {
                wake
            }
        };
        if !self.running {
            // Finished tiles stall `Done` forever; trapped/idle ones
            // record nothing. Both only act on deliveries.
            let kind = self.finished.then_some(StallKind::Done);
            return Park::Sleep {
                kind,
                wake_at: bound(u64::MAX),
            };
        }
        if self.barrier_waiting {
            return Park::Sleep {
                kind: Some(StallKind::Barrier),
                wake_at: bound(u64::MAX),
            };
        }
        if self.blocking_on.is_some() {
            return Park::Sleep {
                kind: Some(StallKind::RemoteLoad),
                wake_at: bound(u64::MAX),
            };
        }
        if self.penalty_until > now + 1 {
            return Park::Sleep {
                kind: Some(self.penalty_kind),
                wake_at: self.penalty_until,
            };
        }
        if self.penalty_until > now {
            // One remaining penalty cycle: skipping it saves nothing.
            return Park::Awake;
        }
        // The tile would fetch and (maybe) execute next cycle. Peek: if
        // the fetch hits and the instruction is provably stuck on a
        // pending remote operand — or is a fence over outstanding ops —
        // every cycle until a response delivery is a constant stall.
        let Some(program) = &self.program else {
            return Park::Awake;
        };
        if !self.icache.would_hit(self.pc) {
            return Park::Awake;
        }
        let Some(instr) = program.instr_at(self.pc) else {
            return Park::Awake;
        };
        if matches!(instr, Instr::Fence) {
            if self.outstanding > 0 {
                return Park::Sleep {
                    kind: Some(StallKind::Fence),
                    wake_at: u64::MAX,
                };
            }
            return Park::Awake;
        }
        // `RemoteLoad` from `instr_hazard` can only come from a pending
        // bit (ready-kind arrays never hold it), the first-checked
        // blocking source stays first and pending until a response
        // delivery, and deliveries always wake — so the stall kind is
        // constant over the whole sleep.
        if self.instr_hazard(&instr, now + 1) == Some(StallKind::RemoteLoad) {
            return Park::Sleep {
                kind: Some(StallKind::RemoteLoad),
                wake_at: u64::MAX,
            };
        }
        Park::Awake
    }

    /// Decodes hazards and executes one instruction (or records one stall).
    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, instr: Instr, now: u64) {
        use Instr as I;

        // Source / structural hazard checks.
        let hazard = self.instr_hazard(&instr, now);
        if let Some(kind) = hazard {
            self.stall(kind);
            return;
        }

        // The compressor detects *consecutive* remote loads in the
        // instruction stream: any other instruction closes the combining
        // latch immediately.
        if !matches!(instr, Instr::Load { .. } | Instr::Flw { .. }) {
            self.flush_combine();
        }

        let cfg = self.cfg.clone();
        let mut next_pc = self.pc.wrapping_add(4);
        let mut fp_instr = false;

        match instr {
            I::Lui { rd, imm } => self.write_int(rd, (imm as u32) << 12),
            I::Auipc { rd, imm } => {
                self.write_int(rd, self.pc.wrapping_add((imm as u32) << 12));
            }
            I::Jal { rd, offset } => {
                self.write_int(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(offset as u32);
            }
            I::Jalr { rd, rs1, offset } => {
                let target = self.regs[rs1.index() as usize].wrapping_add(offset as u32) & !1;
                self.write_int(rd, self.pc.wrapping_add(4));
                next_pc = target;
                // Indirect targets are not captured by the icache-embedded
                // BTB: charge the misprediction penalty.
                self.penalty_until = now + cfg.branch_miss_penalty;
                self.penalty_kind = StallKind::BranchMiss;
                self.stats.branch_misses += 1;
            }
            I::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                self.stats.branches += 1;
                let taken = op.taken(
                    self.regs[rs1.index() as usize],
                    self.regs[rs2.index() as usize],
                );
                // Static BTFN: predict taken for backward targets.
                let predicted_taken = offset < 0;
                if taken {
                    next_pc = self.pc.wrapping_add(offset as u32);
                }
                if taken != predicted_taken {
                    self.stats.branch_misses += 1;
                    self.penalty_until = now + cfg.branch_miss_penalty;
                    self.penalty_kind = StallKind::BranchMiss;
                }
            }
            I::OpImm { op, rd, rs1, imm } => {
                let v = op.eval(self.regs[rs1.index() as usize], imm);
                self.write_int(rd, v);
            }
            I::Op { op, rd, rs1, rs2 } => {
                let a = self.regs[rs1.index() as usize];
                let b = self.regs[rs2.index() as usize];
                self.write_int(rd, op.eval(a, b));
                if op.is_muldiv() {
                    let lat = if matches!(
                        op,
                        hb_isa::OpOp::Div
                            | hb_isa::OpOp::Divu
                            | hb_isa::OpOp::Rem
                            | hb_isa::OpOp::Remu
                    ) {
                        self.div_busy_until = now + cfg.div_latency;
                        cfg.div_latency
                    } else {
                        cfg.mul_latency
                    };
                    self.set_int_latency(rd, now, lat, StallKind::IntBusy);
                }
            }
            I::Fence => {
                if self.outstanding > 0 || self.combine.is_some() {
                    self.flush_combine();
                    self.stall(StallKind::Fence);
                    return;
                }
                if self.observed {
                    self.obs_events
                        .push((now, crate::observe::ObsKind::FenceRetire));
                }
            }
            I::Ecall => {
                self.flush_combine();
                self.running = false;
                self.finished = true;
                self.stats.instrs += 1;
                self.stats.int_cycles += 1;
                if let Some(p) = &mut self.prof {
                    p.record_retire(self.pc);
                }
                if let Some(t) = &self.trace {
                    t.push(TraceEvent::Retire {
                        cycle: now,
                        tile: self.xy,
                        pc: self.pc,
                        instr,
                    });
                }
                return;
            }
            I::Ebreak => {
                self.trap("ebreak".to_owned());
                return;
            }
            I::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.regs[rs1.index() as usize].wrapping_add(offset as u32);
                let signed = matches!(width, hb_isa::LoadWidth::B | hb_isa::LoadWidth::H);
                if !self.do_load(now, addr, width.bytes() as u8, signed, Dst::Int(rd)) {
                    return;
                }
            }
            I::Flw { rd, rs1, offset } => {
                let addr = self.regs[rs1.index() as usize].wrapping_add(offset as u32);
                if !self.do_load(now, addr, 4, false, Dst::Fp(rd)) {
                    return;
                }
            }
            I::Store {
                width,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.regs[rs1.index() as usize].wrapping_add(offset as u32);
                let data = self.regs[rs2.index() as usize];
                if !self.do_store(now, addr, width.bytes() as u8, data) {
                    return;
                }
            }
            I::Fsw { rs1, rs2, offset } => {
                let addr = self.regs[rs1.index() as usize].wrapping_add(offset as u32);
                let data = self.fregs[rs2.index() as usize].to_bits();
                if !self.do_store(now, addr, 4, data) {
                    return;
                }
            }
            I::Amo {
                op, rd, rs1, rs2, ..
            } => {
                let addr = self.regs[rs1.index() as usize];
                let data = self.regs[rs2.index() as usize];
                if !self.do_amo(now, addr, op, data, rd) {
                    return;
                }
            }
            I::LrW { .. } | I::ScW { .. } => {
                self.trap("lr/sc not supported; use AMOs".to_owned());
                return;
            }
            I::FpOp { op, rd, rs1, rs2 } => {
                fp_instr = true;
                let a = self.fregs[rs1.index() as usize];
                let b = self.fregs[rs2.index() as usize];
                self.fregs[rd.index() as usize] = op.eval(a, b);
                match op {
                    hb_isa::FpOp::Div => {
                        self.fpu_busy_until = now + cfg.fdiv_latency;
                        self.set_fp_latency(rd, now, cfg.fdiv_latency, StallKind::FpBusy);
                    }
                    hb_isa::FpOp::Sqrt => {
                        self.fpu_busy_until = now + cfg.fsqrt_latency;
                        self.set_fp_latency(rd, now, cfg.fsqrt_latency, StallKind::FpBusy);
                    }
                    hb_isa::FpOp::Mul => {
                        self.set_fp_latency(rd, now, cfg.fma_latency, StallKind::Bypass);
                    }
                    _ => self.set_fp_latency(rd, now, cfg.fp_latency, StallKind::Bypass),
                }
            }
            I::Fma {
                op,
                rd,
                rs1,
                rs2,
                rs3,
            } => {
                fp_instr = true;
                let a = self.fregs[rs1.index() as usize];
                let b = self.fregs[rs2.index() as usize];
                let c = self.fregs[rs3.index() as usize];
                self.fregs[rd.index() as usize] = op.eval(a, b, c);
                self.set_fp_latency(rd, now, cfg.fma_latency, StallKind::Bypass);
            }
            I::FpCmp { op, rd, rs1, rs2 } => {
                fp_instr = true;
                let a = self.fregs[rs1.index() as usize];
                let b = self.fregs[rs2.index() as usize];
                self.write_int(rd, u32::from(op.eval(a, b)));
                self.set_int_latency(rd, now, cfg.fp_latency, StallKind::Bypass);
            }
            I::FcvtWS { rd, rs1 } => {
                fp_instr = true;
                let v = self.fregs[rs1.index() as usize];
                self.write_int(rd, v as i32 as u32);
                self.set_int_latency(rd, now, cfg.fp_latency, StallKind::Bypass);
            }
            I::FcvtWuS { rd, rs1 } => {
                fp_instr = true;
                let v = self.fregs[rs1.index() as usize];
                self.write_int(rd, v as u32);
                self.set_int_latency(rd, now, cfg.fp_latency, StallKind::Bypass);
            }
            I::FcvtSW { rd, rs1 } => {
                fp_instr = true;
                let v = self.regs[rs1.index() as usize] as i32;
                self.fregs[rd.index() as usize] = v as f32;
                self.set_fp_latency(rd, now, cfg.fp_latency, StallKind::Bypass);
            }
            I::FcvtSWu { rd, rs1 } => {
                fp_instr = true;
                let v = self.regs[rs1.index() as usize];
                self.fregs[rd.index() as usize] = v as f32;
                self.set_fp_latency(rd, now, cfg.fp_latency, StallKind::Bypass);
            }
            I::FmvXW { rd, rs1 } => {
                fp_instr = true;
                self.write_int(rd, self.fregs[rs1.index() as usize].to_bits());
            }
            I::FmvWX { rd, rs1 } => {
                fp_instr = true;
                self.fregs[rd.index() as usize] = f32::from_bits(self.regs[rs1.index() as usize]);
            }
        }

        if let Some(t) = &self.trace {
            t.push(TraceEvent::Retire {
                cycle: now,
                tile: self.xy,
                pc: self.pc,
                instr,
            });
        }
        if let Some(p) = &mut self.prof {
            p.record_retire(self.pc);
        }
        self.pc = next_pc;
        self.stats.instrs += 1;
        if fp_instr {
            self.stats.fp_cycles += 1;
        } else {
            self.stats.int_cycles += 1;
        }
    }

    /// Checks all source and structural hazards for `instr`.
    fn instr_hazard(&self, instr: &Instr, now: u64) -> Option<StallKind> {
        use Instr as I;
        let int = |r: Gpr| self.int_hazard(r, now);
        let fp = |r: Fpr| self.fp_hazard(r, now);
        // Destination-pending (WAW on remote loads) also stalls.
        let int_dst = |r: Gpr| {
            if r != Gpr::Zero && self.int_pending[r.index() as usize] {
                Some(StallKind::RemoteLoad)
            } else {
                None
            }
        };
        let fp_dst = |r: Fpr| {
            if self.fp_pending[r.index() as usize] {
                Some(StallKind::RemoteLoad)
            } else {
                None
            }
        };
        match *instr {
            I::Lui { rd, .. } | I::Auipc { rd, .. } => int_dst(rd),
            I::Jal { rd, .. } => int_dst(rd),
            I::Jalr { rd, rs1, .. } => int(rs1).or_else(|| int_dst(rd)),
            I::Branch { rs1, rs2, .. } => int(rs1).or_else(|| int(rs2)),
            I::Load { rd, rs1, .. } => int(rs1).or_else(|| int_dst(rd)),
            I::Store { rs1, rs2, .. } => int(rs1).or_else(|| int(rs2)),
            I::OpImm { rd, rs1, .. } => int(rs1).or_else(|| int_dst(rd)),
            I::Op { op, rd, rs1, rs2 } => int(rs1).or_else(|| int(rs2)).or_else(|| int_dst(rd)).or(
                if op.is_muldiv() && self.div_busy_until > now {
                    Some(StallKind::IntBusy)
                } else {
                    None
                },
            ),
            I::Fence | I::Ecall | I::Ebreak => None,
            I::Amo { rd, rs1, rs2, .. } => int(rs1).or_else(|| int(rs2)).or_else(|| int_dst(rd)),
            I::LrW { rd, rs1, .. } => int(rs1).or_else(|| int_dst(rd)),
            I::ScW { rd, rs1, rs2, .. } => int(rs1).or_else(|| int(rs2)).or_else(|| int_dst(rd)),
            I::Flw { rd, rs1, .. } => int(rs1).or_else(|| fp_dst(rd)),
            I::Fsw { rs1, rs2, .. } => int(rs1).or_else(|| fp(rs2)),
            I::FpOp { op, rd, rs1, rs2 } => fp(rs1).or_else(|| fp(rs2)).or_else(|| fp_dst(rd)).or(
                if matches!(op, hb_isa::FpOp::Div | hb_isa::FpOp::Sqrt) && self.fpu_busy_until > now
                {
                    Some(StallKind::FpBusy)
                } else {
                    None
                },
            ),
            I::Fma {
                rd, rs1, rs2, rs3, ..
            } => fp(rs1)
                .or_else(|| fp(rs2))
                .or_else(|| fp(rs3))
                .or_else(|| fp_dst(rd)),
            I::FpCmp { rd, rs1, rs2, .. } => fp(rs1).or_else(|| fp(rs2)).or_else(|| int_dst(rd)),
            I::FcvtWS { rd, rs1 } | I::FcvtWuS { rd, rs1 } => int_dst(rd).or_else(|| fp(rs1)),
            I::FcvtSW { rd, rs1 } | I::FcvtSWu { rd, rs1 } => int(rs1).or_else(|| fp_dst(rd)),
            I::FmvXW { rd, rs1 } => fp(rs1).or_else(|| int_dst(rd)),
            I::FmvWX { rd, rs1 } => int(rs1).or_else(|| fp_dst(rd)),
        }
    }

    /// Executes a load; returns `false` when the instruction must retry
    /// (stall already recorded).
    fn do_load(&mut self, now: u64, eva: u32, width: u8, signed: bool, dst: Dst) -> bool {
        match self.pgas.translate(eva) {
            Err(e) => {
                self.trap(e.to_string());
                false
            }
            Ok(Target::LocalSpm { offset }) => {
                if offset + u32::from(width) > self.cfg.spm_bytes {
                    self.trap(format!("SPM load overrun at {offset:#x}"));
                    return false;
                }
                // Local SPM is remotely addressable (a neighbour's remote
                // store can land here), so local reads are race-relevant.
                self.push_race(
                    now,
                    crate::race::RaceLoc::Spm {
                        cell: self.pgas.cell_id,
                        x: self.xy.0,
                        y: self.xy.1,
                        word: offset & !3,
                    },
                    crate::race::AccessKind::Read,
                    false,
                );
                let v = extend(read_bytes(&self.spm, offset, width), width, signed);
                match dst {
                    Dst::Int(rd) => {
                        self.write_int(rd, v);
                        self.set_int_latency(
                            rd,
                            now,
                            self.cfg.spm_load_latency,
                            StallKind::LocalLoad,
                        );
                    }
                    Dst::Fp(rd) => {
                        self.fregs[rd.index() as usize] = f32::from_bits(v);
                        self.set_fp_latency(
                            rd,
                            now,
                            self.cfg.spm_load_latency,
                            StallKind::LocalLoad,
                        );
                    }
                }
                true
            }
            Ok(Target::Csr { offset }) => {
                let Some(v) = self.csr_read(offset, now) else {
                    self.trap(format!("read of unknown CSR {offset:#x}"));
                    return false;
                };
                match dst {
                    Dst::Int(rd) => self.write_int(rd, v),
                    Dst::Fp(rd) => self.fregs[rd.index() as usize] = f32::from_bits(v),
                }
                true
            }
            Ok(Target::RemoteSpm { tile, offset }) => {
                // Accessing our own SPM through the group space is local.
                if tile == Coord::new(self.xy.0, self.xy.1) {
                    return self.do_load(now, offset, width, signed, dst);
                }
                let coord = self.pgas.tile_coord(tile.x, tile.y);
                let ok =
                    self.remote_load(now, self.pgas.cell_id, coord, offset, width, signed, dst);
                if ok {
                    // Record only on issue; a credit stall retries the
                    // instruction and would double-count.
                    self.push_race(
                        now,
                        crate::race::RaceLoc::Spm {
                            cell: self.pgas.cell_id,
                            x: tile.x,
                            y: tile.y,
                            word: offset & !3,
                        },
                        crate::race::AccessKind::Read,
                        true,
                    );
                }
                ok
            }
            Ok(Target::Bank { cell, bank, addr }) => {
                let coord = self.pgas.bank_coord(bank);
                let ok = self.remote_load(now, cell, coord, addr, width, signed, dst);
                if ok {
                    self.push_race(
                        now,
                        crate::race::RaceLoc::Dram {
                            cell,
                            bank: bank as u8,
                            word: addr & !3,
                        },
                        crate::race::AccessKind::Read,
                        true,
                    );
                }
                ok
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn remote_load(
        &mut self,
        now: u64,
        cell: u8,
        coord: Coord,
        addr: u32,
        width: u8,
        signed: bool,
        dst: Dst,
    ) -> bool {
        if !self.issue_remote_load(now, cell, coord, addr, width, signed, dst) {
            self.stall(StallKind::RemoteCredit);
            return false;
        }
        if !self.cfg.non_blocking_loads {
            self.flush_combine();
            // Blocking: wait for this exact op before any further progress.
            self.blocking_on = Some(self.next_op_id.wrapping_sub(1));
        }
        true
    }

    fn do_store(&mut self, now: u64, eva: u32, width: u8, data: u32) -> bool {
        match self.pgas.translate(eva) {
            Err(e) => {
                self.trap(e.to_string());
                false
            }
            Ok(Target::LocalSpm { offset }) => {
                if offset + u32::from(width) > self.cfg.spm_bytes {
                    self.trap(format!("SPM store overrun at {offset:#x}"));
                    return false;
                }
                self.push_race(
                    now,
                    crate::race::RaceLoc::Spm {
                        cell: self.pgas.cell_id,
                        x: self.xy.0,
                        y: self.xy.1,
                        word: offset & !3,
                    },
                    crate::race::AccessKind::Write,
                    false,
                );
                write_bytes(&mut self.spm, offset, width, data);
                true
            }
            Ok(Target::Csr { offset }) => match offset {
                csr::BARRIER => {
                    if let Some(t) = &self.trace {
                        t.push(TraceEvent::BarrierJoin {
                            cycle: self.last_cycle,
                            tile: self.xy,
                        });
                    }
                    self.wants_join = true;
                    self.barrier_waiting = true;
                    // Joining with remote ops outstanding means their
                    // writes are not ordered before the release: the
                    // sanitizer extends them into the next epoch.
                    self.race_join_unfenced = self.outstanding > 0;
                    if self.observed {
                        self.obs_events
                            .push((now, crate::observe::ObsKind::BarrierJoin));
                    }
                    true
                }
                csr::MARK => {
                    // Architecturally a no-op: the store retires normally
                    // whether or not telemetry is listening, so marked
                    // kernels stay bit-identical with telemetry off.
                    if self.observed {
                        self.obs_events
                            .push((now, crate::observe::ObsKind::Mark(data)));
                    }
                    if let Some(p) = &mut self.prof {
                        p.set_phase(data);
                    }
                    true
                }
                _ => {
                    self.trap(format!("store to read-only CSR {offset:#x}"));
                    false
                }
            },
            Ok(Target::RemoteSpm { tile, offset }) => {
                if tile == Coord::new(self.xy.0, self.xy.1) {
                    return self.do_store(now, offset, width, data);
                }
                let coord = self.pgas.tile_coord(tile.x, tile.y);
                let ok = self.remote_store(now, self.pgas.cell_id, coord, offset, width, data);
                if ok {
                    self.push_race(
                        now,
                        crate::race::RaceLoc::Spm {
                            cell: self.pgas.cell_id,
                            x: tile.x,
                            y: tile.y,
                            word: offset & !3,
                        },
                        crate::race::AccessKind::Write,
                        true,
                    );
                }
                ok
            }
            Ok(Target::Bank { cell, bank, addr }) => {
                let coord = self.pgas.bank_coord(bank);
                let ok = self.remote_store(now, cell, coord, addr, width, data);
                if ok {
                    self.push_race(
                        now,
                        crate::race::RaceLoc::Dram {
                            cell,
                            bank: bank as u8,
                            word: addr & !3,
                        },
                        crate::race::AccessKind::Write,
                        true,
                    );
                }
                ok
            }
        }
    }

    fn remote_store(
        &mut self,
        _now: u64,
        cell: u8,
        coord: Coord,
        addr: u32,
        width: u8,
        data: u32,
    ) -> bool {
        self.flush_combine();
        if self.outstanding >= self.cfg.max_outstanding || self.req_outbox.len() >= OUTBOX_CAP {
            self.stall(StallKind::RemoteCredit);
            return false;
        }
        let op_id = self.alloc_op_id();
        self.pending_ops.insert(op_id, PendingOp::Store);
        self.send_request(cell, coord, op_id, ReqKind::Store { addr, width, data });
        self.outstanding += 1;
        true
    }

    fn do_amo(&mut self, now: u64, eva: u32, op: hb_isa::AmoOp, data: u32, rd: Gpr) -> bool {
        match self.pgas.translate(eva) {
            Err(e) => {
                self.trap(e.to_string());
                false
            }
            Ok(Target::Bank { cell, bank, addr }) => {
                self.flush_combine();
                if self.outstanding >= self.cfg.max_outstanding
                    || self.req_outbox.len() >= OUTBOX_CAP
                {
                    self.stall(StallKind::RemoteCredit);
                    return false;
                }
                let op_id = self.alloc_op_id();
                self.pending_ops.insert(op_id, PendingOp::Amo { rd });
                let coord = self.pgas.bank_coord(bank);
                self.send_request(cell, coord, op_id, ReqKind::Amo { addr, op, data });
                if rd != Gpr::Zero {
                    self.int_pending[rd.index() as usize] = true;
                }
                self.outstanding += 1;
                if !self.cfg.non_blocking_loads {
                    self.blocking_on = Some(op_id);
                }
                self.push_race(
                    now,
                    crate::race::RaceLoc::Dram {
                        cell,
                        bank: bank as u8,
                        word: addr & !3,
                    },
                    crate::race::AccessKind::Amo,
                    true,
                );
                true
            }
            Ok(Target::RemoteSpm { tile, offset }) => {
                self.flush_combine();
                if self.outstanding >= self.cfg.max_outstanding
                    || self.req_outbox.len() >= OUTBOX_CAP
                {
                    self.stall(StallKind::RemoteCredit);
                    return false;
                }
                let op_id = self.alloc_op_id();
                self.pending_ops.insert(op_id, PendingOp::Amo { rd });
                let coord = self.pgas.tile_coord(tile.x, tile.y);
                self.send_request(
                    self.pgas.cell_id,
                    coord,
                    op_id,
                    ReqKind::Amo {
                        addr: offset,
                        op,
                        data,
                    },
                );
                if rd != Gpr::Zero {
                    self.int_pending[rd.index() as usize] = true;
                }
                self.outstanding += 1;
                if !self.cfg.non_blocking_loads {
                    self.blocking_on = Some(op_id);
                }
                self.push_race(
                    now,
                    crate::race::RaceLoc::Spm {
                        cell: self.pgas.cell_id,
                        x: tile.x,
                        y: tile.y,
                        word: offset & !3,
                    },
                    crate::race::AccessKind::Amo,
                    true,
                );
                true
            }
            Ok(_) => {
                self.trap(format!("AMO to non-atomic space at {eva:#x}"));
                false
            }
        }
    }
}
