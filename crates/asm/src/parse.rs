//! A text front-end for the assembler: parse RISC-V assembly source
//! (labels, comments, the common pseudo-instructions) into a [`Program`].
//!
//! This is the human-facing counterpart to the builder API — kernels can
//! be kept as `.s` files and assembled at runtime:
//!
//! ```
//! use hb_asm::parse;
//!
//! let program = parse(
//!     r#"
//!     // sum 1..=10
//!         li   t0, 10
//!         li   t1, 0
//!     loop:
//!         add  t1, t1, t0
//!         addi t0, t0, -1
//!         bnez t0, loop
//!         ecall
//!     "#,
//! )?;
//! assert_eq!(program.len(), 6);
//! # Ok::<(), hb_asm::ParseError>(())
//! ```

use crate::builder::{Assembler, Label};
use crate::program::Program;
use crate::AsmError;
use hb_isa::{BranchOp, Fpr, Gpr, Instr};
use std::collections::HashMap;
use std::fmt;

/// Error produced while parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> ParseError {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Parses and assembles `src` with the first instruction at address 0.
///
/// # Errors
///
/// Returns [`ParseError`] for syntax errors, unknown mnemonics/registers,
/// out-of-range immediates, and unresolved labels.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    parse_with_base(src, 0)
}

/// Parses and assembles `src` with the first instruction at `base_pc`.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_with_base(src: &str, base_pc: u32) -> Result<Program, ParseError> {
    let mut p = Parser {
        a: Assembler::new(),
        labels: HashMap::new(),
    };
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        p.line(raw, line_no)?;
    }
    p.a.assemble(base_pc).map_err(|e| ParseError {
        line: 0,
        message: e.to_string(),
    })
}

struct Parser {
    a: Assembler,
    labels: HashMap<String, Label>,
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a signed immediate: decimal or 0x hex (optionally negative).
fn imm(tok: &str, line: usize) -> Result<i32, ParseError> {
    let (neg, t) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad immediate `{tok}`")))?
    } else {
        t.parse::<u32>()
            .map_err(|_| err(line, format!("bad immediate `{tok}`")))?
    };
    let v = v as i32;
    Ok(if neg { v.wrapping_neg() } else { v })
}

/// Normalizes a `lui`/`auipc` operand to the signed 20-bit field value.
/// Disassembly prints the field as unsigned hex (`lui t0, 0xbf000`), so
/// values in `[0, 2^20)` are reinterpreted by sign-extending from bit 19.
fn upper20(v: i32, line: usize) -> Result<i32, ParseError> {
    if (0..1 << 20).contains(&v) {
        Ok((v << 12) >> 12)
    } else if (-(1 << 19)..1 << 19).contains(&v) {
        Ok(v)
    } else {
        Err(err(
            line,
            format!("upper immediate {v} does not fit 20 bits"),
        ))
    }
}

fn gpr(tok: &str, line: usize) -> Result<Gpr, ParseError> {
    tok.parse()
        .map_err(|_| err(line, format!("unknown register `{tok}`")))
}

fn fpr(tok: &str, line: usize) -> Result<Fpr, ParseError> {
    tok.parse()
        .map_err(|_| err(line, format!("unknown FP register `{tok}`")))
}

/// Splits a memory operand `offset(base)`.
fn mem_operand(tok: &str, line: usize) -> Result<(i32, Gpr), ParseError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(reg), got `{tok}`")))?;
    let close = tok
        .strip_suffix(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let off_str = &tok[..open];
    let reg_str = &close[open + 1..];
    let offset = if off_str.is_empty() {
        0
    } else {
        imm(off_str, line)?
    };
    Ok((offset, gpr(reg_str, line)?))
}

impl Parser {
    fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = self.a.new_label();
        self.labels.insert(name.to_owned(), l);
        l
    }

    fn line(&mut self, raw: &str, line: usize) -> Result<(), ParseError> {
        // Strip comments (# and //).
        let mut text = raw;
        if let Some(i) = text.find('#') {
            text = &text[..i];
        }
        if let Some(i) = text.find("//") {
            text = &text[..i];
        }
        let mut text = text.trim();
        // Leading labels, possibly several.
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break;
            }
            let l = self.label(name);
            self.a.bind(l);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            return Ok(());
        }
        // Directives are not supported (data lives in DRAM via the host).
        if text.starts_with('.') {
            return Err(err(line, format!("directives are not supported: `{text}`")));
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => text.split_at(i),
            None => (text, ""),
        };
        let ops: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        self.instr(mnemonic, &ops, line)
    }

    #[allow(clippy::too_many_lines)]
    fn instr(&mut self, m: &str, ops: &[&str], line: usize) -> Result<(), ParseError> {
        let n = ops.len();
        let need = |want: usize| {
            if n == want {
                Ok(())
            } else {
                Err(err(line, format!("`{m}` expects {want} operands, got {n}")))
            }
        };
        macro_rules! rrr {
            ($f:ident) => {{
                need(3)?;
                let (rd, rs1, rs2) = (gpr(ops[0], line)?, gpr(ops[1], line)?, gpr(ops[2], line)?);
                self.a.$f(rd, rs1, rs2);
            }};
        }
        macro_rules! rri {
            ($f:ident) => {{
                need(3)?;
                let (rd, rs1, i) = (gpr(ops[0], line)?, gpr(ops[1], line)?, imm(ops[2], line)?);
                self.a.$f(rd, rs1, i);
            }};
        }
        macro_rules! load {
            ($f:ident) => {{
                need(2)?;
                let rd = gpr(ops[0], line)?;
                let (off, base) = mem_operand(ops[1], line)?;
                self.a.$f(rd, base, off);
            }};
        }
        macro_rules! store {
            ($f:ident) => {{
                need(2)?;
                let rs2 = gpr(ops[0], line)?;
                let (off, base) = mem_operand(ops[1], line)?;
                self.a.$f(rs2, base, off);
            }};
        }
        // Branch targets are labels or (as disassembly prints them)
        // numeric byte offsets relative to the branch itself.
        macro_rules! branch {
            ($f:ident, $op:expr) => {{
                need(3)?;
                let (rs1, rs2) = (gpr(ops[0], line)?, gpr(ops[1], line)?);
                if let Ok(offset) = imm(ops[2], line) {
                    self.a.emit(Instr::Branch {
                        op: $op,
                        rs1,
                        rs2,
                        offset,
                    });
                } else {
                    let target = self.label(ops[2]);
                    self.a.$f(rs1, rs2, target);
                }
            }};
        }
        // `bgt`/`ble` are pseudos with swapped source operands.
        macro_rules! branch_swapped {
            ($f:ident, $op:expr) => {{
                need(3)?;
                let (rs1, rs2) = (gpr(ops[0], line)?, gpr(ops[1], line)?);
                if let Ok(offset) = imm(ops[2], line) {
                    self.a.emit(Instr::Branch {
                        op: $op,
                        rs1: rs2,
                        rs2: rs1,
                        offset,
                    });
                } else {
                    let target = self.label(ops[2]);
                    self.a.$f(rs1, rs2, target);
                }
            }};
        }
        macro_rules! branchz {
            ($f:ident, $op:expr) => {{
                need(2)?;
                let rs1 = gpr(ops[0], line)?;
                if let Ok(offset) = imm(ops[1], line) {
                    self.a.emit(Instr::Branch {
                        op: $op,
                        rs1,
                        rs2: Gpr::Zero,
                        offset,
                    });
                } else {
                    let target = self.label(ops[1]);
                    self.a.$f(rs1, target);
                }
            }};
        }
        macro_rules! amo {
            ($f:ident) => {{
                need(3)?;
                let (rd, rs2) = (gpr(ops[0], line)?, gpr(ops[1], line)?);
                let (off, base) = mem_operand(ops[2], line)?;
                if off != 0 {
                    return Err(err(line, "AMO address must have zero offset"));
                }
                self.a.$f(rd, rs2, base);
            }};
        }
        macro_rules! fff {
            ($f:ident) => {{
                need(3)?;
                let (rd, rs1, rs2) = (fpr(ops[0], line)?, fpr(ops[1], line)?, fpr(ops[2], line)?);
                self.a.$f(rd, rs1, rs2);
            }};
        }
        macro_rules! ffff {
            ($f:ident) => {{
                need(4)?;
                self.a.$f(
                    fpr(ops[0], line)?,
                    fpr(ops[1], line)?,
                    fpr(ops[2], line)?,
                    fpr(ops[3], line)?,
                );
            }};
        }

        match m {
            // RV32I ALU.
            "add" => rrr!(add),
            "sub" => rrr!(sub),
            "sll" => rrr!(sll),
            "slt" => rrr!(slt),
            "sltu" => rrr!(sltu),
            "xor" => rrr!(xor),
            "srl" => rrr!(srl),
            "sra" => rrr!(sra),
            "or" => rrr!(or),
            "and" => rrr!(and),
            "mul" => rrr!(mul),
            "mulh" => rrr!(mulh),
            "mulhsu" => rrr!(mulhsu),
            "mulhu" => rrr!(mulhu),
            "div" => rrr!(div),
            "divu" => rrr!(divu),
            "rem" => rrr!(rem),
            "remu" => rrr!(remu),
            "addi" => rri!(addi),
            "slti" => rri!(slti),
            "sltiu" => rri!(sltiu),
            "xori" => rri!(xori),
            "ori" => rri!(ori),
            "andi" => rri!(andi),
            "slli" => rri!(slli),
            "srli" => rri!(srli),
            "srai" => rri!(srai),
            "lui" => {
                need(2)?;
                let rd = gpr(ops[0], line)?;
                self.a.lui(rd, upper20(imm(ops[1], line)?, line)?);
            }
            "auipc" => {
                need(2)?;
                let rd = gpr(ops[0], line)?;
                self.a.auipc(rd, upper20(imm(ops[1], line)?, line)?);
            }
            // Loads/stores.
            "lw" => load!(lw),
            "lh" => load!(lh),
            "lhu" => load!(lhu),
            "lb" => load!(lb),
            "lbu" => load!(lbu),
            "sw" => store!(sw),
            "sh" => store!(sh),
            "sb" => store!(sb),
            "flw" => {
                need(2)?;
                let rd = fpr(ops[0], line)?;
                let (off, base) = mem_operand(ops[1], line)?;
                self.a.flw(rd, base, off);
            }
            "fsw" => {
                need(2)?;
                let rs2 = fpr(ops[0], line)?;
                let (off, base) = mem_operand(ops[1], line)?;
                self.a.fsw(rs2, base, off);
            }
            // Branches and jumps.
            "beq" => branch!(beq, BranchOp::Eq),
            "bne" => branch!(bne, BranchOp::Ne),
            "blt" => branch!(blt, BranchOp::Lt),
            "bge" => branch!(bge, BranchOp::Ge),
            "bltu" => branch!(bltu, BranchOp::Ltu),
            "bgeu" => branch!(bgeu, BranchOp::Geu),
            "bgt" => branch_swapped!(bgt, BranchOp::Lt),
            "ble" => branch_swapped!(ble, BranchOp::Ge),
            "beqz" => branchz!(beqz, BranchOp::Eq),
            "bnez" => branchz!(bnez, BranchOp::Ne),
            "j" => {
                need(1)?;
                if let Ok(offset) = imm(ops[0], line) {
                    self.a.emit(Instr::Jal {
                        rd: Gpr::Zero,
                        offset,
                    });
                } else {
                    let t = self.label(ops[0]);
                    self.a.j(t);
                }
            }
            "jal" => match n {
                1 => {
                    if let Ok(offset) = imm(ops[0], line) {
                        self.a.emit(Instr::Jal {
                            rd: Gpr::Ra,
                            offset,
                        });
                    } else {
                        let t = self.label(ops[0]);
                        self.a.jal(Gpr::Ra, t);
                    }
                }
                2 => {
                    let rd = gpr(ops[0], line)?;
                    if let Ok(offset) = imm(ops[1], line) {
                        self.a.emit(Instr::Jal { rd, offset });
                    } else {
                        let t = self.label(ops[1]);
                        self.a.jal(rd, t);
                    }
                }
                _ => return Err(err(line, "`jal` expects 1 or 2 operands")),
            },
            "jalr" => {
                need(2)?;
                let rd = gpr(ops[0], line)?;
                let (off, base) = mem_operand(ops[1], line)?;
                self.a.jalr(rd, base, off);
            }
            "call" => {
                need(1)?;
                let t = self.label(ops[0]);
                self.a.call(t);
            }
            "ret" => {
                need(0)?;
                self.a.ret();
            }
            // System.
            "nop" => {
                need(0)?;
                self.a.nop();
            }
            "fence" => {
                need(0)?;
                self.a.fence();
            }
            "ecall" => {
                need(0)?;
                self.a.ecall();
            }
            "ebreak" => {
                need(0)?;
                self.a.ebreak();
            }
            // Atomics.
            "amoswap.w" => amo!(amoswap),
            "amoadd.w" => amo!(amoadd),
            "amoxor.w" => amo!(amoxor),
            "amoand.w" => amo!(amoand),
            "amoor.w" => amo!(amoor),
            "amomin.w" => amo!(amomin),
            "amomax.w" => amo!(amomax),
            "amominu.w" => amo!(amominu),
            "amomaxu.w" => amo!(amomaxu),
            // FP.
            "fadd.s" => fff!(fadd),
            "fsub.s" => fff!(fsub),
            "fmul.s" => fff!(fmul),
            "fdiv.s" => fff!(fdiv),
            "fmin.s" => fff!(fmin),
            "fmax.s" => fff!(fmax),
            "fsgnj.s" => fff!(fsgnj),
            "fsgnjn.s" => fff!(fsgnjn),
            "fsgnjx.s" => fff!(fsgnjx),
            "fmadd.s" => ffff!(fmadd),
            "fmsub.s" => ffff!(fmsub),
            "fnmsub.s" => ffff!(fnmsub),
            "fnmadd.s" => ffff!(fnmadd),
            "fsqrt.s" => {
                need(2)?;
                self.a.fsqrt(fpr(ops[0], line)?, fpr(ops[1], line)?);
            }
            "fmv.s" => {
                need(2)?;
                self.a.fmv(fpr(ops[0], line)?, fpr(ops[1], line)?);
            }
            "fneg.s" => {
                need(2)?;
                self.a.fneg(fpr(ops[0], line)?, fpr(ops[1], line)?);
            }
            "fabs.s" => {
                need(2)?;
                self.a.fabs(fpr(ops[0], line)?, fpr(ops[1], line)?);
            }
            "feq.s" => {
                need(3)?;
                self.a
                    .feq(gpr(ops[0], line)?, fpr(ops[1], line)?, fpr(ops[2], line)?);
            }
            "flt.s" => {
                need(3)?;
                self.a
                    .flt(gpr(ops[0], line)?, fpr(ops[1], line)?, fpr(ops[2], line)?);
            }
            "fle.s" => {
                need(3)?;
                self.a
                    .fle(gpr(ops[0], line)?, fpr(ops[1], line)?, fpr(ops[2], line)?);
            }
            "fcvt.w.s" => {
                need(2)?;
                self.a.fcvt_w_s(gpr(ops[0], line)?, fpr(ops[1], line)?);
            }
            "fcvt.wu.s" => {
                need(2)?;
                self.a.fcvt_wu_s(gpr(ops[0], line)?, fpr(ops[1], line)?);
            }
            "fcvt.s.w" => {
                need(2)?;
                self.a.fcvt_s_w(fpr(ops[0], line)?, gpr(ops[1], line)?);
            }
            "fcvt.s.wu" => {
                need(2)?;
                self.a.fcvt_s_wu(fpr(ops[0], line)?, gpr(ops[1], line)?);
            }
            "fmv.x.w" => {
                need(2)?;
                self.a.fmv_x_w(gpr(ops[0], line)?, fpr(ops[1], line)?);
            }
            "fmv.w.x" => {
                need(2)?;
                self.a.fmv_w_x(fpr(ops[0], line)?, gpr(ops[1], line)?);
            }
            // Pseudo.
            "li" => {
                need(2)?;
                let rd = gpr(ops[0], line)?;
                self.a.li(rd, imm(ops[1], line)?);
            }
            "mv" => {
                need(2)?;
                self.a.mv(gpr(ops[0], line)?, gpr(ops[1], line)?);
            }
            "not" => {
                need(2)?;
                self.a.not(gpr(ops[0], line)?, gpr(ops[1], line)?);
            }
            "neg" => {
                need(2)?;
                self.a.neg(gpr(ops[0], line)?, gpr(ops[1], line)?);
            }
            "seqz" => {
                need(2)?;
                self.a.seqz(gpr(ops[0], line)?, gpr(ops[1], line)?);
            }
            "snez" => {
                need(2)?;
                self.a.snez(gpr(ops[0], line)?, gpr(ops[1], line)?);
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_loop_with_labels() {
        let p = parse(
            "
            li t0, 5
        top:
            addi t0, t0, -1
            bnez t0, top
            ecall
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert!(p.disassemble().contains("bne t0, zero, -4"));
    }

    #[test]
    fn parses_memory_operands() {
        let p = parse("lw a0, 8(sp)\nsw a0, -4(s0)\nflw fa0, 0(a1)\necall").unwrap();
        let d = p.disassemble();
        assert!(d.contains("lw a0, 8(sp)"));
        assert!(d.contains("sw a0, -4(s0)"));
        assert!(d.contains("flw fa0, 0(a1)"));
    }

    #[test]
    fn parses_amo_and_fp() {
        let p = parse("amoadd.w a0, a1, (a2)\nfmadd.s fa0, fa1, fa2, fa3\nfsqrt.s fa4, fa5\necall")
            .unwrap();
        let d = p.disassemble();
        assert!(d.contains("amoadd.w a0, a1, (a2)"));
        assert!(d.contains("fmadd.s fa0, fa1, fa2, fa3"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = parse("# header\n\n  nop # trailing\n  // c++ style\necall").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn text_and_builder_agree() {
        use hb_isa::Gpr::*;
        let text = parse("li t0, 1000\nadd t1, t0, t0\nslli t1, t1, 3\necall").unwrap();
        let mut a = Assembler::new();
        a.li(T0, 1000).add(T1, T0, T0).slli(T1, T1, 3).ecall();
        let built = a.assemble(0).unwrap();
        assert_eq!(text.words(), built.words());
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = parse("nop\nfrobnicate a0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn bad_register_reports_line() {
        let e = parse("add q0, a1, a2").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("q0"));
    }

    #[test]
    fn unresolved_label_fails() {
        assert!(parse("j nowhere").is_err());
    }

    #[test]
    fn hex_immediates() {
        let p = parse("li a0, 0x1234\nandi a0, a0, 0xff\necall").unwrap();
        assert!(p.disassemble().contains("andi a0, a0, 255"));
    }

    #[test]
    fn multiple_labels_one_line() {
        let p = parse("a: b: nop\nj a\nj b\necall").unwrap();
        assert_eq!(p.len(), 4);
    }
}
