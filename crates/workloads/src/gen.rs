//! Synthetic workload generators standing in for the paper's inputs.

use crate::csr::CsrMatrix;
use hb_rng::Rng;

/// Generates an RMAT power-law graph with `1 << scale` vertices and
/// `edges` directed edges (Graph500-style parameters a=0.57, b=c=0.19),
/// the synthetic stand-in for wiki-Vote / social graphs: a few very
/// high-degree hubs and a long tail.
pub fn rmat(scale: u32, edges: usize, seed: u64) -> CsrMatrix {
    let n = 1u32 << scale;
    let mut rng = Rng::seed_from_u64(seed);
    let mut triples = Vec::with_capacity(edges);
    for _ in 0..edges {
        let (mut r, mut c) = (0u32, 0u32);
        for level in (0..scale).rev() {
            let p: f64 = rng.f64();
            let (dr, dc) = if p < 0.57 {
                (0, 0)
            } else if p < 0.76 {
                (0, 1)
            } else if p < 0.95 {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << level;
            c |= dc << level;
        }
        if r != c {
            triples.push((r, c, 1.0));
        }
    }
    CsrMatrix::from_triples(n, n, &triples)
}

/// Generates a `w * h` 4-connected grid graph, the synthetic stand-in for
/// road networks (near-constant degree, huge diameter, tiny frontiers).
pub fn road_grid(w: u32, h: u32) -> CsrMatrix {
    let n = w * h;
    let mut triples = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                triples.push((v, v + 1, 1.0));
                triples.push((v + 1, v, 1.0));
            }
            if y + 1 < h {
                triples.push((v, v + w, 1.0));
                triples.push((v + w, v, 1.0));
            }
        }
    }
    CsrMatrix::from_triples(n, n, &triples)
}

/// Generates a uniformly random sparse matrix with ~`nnz_per_row` nonzeros
/// per row and values in `[0, 1)`.
pub fn uniform_sparse(rows: u32, cols: u32, nnz_per_row: u32, seed: u64) -> CsrMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    let mut triples = Vec::with_capacity((rows * nnz_per_row) as usize);
    for r in 0..rows {
        for _ in 0..nnz_per_row {
            let c = rng.range_u32(0, cols);
            triples.push((r, c, rng.f32()));
        }
    }
    CsrMatrix::from_triples(rows, cols, &triples)
}

/// Generates a dense row-major matrix with values in `[-1, 1)`.
pub fn dense_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..rows * cols).map(|_| rng.range_f32(-1.0, 1.0)).collect()
}

/// Generates a complex signal as interleaved (re, im) pairs.
pub fn complex_signal(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..2 * n).map(|_| rng.range_f32(-1.0, 1.0)).collect()
}

/// Random bytes (AES plaintext blocks).
pub fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.next_u32() as u8).collect()
}

/// Random DNA-like sequences over a 4-letter alphabet (Smith-Waterman).
pub fn dna_sequence(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.range_u32(0, 4) as u8).collect()
}

/// Option-pricing inputs for Black-Scholes: (spot, strike, time) tuples in
/// realistic ranges.
pub fn bs_options(n: usize, seed: u64) -> Vec<(f32, f32, f32)> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                rng.range_f32(5.0, 30.0),
                rng.range_f32(1.0, 100.0),
                rng.range_f32(0.25, 10.0),
            )
        })
        .collect()
}

/// Random body positions/masses in the unit square (Barnes-Hut).
/// Returns (x, y, mass) triples.
pub fn bodies(n: usize, seed: u64) -> Vec<(f32, f32, f32)> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                rng.range_f32(0.0, 1.0),
                rng.range_f32(0.0, 1.0),
                rng.range_f32(0.5, 2.0),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_power_law_ish() {
        let g = rmat(10, 8192, 1);
        assert_eq!(g.rows, 1024);
        assert!(g.nnz() > 4000);
        // Hubs: max degree far above mean degree.
        let mean = g.nnz() as f64 / f64::from(g.rows);
        assert!(
            f64::from(g.max_degree()) > 5.0 * mean,
            "max {} vs mean {mean}",
            g.max_degree()
        );
    }

    #[test]
    fn road_grid_has_constant_degree() {
        let g = road_grid(16, 16);
        assert_eq!(g.rows, 256);
        assert_eq!(g.max_degree(), 4);
        // Interior vertices: degree exactly 4.
        assert_eq!(g.degree(17), 4);
        // Corner: 2.
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn road_grid_is_symmetric() {
        let g = road_grid(8, 4);
        assert_eq!(g.transpose(), g);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(rmat(8, 1000, 42), rmat(8, 1000, 42));
        assert_eq!(dense_matrix(4, 4, 7), dense_matrix(4, 4, 7));
    }

    #[test]
    fn uniform_sparse_bounds() {
        let m = uniform_sparse(32, 64, 4, 3);
        assert_eq!(m.rows, 32);
        assert!(m.nnz() <= 128);
        for &c in &m.col_idx {
            assert!(c < 64);
        }
    }
}
