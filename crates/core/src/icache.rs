//! Direct-mapped instruction cache model.
//!
//! Each HB tile has a 4 KB direct-mapped icache with 4-instruction (16 B)
//! lines and 12-bit tags, giving 16 MB of program space — effectively
//! unlimited for data-parallel kernels. Branch targets are pre-computed
//! into the immediate field on refill, acting as a zero-area BTB (modelled
//! by the static predictor having correct targets).

/// Direct-mapped icache tag array. Data lives in the shared program image;
/// only hit/miss behaviour is modelled here.
#[derive(Debug, Clone)]
pub struct ICache {
    /// Tag per line; `None` = invalid (cold).
    tags: Vec<Option<u32>>,
    line_shift: u32,
    index_mask: u32,
    hits: u64,
    misses: u64,
}

impl ICache {
    /// Creates an icache of `size_bytes` with 16-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a power of two or smaller than one
    /// line.
    pub fn new(size_bytes: u32) -> ICache {
        assert!(size_bytes.is_power_of_two() && size_bytes >= 16);
        let lines = size_bytes / 16;
        ICache {
            tags: vec![None; lines as usize],
            line_shift: 4,
            index_mask: lines - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `pc`; on a miss the line is installed (the refill penalty
    /// is charged by the core). Returns `true` on hit.
    pub fn access(&mut self, pc: u32) -> bool {
        let line = pc >> self.line_shift;
        let index = (line & self.index_mask) as usize;
        let tag = line >> self.index_mask.trailing_ones();
        if self.tags[index] == Some(tag) {
            self.hits += 1;
            true
        } else {
            self.tags[index] = Some(tag);
            self.misses += 1;
            false
        }
    }

    /// Non-mutating lookup: whether an [`access`](Self::access) of `pc`
    /// would hit right now. Used by the event scheduler to decide if a
    /// stalled tile's next fetch is free (park) or a miss (step it so the
    /// refill is charged on the right cycle).
    pub fn would_hit(&self, pc: u32) -> bool {
        let line = pc >> self.line_shift;
        let index = (line & self.index_mask) as usize;
        let tag = line >> self.index_mask.trailing_ones();
        self.tags[index] == Some(tag)
    }

    /// Number of cache lines.
    pub fn lines(&self) -> usize {
        self.tags.len()
    }

    /// Invalidates one line, as the parity logic does when an injected bit
    /// flip is detected in the tag or data array: the next access to the
    /// line is a forced (correct) refill, so the flip costs a miss but can
    /// never corrupt execution.
    pub fn invalidate_line(&mut self, index: usize) {
        let n = self.tags.len();
        self.tags[index % n] = None;
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Serializes the tag array and counters.
    pub(crate) fn snap_save(&self, w: &mut hb_mem::SnapWriter) {
        w.tag(b"ICAC");
        w.usize(self.tags.len());
        for t in &self.tags {
            if w.opt(t.is_some()) {
                w.u32(t.unwrap());
            }
        }
        w.u64(self.hits);
        w.u64(self.misses);
    }

    /// Restores tag array and counters into an icache of the same geometry.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation or a size mismatch.
    pub(crate) fn snap_load(
        &mut self,
        r: &mut hb_mem::SnapReader,
    ) -> Result<(), hb_mem::SnapError> {
        r.expect_tag(b"ICAC", "ICache section")?;
        if r.usize()? != self.tags.len() {
            return Err(hb_mem::SnapError::Bad("ICache line count mismatch"));
        }
        for t in &mut self.tags {
            *t = if r.opt()? { Some(r.u32()?) } else { None };
        }
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hits_within_line() {
        let mut ic = ICache::new(4096);
        assert!(!ic.access(0x100)); // cold
        assert!(ic.access(0x104));
        assert!(ic.access(0x108));
        assert!(ic.access(0x10c));
        assert!(!ic.access(0x110)); // next line
    }

    #[test]
    fn conflict_misses_on_aliasing_lines() {
        let mut ic = ICache::new(4096);
        assert!(!ic.access(0x0));
        assert!(!ic.access(4096)); // same index, different tag
        assert!(!ic.access(0x0)); // evicted
        assert_eq!(ic.misses(), 3);
    }

    #[test]
    fn invalidated_line_forces_one_refill() {
        let mut ic = ICache::new(4096);
        assert_eq!(ic.lines(), 256);
        assert!(!ic.access(0x100));
        assert!(ic.access(0x104));
        // 0x100 lives in line 0x10; a parity flip invalidates it.
        ic.invalidate_line(0x10);
        assert!(!ic.access(0x100), "invalidated line must miss once");
        assert!(ic.access(0x104), "refill restores the line");
        // Indices wrap so any u16 line id from a fault plan is safe.
        ic.invalidate_line(0x10 + 256);
        assert!(!ic.access(0x100));
    }

    #[test]
    fn loop_smaller_than_cache_streams_from_cache() {
        let mut ic = ICache::new(4096);
        // Warm a 1 KB loop.
        for pc in (0..1024u32).step_by(4) {
            ic.access(pc);
        }
        let miss_before = ic.misses();
        for _ in 0..10 {
            for pc in (0..1024u32).step_by(4) {
                assert!(ic.access(pc));
            }
        }
        assert_eq!(ic.misses(), miss_before);
    }
}
