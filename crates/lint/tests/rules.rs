//! Per-rule acceptance tests: each linter rule must fire on a minimal
//! deliberately-broken program, and must stay quiet on the fixed version.

use hb_asm::{Assembler, Program};
use hb_core::{pgas, HbOps};
use hb_isa::Gpr::*;
use hb_lint::{lint, render, AssembleChecked, CheckError, Diagnostic, LintConfig, Rule, Severity};

fn diags(p: &Program) -> Vec<Diagnostic> {
    lint(p, &LintConfig::default())
}

fn has(ds: &[Diagnostic], rule: Rule, severity: Severity) -> bool {
    ds.iter().any(|d| d.rule == rule && d.severity == severity)
}

#[track_caller]
fn assert_fires(p: &Program, rule: Rule, severity: Severity) {
    let ds = diags(p);
    assert!(
        has(&ds, rule, severity),
        "expected {severity} {rule} among:\n{}",
        ds.iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[track_caller]
fn assert_silent(p: &Program, rule: Rule) {
    let ds = diags(p);
    assert!(
        !ds.iter().any(|d| d.rule == rule),
        "expected no {rule} among:\n{}",
        ds.iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ---- dataflow ----

#[test]
fn use_before_def_fires_on_never_written_register() {
    let mut a = Assembler::new();
    a.add(A0, T3, T4); // t3/t4 never written
    a.ecall();
    assert_fires(&a.assemble(0).unwrap(), Rule::UseBeforeDef, Severity::Error);
}

#[test]
fn use_before_def_warns_when_defined_on_one_path_only() {
    let mut a = Assembler::new();
    let skip = a.new_label();
    a.beqz(A0, skip);
    a.li(T0, 7); // t0 defined only when a0 != 0
    a.bind(skip);
    a.mv(A1, T0);
    a.ecall();
    assert_fires(
        &a.assemble(0).unwrap(),
        Rule::UseBeforeDef,
        Severity::Warning,
    );
}

#[test]
fn use_before_def_silent_on_arguments_and_sp() {
    let mut a = Assembler::new();
    a.add(A0, A1, A2);
    a.sw(A0, Sp, -4);
    a.ecall();
    assert_silent(&a.assemble(0).unwrap(), Rule::UseBeforeDef);
}

#[test]
fn dead_write_fires_on_overwritten_constant() {
    let mut a = Assembler::new();
    a.li(T0, 5); // dead: overwritten before any read
    a.li(T0, 6);
    a.mv(A0, T0);
    a.ecall();
    assert_fires(&a.assemble(0).unwrap(), Rule::DeadWrite, Severity::Warning);
}

#[test]
fn dead_write_silent_when_value_is_read() {
    let mut a = Assembler::new();
    a.li(T0, 5);
    a.sw(T0, Sp, -4); // the value escapes to memory
    a.ecall();
    assert_silent(&a.assemble(0).unwrap(), Rule::DeadWrite);
}

#[test]
fn unreachable_block_fires_on_skipped_code() {
    let mut a = Assembler::new();
    let skip = a.new_label();
    a.j(skip);
    a.li(A0, 1); // unreachable
    a.bind(skip);
    a.ecall();
    assert_fires(
        &a.assemble(0).unwrap(),
        Rule::UnreachableBlock,
        Severity::Warning,
    );
}

#[test]
fn falls_off_end_fires_without_ecall() {
    let mut a = Assembler::new();
    a.li(A0, 1);
    assert_fires(&a.assemble(0).unwrap(), Rule::FallsOffEnd, Severity::Error);
}

// ---- scoreboard ----

#[test]
fn scoreboard_pressure_fires_past_sixty_three_outstanding() {
    let mut a = Assembler::new();
    a.li_u(T0, pgas::local_dram(0));
    // 64 posted remote stores, no fence: one more than the scoreboard holds.
    for i in 0..64 {
        a.sw(Zero, T0, i * 4);
    }
    a.fence();
    a.ecall();
    assert_fires(
        &a.assemble(0).unwrap(),
        Rule::ScoreboardPressure,
        Severity::Warning,
    );
}

#[test]
fn scoreboard_pressure_silent_below_capacity() {
    let mut a = Assembler::new();
    a.li_u(T0, pgas::local_dram(0));
    for i in 0..63 {
        a.sw(Zero, T0, i * 4);
    }
    a.fence();
    a.ecall();
    assert_silent(&a.assemble(0).unwrap(), Rule::ScoreboardPressure);
}

#[test]
fn remote_use_stall_reported_on_immediate_consume() {
    let mut a = Assembler::new();
    a.li_u(T0, pgas::local_dram(0));
    a.lw(T1, T0, 0); // remote load...
    a.add(A0, T1, T1); // ...consumed immediately
    a.fence();
    a.ecall();
    assert_fires(
        &a.assemble(0).unwrap(),
        Rule::RemoteUseStall,
        Severity::Info,
    );
}

// ---- barriers ----

/// Rank-guarded barrier: only tiles with rank 0 join — a guaranteed
/// deadlock, because the deciding branch reads a tile-divergent CSR.
#[test]
fn barrier_mismatch_on_divergent_branch_is_an_error() {
    let mut a = Assembler::new();
    let skip = a.new_label();
    a.tg_rank(T0, T6);
    a.bnez(T0, skip);
    a.barrier(T6);
    a.bind(skip);
    a.fence();
    a.ecall();
    assert_fires(
        &a.assemble(0).unwrap(),
        Rule::BarrierMismatch,
        Severity::Error,
    );
}

/// The same imbalance behind an argument-driven branch is only flagged as
/// info: arguments are launch-uniform, so all tiles take the same path.
#[test]
fn barrier_mismatch_on_uniform_branch_is_info_only() {
    let mut a = Assembler::new();
    let skip = a.new_label();
    a.bnez(A0, skip);
    a.barrier(T6);
    a.bind(skip);
    a.fence();
    a.ecall();
    let ds = diags(&a.assemble(0).unwrap());
    assert!(has(&ds, Rule::BarrierMismatch, Severity::Info));
    assert!(!has(&ds, Rule::BarrierMismatch, Severity::Error));
}

#[test]
fn barrier_mismatch_silent_when_paths_balance() {
    let mut a = Assembler::new();
    let other = a.new_label();
    let join = a.new_label();
    a.tg_rank(T0, T6);
    a.bnez(T0, other);
    a.barrier(T6);
    a.j(join);
    a.bind(other);
    a.barrier(T6);
    a.bind(join);
    a.fence();
    a.ecall();
    assert_silent(&a.assemble(0).unwrap(), Rule::BarrierMismatch);
}

#[test]
fn barrier_without_fence_fires_on_unflushed_stores() {
    let mut a = Assembler::new();
    a.li_u(T0, pgas::local_dram(0));
    a.sw(Zero, T0, 0); // posted remote store...
    a.barrier(T6); // ...still in flight at the barrier
    a.fence();
    a.ecall();
    assert_fires(
        &a.assemble(0).unwrap(),
        Rule::BarrierWithoutFence,
        Severity::Warning,
    );
}

#[test]
fn barrier_after_fence_is_clean() {
    let mut a = Assembler::new();
    a.li_u(T0, pgas::local_dram(0));
    a.sw(Zero, T0, 0);
    a.fence();
    a.barrier(T6);
    a.fence();
    a.ecall();
    assert_silent(&a.assemble(0).unwrap(), Rule::BarrierWithoutFence);
}

#[test]
fn unfenced_exit_fires_on_posted_stores_at_ecall() {
    let mut a = Assembler::new();
    a.li_u(T0, pgas::local_dram(0));
    a.sw(Zero, T0, 0);
    a.ecall(); // no fence: the result may never land
    assert_fires(
        &a.assemble(0).unwrap(),
        Rule::UnfencedExit,
        Severity::Warning,
    );
}

// ---- addresses ----

#[test]
fn unaligned_access_fires_on_misaligned_word_store() {
    let mut a = Assembler::new();
    a.li(T0, 2);
    a.sw(Zero, T0, 0); // word store to address 2
    a.ecall();
    assert_fires(
        &a.assemble(0).unwrap(),
        Rule::UnalignedAccess,
        Severity::Error,
    );
}

#[test]
fn spm_out_of_bounds_fires_past_the_scratchpad() {
    let mut a = Assembler::new();
    a.li(T0, 0x3000); // local space, beyond the 4 KB SPM and the CSR window
    a.sw(Zero, T0, 0);
    a.ecall();
    assert_fires(
        &a.assemble(0).unwrap(),
        Rule::SpmOutOfBounds,
        Severity::Error,
    );
}

#[test]
fn bad_csr_access_fires_on_store_to_read_only_csr() {
    let mut a = Assembler::new();
    a.li_u(T0, 0x1018); // TG_RANK is load-only
    a.sw(Zero, T0, 0);
    a.ecall();
    assert_fires(&a.assemble(0).unwrap(), Rule::BadCsrAccess, Severity::Error);
}

#[test]
fn bad_csr_access_fires_on_load_of_barrier_csr() {
    let mut a = Assembler::new();
    a.li_u(T0, 0x1030); // the barrier CSR is store-only
    a.lw(A0, T0, 0);
    a.ecall();
    assert_fires(&a.assemble(0).unwrap(), Rule::BadCsrAccess, Severity::Error);
}

#[test]
fn amo_to_local_fires_on_spm_target() {
    let mut a = Assembler::new();
    a.li(T0, 0x100); // local SPM: atomics only execute at cache banks
    a.li(T2, 1);
    a.amoadd(T1, T2, T0);
    a.fence();
    a.mv(A0, T1);
    a.ecall();
    assert_fires(&a.assemble(0).unwrap(), Rule::AmoToLocal, Severity::Error);
}

#[test]
fn amo_to_remote_dram_is_legal() {
    let mut a = Assembler::new();
    a.li_u(T0, pgas::local_dram(0));
    a.li(T2, 1);
    a.amoadd(T1, T2, T0);
    a.fence();
    a.mv(A0, T1);
    a.ecall();
    assert_silent(&a.assemble(0).unwrap(), Rule::AmoToLocal);
}

#[test]
fn lr_sc_are_rejected() {
    let mut a = Assembler::new();
    a.li_u(T0, pgas::local_dram(0));
    a.emit(hb_isa::Instr::LrW {
        rd: T1,
        rs1: T0,
        aq: false,
        rl: false,
    });
    a.fence();
    a.mv(A0, T1);
    a.ecall();
    assert_fires(&a.assemble(0).unwrap(), Rule::AmoToLocal, Severity::Error);
}

// ---- icache ----

#[test]
fn icache_loop_spill_fires_on_oversized_loop() {
    let mut a = Assembler::new();
    a.li(T0, 100);
    let head = a.here();
    let exit = a.new_label();
    // Loop body larger than the 4 KB icache: every iteration re-misses.
    // The body outranges a conditional branch, so jump back via `j`.
    for _ in 0..1100 {
        a.nop();
    }
    a.addi(T0, T0, -1);
    a.beqz(T0, exit);
    a.j(head);
    a.bind(exit);
    a.ecall();
    assert_fires(
        &a.assemble(0).unwrap(),
        Rule::IcacheLoopSpill,
        Severity::Warning,
    );
}

// ---- configuration ----

#[test]
fn disabled_rules_are_suppressed() {
    let mut a = Assembler::new();
    a.add(A0, T3, T4);
    a.ecall();
    let p = a.assemble(0).unwrap();
    let lc = LintConfig::default().disable(Rule::UseBeforeDef);
    assert!(!lint(&p, &lc).iter().any(|d| d.rule == Rule::UseBeforeDef));
}

#[test]
fn rule_names_round_trip() {
    for rule in Rule::ALL {
        assert_eq!(Rule::from_name(rule.name()), Some(rule));
    }
    assert_eq!(Rule::from_name("no-such-rule"), None);
}

// ---- rendering & strict assembly ----

#[test]
fn render_marks_the_offending_instruction() {
    let mut a = Assembler::new();
    a.li(T0, 2);
    a.sw(Zero, T0, 0);
    a.ecall();
    let p = a.assemble(0).unwrap();
    let ds = diags(&p);
    let d = ds
        .iter()
        .find(|d| d.rule == Rule::UnalignedAccess)
        .expect("unaligned store found");
    let rendered = render(&p, d);
    assert!(rendered.contains(">>>"), "no marker in:\n{rendered}");
    assert!(rendered.contains("sw"), "no disassembly in:\n{rendered}");
}

#[test]
fn assemble_checked_rejects_broken_programs() {
    let mut a = Assembler::new();
    a.add(A0, T3, T4);
    a.ecall();
    match a.assemble_checked(0, &LintConfig::default()) {
        Err(CheckError::Lint(ds)) => {
            assert!(has(&ds, Rule::UseBeforeDef, Severity::Error));
        }
        other => panic!("expected lint rejection, got {other:?}"),
    }
}

#[test]
fn assemble_checked_accepts_clean_programs() {
    let mut a = Assembler::new();
    a.add(A0, A1, A2);
    a.fence();
    a.ecall();
    a.assemble_checked(0, &LintConfig::default())
        .expect("clean program passes strict assembly");
}
