//! Fractional clock-ratio divider.

/// Generates ticks of a slower clock from a faster one using fixed-point
/// accumulation, e.g. the 1.0 GHz HBM2 clock driven from the 1.35 GHz core
/// clock.
///
/// # Examples
///
/// ```
/// use hb_mem::ClockDivider;
///
/// let mut div = ClockDivider::new(1_000, 1_350); // mem : core frequency
/// let mem_ticks: u32 = (0..1350).map(|_| u32::from(div.tick())).sum();
/// assert_eq!(mem_ticks, 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDivider {
    numer: u64,
    denom: u64,
    acc: u64,
}

impl ClockDivider {
    /// Creates a divider producing `numer` slow ticks per `denom` fast ticks.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero or `numer > denom`.
    pub fn new(numer: u64, denom: u64) -> ClockDivider {
        assert!(denom > 0 && numer <= denom, "ratio must be <= 1");
        ClockDivider {
            numer,
            denom,
            acc: 0,
        }
    }

    /// The `(numer, denom, acc)` triple, for snapshot encoding.
    pub(crate) fn parts(&self) -> (u64, u64, u64) {
        (self.numer, self.denom, self.acc)
    }

    /// Overwrites the accumulator, for snapshot restore. The caller has
    /// validated `acc < denom`.
    pub(crate) fn set_acc(&mut self, acc: u64) {
        self.acc = acc;
    }

    /// Advances the fast clock one cycle; returns `true` when the slow clock
    /// ticks.
    pub fn tick(&mut self) -> bool {
        self.acc += self.numer;
        if self.acc >= self.denom {
            self.acc -= self.denom;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_ratio_ticks_every_cycle() {
        let mut d = ClockDivider::new(1, 1);
        assert!((0..100).all(|_| d.tick()));
    }

    #[test]
    fn half_ratio_ticks_every_other_cycle() {
        let mut d = ClockDivider::new(1, 2);
        let ticks: Vec<bool> = (0..6).map(|_| d.tick()).collect();
        assert_eq!(ticks, [false, true, false, true, false, true]);
    }

    #[test]
    fn long_run_ratio_is_exact() {
        let mut d = ClockDivider::new(1_000, 1_350);
        let slow: u64 = (0..1_350_000).map(|_| u64::from(d.tick())).sum();
        assert_eq!(slow, 1_000_000);
    }
}
