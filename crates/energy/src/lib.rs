//! Per-instruction energy model (paper Figure 13).
//!
//! The paper measures HammerBlade's "Energy per Instruction" (EPI) with
//! post-layout gate-level power analysis and compares against the 25-core
//! OpenPiton characterization of McKeown et al. (HPCA 2018), normalized to
//! the same process with CV² scaling, concluding HB is **3.6-15.1x** more
//! energy-efficient per instruction.
//!
//! No gate-level netlist exists in this reproduction, so this crate is an
//! event-energy model: per-component energies for HB calibrated to the
//! paper's qualitative breakdown (small icache fetch, scratchpad instead
//! of L1/L1.5 caches, short in-tile wires), and OpenPiton per-class EPI
//! figures approximating \[38\]'s published characterization, scaled by CV².
//! The *ratios* — which instruction classes are most/least efficient and
//! the 3.6-15.1x span — are the reproduced result; absolute picojoules
//! are indicative only.

pub mod area;

use std::fmt;

/// Instruction classes compared in Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Integer ALU (add/sub/logic).
    IntAlu,
    /// Integer multiply.
    Mul,
    /// FP add/sub.
    FpAdd,
    /// Fused multiply-add.
    Fma,
    /// Local load (SPM on HB; L1 on Piton).
    Load,
    /// Local store.
    Store,
}

impl InstrClass {
    /// All classes in display order.
    pub const ALL: [InstrClass; 6] = [
        InstrClass::IntAlu,
        InstrClass::Mul,
        InstrClass::FpAdd,
        InstrClass::Fma,
        InstrClass::Load,
        InstrClass::Store,
    ];
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::IntAlu => "int-alu",
            InstrClass::Mul => "mul",
            InstrClass::FpAdd => "fp-add",
            InstrClass::Fma => "fma",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
        };
        f.write_str(s)
    }
}

/// One component of HB's EPI breakdown, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component label ("ifetch", "decode", ...).
    pub name: &'static str,
    /// Energy in pJ.
    pub pj: f64,
}

/// A stacked EPI breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct EpiBreakdown {
    /// Instruction class.
    pub class: InstrClass,
    /// Stacked components.
    pub components: Vec<Component>,
}

impl EpiBreakdown {
    /// Total energy in pJ.
    pub fn total(&self) -> f64 {
        self.components.iter().map(|c| c.pj).sum()
    }
}

/// HB fixed per-instruction component energies (pJ, 14/16 nm, 0.8 V).
/// Small 4 KB icache, no tag-only SRAM, short in-tile wires.
const HB_IFETCH: f64 = 3.1;
const HB_DECODE: f64 = 1.2;
const HB_REGFILE: f64 = 2.2;
const HB_CLOCK: f64 = 2.0;
const HB_SPM: f64 = 4.5;

/// HB functional-unit energy per class (pJ).
fn hb_fu(class: InstrClass) -> f64 {
    match class {
        InstrClass::IntAlu => 1.8,
        InstrClass::Mul => 4.6,
        InstrClass::FpAdd => 5.2,
        InstrClass::Fma => 9.8,
        InstrClass::Load => 0.8,
        InstrClass::Store => 0.7,
    }
}

/// HammerBlade EPI breakdown for one instruction class.
pub fn hammerblade_epi(class: InstrClass) -> EpiBreakdown {
    let mut components = vec![
        Component {
            name: "ifetch",
            pj: HB_IFETCH,
        },
        Component {
            name: "decode+ctrl",
            pj: HB_DECODE,
        },
        Component {
            name: "regfile",
            pj: HB_REGFILE,
        },
        Component {
            name: "fu",
            pj: hb_fu(class),
        },
        Component {
            name: "clock",
            pj: HB_CLOCK,
        },
    ];
    if matches!(class, InstrClass::Load | InstrClass::Store) {
        components.push(Component {
            name: "spm",
            pj: HB_SPM,
        });
    }
    EpiBreakdown { class, components }
}

/// OpenPiton per-class EPI at its native 32 nm / 1.0 V process (pJ),
/// approximating the McKeown et al. characterization: deep cache
/// hierarchy (L1 + L1.5 + distributed L2 lookups) and long intra-tile
/// wires dominate, making memory instructions by far the most expensive.
pub fn piton_epi_raw(class: InstrClass) -> f64 {
    match class {
        InstrClass::IntAlu => 128.0,
        InstrClass::Mul => 181.0,
        InstrClass::FpAdd => 260.0,
        InstrClass::Fma => 407.0,
        InstrClass::Load => 700.0,
        InstrClass::Store => 715.0,
    }
}

/// CV² scaling of a switching-energy figure between process/voltage
/// corners: `E_new = E_old * cap_ratio * (v_new / v_old)^2`.
pub fn cv2_scale(e_old_pj: f64, cap_ratio: f64, v_old: f64, v_new: f64) -> f64 {
    e_old_pj * cap_ratio * (v_new / v_old).powi(2)
}

/// Capacitance ratio 32 nm -> 14/16 nm (gate + wire cap per device,
/// lithography-scaling-database derived).
pub const CAP_RATIO_32_TO_14: f64 = 0.45;
/// OpenPiton's nominal supply.
pub const PITON_VDD: f64 = 1.0;
/// HammerBlade's nominal supply at 14/16 nm.
pub const HB_VDD: f64 = 0.8;

/// OpenPiton EPI normalized to HB's 14/16 nm process with CV² scaling.
pub fn piton_epi_scaled(class: InstrClass) -> f64 {
    cv2_scale(piton_epi_raw(class), CAP_RATIO_32_TO_14, PITON_VDD, HB_VDD)
}

/// The headline ratio for one class: scaled Piton EPI / HB EPI.
pub fn efficiency_ratio(class: InstrClass) -> f64 {
    piton_epi_scaled(class) / hammerblade_epi(class).total()
}

/// Event counts from a kernel run, for whole-kernel energy estimates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelEvents {
    /// Integer instructions retired.
    pub int_instrs: u64,
    /// FP instructions retired.
    pub fp_instrs: u64,
    /// Local SPM accesses.
    pub spm_accesses: u64,
    /// Network hops traversed (packets x hops).
    pub network_hops: u64,
    /// Cache-bank accesses.
    pub cache_accesses: u64,
    /// DRAM line transfers.
    pub dram_lines: u64,
}

/// Per-event energies beyond the core (pJ).
const NETWORK_HOP_PJ: f64 = 1.9;
const CACHE_ACCESS_PJ: f64 = 12.0;
const DRAM_LINE_PJ: f64 = 2200.0;

/// Whole-kernel energy estimate in nanojoules.
pub fn kernel_energy_nj(ev: &KernelEvents) -> f64 {
    let int = hammerblade_epi(InstrClass::IntAlu).total();
    let fp = hammerblade_epi(InstrClass::Fma).total();
    let pj = ev.int_instrs as f64 * int
        + ev.fp_instrs as f64 * fp
        + ev.spm_accesses as f64 * HB_SPM
        + ev.network_hops as f64 * NETWORK_HOP_PJ
        + ev.cache_accesses as f64 * CACHE_ACCESS_PJ
        + ev.dram_lines as f64 * DRAM_LINE_PJ;
    pj / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_span_the_papers_range() {
        let ratios: Vec<f64> = InstrClass::ALL
            .iter()
            .map(|&c| efficiency_ratio(c))
            .collect();
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        assert!(
            (3.2..=4.2).contains(&min),
            "min ratio {min:.2} should be ~3.6 (paper lower bound)"
        );
        assert!(
            (13.0..=16.5).contains(&max),
            "max ratio {max:.2} should be ~15.1 (paper upper bound)"
        );
    }

    #[test]
    fn memory_instructions_show_largest_gap() {
        // HB's scratchpad vs Piton's 3-level cache lookup: the load/store
        // ratio must exceed the ALU ratio.
        assert!(efficiency_ratio(InstrClass::Load) > 2.0 * efficiency_ratio(InstrClass::IntAlu));
    }

    #[test]
    fn breakdown_components_are_positive_and_sum() {
        for class in InstrClass::ALL {
            let b = hammerblade_epi(class);
            assert!(b.components.iter().all(|c| c.pj > 0.0));
            let total: f64 = b.components.iter().map(|c| c.pj).sum();
            assert!((b.total() - total).abs() < 1e-12);
        }
    }

    #[test]
    fn cv2_scaling_is_quadratic_in_voltage() {
        let e = cv2_scale(100.0, 1.0, 1.0, 0.5);
        assert!((e - 25.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_energy_accumulates() {
        let ev = KernelEvents {
            int_instrs: 1000,
            dram_lines: 10,
            ..KernelEvents::default()
        };
        let base = kernel_energy_nj(&ev);
        let more = kernel_energy_nj(&KernelEvents {
            int_instrs: 2000,
            ..ev
        });
        assert!(more > base);
    }
}
