//! BFS — breadth-first search (graph-traversal dwarf).
//!
//! Top-down frontier BFS implementing the paper's Figure 8 idiom exactly:
//! tiles claim frontier vertices with `amoadd` on a shared work counter
//! and mark discovered neighbors in a dense next-frontier bitmap with
//! `amoor`. A second parallel phase converts the bitmap back into a
//! frontier array. Severely irregular: per-vertex work varies with degree,
//! which is why the SPMD model (independent thread execution) wins here.

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::prologue;
use hb_asm::{Assembler, Program};
use hb_core::{pgas, HbOps, Machine, MachineConfig, SimError};
use hb_isa::Gpr::*;
use hb_workloads::{gen, golden, CsrMatrix};
use std::sync::Arc;

const D_RP: u32 = 0;
const D_CI: u32 = 1;
const D_DIST: u32 = 2;
const D_FRONT_A: u32 = 3;
const D_FRONT_B: u32 = 4;
const D_BITMAP: u32 = 5;
const D_Q0: u32 = 6;
const D_Q1: u32 = 7;
const D_FSIZE: u32 = 8;
const D_NEXT_COUNT: u32 = 9;
const D_DONE: u32 = 10;
const D_N: u32 = 11;
const D_NWORDS: u32 = 12;
/// Direction-optimizing extension: in-edge CSR + mode slot.
const D_TG_RP: u32 = 13;
const D_TG_CI: u32 = 14;
const D_MODE: u32 = 15;
const DESC_WORDS: u32 = 16;

/// Frontier-density threshold (frontier * DIR_ALPHA >= n switches to
/// bottom-up), per Beamer's direction-optimizing heuristic.
const DIR_ALPHA: i32 = 8;

/// The BFS benchmark.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// log2 of the vertex count (power-law) or grid side (road).
    pub scale: u32,
    /// Directed edges for the power-law input.
    pub edges: usize,
    /// Road-network-like input (tiny frontiers, long diameter) instead of
    /// power-law.
    pub road: bool,
    /// Direction-optimizing BFS (Beamer): switch to a bottom-up sweep over
    /// unvisited vertices when the frontier grows dense — the strategy the
    /// paper describes for splitting work among Cells.
    pub direction_optimizing: bool,
}

impl Default for Bfs {
    fn default() -> Bfs {
        Bfs {
            scale: 8,
            edges: 4096,
            road: false,
            direction_optimizing: false,
        }
    }
}

impl Bfs {
    /// The paper's road-network configuration (low HBM utilization from
    /// small frontiers).
    pub fn road_network() -> Bfs {
        Bfs {
            scale: 5,
            edges: 0,
            road: true,
            ..Bfs::default()
        }
    }

    /// The direction-optimizing variant (paper §IV.B / Beamer \[10\]).
    pub fn direction_optimizing() -> Bfs {
        Bfs {
            direction_optimizing: true,
            ..Bfs::default()
        }
    }

    fn sized(&self, size: SizeClass) -> Bfs {
        match size {
            SizeClass::Tiny => Bfs {
                scale: 6,
                edges: 512,
                ..self.clone()
            },
            SizeClass::Small => self.clone(),
            SizeClass::Large => Bfs {
                scale: 11,
                edges: 16384,
                ..self.clone()
            },
        }
    }

    fn graph(&self) -> CsrMatrix {
        if self.road {
            let side = 1u32 << self.scale;
            gen::road_grid(side, side)
        } else {
            gen::rmat(self.scale, self.edges, 0xBF5)
        }
    }

    /// Builds the kernel. Argument: `a0` = descriptor EVA (16 words).
    /// With `direction_optimizing`, dense frontiers switch to a bottom-up
    /// sweep over unvisited vertices (paper §IV.B / Beamer).
    pub fn program(direction_optimizing: bool) -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);
        // Stash the descriptor EVA in SPM[0] (a0 is about to be reused)
        // and keep the in-edge CSR in gp/tp for the bottom-up sweep.
        a.sw(A0, Zero, 0);
        a.lw(Gp, A0, (D_TG_RP * 4) as i32);
        a.lw(Tp, A0, (D_TG_CI * 4) as i32);
        a.lw(T0, A0, (D_RP * 4) as i32);
        a.lw(T1, A0, (D_CI * 4) as i32);
        a.lw(T2, A0, (D_DIST * 4) as i32);
        a.lw(T3, A0, (D_FRONT_A * 4) as i32);
        a.lw(T4, A0, (D_FRONT_B * 4) as i32);
        a.lw(T5, A0, (D_BITMAP * 4) as i32);
        a.lw(A6, A0, (D_Q0 * 4) as i32);
        a.lw(A7, A0, (D_Q1 * 4) as i32);
        a.lw(S0, A0, (D_FSIZE * 4) as i32);
        a.lw(S1, A0, (D_NEXT_COUNT * 4) as i32);
        a.lw(S2, A0, (D_DONE * 4) as i32);
        a.lw(S3, A0, (D_N * 4) as i32);
        a.lw(S4, A0, (D_NWORDS * 4) as i32);
        a.mv(A0, T0);
        a.mv(A1, T1);
        a.mv(A2, T2);
        a.mv(A3, T3);
        a.mv(A4, T4);
        a.mv(A5, T5);
        a.li(S5, 1); // level
        a.lw(S6, S0, 0); // frontier size
        a.li(S9, 1); // amoadd operand

        let level_loop = a.new_label();
        let finished = a.new_label();
        let phase_c = a.new_label();
        let bottom_up = a.new_label();
        a.bind(level_loop);

        // Direction choice for this level (written by rank 0 last level).
        if direction_optimizing {
            a.lw(T0, Zero, 0); // descriptor base from SPM
            a.lw(T1, T0, (D_MODE * 4) as i32);
            a.bnez(T1, bottom_up);
        }

        // ---- Phase A: expand the frontier into the bitmap (Figure 8) ----
        let expand = a.new_label();
        let expand_done = a.new_label();
        a.bind(expand);
        a.amoadd(T0, S9, A6); // i = q0++
        a.bge(T0, S6, expand_done);
        a.slli(T0, T0, 2);
        a.add(T0, A3, T0);
        a.lw(T1, T0, 0); // v = frontier[i]
        a.slli(T1, T1, 2);
        a.add(T1, A0, T1);
        a.lw(S7, T1, 0); // begin
        a.lw(S8, T1, 4); // end
        let edges = a.new_label();
        a.bind(edges);
        a.bge(S7, S8, expand);
        a.slli(T1, S7, 2);
        a.add(T1, A1, T1);
        a.lw(T2, T1, 0); // nz
        a.slli(T3, T2, 2);
        a.add(T3, A2, T3);
        a.lw(T4, T3, 0); // dist[nz]
        a.addi(S7, S7, 1);
        let not_new = a.new_label();
        a.li(T5, -1);
        a.bne(T4, T5, not_new);
        // amoor(1 << (nz % 32), &bitmap[nz / 32])
        a.andi(T5, T2, 31);
        a.li(T4, 1);
        a.sll(T4, T4, T5);
        a.srli(T5, T2, 5);
        a.slli(T5, T5, 2);
        a.add(T5, A5, T5);
        a.amoor(Zero, T4, T5);
        a.bind(not_new);
        a.j(edges);
        a.bind(expand_done);
        a.fence();
        a.barrier(T6);

        // ---- Phase B: bitmap -> next frontier + distances ----
        let drain = a.new_label();
        let drain_done = a.new_label();
        a.bind(drain);
        a.amoadd(T0, S9, A7); // w = q1++
        a.bge(T0, S4, drain_done);
        a.slli(T1, T0, 2);
        a.add(T1, A5, T1);
        a.lw(T2, T1, 0); // bits
        a.beqz(T2, drain);
        a.sw(Zero, T1, 0); // clear the word
        a.slli(S7, T0, 5); // node = w*32
        let bits_loop = a.new_label();
        let bit_skip = a.new_label();
        a.bind(bits_loop);
        a.beqz(T2, drain);
        a.andi(T3, T2, 1);
        a.beqz(T3, bit_skip);
        // Discovered: set distance, append to next frontier.
        a.slli(T3, S7, 2);
        a.add(T3, A2, T3);
        a.sw(S5, T3, 0); // dist[node] = level
        a.amoadd(T4, S9, S1); // idx = next_count++
        a.slli(T4, T4, 2);
        a.add(T4, A4, T4);
        a.sw(S7, T4, 0); // next[idx] = node
        a.bind(bit_skip);
        a.srli(T2, T2, 1);
        a.addi(S7, S7, 1);
        a.j(bits_loop);
        a.bind(drain_done);
        a.fence();
        a.barrier(T6);
        a.j(phase_c);

        // ---- Bottom-up sweep (direction-optimizing extension): claim
        // unvisited vertices whose in-neighbors sit on the frontier ----
        if direction_optimizing {
            a.bind(bottom_up);
            let bu = a.new_label();
            let bu_done = a.new_label();
            let bu_edges = a.new_label();
            a.bind(bu);
            a.amoadd(T0, S9, A6); // v = q0++
            a.bge(T0, S3, bu_done);
            a.slli(T1, T0, 2);
            a.add(T1, A2, T1);
            a.amoadd(T2, Zero, T1); // dist[v], atomic read (see below)
            a.li(T3, -1);
            a.bne(T2, T3, bu); // already visited
            a.slli(T4, T0, 2);
            a.add(T4, Gp, T4);
            a.lw(S7, T4, 0); // in-edge begin
            a.lw(S8, T4, 4); // in-edge end
            a.bind(bu_edges);
            a.bge(S7, S8, bu);
            a.slli(T4, S7, 2);
            a.add(T4, Tp, T4);
            a.lw(T5, T4, 0); // u
            a.slli(T5, T5, 2);
            a.add(T5, A2, T5);
            // Same-phase communication: neighbours' dist words are being
            // claimed concurrently, so both the probe and the claim below
            // are atomics (the benign race made explicit — a torn probe
            // reads -1 or `level`, neither of which equals `level - 1`).
            a.amoadd(T2, Zero, T5); // dist[u], atomic read
            a.addi(S7, S7, 1);
            a.addi(T4, S5, -1);
            a.bne(T2, T4, bu_edges);
            // Parent on the frontier: claim v.
            a.slli(T4, T0, 2);
            a.add(T4, A2, T4);
            a.amoswap(Zero, S5, T4); // dist[v] = level
            a.amoadd(T4, S9, S1); // idx = next_count++
            a.slli(T4, T4, 2);
            a.add(T4, A4, T4);
            a.sw(T0, T4, 0);
            a.j(bu);
            a.bind(bu_done);
            a.fence();
            a.barrier(T6);
        } else {
            // Unused labels must still be bound for the assembler.
            a.bind(bottom_up);
        }

        // ---- Phase C: rank 0 resets counters and publishes state ----
        a.bind(phase_c);
        let not_rank0 = a.new_label();
        a.bnez(S10, not_rank0);
        a.lw(T0, S1, 0); // next frontier size
        a.sw(T0, S0, 0); // fsize = next size
        a.sw(Zero, S1, 0);
        a.sw(Zero, A6, 0);
        a.sw(Zero, A7, 0);
        a.seqz(T1, T0);
        a.sw(T1, S2, 0); // done = (size == 0)
        if direction_optimizing {
            // Next level's direction: bottom-up when the frontier is
            // dense (fsize * alpha >= n).
            a.li(T2, DIR_ALPHA);
            a.mul(T2, T0, T2);
            a.slt(T3, T2, S3); // 1 = stay top-down
            a.seqz(T3, T3);
            a.lw(T4, Zero, 0); // descriptor base
            a.sw(T3, T4, (D_MODE * 4) as i32);
        }
        a.fence();
        a.bind(not_rank0);
        a.barrier(T6);

        // All tiles: reload size/done, advance level, swap frontiers.
        a.lw(S6, S0, 0);
        a.lw(T0, S2, 0);
        a.addi(S5, S5, 1);
        a.mv(T1, A3);
        a.mv(A3, A4);
        a.mv(A4, T1);
        a.beqz(T0, level_loop);
        a.bind(finished);
        a.fence();
        a.ecall();
        a.assemble(0).expect("bfs assembles")
    }

    /// Runs and validates against [`golden::bfs`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        let g = self.graph();
        let n = g.rows;
        let source = 0u32;
        let expect = golden::bfs(&g, source);

        let mut machine = Machine::new(cfg.clone());
        let cell = machine.cell_mut(0);
        let alloc_u32 = |cell: &mut hb_core::Cell, data: &[u32]| {
            let p = cell.alloc((data.len() * 4) as u32, 64);
            cell.dram_mut().write_u32_slice(p, data);
            p
        };
        let rp = alloc_u32(cell, &g.row_ptr);
        let ci = alloc_u32(cell, &g.col_idx);
        let mut dist_init = vec![u32::MAX; n as usize];
        dist_init[source as usize] = 0;
        let dist = alloc_u32(cell, &dist_init);
        let front_a = cell.alloc(n * 4, 64);
        let front_b = cell.alloc(n * 4, 64);
        cell.dram_mut().write_u32(front_a, source);
        let nwords = n.div_ceil(32);
        let bitmap = alloc_u32(cell, &vec![0u32; nwords as usize]);
        let q0 = alloc_u32(cell, &[0]);
        let q1 = alloc_u32(cell, &[0]);
        let fsize = alloc_u32(cell, &[1]);
        let next_count = alloc_u32(cell, &[0]);
        let done = alloc_u32(cell, &[0]);
        // In-edge CSR for the bottom-up direction.
        let tg = g.transpose();
        let tg_rp = alloc_u32(cell, &tg.row_ptr);
        let tg_ci = alloc_u32(cell, &tg.col_idx);
        let mode = alloc_u32(cell, &[0]); // level 1 is always top-down
        let desc = alloc_u32(
            cell,
            &[
                pgas::local_dram(rp),
                pgas::local_dram(ci),
                pgas::local_dram(dist),
                pgas::local_dram(front_a),
                pgas::local_dram(front_b),
                pgas::local_dram(bitmap),
                pgas::local_dram(q0),
                pgas::local_dram(q1),
                pgas::local_dram(fsize),
                pgas::local_dram(next_count),
                pgas::local_dram(done),
                n,
                nwords,
                pgas::local_dram(tg_rp),
                pgas::local_dram(tg_ci),
                pgas::local_dram(mode),
            ],
        );
        debug_assert_eq!(DESC_WORDS, 16);
        let _ = mode;

        let program = Arc::new(Self::program(self.direction_optimizing));
        machine.launch(0, &program, &[pgas::local_dram(desc)]);
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();
        let got = machine.cell(0).dram().read_u32_slice(dist, n as usize);
        assert_eq!(got, expect, "BFS distance mismatch");
        Ok(BenchStats::collect("BFS", summary.cycles, &machine))
    }
}

impl Benchmark for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn dwarf(&self) -> &'static str {
        "Graph Traversal"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    fn small_cfg() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        }
    }

    #[test]
    fn bfs_validates_power_law() {
        let stats = Bfs::default().run(&small_cfg(), SizeClass::Tiny).unwrap();
        assert!(stats.cache.amos > 0);
    }

    #[test]
    fn bfs_validates_road_grid() {
        Bfs::road_network()
            .run(&small_cfg(), SizeClass::Tiny)
            .unwrap();
    }

    #[test]
    fn direction_optimizing_bfs_validates() {
        // Power-law graphs hit dense mid-search frontiers, exercising the
        // bottom-up sweep.
        Bfs::direction_optimizing()
            .run(&small_cfg(), SizeClass::Tiny)
            .unwrap();
    }

    #[test]
    fn direction_optimizing_switches_directions() {
        // On a dense-frontier graph the bottom-up path must actually
        // reduce edge work (fewer remote requests than pure top-down).
        let plain = Bfs::default().run(&small_cfg(), SizeClass::Tiny).unwrap();
        let diropt = Bfs::direction_optimizing()
            .run(&small_cfg(), SizeClass::Tiny)
            .unwrap();
        // Same result (validated internally); the optimized variant must
        // not be wildly slower.
        assert!(diropt.cycles < plain.cycles * 3);
    }
}
