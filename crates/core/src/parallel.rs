//! Deterministic parallel execution engine for the tile phase of
//! [`Cell::tick`](crate::Cell::tick).
//!
//! # Execution model
//!
//! The Cell advances in bulk-synchronous (BSP) phases each core cycle (see
//! `DESIGN.md`, "Parallel execution"):
//!
//! 1. **network** — router pipelines advance; packets are ejected into
//!    per-tile/per-bank inboxes,
//! 2. **memory** — cache banks, refill strips and the HBM2 channel,
//! 3. **tiles** — every tile executes one pipeline cycle
//!    ([`Tile::step`](crate::Tile::step)): icache, hazards, SPM, the
//!    remote-op scoreboard, inbox draining and outbox filling,
//! 4. **sync** — barrier-network joins and releases,
//! 5. **inject** — tile/bank outboxes drain into the routers.
//!
//! During phase 3 a tile touches only its own state: inboxes were filled in
//! phase 1 (latched — nothing writes them again until the next cycle) and
//! outboxes are drained in phase 5, so the inbox/outbox pairs act as the
//! double buffers between the tile phase and the sequencing phases. Tiles
//! therefore step independently, and executing them on any number of worker
//! threads produces *bit-identical* architectural state, statistics and
//! network traffic to the single-threaded in-order schedule (verified by
//! `crates/core/tests/determinism.rs` across the whole kernel suite).
//!
//! [`TilePool`] is the persistent worker pool that runs phase 3: `threads-1`
//! long-lived `std::thread` workers plus the calling thread, each stepping a
//! contiguous shard of the tile array. Thread count comes from
//! [`MachineConfig::threads`](crate::MachineConfig::threads) (seeded from
//! the `HB_THREADS` environment variable).

use crate::sched::Park;
use crate::tile::Tile;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Wall-clock time spent in each BSP phase of [`Cell::tick`](crate::Cell::tick),
/// accumulated by [`Machine::tick_profiled`](crate::Machine::tick_profiled).
///
/// Used by the `sim_throughput` bench to report what fraction of a cycle is
/// spent in the (parallelizable) tile phase versus the sequential
/// network/memory sequencing — the Amdahl bound on tile-phase scaling.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseTimes {
    /// Router pipelines + ejection into inboxes (+ inter-Cell fabric).
    pub network: Duration,
    /// Cache banks, refill strips, HBM2.
    pub memory: Duration,
    /// Tile execution (the parallel phase).
    pub tiles: Duration,
    /// Event-scheduler bookkeeping (wake scan, stall catch-up, park
    /// application — see `crate::sched`). Zero under the dense schedule.
    /// Kept out of `tiles` so the Amdahl tile-share report stays truthful
    /// about the parallelizable fraction.
    pub sched: Duration,
    /// Barrier joins/releases.
    pub sync: Duration,
    /// Outbox draining into the routers.
    pub inject: Duration,
}

impl PhaseTimes {
    /// Total accounted time.
    pub fn total(&self) -> Duration {
        self.network + self.memory + self.tiles + self.sched + self.sync + self.inject
    }

    /// Fraction of the accounted time spent in the tile phase.
    pub fn tile_share(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.tiles.as_secs_f64() / total
        }
    }
}

/// One shard of tile-stepping work handed to a worker.
///
/// Raw pointers because workers are persistent (the borrow cannot be
/// expressed through the channel); safety rests on three invariants upheld
/// by [`TilePool::step_tiles`] / [`TilePool::step_list`]: shard ranges are
/// pairwise disjoint (and wake-list entries unique, so `List` shards touch
/// disjoint tiles), read-only inputs are only read, and the caller blocks
/// on the completion latch before the borrows it took the pointers from
/// end.
enum Shard {
    /// A contiguous range of the dense tile array.
    Dense {
        tiles: *mut Tile,
        active: *const bool,
        start: usize,
        end: usize,
        now: u64,
    },
    /// A range of wake-list positions: step `tiles[list[pos]]` and write
    /// its park hint to `parks[pos]` for each `pos` in `[start, end)`.
    List {
        tiles: *mut Tile,
        list: *const u32,
        parks: *mut Park,
        start: usize,
        end: usize,
        now: u64,
    },
}

// SAFETY: `Tile` is `Send` (all fields are owned or `Arc` of `Send + Sync`
// data) and `step_tiles` guarantees disjoint, latch-synchronized access.
unsafe impl Send for Shard {}

/// Countdown latch: the caller waits until every worker reports done.
#[derive(Debug, Default)]
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn reset(&self, n: usize) {
        *self.remaining.lock().unwrap() = n;
    }

    fn count_down(&self) {
        let mut g = self.remaining.lock().unwrap();
        *g -= 1;
        if *g == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.remaining.lock().unwrap();
        while *g > 0 {
            g = self.done.wait(g).unwrap();
        }
    }
}

/// A persistent worker pool executing the tile phase across threads.
///
/// Created once per [`Machine`](crate::Machine) (shared by its Cells) and
/// reused every cycle; workers park on their channel between cycles, so the
/// steady-state cost per cycle is one send per worker plus the latch wait.
pub struct TilePool {
    senders: Vec<Sender<Shard>>,
    latch: Arc<Latch>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TilePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TilePool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl TilePool {
    /// Builds a pool of `threads` total workers (the calling thread counts
    /// as one, so `threads - 1` OS threads are spawned). `threads <= 1`
    /// yields an empty pool that steps tiles inline.
    pub fn new(threads: usize) -> TilePool {
        let workers = threads.saturating_sub(1);
        let latch = Arc::new(Latch::default());
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Shard>();
            let latch = latch.clone();
            let handle = std::thread::Builder::new()
                .name(format!("hb-tile-{w}"))
                .spawn(move || {
                    // Senders dropping (pool drop) ends the iterator.
                    for shard in rx {
                        // SAFETY: see `Shard` — [start, end) is disjoint
                        // from every other shard (including the caller's),
                        // and the caller keeps the backing allocations
                        // borrowed until the latch opens.
                        unsafe {
                            match shard {
                                Shard::Dense {
                                    tiles,
                                    active,
                                    start,
                                    end,
                                    now,
                                } => run_dense_range(tiles, active, start, end, now),
                                Shard::List {
                                    tiles,
                                    list,
                                    parks,
                                    start,
                                    end,
                                    now,
                                } => run_list_range(tiles, list, parks, start, end, now),
                            }
                        }
                        latch.count_down();
                    }
                })
                .expect("spawn tile worker");
            senders.push(tx);
            handles.push(handle);
        }
        TilePool {
            senders,
            latch,
            handles,
        }
    }

    /// Builds a pool sized from the `HB_THREADS` environment variable
    /// (absent/unparsable → 1, i.e. an inline pool).
    pub fn from_env() -> TilePool {
        TilePool::new(threads_from_env())
    }

    /// Total worker count (spawned threads + the calling thread).
    pub fn threads(&self) -> usize {
        self.senders.len() + 1
    }

    /// Steps every `active` tile one cycle, sharded across the pool.
    ///
    /// Bit-identical to the sequential loop `for i { if active[i] {
    /// tiles[i].step(now) } }`: tiles share no mutable state during the
    /// step (see the module docs), so shard assignment and thread
    /// interleaving cannot affect any per-tile result.
    pub fn step_tiles(&self, tiles: &mut [Tile], active: &[bool], now: u64) {
        assert_eq!(tiles.len(), active.len());
        let shards = self.senders.len() + 1;
        let chunk = tiles.len().div_ceil(shards);
        if self.senders.is_empty() || chunk == 0 {
            for (t, &a) in tiles.iter_mut().zip(active) {
                if a {
                    t.step(now);
                }
            }
            return;
        }
        self.latch.reset(self.senders.len());
        let len = tiles.len();
        let base = tiles.as_mut_ptr();
        let act = active.as_ptr();
        for (w, tx) in self.senders.iter().enumerate() {
            let start = ((w + 1) * chunk).min(len);
            let end = ((w + 2) * chunk).min(len);
            tx.send(Shard::Dense {
                tiles: base,
                active: act,
                start,
                end,
                now,
            })
            .expect("tile worker alive");
        }
        // The calling thread takes the first shard, through the same raw
        // base pointer as the workers so no `&mut` to the full slice is
        // live while they hold their sub-slices.
        // SAFETY: [0, chunk) is disjoint from every worker shard.
        unsafe {
            run_dense_range(base, act, 0, chunk.min(len), now);
        }
        self.latch.wait();
    }

    /// Steps exactly the tiles named by `list` (the event scheduler's wake
    /// list), writing each tile's park hint to the matching position of
    /// `parks`, sharded across the pool by list position.
    ///
    /// Bit-identical to the inline loop for the same reason as
    /// [`step_tiles`](Self::step_tiles): wake-list entries are unique, so
    /// shards touch disjoint tiles and disjoint `parks` positions.
    ///
    /// # Panics
    ///
    /// Panics if `parks` is not the same length as `list`.
    pub(crate) fn step_list(&self, tiles: &mut [Tile], list: &[u32], parks: &mut [Park], now: u64) {
        assert_eq!(list.len(), parks.len());
        let shards = self.senders.len() + 1;
        let chunk = list.len().div_ceil(shards);
        if self.senders.is_empty() || chunk == 0 {
            for (pos, &i) in list.iter().enumerate() {
                let t = &mut tiles[i as usize];
                t.step(now);
                parks[pos] = t.park_hint(now);
            }
            return;
        }
        self.latch.reset(self.senders.len());
        let len = list.len();
        let base = tiles.as_mut_ptr();
        let lp = list.as_ptr();
        let pp = parks.as_mut_ptr();
        for (w, tx) in self.senders.iter().enumerate() {
            let start = ((w + 1) * chunk).min(len);
            let end = ((w + 2) * chunk).min(len);
            tx.send(Shard::List {
                tiles: base,
                list: lp,
                parks: pp,
                start,
                end,
                now,
            })
            .expect("tile worker alive");
        }
        // SAFETY: positions [0, chunk) are disjoint from every worker
        // shard, and list entries are unique tile indices.
        unsafe {
            run_list_range(base, lp, pp, 0, chunk.min(len), now);
        }
        self.latch.wait();
    }
}

/// Steps the active tiles of one dense shard.
///
/// # Safety
///
/// `[start, end)` must be in bounds for both allocations and disjoint from
/// every concurrently running shard; the backing borrows must outlive the
/// call (guaranteed by the pool's completion latch).
unsafe fn run_dense_range(
    tiles: *mut Tile,
    active: *const bool,
    start: usize,
    end: usize,
    now: u64,
) {
    let n = end - start;
    let tiles = std::slice::from_raw_parts_mut(tiles.add(start), n);
    let active = std::slice::from_raw_parts(active.add(start), n);
    for (t, &a) in tiles.iter_mut().zip(active) {
        if a {
            t.step(now);
        }
    }
}

/// Steps the wake-list tiles of one list shard and records park hints.
///
/// # Safety
///
/// As [`run_dense_range`], plus: `list[start..end]` must hold unique,
/// in-bounds tile indices (so tile access is disjoint across shards).
unsafe fn run_list_range(
    tiles: *mut Tile,
    list: *const u32,
    parks: *mut Park,
    start: usize,
    end: usize,
    now: u64,
) {
    for pos in start..end {
        let i = *list.add(pos) as usize;
        let t = &mut *tiles.add(i);
        t.step(now);
        *parks.add(pos) = t.park_hint(now);
    }
}

impl Drop for TilePool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's receive loop.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Parses `HB_THREADS` (total tile-phase workers; absent or invalid → 1).
pub fn threads_from_env() -> usize {
    std::env::var("HB_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// Parses `HB_EVENT_CORE` (event-driven tile scheduling; `0` disables it,
/// anything else or unset leaves it on).
pub fn event_core_from_env() -> bool {
    std::env::var("HB_EVENT_CORE").map_or(true, |v| v.trim() != "0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pool_is_inline() {
        let pool = TilePool::new(1);
        assert_eq!(pool.threads(), 1);
        // No tiles: must not deadlock or panic.
        pool.step_tiles(&mut [], &[], 1);
    }

    #[test]
    fn pool_with_more_threads_than_tiles() {
        // 8 workers, 0 tiles: every shard is empty; the latch must still
        // open.
        let pool = TilePool::new(8);
        assert_eq!(pool.threads(), 8);
        pool.step_tiles(&mut [], &[], 1);
        pool.step_tiles(&mut [], &[], 2);
    }

    #[test]
    fn env_parsing_defaults_to_one() {
        // Only checks the parser contract on the current environment: the
        // result is always at least 1.
        assert!(threads_from_env() >= 1);
    }

    #[test]
    fn phase_times_shares() {
        let t = PhaseTimes {
            tiles: Duration::from_millis(75),
            network: Duration::from_millis(25),
            ..PhaseTimes::default()
        };
        assert!((t.tile_share() - 0.75).abs() < 1e-9);
        assert_eq!(PhaseTimes::default().tile_share(), 0.0);
    }
}
