//! Tile area model (paper Figure 2, right side).
//!
//! The paper breaks one HB tile's area down by component and scales it to
//! the 3 nm node, concluding a tile occupies ~4496 um² so that **100K+
//! cores fit on a 600 mm² die**. This module encodes that breakdown and
//! the node-scaling arithmetic so the claim is checkable.

/// One component of the tile-area breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaComponent {
    /// Component label.
    pub name: &'static str,
    /// Area in um² at the 14/16 nm implementation node.
    pub um2_14nm: f64,
}

/// The HB tile breakdown at 14/16 nm (totaling the implied
/// ~37 900 um²/tile of the 2048-core, 77.5 mm²-scaled design).
/// Proportions follow the paper's Figure 2 inset: SRAMs dominate, the
/// Ruche-augmented router adds ~4% to the tile.
pub const TILE_BREAKDOWN_14NM: [AreaComponent; 7] = [
    AreaComponent {
        name: "scratchpad (4KB)",
        um2_14nm: 9_900.0,
    },
    AreaComponent {
        name: "icache (4KB+tags)",
        um2_14nm: 8_700.0,
    },
    AreaComponent {
        name: "fpu",
        um2_14nm: 6_400.0,
    },
    AreaComponent {
        name: "int core + regfile",
        um2_14nm: 6_100.0,
    },
    AreaComponent {
        name: "router (mesh part)",
        um2_14nm: 3_800.0,
    },
    AreaComponent {
        name: "router (ruche adders)",
        um2_14nm: 1_500.0,
    },
    AreaComponent {
        name: "network interface + scoreboard",
        um2_14nm: 1_400.0,
    },
];

/// Area scale factor from 14/16 nm to the 3 nm node (lithography scaling
/// database; the paper's Figure 2 uses the same source \[61\]).
pub const SCALE_14_TO_3NM: f64 = 8.4;

/// Total tile area at 14/16 nm in um².
pub fn tile_um2_14nm() -> f64 {
    TILE_BREAKDOWN_14NM.iter().map(|c| c.um2_14nm).sum()
}

/// Total tile area scaled to 3 nm in um² (the paper reports 4496 um²).
pub fn tile_um2_3nm() -> f64 {
    tile_um2_14nm() / SCALE_14_TO_3NM
}

/// Cores that fit on `die_mm2` at 3 nm, assuming the paper's ~80%
/// tile-array share of the die (the rest is cache strips and I/O).
pub fn cores_on_die_3nm(die_mm2: f64) -> u64 {
    (die_mm2 * 1e6 * 0.8 / tile_um2_3nm()) as u64
}

/// Fraction of the tile the Ruche network extension costs.
pub fn ruche_area_overhead() -> f64 {
    let ruche = TILE_BREAKDOWN_14NM
        .iter()
        .find(|c| c.name.contains("ruche"))
        .map_or(0.0, |c| c.um2_14nm);
    ruche / tile_um2_14nm()
}

/// Router area increase from Ruche links (the paper reports 40% more
/// router area, 4% more tile area).
pub fn ruche_router_overhead() -> f64 {
    let mesh = TILE_BREAKDOWN_14NM
        .iter()
        .find(|c| c.name.contains("mesh"))
        .map_or(0.0, |c| c.um2_14nm);
    let ruche = TILE_BREAKDOWN_14NM
        .iter()
        .find(|c| c.name.contains("ruche"))
        .map_or(0.0, |c| c.um2_14nm);
    ruche / mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_scales_to_papers_3nm_figure() {
        let t = tile_um2_3nm();
        assert!(
            (4000.0..5000.0).contains(&t),
            "3nm tile {t:.0} um2 should be ~4496 (paper Figure 2)"
        );
    }

    #[test]
    fn hundred_k_cores_fit_on_a_reticle() {
        // The paper: 100K+ cores on a 600 mm2 die at 3 nm.
        assert!(
            cores_on_die_3nm(600.0) > 100_000,
            "only {} cores fit",
            cores_on_die_3nm(600.0)
        );
    }

    #[test]
    fn ruche_costs_four_percent_of_tile() {
        let f = ruche_area_overhead();
        assert!(
            (0.03..0.05).contains(&f),
            "ruche tile overhead {f:.3} (paper: ~4%)"
        );
    }

    #[test]
    fn ruche_costs_forty_percent_of_router() {
        let f = ruche_router_overhead();
        assert!(
            (0.3..0.5).contains(&f),
            "ruche router overhead {f:.2} (paper: ~40%)"
        );
    }

    #[test]
    fn breakdown_is_sram_dominated() {
        // The density argument: memories are most of the tile, which is
        // why the paper right-sizes them at 4 KB.
        let srams: f64 = TILE_BREAKDOWN_14NM
            .iter()
            .filter(|c| c.name.contains("scratchpad") || c.name.contains("icache"))
            .map(|c| c.um2_14nm)
            .sum();
        assert!(srams / tile_um2_14nm() > 0.4);
    }
}
