//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Every figure and table in the paper's evaluation has a binary under
//! `src/bin/` (see `DESIGN.md` for the index). Binaries honor the
//! `HB_SCALE` environment variable:
//!
//! - `tiny` — smoke-test scale (debug-build friendly),
//! - `small` (default) — reduced Cell (8x4) and inputs; shapes hold,
//! - `full` — the paper's 16x8 Cell and larger inputs (slow; release
//!   builds only).

use hb_core::{CellDim, MachineConfig};
use hb_kernels::SizeClass;

pub mod jobs;
pub mod telemetry;
pub use jobs::{job_threads, point_config, run_ordered, run_ordered_results, JobPanic};
pub use telemetry::{run_instrumented, telemetry_out, telemetry_window};

/// Uniform command-line error handling for the harness binaries: malformed
/// arguments are one `error:` line + usage and exit 2; runtime failures
/// (unwritable `--out`, invalid configuration) are one `error:` line and
/// exit 1. Shared with the `hb-serve` CLI, which hosts the implementation.
pub use hb_serve::cli;

/// The benchmark scale selected by `HB_SCALE`.
pub fn scale() -> SizeClass {
    match std::env::var("HB_SCALE").as_deref() {
        Ok("tiny") => SizeClass::Tiny,
        Ok("full") => SizeClass::Large,
        _ => SizeClass::Small,
    }
}

/// The Cell shape used for figure runs at the current scale
/// (shape-preserving reduction of the paper's 16x8 baseline).
pub fn bench_cell() -> CellDim {
    match scale() {
        SizeClass::Tiny => CellDim { x: 4, y: 2 },
        SizeClass::Small => CellDim { x: 8, y: 4 },
        SizeClass::Large => CellDim { x: 16, y: 8 },
    }
}

/// The kernel input size for figure runs (one class below the machine
/// scale so debug runs stay tractable).
pub fn bench_size() -> SizeClass {
    match scale() {
        SizeClass::Tiny => SizeClass::Tiny,
        _ => SizeClass::Small,
    }
}

/// The fully-featured HB configuration at the current scale.
pub fn hb_config() -> MachineConfig {
    MachineConfig {
        cell_dim: bench_cell(),
        ..MachineConfig::baseline_16x8()
    }
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Prints a header row plus separator.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(
        &cells.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().map(|w| w + 2).sum();
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
