//! Cycle-windowed telemetry for the HammerBlade simulator.
//!
//! Every number the simulator reports elsewhere (`CellProfile`, the
//! Figure 11 taxonomy) is an end-of-run aggregate. This crate adds the
//! *time* axis: a [`Sampler`] attached to a machine (via
//! [`hb_core::Machine::attach_observer`] or the thread-local factory
//! behind [`attach`]) snapshots per-tile [`CoreStats`] deltas, per-router
//! NoC link counters and per-HBM-channel activity every `window` cycles
//! into an in-memory [`Telemetry`] store, together with instant events
//! (kernel-phase marks, barrier joins, fence retires, faults) captured by
//! the tiles themselves.
//!
//! The store then exports three ways:
//!
//! - [`chrome`]: Chrome trace-event JSON, loadable in Perfetto or
//!   `chrome://tracing` (1 trace µs = 1 core cycle);
//! - [`ndjson`]: newline-delimited JSON for ad-hoc scripting;
//! - [`heatmap`]: textual mesh heatmaps of tile utilization and router
//!   occupancy.
//!
//! Sampling is read-only and windowed, so it never perturbs simulated
//! results: runs are bit-identical with telemetry on or off, at any
//! window (`tests/telemetry_determinism.rs` in the workspace root pins
//! this down).
//!
//! # Example
//!
//! ```
//! use hb_core::{CellDim, Machine, MachineConfig};
//! use hb_obs::{Keep, Sampler, Telemetry};
//! use std::sync::{Arc, Mutex};
//!
//! let mut cfg = MachineConfig::baseline_16x8();
//! cfg.cell_dim = CellDim { x: 2, y: 2 };
//! let store = Arc::new(Mutex::new(Telemetry::default()));
//! let mut machine = Machine::new(cfg.clone());
//! machine.attach_observer(Box::new(Sampler::new(&cfg, 64, Keep::All, store.clone())));
//! for _ in 0..200 {
//!     machine.tick();
//! }
//! drop(machine); // flushes the final partial window
//! let t = store.lock().unwrap();
//! assert_eq!(t.samples.len(), 4); // 3 full windows + the tail
//! let json = hb_obs::chrome::to_string(&t);
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

pub mod chrome;
pub mod heatmap;
pub mod json;
pub mod ndjson;

use hb_core::observe::{MachineObserver, ObsEvent};
use hb_core::{CoreStats, Machine, MachineConfig, ObserverScope};
use hb_mem::Hbm2Stats;
use hb_noc::LinkStats;
use std::sync::{Arc, Mutex};

/// Shared handle to the in-memory time series; the caller keeps one side
/// while the machine (which owns the sampler) fills the other.
pub type SharedTelemetry = Arc<Mutex<Telemetry>>;

/// Window-delta counters of one Cell.
#[derive(Debug, Clone, Default)]
pub struct CellWindow {
    /// Per-tile [`CoreStats`] accumulated in this window, row-major.
    pub tiles: Vec<CoreStats>,
    /// Per-router request-network deltas (ports summed), row-major over
    /// the router grid.
    pub req_net: Vec<LinkStats>,
    /// Per-router response-network deltas.
    pub resp_net: Vec<LinkStats>,
    /// HBM2 channel activity in this window (memory-clock cycles).
    pub hbm: Hbm2Stats,
}

/// One sampling window: everything that happened in `(start, end]`.
#[derive(Debug, Clone, Default)]
pub struct WindowSample {
    /// Core cycle the window opened at (exclusive).
    pub start: u64,
    /// Core cycle the window closed at (inclusive).
    pub end: u64,
    /// Per-Cell deltas, indexed by Cell id.
    pub cells: Vec<CellWindow>,
}

impl WindowSample {
    /// Core cycles the window spans.
    pub fn span(&self) -> u64 {
        self.end - self.start
    }
}

/// The in-memory time-series store one instrumented run fills.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Nominal sampling window in core cycles (the tail sample may span
    /// less).
    pub window: u64,
    /// Tile grid of each Cell.
    pub dim: (u8, u8),
    /// Router grid of each Cell's networks (includes the two I/O rows).
    pub net_dim: (u8, u8),
    /// Number of Cells.
    pub num_cells: u8,
    /// Retained windows, oldest first.
    pub samples: Vec<WindowSample>,
    /// Instant events (marks, barrier joins, fence retires, faults),
    /// drained from the tiles each window; within one cycle, ordered by
    /// Cell then row-major tile.
    pub events: Vec<ObsEvent>,
    /// Last sampled machine cycle.
    pub final_cycle: u64,
    /// Windows evicted under [`Keep::Last`] retention.
    pub dropped: u64,
}

impl Telemetry {
    /// Tiles per Cell.
    pub fn tiles_per_cell(&self) -> usize {
        self.dim.0 as usize * self.dim.1 as usize
    }

    /// Sums the retained windows of one Cell into whole-run aggregates
    /// (per-tile core stats, per-router link stats, HBM). With
    /// [`Keep::All`] this equals the end-of-run counters; with bounded
    /// retention it covers only the surviving windows.
    pub fn aggregate(&self, cell: usize) -> CellWindow {
        let mut agg = CellWindow {
            tiles: vec![CoreStats::default(); self.tiles_per_cell()],
            req_net: vec![LinkStats::default(); self.net_dim.0 as usize * self.net_dim.1 as usize],
            resp_net: vec![LinkStats::default(); self.net_dim.0 as usize * self.net_dim.1 as usize],
            hbm: Hbm2Stats::default(),
        };
        for s in &self.samples {
            let Some(cw) = s.cells.get(cell) else {
                continue;
            };
            for (a, t) in agg.tiles.iter_mut().zip(&cw.tiles) {
                *a += *t;
            }
            for (a, l) in agg.req_net.iter_mut().zip(&cw.req_net) {
                *a = *a + *l;
            }
            for (a, l) in agg.resp_net.iter_mut().zip(&cw.resp_net) {
                *a = *a + *l;
            }
            agg.hbm = agg.hbm + cw.hbm;
        }
        agg
    }

    /// Total core cycles covered by the retained windows.
    pub fn covered_cycles(&self) -> u64 {
        self.samples.iter().map(WindowSample::span).sum()
    }
}

/// Window retention policy.
///
/// [`Keep::All`] stores every window — right for post-processing a whole
/// run. [`Keep::Last`] keeps a bounded ring of the most recent windows
/// (evictions are counted in [`Telemetry::dropped`]) — right for tiny
/// windows or very long runs, e.g. "what led up to the fault".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keep {
    /// Retain every window.
    All,
    /// Retain only the most recent `n` windows.
    Last(usize),
}

/// Previous cumulative counters of one Cell, diffed each window.
#[derive(Debug)]
struct PrevCell {
    tiles: Vec<CoreStats>,
    req: Vec<LinkStats>,
    resp: Vec<LinkStats>,
    hbm: Hbm2Stats,
}

/// The cycle-windowed sampling observer.
///
/// Driven by [`hb_core::Machine::tick`] at the end of each window: all
/// five BSP phases of every Cell plus the inter-Cell fabric have run, so
/// counters are quiescent and sampling composes with the `TilePool`
/// without locks. Each sample is a field-wise delta against the previous
/// cumulative snapshot, so the store holds true per-window activity.
#[derive(Debug)]
pub struct Sampler {
    window: u64,
    due: u64,
    last_end: u64,
    keep: Keep,
    prev: Vec<PrevCell>,
    store: SharedTelemetry,
}

impl Sampler {
    /// Builds a sampler for machines of shape `cfg`, firing every
    /// `window` cycles, writing into `store` (whose previous contents are
    /// reset).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(cfg: &MachineConfig, window: u64, keep: Keep, store: SharedTelemetry) -> Sampler {
        assert!(window > 0, "telemetry window must be positive");
        let tiles = cfg.cell_dim.x as usize * cfg.cell_dim.y as usize;
        let routers = cfg.net_width() as usize * cfg.net_height() as usize;
        let prev = (0..cfg.num_cells)
            .map(|_| PrevCell {
                tiles: vec![CoreStats::default(); tiles],
                req: vec![LinkStats::default(); routers],
                resp: vec![LinkStats::default(); routers],
                hbm: Hbm2Stats::default(),
            })
            .collect();
        {
            let mut t = store.lock().unwrap();
            *t = Telemetry {
                window,
                dim: (cfg.cell_dim.x, cfg.cell_dim.y),
                net_dim: (cfg.net_width(), cfg.net_height()),
                num_cells: cfg.num_cells,
                ..Telemetry::default()
            };
        }
        Sampler {
            window,
            due: window,
            last_end: 0,
            keep,
            prev,
            store,
        }
    }

    /// [`Sampler::new`] with the window taken from
    /// [`MachineConfig::telemetry_window`]; `None` if that knob is zero.
    pub fn from_config(cfg: &MachineConfig, keep: Keep, store: SharedTelemetry) -> Option<Sampler> {
        match cfg.telemetry_window {
            0 => None,
            w => Some(Sampler::new(cfg, w, keep, store)),
        }
    }

    fn take_sample(&mut self, machine: &mut Machine) {
        let end = machine.cycle();
        let mut cells = Vec::with_capacity(machine.num_cells());
        for ci in 0..machine.num_cells() {
            let cell = machine.cell(ci as u8);
            let prev = &mut self.prev[ci];
            let mut tiles = Vec::with_capacity(prev.tiles.len());
            let (w, h) = (cell.pgas().cell_w, cell.pgas().cell_h);
            for y in 0..h {
                for x in 0..w {
                    let idx = y as usize * w as usize + x as usize;
                    let cur = cell.tile_stats(x, y);
                    tiles.push(cur - prev.tiles[idx]);
                    prev.tiles[idx] = cur;
                }
            }
            let req_cum = cell.request_net_snapshot();
            let req_net = req_cum
                .iter()
                .zip(&prev.req)
                .map(|(c, p)| *c - *p)
                .collect();
            prev.req = req_cum;
            let resp_cum = cell.response_net_snapshot();
            let resp_net = resp_cum
                .iter()
                .zip(&prev.resp)
                .map(|(c, p)| *c - *p)
                .collect();
            prev.resp = resp_cum;
            let hbm_cum = *cell.hbm_stats();
            let hbm = hbm_cum.delta_since(&prev.hbm);
            prev.hbm = hbm_cum;
            cells.push(CellWindow {
                tiles,
                req_net,
                resp_net,
                hbm,
            });
        }
        let mut t = self.store.lock().unwrap();
        for ci in 0..machine.num_cells() {
            machine.cell_mut(ci as u8).drain_obs_events(&mut t.events);
        }
        t.samples.push(WindowSample {
            start: self.last_end,
            end,
            cells,
        });
        if let Keep::Last(n) = self.keep {
            if t.samples.len() > n {
                let excess = t.samples.len() - n;
                t.samples.drain(..excess);
                t.dropped += excess as u64;
            }
        }
        t.final_cycle = end;
        self.last_end = end;
    }
}

impl MachineObserver for Sampler {
    fn sample(&mut self, machine: &mut Machine) {
        self.take_sample(machine);
        self.due += self.window;
    }

    fn next_due(&self) -> u64 {
        self.due
    }

    fn finish(&mut self, machine: &mut Machine) {
        if machine.cycle() > self.last_end {
            self.take_sample(machine);
        }
    }

    /// Serializes the in-progress window (due cycle, last window boundary,
    /// and the previous cumulative counters the next delta diffs against)
    /// so a restored run closes its windows at the same cycles with the
    /// same contents as the uninterrupted one. The retention policy and
    /// the store itself are host-side and travel separately.
    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut w = hb_mem::SnapWriter::new();
        w.tag(b"SAMP");
        w.u64(self.window);
        w.u64(self.due);
        w.u64(self.last_end);
        w.usize(self.prev.len());
        for p in &self.prev {
            w.usize(p.tiles.len());
            for t in &p.tiles {
                t.snap_save(&mut w);
            }
            w.usize(p.req.len());
            for l in &p.req {
                l.snap_save(&mut w);
            }
            w.usize(p.resp.len());
            for l in &p.resp {
                l.snap_save(&mut w);
            }
            p.hbm.snap_save(&mut w);
        }
        Some(w.into_bytes())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), hb_mem::SnapError> {
        use hb_mem::SnapError;
        let mut r = hb_mem::SnapReader::new(bytes);
        r.expect_tag(b"SAMP", "Sampler section")?;
        let window = r.u64()?;
        if window != self.window {
            return Err(SnapError::Bad("Sampler window mismatch"));
        }
        let due = r.u64()?;
        let last_end = r.u64()?;
        if r.usize()? != self.prev.len() {
            return Err(SnapError::Bad("Sampler cell count mismatch"));
        }
        for p in &mut self.prev {
            if r.seq_len()? != p.tiles.len() {
                return Err(SnapError::Bad("Sampler tile count mismatch"));
            }
            for t in &mut p.tiles {
                *t = CoreStats::snap_load(&mut r)?;
            }
            if r.seq_len()? != p.req.len() {
                return Err(SnapError::Bad("Sampler router count mismatch"));
            }
            for l in &mut p.req {
                *l = LinkStats::snap_load(&mut r)?;
            }
            if r.seq_len()? != p.resp.len() {
                return Err(SnapError::Bad("Sampler router count mismatch"));
            }
            for l in &mut p.resp {
                *l = LinkStats::snap_load(&mut r)?;
            }
            p.hbm = Hbm2Stats::snap_load(&mut r)?;
        }
        r.finish()?;
        self.due = due;
        self.last_end = last_end;
        Ok(())
    }
}

/// Installs the thread-local observer factory and returns the scope guard
/// plus the shared store.
///
/// Every [`Machine::new`] on this thread whose config has
/// `telemetry_window > 0` then gets a [`Sampler`] attached automatically —
/// this is how telemetry reaches machines built deep inside benchmark
/// harnesses. The store is reset each time a machine attaches, so after
/// the run it holds the most recent instrumented machine's series. Drop
/// the scope to stop instrumenting.
pub fn attach(keep: Keep) -> (ObserverScope, SharedTelemetry) {
    let store: SharedTelemetry = Arc::new(Mutex::new(Telemetry::default()));
    let factory_store = store.clone();
    let scope = hb_core::set_observer_factory(move |cfg| {
        Sampler::from_config(cfg, keep, factory_store.clone())
            .map(|s| Box::new(s) as Box<dyn MachineObserver>)
    });
    (scope, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    fn tiny_cfg() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 2, y: 2 },
            threads: 1,
            ..MachineConfig::baseline_16x8()
        }
    }

    fn idle_run(window: u64, keep: Keep, cycles: u64) -> SharedTelemetry {
        let cfg = tiny_cfg();
        let store = Arc::new(Mutex::new(Telemetry::default()));
        let mut machine = Machine::new(cfg.clone());
        machine.attach_observer(Box::new(Sampler::new(&cfg, window, keep, store.clone())));
        for _ in 0..cycles {
            machine.tick();
        }
        drop(machine);
        store
    }

    #[test]
    fn windows_tile_the_run_exactly() {
        let store = idle_run(64, Keep::All, 200);
        let t = store.lock().unwrap();
        assert_eq!(t.samples.len(), 4);
        let spans: Vec<(u64, u64)> = t.samples.iter().map(|s| (s.start, s.end)).collect();
        assert_eq!(spans, vec![(0, 64), (64, 128), (128, 192), (192, 200)]);
        assert_eq!(t.covered_cycles(), 200);
        assert_eq!(t.final_cycle, 200);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.tiles_per_cell(), 4);
    }

    #[test]
    fn bounded_retention_keeps_the_newest_windows() {
        let store = idle_run(10, Keep::Last(3), 100);
        let t = store.lock().unwrap();
        assert_eq!(t.samples.len(), 3);
        assert_eq!(t.dropped, 7);
        assert_eq!(t.samples.last().unwrap().end, 100);
        assert_eq!(t.samples[0].start, 70);
    }

    #[test]
    fn idle_machine_has_empty_deltas() {
        let store = idle_run(50, Keep::All, 100);
        let t = store.lock().unwrap();
        for s in &t.samples {
            for cw in &s.cells {
                assert!(cw.tiles.iter().all(|st| st.total_cycles() == 0));
                assert!(cw.req_net.iter().all(|l| l.busy == 0 && l.flits == 0));
                assert_eq!(cw.hbm.reads + cw.hbm.writes, 0);
            }
        }
        assert!(t.events.is_empty());
        // Aggregation over empty windows is empty too.
        let agg = t.aggregate(0);
        assert!(agg.tiles.iter().all(|st| st.instrs == 0));
    }

    #[test]
    fn from_config_respects_the_knob() {
        let cfg = tiny_cfg();
        let store = Arc::new(Mutex::new(Telemetry::default()));
        assert!(Sampler::from_config(&cfg, Keep::All, store.clone()).is_none());
        let cfg_on = MachineConfig {
            telemetry_window: 128,
            ..cfg
        };
        let s = Sampler::from_config(&cfg_on, Keep::All, store.clone()).unwrap();
        assert_eq!(s.next_due(), 128);
        assert_eq!(store.lock().unwrap().window, 128);
    }
}
