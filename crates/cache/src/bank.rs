//! The cache bank: set-associative, non-blocking, write-validate.

use hb_isa::AmoOp;
use std::collections::VecDeque;

/// Geometry and policy of one cache bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (at most 64, power of two).
    pub line_bytes: u32,
    /// Right-shift applied to the line address before set indexing.
    /// The Cell sets this to `log2(num_banks)` so consecutive lines that
    /// stripe across banks index consecutive sets within a bank.
    pub bank_shift: u32,
    /// Hit pipeline latency in cycles.
    pub hit_latency: u64,
    /// Maximum outstanding primary misses (MSHR count).
    pub mshrs: usize,
    /// Maximum queued requests per MSHR (secondary misses).
    pub mshr_capacity: usize,
    /// Input queue depth (backpressure bound).
    pub input_depth: usize,
    /// Write-validate policy: write misses allocate without fetching.
    /// When `false`, write misses fetch the line first (write-allocate).
    pub write_validate: bool,
    /// When `true` the bank blocks on any outstanding miss (the pre-HB
    /// baseline); hits behind a miss stall.
    pub blocking: bool,
}

impl Default for CacheConfig {
    /// The paper's bank geometry: 64 sets, 8 ways, 64 B lines, 32 banks per
    /// Cell, non-blocking and write-validate.
    fn default() -> CacheConfig {
        CacheConfig {
            sets: 64,
            ways: 8,
            line_bytes: 64,
            bank_shift: 5,
            hit_latency: 2,
            mshrs: 8,
            mshr_capacity: 4,
            input_depth: 4,
            write_validate: true,
            blocking: false,
        }
    }
}

/// The kind of access a [`CacheRequest`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read `width` bytes.
    Load,
    /// Write `width` bytes of `data`.
    Store,
    /// Atomic read-modify-write on a 32-bit word; responds with the old
    /// value.
    Amo(AmoOp),
}

/// A word-granularity request from the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheRequest {
    /// Caller tag, echoed in the response.
    pub id: u64,
    /// Byte address (within the DRAM space this bank owns).
    pub addr: u32,
    /// Access kind.
    pub kind: AccessKind,
    /// Store/AMO operand (low `width` bytes significant).
    pub data: u32,
    /// Access width in bytes: 1, 2 or 4.
    pub width: u8,
}

/// Completion of a [`CacheRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheResponse {
    /// Tag from the request.
    pub id: u64,
    /// Loaded word (zero-extended), old value for AMOs, undefined for
    /// stores.
    pub data: u32,
}

/// A line-granularity request toward DRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineRequest {
    /// Line-aligned byte address.
    pub line_addr: u32,
    /// Fetch or writeback.
    pub kind: LineRequestKind,
}

/// Kind of [`LineRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineRequestKind {
    /// Read the line from DRAM (refill).
    Fetch,
    /// Write the line's valid bytes back to DRAM.
    Writeback {
        /// Line contents.
        data: Vec<u8>,
        /// Bit `i` set means byte `i` of `data` is valid and must be
        /// written.
        valid: u64,
    },
}

/// Event counters for one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests that hit (all requested bytes valid).
    pub hits: u64,
    /// Primary misses (MSHR allocated, fetch issued).
    pub misses: u64,
    /// Secondary misses (merged into an existing MSHR).
    pub secondary_misses: u64,
    /// Write misses satisfied by write-validate allocation (no fetch).
    pub write_validate_fills: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Requests rejected for backpressure (input queue full).
    pub rejected_input: u64,
    /// Requests stalled because every MSHR (or its capacity) was busy.
    pub rejected_mshr: u64,
    /// Atomic operations performed.
    pub amos: u64,
    /// Cycles with no request to process.
    pub idle_cycles: u64,
    /// Cycles stalled waiting on an outstanding miss (blocking mode).
    pub blocked_cycles: u64,
}

impl CacheStats {
    /// Miss rate over all completed primary lookups.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.write_validate_fills;
        if total == 0 {
            0.0
        } else {
            (self.misses + self.write_validate_fills) as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u32,
    data: Vec<u8>,
    /// Per-byte validity (write-validate leaves unwritten bytes invalid).
    valid: u64,
    /// Per-byte dirtiness.
    dirty: u64,
    /// Line has an MSHR fetch in flight; may not be evicted.
    pending: bool,
    /// LRU timestamp.
    last_use: u64,
}

#[derive(Debug)]
struct Mshr {
    line_addr: u32,
    waiting: Vec<CacheRequest>,
}

/// One non-blocking, write-validate cache bank. See the crate docs for the
/// policies; drive it with [`try_accept`](CacheBank::try_accept) /
/// [`tick`](CacheBank::tick) and service its DRAM side via
/// [`pop_mem_request`](CacheBank::pop_mem_request) /
/// [`complete_fetch`](CacheBank::complete_fetch).
#[derive(Debug)]
pub struct CacheBank {
    cfg: CacheConfig,
    /// `sets * ways` lines; way-major within a set.
    lines: Vec<Option<Line>>,
    mshrs: Vec<Mshr>,
    input: VecDeque<CacheRequest>,
    responses: VecDeque<(u64 /* ready_at */, CacheResponse)>,
    mem_requests: VecDeque<LineRequest>,
    cycle: u64,
    stats: CacheStats,
}

impl CacheBank {
    /// Creates a bank.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (zero sets/ways, line size not a
    /// power of two or above 64 bytes).
    pub fn new(cfg: CacheConfig) -> CacheBank {
        assert!(cfg.sets > 0 && cfg.ways > 0);
        assert!(cfg.line_bytes.is_power_of_two() && cfg.line_bytes <= 64);
        assert!(cfg.mshrs > 0 && cfg.mshr_capacity > 0 && cfg.input_depth > 0);
        CacheBank {
            lines: vec![None; cfg.sets * cfg.ways],
            mshrs: Vec::new(),
            input: VecDeque::new(),
            responses: VecDeque::new(),
            mem_requests: VecDeque::new(),
            cycle: 0,
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The bank configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Whether the input queue can take another request this cycle.
    pub fn can_accept(&self) -> bool {
        self.input.len() < self.cfg.input_depth
    }

    /// Offers a request to the bank; `false` means backpressure (count it
    /// and retry).
    pub fn try_accept(&mut self, req: CacheRequest) -> bool {
        debug_assert!(
            matches!(req.width, 1 | 2 | 4),
            "unsupported width {}",
            req.width
        );
        debug_assert_eq!(
            req.addr % u32::from(req.width),
            0,
            "misaligned access {:#x}/{}",
            req.addr,
            req.width
        );
        if !self.can_accept() {
            self.stats.rejected_input += 1;
            return false;
        }
        self.input.push_back(req);
        true
    }

    /// Pops a completed response whose latency has elapsed.
    pub fn pop_response(&mut self) -> Option<CacheResponse> {
        if let Some(&(ready, resp)) = self.responses.front() {
            if ready <= self.cycle {
                self.responses.pop_front();
                return Some(resp);
            }
        }
        None
    }

    /// Pops a line request destined for DRAM.
    pub fn pop_mem_request(&mut self) -> Option<LineRequest> {
        self.mem_requests.pop_front()
    }

    /// Outstanding primary misses.
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    /// Whether the bank holds no queued work (responses may still be
    /// draining).
    pub fn is_quiescent(&self) -> bool {
        self.input.is_empty() && self.mshrs.is_empty() && self.mem_requests.is_empty()
    }

    fn line_addr(&self, addr: u32) -> u32 {
        addr & !(self.cfg.line_bytes - 1)
    }

    fn set_index(&self, line_addr: u32) -> usize {
        let line = line_addr / self.cfg.line_bytes;
        ((line >> self.cfg.bank_shift) as usize) % self.cfg.sets
    }

    fn find_way(&self, line_addr: u32) -> Option<usize> {
        let set = self.set_index(line_addr);
        (0..self.cfg.ways).find(|&w| {
            self.lines[set * self.cfg.ways + w]
                .as_ref()
                .is_some_and(|l| l.tag == line_addr)
        })
    }

    fn byte_mask(addr: u32, width: u8, line_bytes: u32) -> u64 {
        let offset = addr & (line_bytes - 1);
        let mask = (1u64 << width) - 1;
        mask << offset
    }

    /// Completes a DRAM fetch: installs/merges the line and retires every
    /// request waiting in the line's MSHR.
    ///
    /// # Panics
    ///
    /// Panics if no MSHR is outstanding for `line_addr`.
    pub fn complete_fetch(&mut self, line_addr: u32, bytes: &[u8]) {
        assert_eq!(bytes.len() as u32, self.cfg.line_bytes);
        let mi = self
            .mshrs
            .iter()
            .position(|m| m.line_addr == line_addr)
            .expect("fetch completion without MSHR");
        let mshr = self.mshrs.swap_remove(mi);

        let way = self
            .find_way(line_addr)
            .expect("pending line evicted while fetch in flight");
        let set = self.set_index(line_addr);
        let slot = set * self.cfg.ways + way;
        {
            let line = self.lines[slot].as_mut().unwrap();
            // Merge: bytes already valid in the cache (written under
            // write-validate while the fetch was in flight) win over memory.
            for (i, &b) in bytes.iter().enumerate() {
                if line.valid & (1 << i) == 0 {
                    line.data[i] = b;
                }
            }
            line.valid = if self.cfg.line_bytes == 64 {
                u64::MAX
            } else {
                (1u64 << self.cfg.line_bytes) - 1
            };
            line.pending = false;
        }
        // Retire waiting requests in arrival order.
        for req in mshr.waiting {
            let resp = self.perform(slot, req);
            self.responses.push_back((self.cycle + 1, resp));
        }
    }

    /// Executes a request against an installed line; assumes all needed
    /// bytes are valid (or are being written).
    fn perform(&mut self, slot: usize, req: CacheRequest) -> CacheResponse {
        let line_bytes = self.cfg.line_bytes;
        let cycle = self.cycle;
        let line = self.lines[slot].as_mut().unwrap();
        line.last_use = cycle;
        let offset = (req.addr & (line_bytes - 1)) as usize;
        let read_word = |line: &Line, off: usize, width: usize| -> u32 {
            let mut v = 0u32;
            for i in (0..width).rev() {
                v = (v << 8) | u32::from(line.data[off + i]);
            }
            v
        };
        match req.kind {
            AccessKind::Load => {
                let data = read_word(line, offset, req.width as usize);
                CacheResponse { id: req.id, data }
            }
            AccessKind::Store => {
                for i in 0..req.width as usize {
                    line.data[offset + i] = (req.data >> (8 * i)) as u8;
                }
                let mask = Self::byte_mask(req.addr, req.width, line_bytes);
                line.valid |= mask;
                line.dirty |= mask;
                CacheResponse {
                    id: req.id,
                    data: 0,
                }
            }
            AccessKind::Amo(op) => {
                self.stats.amos += 1;
                let old = read_word(line, offset, 4);
                let new = op.apply(old, req.data);
                for i in 0..4 {
                    line.data[offset + i] = (new >> (8 * i)) as u8;
                }
                let mask = Self::byte_mask(req.addr, 4, line_bytes);
                line.valid |= mask;
                line.dirty |= mask;
                CacheResponse {
                    id: req.id,
                    data: old,
                }
            }
        }
    }

    /// Picks a victim way in `set`; evicts (with writeback if dirty) and
    /// returns the way, or `None` if every way is pending.
    fn allocate_way(&mut self, set: usize) -> Option<usize> {
        // Free way first.
        for w in 0..self.cfg.ways {
            if self.lines[set * self.cfg.ways + w].is_none() {
                return Some(w);
            }
        }
        // LRU among non-pending ways.
        let victim = (0..self.cfg.ways)
            .filter(|&w| {
                !self.lines[set * self.cfg.ways + w]
                    .as_ref()
                    .unwrap()
                    .pending
            })
            .min_by_key(|&w| {
                self.lines[set * self.cfg.ways + w]
                    .as_ref()
                    .unwrap()
                    .last_use
            })?;
        let line = self.lines[set * self.cfg.ways + victim].take().unwrap();
        self.stats.evictions += 1;
        if line.dirty != 0 {
            self.stats.writebacks += 1;
            self.mem_requests.push_back(LineRequest {
                line_addr: line.tag,
                kind: LineRequestKind::Writeback {
                    data: line.data,
                    valid: line.dirty,
                },
            });
        }
        Some(victim)
    }

    fn install_line(&mut self, set: usize, way: usize, line_addr: u32, pending: bool) {
        self.lines[set * self.cfg.ways + way] = Some(Line {
            tag: line_addr,
            data: vec![0; self.cfg.line_bytes as usize],
            valid: 0,
            dirty: 0,
            pending,
            last_use: self.cycle,
        });
    }

    /// Host/debug operation: invalidates every line, returning
    /// `(line_addr, data, dirty_mask)` for each dirty line so the caller
    /// can write the contents back to DRAM. Not timed; intended for
    /// post-run result readback.
    ///
    /// # Panics
    ///
    /// Panics if any miss is still outstanding (flush mid-run is invalid).
    pub fn flush_all(&mut self) -> Vec<(u32, Vec<u8>, u64)> {
        assert!(self.mshrs.is_empty(), "flush with outstanding misses");
        let mut dirty = Vec::new();
        for slot in &mut self.lines {
            if let Some(line) = slot.take() {
                if line.dirty != 0 {
                    dirty.push((line.tag, line.data, line.dirty));
                }
            }
        }
        dirty
    }

    /// Advances the bank one cycle: processes the front request, plus up
    /// to three more requests that fall in the *same cache line* (the SRAM
    /// reads a whole line per access, so compressed-load bursts complete
    /// together).
    pub fn tick(&mut self) {
        self.cycle += 1;

        if self.cfg.blocking && !self.mshrs.is_empty() {
            if !self.input.is_empty() {
                self.stats.blocked_cycles += 1;
            } else {
                self.stats.idle_cycles += 1;
            }
            return;
        }

        match self.process_front(false) {
            None => {}
            Some(line) => {
                for _ in 0..3 {
                    let same_line = self
                        .input
                        .front()
                        .is_some_and(|r| self.line_addr(r.addr) == line);
                    if !same_line || self.process_front(true).is_none() {
                        break;
                    }
                }
            }
        }
    }

    /// Tries to process the front input request; returns the line address
    /// on success. `quiet` suppresses stall accounting (used for burst
    /// continuation attempts).
    fn process_front(&mut self, quiet: bool) -> Option<u32> {
        let Some(&req) = self.input.front() else {
            if !quiet {
                self.stats.idle_cycles += 1;
            }
            return None;
        };

        let line_addr = self.line_addr(req.addr);
        let needed = Self::byte_mask(req.addr, req.width, self.cfg.line_bytes);

        // An MSHR already chasing this line: merge as a secondary miss so
        // ordering against the fetch is preserved.
        if let Some(mi) = self.mshrs.iter().position(|m| m.line_addr == line_addr) {
            if self.mshrs[mi].waiting.len() < self.cfg.mshr_capacity {
                let req = self.input.pop_front().unwrap();
                self.mshrs[mi].waiting.push(req);
                self.stats.secondary_misses += 1;
                return Some(line_addr);
            }
            if !quiet {
                self.stats.rejected_mshr += 1;
                self.stats.blocked_cycles += 1;
            }
            return None;
        }

        if let Some(way) = self.find_way(line_addr) {
            let set = self.set_index(line_addr);
            let slot = set * self.cfg.ways + way;
            let line = self.lines[slot].as_ref().unwrap();
            let is_store = matches!(req.kind, AccessKind::Store);
            if is_store || (line.valid & needed) == needed {
                // Hit (stores always hit an installed line: they validate).
                let req = self.input.pop_front().unwrap();
                self.stats.hits += 1;
                let resp = self.perform(slot, req);
                self.responses
                    .push_back((self.cycle + self.cfg.hit_latency, resp));
                return Some(line_addr);
            }
            // Present but requested bytes invalid (write-validate hole):
            // fetch and merge.
            if self.mshrs.len() >= self.cfg.mshrs {
                if !quiet {
                    self.stats.rejected_mshr += 1;
                    self.stats.blocked_cycles += 1;
                }
                return None;
            }
            let req = self.input.pop_front().unwrap();
            self.stats.misses += 1;
            self.lines[slot].as_mut().unwrap().pending = true;
            self.mshrs.push(Mshr {
                line_addr,
                waiting: vec![req],
            });
            self.mem_requests.push_back(LineRequest {
                line_addr,
                kind: LineRequestKind::Fetch,
            });
            return Some(line_addr);
        }

        // Full miss.
        let is_store = matches!(req.kind, AccessKind::Store);
        if is_store && self.cfg.write_validate {
            // Write-validate: allocate without fetching.
            let set = self.set_index(line_addr);
            let Some(way) = self.allocate_way(set) else {
                if !quiet {
                    self.stats.blocked_cycles += 1;
                }
                return None;
            };
            let req = self.input.pop_front().unwrap();
            self.install_line(set, way, line_addr, false);
            self.stats.write_validate_fills += 1;
            let slot = set * self.cfg.ways + way;
            let resp = self.perform(slot, req);
            self.responses
                .push_back((self.cycle + self.cfg.hit_latency, resp));
            return Some(line_addr);
        }

        // Fetch path (loads, AMOs, and stores without write-validate).
        if self.mshrs.len() >= self.cfg.mshrs {
            if !quiet {
                self.stats.rejected_mshr += 1;
                self.stats.blocked_cycles += 1;
            }
            return None;
        }
        let set = self.set_index(line_addr);
        let Some(way) = self.allocate_way(set) else {
            if !quiet {
                self.stats.blocked_cycles += 1;
            }
            return None;
        };
        let req = self.input.pop_front().unwrap();
        self.install_line(set, way, line_addr, true);
        self.stats.misses += 1;
        self.mshrs.push(Mshr {
            line_addr,
            waiting: vec![req],
        });
        self.mem_requests.push_back(LineRequest {
            line_addr,
            kind: LineRequestKind::Fetch,
        });
        Some(line_addr)
    }

    /// Serializes all dynamic bank state (lines, MSHRs, queues, counters).
    pub fn snap_save(&self, w: &mut hb_mem::SnapWriter) {
        w.tag(b"BANK");
        w.usize(self.lines.len());
        for slot in &self.lines {
            if w.opt(slot.is_some()) {
                let line = slot.as_ref().unwrap();
                w.u32(line.tag);
                w.bytes(&line.data);
                w.u64(line.valid);
                w.u64(line.dirty);
                w.bool(line.pending);
                w.u64(line.last_use);
            }
        }
        w.usize(self.mshrs.len());
        for m in &self.mshrs {
            w.u32(m.line_addr);
            w.usize(m.waiting.len());
            for req in &m.waiting {
                snap_save_request(w, req);
            }
        }
        w.usize(self.input.len());
        for req in &self.input {
            snap_save_request(w, req);
        }
        w.usize(self.responses.len());
        for &(ready_at, resp) in &self.responses {
            w.u64(ready_at);
            w.u64(resp.id);
            w.u32(resp.data);
        }
        w.usize(self.mem_requests.len());
        for mreq in &self.mem_requests {
            w.u32(mreq.line_addr);
            match &mreq.kind {
                LineRequestKind::Fetch => w.u8(0),
                LineRequestKind::Writeback { data, valid } => {
                    w.u8(1);
                    w.bytes(data);
                    w.u64(*valid);
                }
            }
        }
        w.u64(self.cycle);
        for v in [
            self.stats.hits,
            self.stats.misses,
            self.stats.secondary_misses,
            self.stats.write_validate_fills,
            self.stats.evictions,
            self.stats.writebacks,
            self.stats.rejected_input,
            self.stats.rejected_mshr,
            self.stats.amos,
            self.stats.idle_cycles,
            self.stats.blocked_cycles,
        ] {
            w.u64(v);
        }
    }

    /// Restores dynamic state into a freshly constructed bank of the same
    /// geometry.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation or a geometry mismatch.
    pub fn snap_load(&mut self, r: &mut hb_mem::SnapReader) -> Result<(), hb_mem::SnapError> {
        use hb_mem::SnapError;
        r.expect_tag(b"BANK", "CacheBank section")?;
        if r.usize()? != self.lines.len() {
            return Err(SnapError::Bad("CacheBank line count mismatch"));
        }
        let line_bytes = self.cfg.line_bytes as usize;
        for slot in &mut self.lines {
            *slot = if r.opt()? {
                let tag = r.u32()?;
                let data = r.bytes()?;
                if data.len() != line_bytes {
                    return Err(SnapError::Bad("CacheBank line size mismatch"));
                }
                Some(Line {
                    tag,
                    data,
                    valid: r.u64()?,
                    dirty: r.u64()?,
                    pending: r.bool()?,
                    last_use: r.u64()?,
                })
            } else {
                None
            };
        }
        self.mshrs.clear();
        for _ in 0..r.seq_len()? {
            let line_addr = r.u32()?;
            let nwait = r.seq_len()?;
            let mut waiting = Vec::with_capacity(nwait);
            for _ in 0..nwait {
                waiting.push(snap_load_request(r)?);
            }
            self.mshrs.push(Mshr { line_addr, waiting });
        }
        self.input.clear();
        for _ in 0..r.seq_len()? {
            self.input.push_back(snap_load_request(r)?);
        }
        self.responses.clear();
        for _ in 0..r.seq_len()? {
            let ready_at = r.u64()?;
            self.responses.push_back((
                ready_at,
                CacheResponse {
                    id: r.u64()?,
                    data: r.u32()?,
                },
            ));
        }
        self.mem_requests.clear();
        for _ in 0..r.seq_len()? {
            let line_addr = r.u32()?;
            let kind = match r.u8()? {
                0 => LineRequestKind::Fetch,
                1 => {
                    let data = r.bytes()?;
                    if data.len() != line_bytes {
                        return Err(SnapError::Bad("CacheBank writeback size mismatch"));
                    }
                    LineRequestKind::Writeback {
                        data,
                        valid: r.u64()?,
                    }
                }
                _ => return Err(SnapError::Bad("CacheBank line-request kind out of range")),
            };
            self.mem_requests.push_back(LineRequest { line_addr, kind });
        }
        self.cycle = r.u64()?;
        self.stats = CacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
            secondary_misses: r.u64()?,
            write_validate_fills: r.u64()?,
            evictions: r.u64()?,
            writebacks: r.u64()?,
            rejected_input: r.u64()?,
            rejected_mshr: r.u64()?,
            amos: r.u64()?,
            idle_cycles: r.u64()?,
            blocked_cycles: r.u64()?,
        };
        Ok(())
    }
}

/// All nine RISC-V AMO ops in declaration order, for tag encoding.
const AMO_OPS: [AmoOp; 9] = [
    AmoOp::Swap,
    AmoOp::Add,
    AmoOp::Xor,
    AmoOp::And,
    AmoOp::Or,
    AmoOp::Min,
    AmoOp::Max,
    AmoOp::Minu,
    AmoOp::Maxu,
];

/// Encodes a [`CacheRequest`] (shared by the bank and the Cell's BankNode
/// expansion queues).
pub fn snap_save_request(w: &mut hb_mem::SnapWriter, req: &CacheRequest) {
    w.u64(req.id);
    w.u32(req.addr);
    match req.kind {
        AccessKind::Load => w.u8(0),
        AccessKind::Store => w.u8(1),
        AccessKind::Amo(op) => w.u8(2 + AMO_OPS.iter().position(|&o| o == op).unwrap() as u8),
    }
    w.u32(req.data);
    w.u8(req.width);
}

/// Decodes a [`CacheRequest`].
///
/// # Errors
///
/// [`hb_mem::SnapError`] on truncation or an out-of-range kind tag.
pub fn snap_load_request(r: &mut hb_mem::SnapReader) -> Result<CacheRequest, hb_mem::SnapError> {
    let id = r.u64()?;
    let addr = r.u32()?;
    let kind = match r.u8()? {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        t if (t as usize) < 2 + AMO_OPS.len() => AccessKind::Amo(AMO_OPS[t as usize - 2]),
        _ => return Err(hb_mem::SnapError::Bad("CacheRequest kind out of range")),
    };
    Ok(CacheRequest {
        id,
        addr,
        kind,
        data: r.u32()?,
        width: r.u8()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(id: u64, addr: u32) -> CacheRequest {
        CacheRequest {
            id,
            addr,
            kind: AccessKind::Load,
            data: 0,
            width: 4,
        }
    }

    fn store(id: u64, addr: u32, data: u32) -> CacheRequest {
        CacheRequest {
            id,
            addr,
            kind: AccessKind::Store,
            data,
            width: 4,
        }
    }

    /// Drives the bank with a perfect zero-latency memory behind it.
    fn run_with_memory(
        bank: &mut CacheBank,
        backing: &mut [u8],
        cycles: u64,
    ) -> Vec<CacheResponse> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            bank.tick();
            while let Some(mreq) = bank.pop_mem_request() {
                match mreq.kind {
                    LineRequestKind::Fetch => {
                        let a = mreq.line_addr as usize;
                        let line = backing[a..a + 64].to_vec();
                        bank.complete_fetch(mreq.line_addr, &line);
                    }
                    LineRequestKind::Writeback { data, valid } => {
                        let a = mreq.line_addr as usize;
                        for i in 0..64 {
                            if valid & (1 << i) != 0 {
                                backing[a + i] = data[i];
                            }
                        }
                    }
                }
            }
            while let Some(r) = bank.pop_response() {
                out.push(r);
            }
        }
        out
    }

    #[test]
    fn read_miss_fetches_and_returns_memory_data() {
        let mut bank = CacheBank::new(CacheConfig::default());
        let mut mem = vec![0u8; 4096];
        mem[0x100..0x104].copy_from_slice(&0xabcd_1234u32.to_le_bytes());
        assert!(bank.try_accept(load(1, 0x100)));
        let rs = run_with_memory(&mut bank, &mut mem, 20);
        assert_eq!(
            rs,
            vec![CacheResponse {
                id: 1,
                data: 0xabcd_1234
            }]
        );
        assert_eq!(bank.stats().misses, 1);
    }

    #[test]
    fn second_read_hits() {
        let mut bank = CacheBank::new(CacheConfig::default());
        let mut mem = vec![0u8; 4096];
        bank.try_accept(load(1, 0x100));
        run_with_memory(&mut bank, &mut mem, 20);
        bank.try_accept(load(2, 0x104)); // same line
        run_with_memory(&mut bank, &mut mem, 20);
        assert_eq!(bank.stats().hits, 1);
        assert_eq!(bank.stats().misses, 1);
    }

    #[test]
    fn write_validate_store_miss_generates_no_fetch() {
        let mut bank = CacheBank::new(CacheConfig::default());
        bank.try_accept(store(1, 0x200, 7));
        bank.tick();
        assert!(
            bank.pop_mem_request().is_none(),
            "write-validate must not fetch"
        );
        assert_eq!(bank.stats().write_validate_fills, 1);
    }

    #[test]
    fn write_allocate_store_miss_fetches() {
        let cfg = CacheConfig {
            write_validate: false,
            ..CacheConfig::default()
        };
        let mut bank = CacheBank::new(cfg);
        bank.try_accept(store(1, 0x200, 7));
        bank.tick();
        assert!(matches!(
            bank.pop_mem_request(),
            Some(LineRequest {
                kind: LineRequestKind::Fetch,
                ..
            })
        ));
    }

    #[test]
    fn write_validate_hole_read_fetches_and_merges() {
        let mut bank = CacheBank::new(CacheConfig::default());
        let mut mem = vec![0u8; 4096];
        mem[0x204..0x208].copy_from_slice(&99u32.to_le_bytes());
        // Store word 0 of line 0x200 (no fetch), then load word 1.
        bank.try_accept(store(1, 0x200, 0x5555));
        run_with_memory(&mut bank, &mut mem, 10);
        bank.try_accept(load(2, 0x204));
        let rs = run_with_memory(&mut bank, &mut mem, 20);
        assert_eq!(rs, vec![CacheResponse { id: 2, data: 99 }]);
        // And the stored word is still there.
        bank.try_accept(load(3, 0x200));
        let rs = run_with_memory(&mut bank, &mut mem, 20);
        assert_eq!(
            rs,
            vec![CacheResponse {
                id: 3,
                data: 0x5555
            }]
        );
    }

    #[test]
    fn eviction_writes_back_only_dirty_bytes() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            ..CacheConfig::default()
        };
        let mut bank = CacheBank::new(cfg);
        let mut mem = vec![0u8; 1 << 20];
        // Prefill memory under the line we'll partially overwrite.
        mem[0x0..0x4].copy_from_slice(&111u32.to_le_bytes());
        mem[0x4..0x8].copy_from_slice(&222u32.to_le_bytes());
        // Store only word 1 of line 0 (write-validate, no fetch).
        bank.try_accept(store(1, 0x4, 999));
        run_with_memory(&mut bank, &mut mem, 10);
        // Touch a conflicting line to force eviction (same set: sets=1).
        bank.try_accept(load(2, 0x4000));
        run_with_memory(&mut bank, &mut mem, 30);
        // Word 0 must be untouched, word 1 updated.
        assert_eq!(u32::from_le_bytes(mem[0..4].try_into().unwrap()), 111);
        assert_eq!(u32::from_le_bytes(mem[4..8].try_into().unwrap()), 999);
        assert_eq!(bank.stats().writebacks, 1);
    }

    #[test]
    fn secondary_miss_merges_into_mshr() {
        let mut bank = CacheBank::new(CacheConfig::default());
        bank.try_accept(load(1, 0x300));
        bank.try_accept(load(2, 0x304)); // same line, while fetch pending
        bank.tick();
        bank.tick();
        assert_eq!(bank.stats().misses, 1);
        assert_eq!(bank.stats().secondary_misses, 1);
        // Only one fetch goes to memory.
        assert!(bank.pop_mem_request().is_some());
        assert!(bank.pop_mem_request().is_none());
        // Completion retires both.
        bank.complete_fetch(0x300, &[0u8; 64]);
        bank.tick();
        let mut got = Vec::new();
        while let Some(r) = bank.pop_response() {
            got.push(r.id);
        }
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn nonblocking_hits_proceed_under_miss() {
        let mut bank = CacheBank::new(CacheConfig::default());
        let mut mem = vec![0u8; 4096];
        // Warm a line.
        bank.try_accept(load(1, 0x100));
        run_with_memory(&mut bank, &mut mem, 20);
        // Outstanding miss (memory never answers)...
        bank.try_accept(load(2, 0x800));
        bank.tick();
        let _ = bank.pop_mem_request();
        // ...then a hit to the warm line: must complete while miss pending.
        bank.try_accept(load(3, 0x104));
        let mut hit_done = false;
        for _ in 0..10 {
            bank.tick();
            if let Some(r) = bank.pop_response() {
                assert_eq!(r.id, 3);
                hit_done = true;
            }
        }
        assert!(hit_done, "hit must proceed under an outstanding miss");
    }

    #[test]
    fn blocking_mode_stalls_hits_behind_miss() {
        let cfg = CacheConfig {
            blocking: true,
            ..CacheConfig::default()
        };
        let mut bank = CacheBank::new(cfg);
        let mut mem = vec![0u8; 4096];
        bank.try_accept(load(1, 0x100));
        run_with_memory(&mut bank, &mut mem, 20);
        bank.try_accept(load(2, 0x800));
        bank.tick();
        let _ = bank.pop_mem_request(); // swallow the fetch; miss stays outstanding
        bank.try_accept(load(3, 0x104));
        for _ in 0..10 {
            bank.tick();
        }
        assert!(
            bank.pop_response().is_none(),
            "blocking bank must stall the hit"
        );
        assert!(bank.stats().blocked_cycles > 0);
    }

    #[test]
    fn amo_returns_old_value_and_applies_op() {
        let mut bank = CacheBank::new(CacheConfig::default());
        let mut mem = vec![0u8; 4096];
        mem[0x40..0x44].copy_from_slice(&10u32.to_le_bytes());
        bank.try_accept(CacheRequest {
            id: 1,
            addr: 0x40,
            kind: AccessKind::Amo(AmoOp::Add),
            data: 5,
            width: 4,
        });
        let rs = run_with_memory(&mut bank, &mut mem, 20);
        assert_eq!(rs, vec![CacheResponse { id: 1, data: 10 }]);
        bank.try_accept(load(2, 0x40));
        let rs = run_with_memory(&mut bank, &mut mem, 20);
        assert_eq!(rs[0].data, 15);
        assert_eq!(bank.stats().amos, 1);
    }

    #[test]
    fn mshr_exhaustion_backpressures() {
        let cfg = CacheConfig {
            mshrs: 2,
            ..CacheConfig::default()
        };
        let mut bank = CacheBank::new(cfg);
        // Three distinct-line misses; memory never answers.
        bank.try_accept(load(1, 0x1000));
        bank.try_accept(load(2, 0x2000));
        bank.try_accept(load(3, 0x3000));
        for _ in 0..10 {
            bank.tick();
        }
        assert_eq!(bank.outstanding_misses(), 2);
        assert!(bank.stats().rejected_mshr > 0);
    }

    #[test]
    fn input_queue_backpressures() {
        let cfg = CacheConfig {
            input_depth: 2,
            ..CacheConfig::default()
        };
        let mut bank = CacheBank::new(cfg);
        assert!(bank.try_accept(load(1, 0x0)));
        assert!(bank.try_accept(load(2, 0x40)));
        assert!(!bank.try_accept(load(3, 0x80)));
        assert_eq!(bank.stats().rejected_input, 1);
    }

    #[test]
    fn byte_and_halfword_accesses() {
        let mut bank = CacheBank::new(CacheConfig::default());
        let mut mem = vec![0u8; 4096];
        bank.try_accept(CacheRequest {
            id: 1,
            addr: 0x10,
            kind: AccessKind::Store,
            data: 0xab,
            width: 1,
        });
        bank.try_accept(CacheRequest {
            id: 2,
            addr: 0x12,
            kind: AccessKind::Store,
            data: 0xbeef,
            width: 2,
        });
        run_with_memory(&mut bank, &mut mem, 10);
        bank.try_accept(CacheRequest {
            id: 3,
            addr: 0x10,
            kind: AccessKind::Load,
            data: 0,
            width: 1,
        });
        bank.try_accept(CacheRequest {
            id: 4,
            addr: 0x12,
            kind: AccessKind::Load,
            data: 0,
            width: 2,
        });
        let rs = run_with_memory(&mut bank, &mut mem, 10);
        assert_eq!(rs[0].data, 0xab);
        assert_eq!(rs[1].data, 0xbeef);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            ..CacheConfig::default()
        };
        let mut bank = CacheBank::new(cfg);
        let mut mem = vec![0u8; 1 << 20];
        bank.try_accept(load(1, 0x0)); // way A
        run_with_memory(&mut bank, &mut mem, 20);
        bank.try_accept(load(2, 0x4000)); // way B
        run_with_memory(&mut bank, &mut mem, 20);
        bank.try_accept(load(3, 0x0)); // touch A (now most recent)
        run_with_memory(&mut bank, &mut mem, 20);
        bank.try_accept(load(4, 0x8000)); // must evict B
        run_with_memory(&mut bank, &mut mem, 20);
        bank.try_accept(load(5, 0x0)); // A should still be resident: hit
        run_with_memory(&mut bank, &mut mem, 20);
        assert_eq!(bank.stats().hits, 2); // loads 3 and 5
    }
}
