//! Multi-Cell scaling estimator, replicating the paper's own methodology:
//! "a multi-Cell simulation has been modeled by using multiple single-Cell
//! simulations running in parallel and conservatively estimated data
//! transfer time between program phases based on data transfer size and
//! network bandwidth" (§V.A).

use crate::config::MachineConfig;

/// One program phase of a multi-Cell run: per-Cell execution cycles plus
/// the bytes each Cell exchanges with other Cells before the next phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Longest single-Cell execution time for the phase (cycles).
    pub exec_cycles: u64,
    /// Bytes transferred across the Cell boundary between phases.
    pub transfer_bytes: u64,
}

/// Estimates the total run time of a multi-Cell execution from per-phase
/// single-Cell results.
#[derive(Debug, Clone, Copy)]
pub struct MultiCellEstimator {
    /// Words per cycle the Cell boundary sustains.
    pub boundary_words_per_cycle: f64,
    /// Achievable utilization of those links (the paper measures 80-90%
    /// for sparse transfers on the uniform word network, Figure 3).
    pub efficiency: f64,
}

impl MultiCellEstimator {
    /// Builds an estimator from a machine configuration: boundary bandwidth
    /// equals the vertical-cut link count of the (half-)Ruche network.
    pub fn from_config(cfg: &MachineConfig) -> MultiCellEstimator {
        let per_row = if cfg.ruche_factor > 0 {
            1.0 + f64::from(cfg.ruche_factor)
        } else {
            1.0
        };
        MultiCellEstimator {
            boundary_words_per_cycle: per_row * f64::from(cfg.cell_dim.y),
            efficiency: 0.85,
        }
    }

    /// Conservative transfer-time estimate for `bytes` crossing the
    /// boundary.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        let words = (bytes as f64) / 4.0;
        (words / (self.boundary_words_per_cycle * self.efficiency)).ceil() as u64
    }

    /// Total estimated cycles across phases (execution + inter-phase
    /// transfers).
    pub fn total_cycles(&self, phases: &[Phase]) -> u64 {
        phases
            .iter()
            .map(|p| p.exec_cycles + self.transfer_cycles(p.transfer_bytes))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ruche_boundary_is_faster() {
        let ruche = MultiCellEstimator::from_config(&MachineConfig::baseline_16x8());
        let mesh = MultiCellEstimator::from_config(&MachineConfig {
            ruche_factor: 0,
            ..MachineConfig::baseline_16x8()
        });
        let bytes = 1 << 20;
        assert!(ruche.transfer_cycles(bytes) < mesh.transfer_cycles(bytes));
        // Ruche-3 has 4x the boundary links.
        let ratio = mesh.transfer_cycles(bytes) as f64 / ruche.transfer_cycles(bytes) as f64;
        assert!((3.5..=4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn phases_accumulate() {
        let est = MultiCellEstimator {
            boundary_words_per_cycle: 32.0,
            efficiency: 1.0,
        };
        let phases = [
            Phase {
                exec_cycles: 1000,
                transfer_bytes: 128,
            },
            Phase {
                exec_cycles: 2000,
                transfer_bytes: 0,
            },
        ];
        assert_eq!(est.total_cycles(&phases), 1000 + 1 + 2000);
    }

    #[test]
    fn zero_bytes_zero_cycles() {
        let est = MultiCellEstimator::from_config(&MachineConfig::baseline_16x8());
        assert_eq!(est.transfer_cycles(0), 0);
    }
}
