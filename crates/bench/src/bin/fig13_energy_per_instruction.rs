//! Figure 13: "Energy per Instruction" — HammerBlade's component
//! breakdown vs OpenPiton (McKeown et al., HPCA 2018) normalized to the
//! same process corner with CV² scaling.

use hb_bench::{header, row};
use hb_energy::{efficiency_ratio, hammerblade_epi, piton_epi_raw, piton_epi_scaled, InstrClass};

fn main() {
    println!("Figure 13 — Energy per Instruction (pJ), HB 14/16nm vs OpenPiton (CV2-scaled)\n");
    let widths = [9usize, 26, 9, 12, 12, 7];
    header(
        &[
            "class",
            "HB breakdown (pJ)",
            "HB total",
            "Piton 32nm",
            "Piton scaled",
            "ratio",
        ],
        &widths,
    );
    let mut ratios = Vec::new();
    for class in InstrClass::ALL {
        let hb = hammerblade_epi(class);
        let parts = hb
            .components
            .iter()
            .map(|c| format!("{}:{:.1}", c.name, c.pj))
            .collect::<Vec<_>>()
            .join(" ");
        let ratio = efficiency_ratio(class);
        ratios.push(ratio);
        row(
            &[
                class.to_string(),
                parts,
                format!("{:.1}", hb.total()),
                format!("{:.0}", piton_epi_raw(class)),
                format!("{:.1}", piton_epi_scaled(class)),
                format!("{ratio:.1}x"),
            ],
            &widths,
        );
    }
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nmeasured efficiency span: {min:.1}x - {max:.1}x   (paper: 3.6x - 15.1x)\n\
         drivers: 4 KB icache fetch energy, scratchpad instead of L1/L1.5\n\
         caches, and short in-tile wires (0.2 pF/mm process-independent wire cap\n\
         favors HB's 16.6x smaller tiles)."
    );
}
