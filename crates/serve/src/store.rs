//! Content-addressed results store with an append-only journal.
//!
//! Layout under the store root:
//!
//! ```text
//! store/
//!   objects/<h[0..2]>/<h>.json    one JSON line per completed job (h = JobSpec hash)
//!   ckpt/<h>.ckpt                 mid-job / warm-start machine checkpoints
//!   journal.ndjson                append-only completion log
//! ```
//!
//! Object writes are atomic (`.tmp` + rename), so a killed campaign leaves
//! either a complete object or none; the journal line is appended *after*
//! the rename. Journal recovery ignores a truncated last line (the classic
//! kill-during-append artifact), so resume never trips over a partial
//! record. Cache-hit decisions use the objects (existence + successful
//! parse); the journal feeds `status`, retry accounting and `gc`.
//!
//! Durability contract: `rename(2)` alone only orders the swap against
//! other operations on a live filesystem — the *directory entry* is not
//! durable until the parent directory itself is fsynced. Every rename in
//! this module is therefore followed by [`sync_dir`] on the parent, so a
//! power cut after `put` returns cannot resurrect the pre-rename state.

use crate::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One completed job's stored result: everything the aggregation layer
/// needs, flat and append-friendly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobRecord {
    /// Content hash of the [`crate::JobSpec`] that produced this.
    pub hash: String,
    /// Job kind token (`golden`/`fault`/`ablation:<size>`).
    pub kind: String,
    /// Kernel name.
    pub kernel: String,
    /// Job seed.
    pub seed: u64,
    /// Outcome: `ok` (golden/ablation), or `masked`/`sdc`/`detected`/`hang`.
    pub outcome: String,
    /// Injected site-kind label (`regfile`, `spm`, ...); empty when none.
    pub site: String,
    /// Injection cycle; 0 when none.
    pub inj_cycle: u64,
    /// Simulated cycles (golden/ablation: run length; fault: observed
    /// cycles, 0 for hangs).
    pub cycles: u64,
    /// Retired instructions.
    pub instrs: u64,
    /// FNV-1a digest of the final DRAM image, as `0x`-hex.
    pub dram_digest: u64,
    /// Cross-checks the run passed (comma-joined, e.g.
    /// `empty-plan-identity,iss-anchor`).
    pub checks: String,
    /// Transient-failure retries consumed before success.
    pub retries: u32,
    /// Paths of side artifacts (telemetry traces); relative to the store
    /// root, comma-joined. Empty when none.
    pub artifacts: String,
    /// Hot basic-block table of `profile:<size>` jobs, in
    /// `hb_prof::compact_top` form (`pc:retired:stalls:share_bp` rows
    /// joined by `;`). Empty for every other kind.
    pub profile: String,
}

impl JobRecord {
    /// Serializes as a single JSON object line.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"hash\":{},\"kind\":{},\"kernel\":{},\"seed\":{},\"outcome\":{},\
             \"site\":{},\"inj_cycle\":{},\"cycles\":{},\"instrs\":{},\
             \"dram_digest\":{},\"checks\":{},\"retries\":{},\"artifacts\":{},\
             \"profile\":{}}}",
            json::quote(&self.hash),
            json::quote(&self.kind),
            json::quote(&self.kernel),
            self.seed,
            json::quote(&self.outcome),
            json::quote(&self.site),
            self.inj_cycle,
            self.cycles,
            self.instrs,
            json::quote(&format!("{:#018x}", self.dram_digest)),
            json::quote(&self.checks),
            self.retries,
            json::quote(&self.artifacts),
            json::quote(&self.profile),
        )
    }

    /// Parses a [`JobRecord::to_json_line`] object.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or missing/mistyped fields.
    pub fn from_json_line(line: &str) -> Result<JobRecord, String> {
        let map = json::parse_object(line)?;
        fn str_field(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<String, String> {
            match map.get(key) {
                Some(JsonValue::Str(s)) => Ok(s.clone()),
                Some(_) => Err(format!("field {key:?} is not a string")),
                None => Err(format!("missing field {key:?}")),
            }
        }
        fn num_field(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<u64, String> {
            match map.get(key) {
                Some(JsonValue::Num(n)) => Ok(*n),
                Some(_) => Err(format!("field {key:?} is not a number")),
                None => Err(format!("missing field {key:?}")),
            }
        }
        let digest_hex = str_field(&map, "dram_digest")?;
        let digest = digest_hex
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("bad dram_digest {digest_hex:?}"))?;
        Ok(JobRecord {
            hash: str_field(&map, "hash")?,
            kind: str_field(&map, "kind")?,
            kernel: str_field(&map, "kernel")?,
            seed: num_field(&map, "seed")?,
            outcome: str_field(&map, "outcome")?,
            site: str_field(&map, "site")?,
            inj_cycle: num_field(&map, "inj_cycle")?,
            cycles: num_field(&map, "cycles")?,
            instrs: num_field(&map, "instrs")?,
            dram_digest: digest,
            checks: str_field(&map, "checks")?,
            retries: num_field(&map, "retries")? as u32,
            artifacts: str_field(&map, "artifacts")?,
            profile: str_field(&map, "profile")?,
        })
    }
}

/// One journal line: the completion (or terminal failure) of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Job hash.
    pub hash: String,
    /// `done` (object stored) or `failed` (terminal failure; no object, a
    /// later run will retry the job).
    pub status: String,
    /// Outcome or error summary.
    pub detail: String,
    /// Retries consumed.
    pub retries: u32,
}

impl JournalEntry {
    fn to_json_line(&self) -> String {
        format!(
            "{{\"hash\":{},\"status\":{},\"detail\":{},\"retries\":{}}}",
            json::quote(&self.hash),
            json::quote(&self.status),
            json::quote(&self.detail),
            self.retries,
        )
    }

    fn from_json_line(line: &str) -> Result<JournalEntry, String> {
        let map = json::parse_object(line)?;
        let get_str = |key: &str| -> Result<String, String> {
            match map.get(key) {
                Some(JsonValue::Str(s)) => Ok(s.clone()),
                _ => Err(format!("missing/mistyped {key:?}")),
            }
        };
        let retries = match map.get("retries") {
            Some(JsonValue::Num(n)) => *n as u32,
            _ => return Err("missing/mistyped \"retries\"".to_owned()),
        };
        Ok(JournalEntry {
            hash: get_str("hash")?,
            status: get_str("status")?,
            detail: get_str("detail")?,
            retries,
        })
    }
}

/// Fsyncs a directory so a preceding `rename`/`create` in it is durable.
///
/// File data made durable with `File::sync_all` can still vanish on power
/// loss if the directory entry pointing at it was never flushed; POSIX
/// only guarantees the entry's durability once the directory itself is
/// synced. Called after every rename below.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Statistics from a [`Store::gc`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Objects kept (referenced by a live manifest).
    pub kept: usize,
    /// Objects deleted.
    pub deleted: usize,
    /// Bytes reclaimed.
    pub bytes: u64,
}

/// The on-disk store.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Store> {
        let root = root.into();
        std::fs::create_dir_all(root.join("objects"))?;
        Ok(Store { root })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the object for `hash`.
    pub fn object_path(&self, hash: &str) -> PathBuf {
        let shard = hash.get(..2).unwrap_or("xx");
        self.root
            .join("objects")
            .join(shard)
            .join(format!("{hash}.json"))
    }

    fn journal_path(&self) -> PathBuf {
        self.root.join("journal.ndjson")
    }

    /// Fetches the stored result for `hash`; `None` on a miss. A present
    /// but unparseable object (torn write from a hard kill predating the
    /// atomic-rename scheme, manual tampering) reads as a miss so the job
    /// simply re-runs.
    pub fn get(&self, hash: &str) -> Option<JobRecord> {
        let text = std::fs::read_to_string(self.object_path(hash)).ok()?;
        let rec = JobRecord::from_json_line(text.trim_end()).ok()?;
        (rec.hash == hash).then_some(rec)
    }

    /// Whether a valid result for `hash` is stored.
    pub fn has(&self, hash: &str) -> bool {
        self.get(hash).is_some()
    }

    /// Stores a completed job's record under its hash (atomic tmp+rename)
    /// and appends a `done` journal line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn put(&self, rec: &JobRecord) -> std::io::Result<()> {
        let path = self.object_path(&rec.hash);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{}", rec.to_json_line())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        // The rename is not durable until its directory entry is: fsync
        // the shard directory (see the module-level durability contract).
        if let Some(dir) = path.parent() {
            sync_dir(dir)?;
        }
        self.append_journal(&JournalEntry {
            hash: rec.hash.clone(),
            status: "done".to_owned(),
            detail: rec.outcome.clone(),
            retries: rec.retries,
        })
    }

    /// Appends a terminal-failure journal line (no object is stored, so the
    /// job re-runs on resume).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn record_failure(&self, hash: &str, error: &str, retries: u32) -> std::io::Result<()> {
        self.append_journal(&JournalEntry {
            hash: hash.to_owned(),
            status: "failed".to_owned(),
            detail: error.to_owned(),
            retries,
        })
    }

    fn append_journal(&self, entry: &JournalEntry) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.journal_path())?;
        writeln!(f, "{}", entry.to_json_line())?;
        f.sync_all()?;
        // The first append also creates the file; its directory entry
        // needs the same parent fsync as a rename to survive power loss.
        sync_dir(&self.root)
    }

    /// Path of the checkpoint blob stored under `key` (a job hash for
    /// mid-job resume checkpoints, `warm-<kernel>-<hash>` for shared
    /// warm-start snapshots).
    pub fn ckpt_path(&self, key: &str) -> PathBuf {
        self.root.join("ckpt").join(format!("{key}.ckpt"))
    }

    /// Stores a machine checkpoint blob under `key`, atomically (tmp +
    /// fsync + rename + parent-dir fsync). The blob carries its own
    /// integrity hash (`hb_ckpt`), so a torn write reads back as a clean
    /// [`hb_ckpt::CkptError::Corrupt`] and the job simply restarts.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn put_ckpt(&self, key: &str, bytes: &[u8]) -> std::io::Result<()> {
        let path = self.ckpt_path(key);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        if let Some(dir) = path.parent() {
            sync_dir(dir)?;
        }
        Ok(())
    }

    /// Fetches the checkpoint blob stored under `key`; `None` on a miss.
    /// Validity is the caller's concern — `hb_ckpt::decode` rejects torn
    /// or stale blobs with a clean error.
    pub fn get_ckpt(&self, key: &str) -> Option<Vec<u8>> {
        std::fs::read(self.ckpt_path(key)).ok()
    }

    /// Removes the checkpoint blob for `key` (a completed job no longer
    /// needs its resume point). Missing blobs are fine.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than "not found".
    pub fn remove_ckpt(&self, key: &str) -> std::io::Result<()> {
        match std::fs::remove_file(self.ckpt_path(key)) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Reads the journal, newest last. A truncated final line — the
    /// signature of a kill mid-append — is silently dropped; any *interior*
    /// malformed line is an error (that is corruption, not truncation).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and interior corruption.
    pub fn journal(&self) -> Result<Vec<JournalEntry>, String> {
        let text = match std::fs::read_to_string(self.journal_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("read journal: {e}")),
        };
        let mut out = Vec::new();
        let lines: Vec<&str> = text.split('\n').collect();
        // The final `split` fragment is never a complete entry: empty after a
        // trailing newline, a truncated partial line otherwise. Drop it.
        let complete = lines.len().saturating_sub(1);
        for (i, line) in lines.iter().take(complete).enumerate() {
            match JournalEntry::from_json_line(line) {
                Ok(e) => out.push(e),
                Err(err) => return Err(format!("journal line {}: {err}", i + 1)),
            }
        }
        Ok(out)
    }

    /// Deletes every object whose hash is not in `keep`; prunes journal
    /// lines for deleted objects by rewriting the journal (atomic rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn gc(&self, keep: &std::collections::HashSet<String>) -> Result<GcStats, String> {
        let mut stats = GcStats::default();
        let objects = self.root.join("objects");
        let shards = std::fs::read_dir(&objects).map_err(|e| format!("read objects: {e}"))?;
        for shard in shards {
            let shard = shard.map_err(|e| e.to_string())?.path();
            if !shard.is_dir() {
                continue;
            }
            for obj in std::fs::read_dir(&shard).map_err(|e| e.to_string())? {
                let path = obj.map_err(|e| e.to_string())?.path();
                let hash = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("")
                    .to_owned();
                if keep.contains(&hash) {
                    stats.kept += 1;
                } else {
                    stats.bytes += path.metadata().map(|m| m.len()).unwrap_or(0);
                    std::fs::remove_file(&path).map_err(|e| format!("rm {path:?}: {e}"))?;
                    stats.deleted += 1;
                }
            }
        }
        // Rewrite the journal without entries for deleted objects.
        let entries = self.journal()?;
        let tmp = self.journal_path().with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| e.to_string())?;
            for e in entries.iter().filter(|e| keep.contains(&e.hash)) {
                writeln!(f, "{}", e.to_json_line()).map_err(|e| e.to_string())?;
            }
            f.sync_all().map_err(|e| e.to_string())?;
        }
        std::fs::rename(&tmp, self.journal_path()).map_err(|e| e.to_string())?;
        // Same rename-durability contract as `put`: the swap is only
        // durable once the parent directory entry is flushed.
        sync_dir(&self.root).map_err(|e| e.to_string())?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(hash: &str) -> JobRecord {
        JobRecord {
            hash: hash.to_owned(),
            kind: "fault".to_owned(),
            kernel: "sgemm".to_owned(),
            seed: 7,
            outcome: "masked".to_owned(),
            site: "regfile".to_owned(),
            inj_cycle: 123,
            cycles: 4567,
            instrs: 890,
            dram_digest: 0xdead_beef_cafe_f00d,
            checks: String::new(),
            retries: 1,
            artifacts: String::new(),
            profile: String::new(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("hb-serve-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn record_json_roundtrips() {
        let r = rec("ab12");
        let line = r.to_json_line();
        assert_eq!(JobRecord::from_json_line(&line).unwrap(), r);
        // Escaping survives.
        let mut odd = rec("ab12");
        odd.checks = "a\"b\\c\n".to_owned();
        odd.profile = "0x0054:3328:7497:7610;0x0088:128:656:551".to_owned();
        assert_eq!(JobRecord::from_json_line(&odd.to_json_line()).unwrap(), odd);
    }

    #[test]
    fn put_get_and_journal() {
        let dir = tmpdir("putget");
        let store = Store::open(&dir).unwrap();
        assert!(store.get("ab12").is_none());
        store.put(&rec("ab12")).unwrap();
        assert_eq!(store.get("ab12").unwrap(), rec("ab12"));
        store.record_failure("cd34", "panic: boom", 2).unwrap();
        let j = store.journal().unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j[0].status, "done");
        assert_eq!(j[1].status, "failed");
        assert_eq!(j[1].retries, 2);
        assert!(!store.has("cd34"), "failures must not read as cache hits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_ignores_truncated_last_line() {
        let dir = tmpdir("trunc");
        let store = Store::open(&dir).unwrap();
        store.put(&rec("ab12")).unwrap();
        store.put(&rec("ef56")).unwrap();
        // Simulate a kill mid-append: chop the file mid-way through the
        // last line.
        let jp = dir.join("journal.ndjson");
        let text = std::fs::read_to_string(&jp).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&jp, &text[..cut]).unwrap();
        let j = store.journal().unwrap();
        assert_eq!(j.len(), 1, "partial last line is dropped");
        assert_eq!(j[0].hash, "ab12");
        // Interior corruption is NOT silently dropped.
        std::fs::write(
            &jp,
            "{garbage}\n{\"hash\":\"x\",\"status\":\"done\",\"detail\":\"\",\"retries\":0}\n",
        )
        .unwrap();
        assert!(store.journal().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_object_reads_as_miss() {
        let dir = tmpdir("corrupt");
        let store = Store::open(&dir).unwrap();
        store.put(&rec("ab12")).unwrap();
        std::fs::write(store.object_path("ab12"), "{not json").unwrap();
        assert!(store.get("ab12").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ckpt_blobs_round_trip() {
        let dir = tmpdir("ckpt");
        let store = Store::open(&dir).unwrap();
        assert!(store.get_ckpt("ab12").is_none());
        store.put_ckpt("ab12", b"blob-bytes").unwrap();
        assert_eq!(store.get_ckpt("ab12").unwrap(), b"blob-bytes");
        store.put_ckpt("ab12", b"newer").unwrap();
        assert_eq!(store.get_ckpt("ab12").unwrap(), b"newer");
        store.remove_ckpt("ab12").unwrap();
        store.remove_ckpt("ab12").unwrap();
        assert!(store.get_ckpt("ab12").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_referenced_objects() {
        let dir = tmpdir("gc");
        let store = Store::open(&dir).unwrap();
        store.put(&rec("ab12")).unwrap();
        store.put(&rec("cd34")).unwrap();
        let keep: std::collections::HashSet<String> = ["ab12".to_owned()].into();
        let stats = store.gc(&keep).unwrap();
        assert_eq!((stats.kept, stats.deleted), (1, 1));
        assert!(store.has("ab12"));
        assert!(!store.has("cd34"));
        assert_eq!(store.journal().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
