//! Assembled program images.

use hb_isa::{Instr, INSTR_BYTES};

/// A fully assembled program: a base address plus a contiguous sequence of
/// instructions, available both as decoded [`Instr`]s and as encoded machine
/// words/bytes for loading into simulated DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    base: u32,
    instrs: Vec<Instr>,
    words: Vec<u32>,
}

impl Program {
    pub(crate) fn from_instrs(base: u32, instrs: Vec<Instr>) -> Program {
        let words = instrs.iter().map(Instr::encode).collect();
        Program {
            base,
            instrs,
            words,
        }
    }

    /// Rebuilds a program from its encoded machine words (the inverse of
    /// [`Program::words`]), e.g. when restoring a checkpoint whose image
    /// was saved as raw words.
    ///
    /// # Errors
    ///
    /// Returns the index of the first word that fails to decode.
    pub fn from_words(base: u32, words: &[u32]) -> Result<Program, usize> {
        let instrs = words
            .iter()
            .enumerate()
            .map(|(i, &w)| hb_isa::decode(w).map_err(|_| i))
            .collect::<Result<Vec<Instr>, usize>>()?;
        Ok(Program {
            base,
            instrs,
            words: words.to_vec(),
        })
    }

    /// Byte address of the first instruction.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Size of the image in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.instrs.len() as u32) * INSTR_BYTES
    }

    /// The decoded instructions in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The encoded machine words in program order.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The image as little-endian bytes, suitable for writing to DRAM.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// The instruction at byte address `pc`, if `pc` falls inside the image
    /// and is 4-byte aligned.
    pub fn instr_at(&self, pc: u32) -> Option<Instr> {
        if pc < self.base || !pc.is_multiple_of(INSTR_BYTES) {
            return None;
        }
        self.instrs
            .get(((pc - self.base) / INSTR_BYTES) as usize)
            .copied()
    }

    /// Disassembles the whole program, one instruction per line, with
    /// addresses.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            let pc = self.base + (i as u32) * INSTR_BYTES;
            let _ = writeln!(out, "{pc:08x}: {:08x}  {instr}", self.words[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assembler;
    use hb_isa::Gpr::*;

    fn sample() -> Program {
        let mut a = Assembler::new();
        a.li(A0, 42).ecall();
        a.assemble(0x100).unwrap()
    }

    #[test]
    fn bytes_round_trip_through_decode() {
        let p = sample();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len() as u32, p.size_bytes());
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            let word = u32::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(hb_isa::decode(word).unwrap(), p.instrs()[i]);
        }
    }

    #[test]
    fn instr_at_bounds() {
        let p = sample();
        assert!(p.instr_at(0x0fc).is_none());
        assert!(p.instr_at(0x101).is_none());
        assert!(p.instr_at(0x100).is_some());
        assert!(p.instr_at(0x100 + p.size_bytes()).is_none());
    }

    #[test]
    fn disassemble_lists_every_instruction() {
        let p = sample();
        let text = p.disassemble();
        assert_eq!(text.lines().count(), p.len());
        assert!(text.contains("ecall"));
    }
}
