//! SpGEMM — sparse matrix-matrix multiply (sparse-LA dwarf).
//!
//! Gustavson's algorithm with the paper's work-distribution idiom
//! (Figure 8): output rows are claimed with `amoadd` on a shared work
//! counter, each tile accumulates a row into a dense SPM accumulator, and
//! result nonzeros are appended to a global triple buffer through a second
//! atomic counter. Memory-intensive with highly irregular access.

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::prologue;
use hb_asm::{Assembler, Program};
use hb_core::{pgas, Machine, MachineConfig, SimError};
use hb_isa::{Fpr::*, Gpr::*};
use hb_workloads::{gen, golden, CsrMatrix};
use std::sync::Arc;

/// Descriptor word indices (see [`SpGemm::execute`]).
const D_A_RP: u32 = 0;
const D_A_CI: u32 = 1;
const D_A_AV: u32 = 2;
const D_B_RP: u32 = 3;
const D_B_CI: u32 = 4;
const D_B_AV: u32 = 5;
const D_Q0: u32 = 6;
const D_NNZ: u32 = 7;
const D_OUT_I: u32 = 8;
const D_OUT_J: u32 = 9;
const D_OUT_V: u32 = 10;
const D_A_ROWS: u32 = 11;
const D_B_COLS: u32 = 12;
const DESC_WORDS: u32 = 13;

/// The SpGEMM benchmark: `C = A * B` on uniform sparse or power-law
/// inputs.
#[derive(Debug, Clone)]
pub struct SpGemm {
    /// Rows/cols of the square operands (<= 512 to fit the dense SPM
    /// accumulator).
    pub n: u32,
    /// Nonzeros per row of each operand.
    pub nnz_per_row: u32,
    /// Use a power-law (wiki-Vote-like) A instead of uniform.
    pub power_law: bool,
}

impl Default for SpGemm {
    fn default() -> SpGemm {
        SpGemm {
            n: 128,
            nnz_per_row: 8,
            power_law: false,
        }
    }
}

impl SpGemm {
    /// The paper's "SpGEMM (WV)" configuration: power-law input.
    pub fn wiki_vote() -> SpGemm {
        SpGemm {
            n: 256,
            nnz_per_row: 8,
            power_law: true,
        }
    }

    fn sized(&self, size: SizeClass) -> SpGemm {
        match size {
            SizeClass::Tiny => SpGemm {
                n: 32,
                nnz_per_row: 4,
                power_law: self.power_law,
            },
            SizeClass::Small => self.clone(),
            SizeClass::Large => SpGemm {
                n: 512,
                nnz_per_row: 8,
                power_law: self.power_law,
            },
        }
    }

    /// Builds the kernel. Argument: `a0` = descriptor EVA (13 words).
    pub fn program() -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);
        // Unpack the descriptor.
        let desc = |a: &mut Assembler, dst, word: u32| {
            a.lw(dst, A0, (word * 4) as i32);
        };
        desc(&mut a, T0, D_A_RP);
        desc(&mut a, T1, D_A_CI);
        desc(&mut a, T2, D_A_AV);
        desc(&mut a, T3, D_B_RP);
        desc(&mut a, T4, D_B_CI);
        desc(&mut a, T5, D_B_AV);
        desc(&mut a, S0, D_OUT_I);
        desc(&mut a, S1, D_OUT_J);
        desc(&mut a, S2, D_OUT_V);
        desc(&mut a, S3, D_A_ROWS);
        desc(&mut a, S4, D_B_COLS);
        desc(&mut a, A6, D_Q0);
        desc(&mut a, A7, D_NNZ);
        a.mv(A1, T1);
        a.mv(A2, T2);
        a.mv(A3, T3);
        a.mv(A4, T4);
        a.mv(A5, T5);
        a.mv(T6, T0); // keep a_rp in t6 temporarily
        a.mv(A0, T6); // a0 = a_rp (descriptor pointer no longer needed)

        // Zero the SPM accumulator (b_cols words).
        a.li(T1, 0);
        let zero_acc = a.here();
        a.slli(T2, T1, 2);
        a.sw(Zero, T2, 0);
        a.addi(T1, T1, 1);
        a.blt(T1, S4, zero_acc);
        a.li(T0, 1); // amoadd operand
        a.fmv_w_x(Ft0, Zero); // 0.0 for comparisons

        // ---- Row loop: i = amoadd(q0, 1) ----
        let row_loop = a.new_label();
        let done = a.new_label();
        a.bind(row_loop);
        a.amoadd(S5, T0, A6);
        a.bge(S5, S3, done);

        // k-pointer range of A row i.
        a.slli(T1, S5, 2);
        a.add(T1, A0, T1);
        a.lw(S6, T1, 0);
        a.lw(S7, T1, 4);
        let k_loop = a.new_label();
        let emit = a.new_label();
        a.bind(k_loop);
        a.bge(S6, S7, emit);
        a.slli(T1, S6, 2);
        a.add(T2, A1, T1);
        a.lw(T3, T2, 0); // k = a_ci[ptr]
        a.add(T2, A2, T1);
        a.flw(Fa0, T2, 0); // av
                           // B row k range.
        a.slli(T4, T3, 2);
        a.add(T4, A3, T4);
        a.lw(S8, T4, 0);
        a.lw(S9, T4, 4);
        let j_loop = a.new_label();
        let j_done = a.new_label();
        a.bind(j_loop);
        a.bge(S8, S9, j_done);
        a.slli(T4, S8, 2);
        a.add(T5, A4, T4);
        a.lw(T1, T5, 0); // j
        a.add(T5, A5, T4);
        a.flw(Fa1, T5, 0); // bv
        a.slli(T1, T1, 2);
        a.flw(Fa2, T1, 0); // SPM acc[j]
        a.fmadd(Fa2, Fa0, Fa1, Fa2);
        a.fsw(Fa2, T1, 0);
        a.addi(S8, S8, 1);
        a.j(j_loop);
        a.bind(j_done);
        a.addi(S6, S6, 1);
        a.j(k_loop);

        // ---- Emit the accumulated row as triples ----
        a.bind(emit);
        a.li(T1, 0); // j
        let scan = a.new_label();
        let next_j = a.new_label();
        a.bind(scan);
        a.bge(T1, S4, row_loop);
        a.slli(T2, T1, 2);
        a.flw(Fa2, T2, 0);
        a.feq(T3, Fa2, Ft0);
        a.bnez(T3, next_j);
        a.amoadd(T4, T0, A7); // idx = nnz++
        a.slli(T4, T4, 2);
        a.add(T5, S0, T4);
        a.sw(S5, T5, 0); // out_i[idx] = i
        a.add(T5, S1, T4);
        a.sw(T1, T5, 0); // out_j[idx] = j
        a.add(T5, S2, T4);
        a.fsw(Fa2, T5, 0); // out_v[idx]
        a.sw(Zero, T2, 0); // acc[j] = 0
        a.bind(next_j);
        a.addi(T1, T1, 1);
        a.j(scan);

        a.bind(done);
        a.fence();
        a.ecall();
        a.assemble(0).expect("spgemm assembles")
    }

    fn inputs(&self) -> (CsrMatrix, CsrMatrix) {
        let a = if self.power_law {
            let scale = self.n.trailing_zeros();
            gen::rmat(scale, (self.n * self.nnz_per_row) as usize, 0x5A)
        } else {
            gen::uniform_sparse(self.n, self.n, self.nnz_per_row, 0x5A)
        };
        let b = gen::uniform_sparse(self.n, self.n, self.nnz_per_row, 0x5B);
        (a, b)
    }

    /// Runs and validates against [`golden::spgemm`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        assert!(self.n.is_power_of_two() && self.n <= 512);
        let (am, bm) = self.inputs();
        let expect = golden::spgemm(&am, &bm);

        let mut machine = Machine::new(cfg.clone());
        let cell = machine.cell_mut(0);
        let alloc_u32 = |cell: &mut hb_core::Cell, data: &[u32]| {
            let p = cell.alloc((data.len() * 4) as u32, 64);
            cell.dram_mut().write_u32_slice(p, data);
            p
        };
        let alloc_f32 = |cell: &mut hb_core::Cell, data: &[f32]| {
            let p = cell.alloc((data.len() * 4) as u32, 64);
            cell.dram_mut().write_f32_slice(p, data);
            p
        };
        let a_rp = alloc_u32(cell, &am.row_ptr);
        let a_ci = alloc_u32(cell, &am.col_idx);
        let a_av = alloc_f32(cell, &am.vals);
        let b_rp = alloc_u32(cell, &bm.row_ptr);
        let b_ci = alloc_u32(cell, &bm.col_idx);
        let b_av = alloc_f32(cell, &bm.vals);
        let q0 = alloc_u32(cell, &[0]);
        let nnz = alloc_u32(cell, &[0]);
        let max_out = expect.nnz() as u32 + 64;
        let out_i = cell.alloc(max_out * 4, 64);
        let out_j = cell.alloc(max_out * 4, 64);
        let out_v = cell.alloc(max_out * 4, 64);
        let desc_vals = [
            pgas::local_dram(a_rp),
            pgas::local_dram(a_ci),
            pgas::local_dram(a_av),
            pgas::local_dram(b_rp),
            pgas::local_dram(b_ci),
            pgas::local_dram(b_av),
            pgas::local_dram(q0),
            pgas::local_dram(nnz),
            pgas::local_dram(out_i),
            pgas::local_dram(out_j),
            pgas::local_dram(out_v),
            am.rows,
            bm.cols,
        ];
        debug_assert_eq!(desc_vals.len(), DESC_WORDS as usize);
        let desc = alloc_u32(cell, &desc_vals);

        let program = Arc::new(Self::program());
        machine.launch(0, &program, &[pgas::local_dram(desc)]);
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();

        let dram = machine.cell(0).dram();
        let got_nnz = dram.read_u32(nnz) as usize;
        assert_eq!(got_nnz, expect.nnz(), "SpGEMM nonzero count mismatch");
        let is = dram.read_u32_slice(out_i, got_nnz);
        let js = dram.read_u32_slice(out_j, got_nnz);
        let vs = dram.read_f32_slice(out_v, got_nnz);
        let triples: Vec<(u32, u32, f32)> = is
            .into_iter()
            .zip(js)
            .zip(vs)
            .map(|((i, j), v)| (i, j, v))
            .collect();
        let got = CsrMatrix::from_triples(am.rows, bm.cols, &triples);
        assert_eq!(got.row_ptr, expect.row_ptr, "SpGEMM structure mismatch");
        assert_eq!(got.col_idx, expect.col_idx, "SpGEMM pattern mismatch");
        for (i, (g, e)) in got.vals.iter().zip(&expect.vals).enumerate() {
            assert!(
                (g - e).abs() <= e.abs() * 1e-3 + 1e-5,
                "SpGEMM value mismatch at nz {i}: {g} vs {e}"
            );
        }
        Ok(BenchStats::collect("SpGEMM", summary.cycles, &machine))
    }
}

impl Benchmark for SpGemm {
    fn name(&self) -> &'static str {
        "SpGEMM"
    }

    fn dwarf(&self) -> &'static str {
        "Sparse Linear Algebra"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    #[test]
    fn spgemm_validates_uniform() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = SpGemm::default().run(&cfg, SizeClass::Tiny).unwrap();
        assert!(stats.cache.amos > 0, "work distribution uses atomics");
    }

    #[test]
    fn spgemm_validates_power_law() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        };
        SpGemm::wiki_vote().run(&cfg, SizeClass::Tiny).unwrap();
    }
}
