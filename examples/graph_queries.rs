//! Task-level parallelism with tile groups (paper Figure 12's idea):
//! partition one Cell into independent tile groups, each running its own
//! BFS-style parallel reduction over a shared graph, and compare against
//! a single Cell-wide group.
//!
//! Run with: `cargo run --release --example graph_queries`

use hammerblade::asm::Assembler;
use hammerblade::core::{pgas, GroupSpec, Machine, MachineConfig};
use hammerblade::isa::Gpr::*;
use hammerblade::workloads::gen;
use std::sync::Arc;

/// Degree-sum "query" kernel: sums the out-degrees of the vertices it
/// claims from a per-group work counter (a stand-in for independent graph
/// queries sharing one CSR structure).
///
/// args: a0 = row_ptr, a1 = q0 (work counter), a2 = result, a3 = n.
fn query_kernel() -> Assembler {
    let mut a = Assembler::new();
    a.li(S2, 0); // local sum
    a.li(T5, 1);
    let loop_top = a.new_label();
    let done = a.new_label();
    a.bind(loop_top);
    a.amoadd(T0, T5, A1); // v = q0++
    a.bge(T0, A3, done);
    a.slli(T1, T0, 2);
    a.add(T1, A0, T1);
    a.lw(T2, T1, 0);
    a.lw(T3, T1, 4);
    a.sub(T3, T3, T2); // degree(v)
    a.add(S2, S2, T3);
    a.j(loop_top);
    a.bind(done);
    a.amoadd(Zero, S2, A2);
    a.fence();
    a.ecall();
    a
}

fn run(groups_x: u8, groups_y: u8) -> (u64, usize) {
    let cfg = MachineConfig::baseline_16x8();
    let dim = cfg.cell_dim;
    let graph = gen::rmat(10, 8192, 77);
    let n = graph.rows;
    let expect: u32 = (0..n).map(|v| graph.degree(v)).sum();

    let mut machine = Machine::new(cfg.clone());
    let cell = machine.cell_mut(0);
    let rp = cell.alloc((graph.row_ptr.len() * 4) as u32, 64);
    cell.dram_mut().write_u32_slice(rp, &graph.row_ptr);

    // One independent query per group, all sharing the CSR row pointers.
    let gw = dim.x / groups_x;
    let gh = dim.y / groups_y;
    let specs = GroupSpec::grid(&cfg, gw, gh);
    let mut launches = Vec::new();
    let mut results = Vec::new();
    for g in specs {
        let q0 = cell.alloc(4, 64);
        let result = cell.alloc(4, 64);
        cell.dram_mut().write_u32(q0, 0);
        launches.push((
            g,
            vec![
                pgas::local_dram(rp),
                pgas::local_dram(q0),
                pgas::local_dram(result),
                n,
            ],
        ));
        results.push(result);
    }
    let ntasks = launches.len();
    let program = Arc::new(query_kernel().assemble(0).unwrap());
    machine.launch_groups(0, &program, &launches);
    let summary = machine.run(100_000_000).expect("queries complete");
    machine.cell_mut(0).flush_caches();
    for r in results {
        assert_eq!(machine.cell(0).dram().read_u32(r), expect);
    }
    (summary.cycles, ntasks)
}

fn main() {
    println!("independent graph queries over one shared RMAT graph:\n");
    for (gx, gy) in [(1u8, 1u8), (2, 1), (4, 2)] {
        let (cycles, tasks) = run(gx, gy);
        println!(
            "{tasks:>2} tile group(s): {cycles:>8} cycles -> {:>8.1} queries/Mcycle",
            tasks as f64 / (cycles as f64 / 1e6)
        );
    }
    println!("\nsmaller groups trade single-query latency for query throughput.");
}
