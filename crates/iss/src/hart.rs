//! The functional RV32IMAF hart.

use crate::mem::{Bus, StoreEffect};
use hb_asm::Program;
use hb_isa::{Fpr, Gpr, Instr, LoadWidth};
use std::fmt;

/// Architectural fault (the functional analogue of a tile trap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssFault {
    /// PC of the faulting instruction.
    pub pc: u32,
    /// Human-readable cause, matching the tile's trap messages where the
    /// two models share one ("lr/sc not supported; use AMOs", ...).
    pub msg: String,
}

impl fmt::Display for IssFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iss fault @pc={:#x}: {}", self.pc, self.msg)
    }
}

impl std::error::Error for IssFault {}

/// Outcome of a single [`Hart::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// One instruction retired.
    Retired,
    /// The hart reached `ecall` (kernel complete). The PC stays at the
    /// `ecall`, matching the cycle-level tile's final PC.
    Ecall,
    /// The instruction retired and was a barrier join; the driver decides
    /// when execution may continue.
    Barrier,
}

/// Why [`Hart::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `ecall` executed — kernel complete.
    Ecall,
    /// The instruction budget ran out first.
    InstrLimit,
    /// A barrier join retired (only when running with
    /// [`Hart::run_until_barrier`]).
    Barrier,
}

/// Functional execution statistics, rvr-style.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssStats {
    /// Instructions retired.
    pub instrs: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Conditional branches taken.
    pub branches_taken: u64,
    /// Loads retired (including `flw` and CSR reads).
    pub loads: u64,
    /// Stores retired (including `fsw` and barrier joins).
    pub stores: u64,
    /// Atomic memory operations retired.
    pub amos: u64,
    /// FP-unit instructions retired (arith/compare/convert/move).
    pub fp_ops: u64,
    /// Integer multiply/divide instructions retired.
    pub muldiv: u64,
}

impl IssStats {
    /// Guest instructions per host second for a measured wall-clock run.
    pub fn mips(&self, host_seconds: f64) -> f64 {
        if host_seconds <= 0.0 {
            return 0.0;
        }
        self.instrs as f64 / host_seconds / 1.0e6
    }
}

impl fmt::Display for IssStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instret   {:>12}", self.instrs)?;
        writeln!(
            f,
            "branches  {:>12}  ({:.1}% taken)",
            self.branches,
            if self.branches == 0 {
                0.0
            } else {
                100.0 * self.branches_taken as f64 / self.branches as f64
            }
        )?;
        writeln!(f, "loads     {:>12}", self.loads)?;
        writeln!(f, "stores    {:>12}", self.stores)?;
        writeln!(f, "amos      {:>12}", self.amos)?;
        writeln!(f, "fp ops    {:>12}", self.fp_ops)?;
        write!(f, "muldiv    {:>12}", self.muldiv)
    }
}

fn extend(value: u32, width: u8, signed: bool) -> u32 {
    match (width, signed) {
        (1, false) => value & 0xff,
        (1, true) => value as u8 as i8 as i32 as u32,
        (2, false) => value & 0xffff,
        (2, true) => value as u16 as i16 as i32 as u32,
        _ => value,
    }
}

/// One functional RV32IMAF hart: the architectural registers of a tile and
/// nothing else. Memory comes from the [`Bus`] passed to [`Hart::step`].
#[derive(Debug, Clone)]
pub struct Hart {
    /// Integer register file (`x0` reads as zero; writes are discarded).
    pub regs: [u32; 32],
    /// FP register file, stored as `f32` exactly like the tile.
    pub fregs: [f32; 32],
    /// Program counter.
    pub pc: u32,
    /// Retire-stream statistics.
    pub stats: IssStats,
    finished: bool,
}

impl Default for Hart {
    fn default() -> Hart {
        Hart::new()
    }
}

impl Hart {
    /// Creates a hart with zeroed state.
    pub fn new() -> Hart {
        Hart {
            regs: [0; 32],
            fregs: [0.0; 32],
            pc: 0,
            stats: IssStats::default(),
            finished: false,
        }
    }

    /// Resets to the tile's launch state: `args` in `a0..a7`, `sp` at the
    /// top of the scratchpad, PC at the program base.
    pub fn launch(&mut self, base: u32, args: &[u32], sp: u32) {
        assert!(args.len() <= 8, "at most 8 kernel arguments");
        self.regs = [0; 32];
        self.fregs = [0.0; 32];
        for (i, &a) in args.iter().enumerate() {
            self.regs[Gpr::A0.index() as usize + i] = a;
        }
        self.regs[Gpr::Sp.index() as usize] = sp;
        self.pc = base;
        self.stats = IssStats::default();
        self.finished = false;
    }

    /// Whether the hart has executed `ecall`.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    fn reg(&self, r: Gpr) -> u32 {
        self.regs[r.index() as usize]
    }

    fn write_int(&mut self, rd: Gpr, value: u32) {
        if rd != Gpr::Zero {
            self.regs[rd.index() as usize] = value;
        }
    }

    fn freg(&self, r: Fpr) -> f32 {
        self.fregs[r.index() as usize]
    }

    fn write_fp(&mut self, rd: Fpr, value: f32) {
        self.fregs[rd.index() as usize] = value;
    }

    fn fault(&mut self, msg: impl Into<String>) -> Result<Step, IssFault> {
        self.finished = true;
        Err(IssFault {
            pc: self.pc,
            msg: msg.into(),
        })
    }

    /// Executes one instruction against `bus`, using `program` for fetch.
    ///
    /// Mirrors the cycle-level tile's architectural semantics exactly: the
    /// same `hb_isa` op evaluation, the same `x0` behaviour, the same trap
    /// conditions (`ebreak`, `lr/sc`, PC escaping the image). On
    /// [`Step::Ecall`] the PC stays at the `ecall` and the hart refuses
    /// further steps (returns `Ecall` again).
    pub fn step(&mut self, program: &Program, bus: &mut impl Bus) -> Result<Step, IssFault> {
        use Instr as I;
        if self.finished {
            return Ok(Step::Ecall);
        }
        let Some(instr) = program.instr_at(self.pc) else {
            return self.fault("pc outside program image");
        };
        let mut next_pc = self.pc.wrapping_add(4);
        let mut effect = Step::Retired;

        match instr {
            I::Lui { rd, imm } => self.write_int(rd, (imm as u32) << 12),
            I::Auipc { rd, imm } => self.write_int(rd, self.pc.wrapping_add((imm as u32) << 12)),
            I::Jal { rd, offset } => {
                self.write_int(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(offset as u32);
            }
            I::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.write_int(rd, self.pc.wrapping_add(4));
                next_pc = target;
            }
            I::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                self.stats.branches += 1;
                if op.taken(self.reg(rs1), self.reg(rs2)) {
                    self.stats.branches_taken += 1;
                    next_pc = self.pc.wrapping_add(offset as u32);
                }
            }
            I::OpImm { op, rd, rs1, imm } => {
                let v = op.eval(self.reg(rs1), imm);
                self.write_int(rd, v);
            }
            I::Op { op, rd, rs1, rs2 } => {
                if op.is_muldiv() {
                    self.stats.muldiv += 1;
                }
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.write_int(rd, v);
            }
            I::Fence => {}
            I::Ecall => {
                self.finished = true;
                self.stats.instrs += 1;
                return Ok(Step::Ecall);
            }
            I::Ebreak => return self.fault("ebreak"),
            I::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                self.stats.loads += 1;
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let signed = matches!(width, LoadWidth::B | LoadWidth::H);
                let w = width.bytes() as u8;
                match bus.load(addr, w) {
                    Ok(raw) => self.write_int(rd, extend(raw, w, signed)),
                    Err(e) => return self.fault(e),
                }
            }
            I::Flw { rd, rs1, offset } => {
                self.stats.loads += 1;
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                match bus.load(addr, 4) {
                    Ok(raw) => self.write_fp(rd, f32::from_bits(raw)),
                    Err(e) => return self.fault(e),
                }
            }
            I::Store {
                width,
                rs1,
                rs2,
                offset,
            } => {
                self.stats.stores += 1;
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                match bus.store(addr, width.bytes() as u8, self.reg(rs2)) {
                    Ok(StoreEffect::Done) => {}
                    Ok(StoreEffect::Barrier) => effect = Step::Barrier,
                    Err(e) => return self.fault(e),
                }
            }
            I::Fsw { rs1, rs2, offset } => {
                self.stats.stores += 1;
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                match bus.store(addr, 4, self.freg(rs2).to_bits()) {
                    Ok(StoreEffect::Done) => {}
                    Ok(StoreEffect::Barrier) => effect = Step::Barrier,
                    Err(e) => return self.fault(e),
                }
            }
            I::Amo {
                op, rd, rs1, rs2, ..
            } => {
                self.stats.amos += 1;
                match bus.amo(self.reg(rs1), op, self.reg(rs2)) {
                    Ok(old) => self.write_int(rd, old),
                    Err(e) => return self.fault(e),
                }
            }
            I::LrW { .. } | I::ScW { .. } => {
                return self.fault("lr/sc not supported; use AMOs");
            }
            I::FpOp { op, rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                let v = op.eval(self.freg(rs1), self.freg(rs2));
                self.write_fp(rd, v);
            }
            I::Fma {
                op,
                rd,
                rs1,
                rs2,
                rs3,
            } => {
                self.stats.fp_ops += 1;
                let v = op.eval(self.freg(rs1), self.freg(rs2), self.freg(rs3));
                self.write_fp(rd, v);
            }
            I::FpCmp { op, rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                let v = u32::from(op.eval(self.freg(rs1), self.freg(rs2)));
                self.write_int(rd, v);
            }
            I::FcvtWS { rd, rs1 } => {
                self.stats.fp_ops += 1;
                let v = self.freg(rs1) as i32 as u32;
                self.write_int(rd, v);
            }
            I::FcvtWuS { rd, rs1 } => {
                self.stats.fp_ops += 1;
                let v = self.freg(rs1) as u32;
                self.write_int(rd, v);
            }
            I::FcvtSW { rd, rs1 } => {
                self.stats.fp_ops += 1;
                let v = self.reg(rs1) as i32 as f32;
                self.write_fp(rd, v);
            }
            I::FcvtSWu { rd, rs1 } => {
                self.stats.fp_ops += 1;
                let v = self.reg(rs1) as f32;
                self.write_fp(rd, v);
            }
            I::FmvXW { rd, rs1 } => {
                self.stats.fp_ops += 1;
                let v = self.freg(rs1).to_bits();
                self.write_int(rd, v);
            }
            I::FmvWX { rd, rs1 } => {
                self.stats.fp_ops += 1;
                let v = f32::from_bits(self.reg(rs1));
                self.write_fp(rd, v);
            }
        }

        self.pc = next_pc;
        self.stats.instrs += 1;
        Ok(effect)
    }

    /// Runs to completion (`ecall`) or until `max_instrs` retire. Barrier
    /// joins do not pause execution (correct for 1x1 tile groups, where the
    /// Cell releases the barrier immediately).
    pub fn run(
        &mut self,
        program: &Program,
        bus: &mut impl Bus,
        max_instrs: u64,
    ) -> Result<StopReason, IssFault> {
        let budget_end = self.stats.instrs + max_instrs;
        while self.stats.instrs < budget_end {
            if let Step::Ecall = self.step(program, bus)? {
                return Ok(StopReason::Ecall);
            }
        }
        Ok(StopReason::InstrLimit)
    }

    /// Like [`Hart::run`] but stops *after* a barrier join retires —
    /// multi-hart functional execution uses this to rendezvous.
    pub fn run_until_barrier(
        &mut self,
        program: &Program,
        bus: &mut impl Bus,
        max_instrs: u64,
    ) -> Result<StopReason, IssFault> {
        let budget_end = self.stats.instrs + max_instrs;
        while self.stats.instrs < budget_end {
            match self.step(program, bus)? {
                Step::Ecall => return Ok(StopReason::Ecall),
                Step::Barrier => return Ok(StopReason::Barrier),
                Step::Retired => {}
            }
        }
        Ok(StopReason::InstrLimit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseMem;
    use hb_asm::Assembler;
    use hb_isa::Gpr::*;

    fn asm(build: impl FnOnce(&mut Assembler)) -> Program {
        let mut a = Assembler::new();
        build(&mut a);
        a.assemble(0).unwrap()
    }

    #[test]
    fn arithmetic_loop_runs_to_ecall() {
        // sum = 0; for i in 0..10 { sum += i } — exercises branches.
        let p = asm(|a| {
            a.li(A0, 0);
            a.li(T0, 0);
            a.li(T1, 10);
            let top = a.here();
            a.add(A0, A0, T0);
            a.addi(T0, T0, 1);
            a.blt(T0, T1, top);
            a.ecall();
        });
        let mut h = Hart::new();
        h.launch(p.base(), &[], 4096);
        let mut m = SparseMem::new();
        assert_eq!(h.run(&p, &mut m, 10_000).unwrap(), StopReason::Ecall);
        assert_eq!(h.regs[A0.index() as usize], 45);
        assert_eq!(h.stats.branches, 10);
        assert_eq!(h.stats.branches_taken, 9);
        assert!(h.is_finished());
        // PC parks at the ecall, like the tile.
        assert_eq!(p.instr_at(h.pc), Some(hb_isa::Instr::Ecall));
    }

    #[test]
    fn loads_stores_and_x0() {
        let p = asm(|a| {
            a.li(T0, 0x100);
            a.li(T1, -2);
            a.sw(T1, T0, 0);
            a.lb(A0, T0, 0); // sign-extended 0xfe
            a.lbu(A1, T0, 0); // zero-extended
            a.lw(Zero, T0, 0); // write to x0 discarded
            a.ecall();
        });
        let mut h = Hart::new();
        h.launch(p.base(), &[], 4096);
        let mut m = SparseMem::new();
        h.run(&p, &mut m, 100).unwrap();
        assert_eq!(h.regs[A0.index() as usize], 0xffff_fffe);
        assert_eq!(h.regs[A1.index() as usize], 0xfe);
        assert_eq!(h.regs[0], 0);
        assert_eq!(m.read_u32(0x100), 0xffff_fffe);
    }

    #[test]
    fn instr_limit_stops_infinite_loop() {
        let p = asm(|a| {
            let spin = a.here();
            a.j(spin);
        });
        let mut h = Hart::new();
        h.launch(p.base(), &[], 4096);
        let mut m = SparseMem::new();
        assert_eq!(h.run(&p, &mut m, 1000).unwrap(), StopReason::InstrLimit);
        assert_eq!(h.stats.instrs, 1000);
    }

    #[test]
    fn traps_match_tile_conventions() {
        let p = asm(|a| {
            a.ebreak();
        });
        let mut h = Hart::new();
        h.launch(p.base(), &[], 4096);
        let mut m = SparseMem::new();
        let err = h.run(&p, &mut m, 10).unwrap_err();
        assert_eq!(err.msg, "ebreak");
        assert_eq!(err.pc, p.base());
    }

    #[test]
    fn running_off_the_image_faults() {
        let p = asm(|a| {
            a.nop();
        });
        let mut h = Hart::new();
        h.launch(p.base(), &[], 4096);
        let mut m = SparseMem::new();
        let err = h.run(&p, &mut m, 10).unwrap_err();
        assert_eq!(err.msg, "pc outside program image");
    }
}
