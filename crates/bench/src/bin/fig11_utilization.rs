//! Figure 11: core and HBM2 utilization per kernel on the most-optimized
//! Cell, kernels ordered memory-intensive -> compute-intensive, with the
//! stall taxonomy of Table III.

use hb_bench::{
    bench_size, hb_config, header, row, run_instrumented, telemetry_out, telemetry_window,
};
use hb_core::StallKind;

fn main() {
    let cfg = hb_config();
    let size = bench_size();
    println!(
        "Figure 11 — core & HBM2 utilization ({}x{} Cell, all features on)\n",
        cfg.cell_dim.x, cfg.cell_dim.y
    );

    let widths = [8usize, 7, 7, 7, 7, 7, 7, 7, 7];
    header(
        &[
            "kernel", "int%", "fp%", "rem_ld%", "barr%", "other%", "hbm_rd%", "hbm_wr%", "hbm_idl%",
        ],
        &widths,
    );

    for bench in hb_kernels::suite() {
        let stats = bench
            .run(&cfg, size)
            .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name()));
        // Exclude post-ecall idling (tiles that finished early) from the
        // utilization denominator, as the paper measures execution only.
        let done = stats.core.stall(StallKind::Done);
        let total = (stats.core.total_cycles() - done).max(1) as f64;
        let pct = |v: u64| format!("{:.1}", v as f64 / total * 100.0);
        let remote = stats.core.stall(StallKind::RemoteLoad) + stats.core.stall(StallKind::AmoDep);
        let barrier = stats.core.stall(StallKind::Barrier) + stats.core.stall(StallKind::Fence);
        let other = stats.core.total_cycles()
            - done
            - stats.core.int_cycles
            - stats.core.fp_cycles
            - remote
            - barrier;
        let hbm_total = stats.hbm.denominator().max(1) as f64;
        let hpct = |v: u64| format!("{:.1}", v as f64 / hbm_total * 100.0);
        row(
            &[
                bench.name().to_owned(),
                pct(stats.core.int_cycles),
                pct(stats.core.fp_cycles),
                pct(remote),
                pct(barrier),
                pct(other),
                hpct(stats.hbm.read_cycles),
                hpct(stats.hbm.write_cycles),
                hpct(stats.hbm.idle_cycles),
            ],
            &widths,
        );
    }

    println!("\nTable III — stall taxonomy:");
    for kind in StallKind::ALL {
        println!("  {:<12} {}", kind.label(), describe(kind));
    }

    // `--telemetry <out>`: one instrumented SGEMM pass on the same
    // fully-featured configuration the table used.
    if let Some(out) = telemetry_out() {
        let suite = hb_kernels::suite();
        let sgemm = suite
            .iter()
            .find(|b| b.name() == "SGEMM")
            .expect("suite has SGEMM");
        if let Err(e) = run_instrumented(sgemm.as_ref(), &cfg, size, telemetry_window(1000), &out) {
            hb_bench::cli::fail(e);
        }
    }
}

fn describe(kind: StallKind) -> &'static str {
    match kind {
        StallKind::IcacheMiss => "instruction cache miss refill",
        StallKind::BranchMiss => "branch/jalr misprediction penalty",
        StallKind::Bypass => "RAW dependency on in-flight ALU/FPU result",
        StallKind::LocalLoad => "scratchpad load-use delay",
        StallKind::RemoteLoad => "waiting for a remote load response",
        StallKind::AmoDep => "waiting for a remote atomic response",
        StallKind::RemoteCredit => "scoreboard full or network backpressure",
        StallKind::Fence => "fence draining the remote-op scoreboard",
        StallKind::Barrier => "blocked in the hardware barrier",
        StallKind::FpBusy => "iterative FP divide/sqrt unit busy",
        StallKind::IntBusy => "iterative integer divider busy",
        StallKind::Frozen => "core frozen by an injected fault",
        StallKind::Done => "tile finished, waiting for the kernel to end",
    }
}
