//! Figure 12: scaling an irregular workload (SpGEMM on a power-law
//! matrix) with tile groups — one Cell-wide group vs several smaller
//! groups each running an independent task on the shared data structure.

use hb_bench::{bench_cell, header, row};
use hb_core::{pgas, Cell, GroupSpec, Machine, MachineConfig};
use hb_kernels::SpGemm;
use hb_workloads::{gen, golden};
use std::sync::Arc;

/// Allocates and fills a u32 region.
fn alloc_u32(cell: &mut Cell, data: &[u32]) -> u32 {
    let p = cell.alloc((data.len() * 4) as u32, 64);
    cell.dram_mut().write_u32_slice(p, data);
    p
}

fn alloc_f32(cell: &mut Cell, data: &[f32]) -> u32 {
    let p = cell.alloc((data.len() * 4) as u32, 64);
    cell.dram_mut().write_f32_slice(p, data);
    p
}

fn main() {
    let dim = bench_cell();
    let cfg = MachineConfig {
        cell_dim: dim,
        ..MachineConfig::baseline_16x8()
    };
    // A wiki-Vote-like operand: as many rows as the Cell has tiles, with a
    // few hub rows owning most of the nonzeros — a single Cell-wide group
    // leaves most tiles idle while the hub rows finish.
    let n: u32 = 128;
    let rows = dim.tiles() as u32;
    let hubs = rows / 8;
    let mut triples = Vec::new();
    let mut rng = hb_rng::Rng::seed_from_u64(0x5A);
    for hub in 0..hubs {
        for c in 0..n {
            triples.push((hub, c, 1.0f32 + (c % 7) as f32));
        }
    }
    for r in hubs..rows {
        for _ in 0..2 {
            let c = rng.range_u32(0, n);
            triples.push((r, c, 1.0f32));
        }
    }
    let a = hb_workloads::CsrMatrix::from_triples(rows, n, &triples);
    let b = gen::uniform_sparse(n, n, 8, 0x5B);
    let expect_nnz = golden::spgemm(&a, &b).nnz() as u32;

    println!(
        "Figure 12 — tile groups on SpGEMM (power-law {nx}x{nx}, {gx}x{gy} Cell)\n",
        nx = n,
        gx = dim.x,
        gy = dim.y
    );
    let widths = [14usize, 10, 12, 14, 12];
    header(
        &["groups", "tasks", "cycles", "tasks/Mcycle", "hbm util%"],
        &widths,
    );

    // Group layouts: whole cell, halves, eighths (16x8 -> 4x4 groups).
    let layouts = [(dim.x, dim.y), (dim.x / 2, dim.y), (dim.x / 4, dim.y / 2)];

    for (gw, gh) in layouts {
        let groups = GroupSpec::grid(&cfg, gw, gh);
        let ntasks = groups.len();
        let mut machine = Machine::new(cfg.clone());
        let cell = machine.cell_mut(0);
        // Shared inputs.
        let a_rp = alloc_u32(cell, &a.row_ptr);
        let a_ci = alloc_u32(cell, &a.col_idx);
        let a_av = alloc_f32(cell, &a.vals);
        let b_rp = alloc_u32(cell, &b.row_ptr);
        let b_ci = alloc_u32(cell, &b.col_idx);
        let b_av = alloc_f32(cell, &b.vals);
        // Per-task counters and outputs (independent tasks on shared data).
        let mut launches = Vec::new();
        for g in groups {
            let q0 = alloc_u32(cell, &[0]);
            let nnz = alloc_u32(cell, &[0]);
            let cap = expect_nnz + 64;
            let out_i = cell.alloc(cap * 4, 64);
            let out_j = cell.alloc(cap * 4, 64);
            let out_v = cell.alloc(cap * 4, 64);
            let desc = alloc_u32(
                cell,
                &[
                    pgas::local_dram(a_rp),
                    pgas::local_dram(a_ci),
                    pgas::local_dram(a_av),
                    pgas::local_dram(b_rp),
                    pgas::local_dram(b_ci),
                    pgas::local_dram(b_av),
                    pgas::local_dram(q0),
                    pgas::local_dram(nnz),
                    pgas::local_dram(out_i),
                    pgas::local_dram(out_j),
                    pgas::local_dram(out_v),
                    a.rows,
                    b.cols,
                ],
            );
            launches.push((g, vec![pgas::local_dram(desc)], nnz));
        }
        let program = Arc::new(SpGemm::program());
        let specs: Vec<(GroupSpec, Vec<u32>)> = launches
            .iter()
            .map(|(g, args, _)| (*g, args.clone()))
            .collect();
        machine.launch_groups(0, &program, &specs);
        let summary = machine.run(500_000_000).expect("spgemm tile-group run");
        machine.cell_mut(0).flush_caches();
        for (_, _, nnz) in &launches {
            assert_eq!(
                machine.cell(0).dram().read_u32(*nnz),
                expect_nnz,
                "task produced wrong nnz"
            );
        }
        let hbm = machine.cell(0).hbm_stats();
        let throughput = ntasks as f64 / (summary.cycles as f64 / 1.0e6);
        row(
            &[
                format!("{} x {}x{}", ntasks, gw, gh),
                ntasks.to_string(),
                summary.cycles.to_string(),
                format!("{throughput:.2}"),
                format!("{:.1}", hbm.data_utilization() * 100.0),
            ],
            &widths,
        );
    }
    println!(
        "\npaper: eight 4x4 groups improve SpGEMM (WV) throughput ~4x and HBM2\n\
         utilization ~7.8x over one 16x8 group; smaller groups expose task-level\n\
         parallelism that irregular kernels cannot extract from more tiles."
    );
}
