//! The HammerBlade Cellular Manycore simulator — the paper's primary
//! contribution, in Rust.
//!
//! A [`Machine`] is a set of [`Cell`]s: each Cell is a 2-D array of
//! [`Tile`]s (area-optimized RV32IMAF cores with scratchpads and icaches)
//! and two strips of last-level cache banks, all interconnected by two
//! Half-Ruche networks (requests X→Y, responses Y→X), a 1-bit hardware
//! barrier network and per-strip refill channels, backed by one HBM2
//! pseudo-channel per Cell.
//!
//! Kernels are RV32IMAF programs (built with [`hb_asm`]) executing in the
//! PGAS of [`pgas`]; the host API loads data into Cell DRAM, launches tile
//! groups and runs the cycle-level simulation to completion.
//!
//! # Examples
//!
//! A minimal kernel that writes its tile rank into DRAM:
//!
//! ```
//! use hb_asm::Assembler;
//! use hb_core::{pgas, CellDim, HbOps, Machine, MachineConfig};
//! use hb_isa::Gpr::*;
//!
//! // Keep the example fast: a 4x2 Cell.
//! let mut cfg = MachineConfig::baseline_16x8();
//! cfg.cell_dim = CellDim { x: 4, y: 2 };
//! let mut machine = Machine::new(cfg);
//!
//! // out[rank] = rank
//! let mut a = Assembler::new();
//! a.tg_rank(T0, T6); // t0 = rank
//! a.mv(A0, A0); // a0 = out pointer (launch argument)
//! a.slli(T1, T0, 2);
//! a.add(A0, A0, T1);
//! a.sw(T0, A0, 0);
//! a.fence();
//! a.ecall();
//! let program = std::sync::Arc::new(a.assemble(0)?);
//!
//! let out = machine.cell_mut(0).alloc(8 * 4, 64);
//! machine.launch(0, &program, &[pgas::local_dram(out)]);
//! machine.run(100_000).expect("kernel runs");
//! machine.cell_mut(0).flush_caches();
//! let results = machine.cell(0).dram().read_u32_slice(out, 8);
//! assert_eq!(results, (0..8).collect::<Vec<u32>>());
//! # Ok::<(), hb_asm::AsmError>(())
//! ```

mod banknode;
mod cell;
mod config;
pub mod cosim;
pub mod diag;
pub mod func;
pub mod gprof;
mod icache;
mod kernel_util;
mod machine;
mod multicell;
pub mod observe;
pub mod parallel;
mod payload;
pub mod pgas;
pub mod profile;
pub mod race;
mod sched;
mod stats;
mod tile;
pub mod trace;

pub use cell::{Cell, GroupSpec, EJECT_PER_CYCLE};
pub use config::{CellDim, ConfigError, MachineConfig};
pub use cosim::{CosimChecker, CosimError, CosimReport, Divergence};
pub use diag::{FaultInfo, HangClass, HangReport};
pub use func::{FuncBus, IssTile, SnapshotDram, TileCtx, WarmupReport};
pub use gprof::{GuestProfile, PhaseProfile, UNMARKED};
pub use icache::ICache;
pub use kernel_util::HbOps;
pub use machine::{CheckpointSink, Machine, RunSummary, SimError};
pub use multicell::{MultiCellEstimator, Phase};
pub use observe::{
    set_observer_factory, InjectKind, MachineObserver, ObsEvent, ObsKind, ObserverScope,
};
pub use parallel::{threads_from_env, PhaseTimes, TilePool};
pub use payload::{NodeId, ReqKind, Request, RespKind, Response};
pub use pgas::{ipoly_hash, PgasMap, Target};
pub use race::{
    collect_races, AccessInfo, AccessKind, RaceChecker, RaceLoc, RaceReport, RaceSinkScope,
};
pub use sched::Park;
pub use stats::{utilization_report, CoreStats, StallKind};
pub use tile::{GroupInfo, Tile};
