//! Every shipped kernel must lint clean: no error-severity diagnostics
//! under the baseline machine configuration, in any parameterization.

use hb_lint::{lint, LintConfig, Severity};

#[test]
fn all_kernels_lint_without_errors() {
    let programs = [
        ("aes", hb_kernels::Aes::program()),
        ("bfs (top-down)", hb_kernels::Bfs::program(false)),
        ("bfs (direction-optimizing)", hb_kernels::Bfs::program(true)),
        ("barnes-hut", hb_kernels::BarnesHut::program()),
        ("black-scholes", hb_kernels::BlackScholes::program()),
        ("fft", hb_kernels::Fft::program()),
        ("jacobi", hb_kernels::Jacobi::program()),
        ("pagerank", hb_kernels::PageRank::program()),
        ("sgemm", hb_kernels::Sgemm::program()),
        ("sgemm (blocked)", hb_kernels::Sgemm::program_blocked()),
        ("spgemm", hb_kernels::SpGemm::program()),
        ("smith-waterman", hb_kernels::SmithWaterman::program()),
    ];
    let lc = LintConfig::default();
    for (name, program) in &programs {
        let errors: Vec<String> = lint(program, &lc)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.to_string())
            .collect();
        assert!(
            errors.is_empty(),
            "kernel {name} has lint errors:\n{}",
            errors.join("\n")
        );
    }
}
