//! Cross-crate integration: the full benchmark suite validates end-to-end
//! through the facade crate (each kernel checks its output against the
//! golden reference internally).

use hammerblade::core::{CellDim, MachineConfig};
use hammerblade::kernels::{suite, SizeClass};

fn tiny_cfg() -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 4, y: 2 },
        ..MachineConfig::baseline_16x8()
    }
}

#[test]
fn all_ten_benchmarks_validate() {
    let cfg = tiny_cfg();
    for bench in suite() {
        let stats = bench
            .run(&cfg, SizeClass::Tiny)
            .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name()));
        assert!(stats.cycles > 0, "{} reported zero cycles", bench.name());
        assert!(
            stats.core.instrs > 0,
            "{} retired no instructions",
            bench.name()
        );
    }
}

#[test]
fn suite_covers_ten_distinct_dwarf_kernels() {
    let names: Vec<&str> = suite().iter().map(|b| b.name()).collect();
    assert_eq!(names.len(), 10);
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 10, "duplicate benchmark names: {names:?}");
}

#[test]
fn memory_intensive_kernels_stress_memory_more_than_compute_ones() {
    // The Figure 11 ordering claim, at test scale: PR (memory-intensive)
    // should show a lower core utilization than AES (compute-intensive).
    let cfg = tiny_cfg();
    let suite = suite();
    let pr = suite.iter().find(|b| b.name() == "PR").unwrap();
    let aes = suite.iter().find(|b| b.name() == "AES").unwrap();
    let pr_stats = pr.run(&cfg, SizeClass::Tiny).unwrap();
    let aes_stats = aes.run(&cfg, SizeClass::Tiny).unwrap();
    assert!(
        aes_stats.core.utilization() > pr_stats.core.utilization(),
        "AES util {:.2} should exceed PR util {:.2}",
        aes_stats.core.utilization(),
        pr_stats.core.utilization()
    );
}
