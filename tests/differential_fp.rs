//! Differential testing of the floating-point pipeline: random
//! straight-line RV32F programs run on the cycle-level tile and on the
//! `hb-iss` golden model must produce bit-identical FP register files,
//! regardless of pipelining, bypass latencies and the iterative
//! divide/sqrt unit.

use hammerblade::asm::Assembler;
use hammerblade::core::{CellDim, Machine, MachineConfig};
use hammerblade::isa::{FmaOp, FpOp, Fpr, Gpr, Instr};
use hammerblade::iss::{Hart, SparseMem};
use hammerblade::rng::Rng;
use std::sync::Arc;

fn any_fpr(rng: &mut Rng) -> Fpr {
    Fpr::from_index(rng.below(32) as u8)
}

/// Finite, comfortably-ranged f32 bit patterns (no NaN/inf/subnormal
/// corner semantics; those are covered by unit tests of `FpOp::eval`).
fn finite_bits(rng: &mut Rng) -> u32 {
    ((rng.range_i64(-1_000_000, 1_000_000) as f32) / 128.0).to_bits()
}

/// Emits one random FP step (constant set, compute or convert).
fn emit_step(rng: &mut Rng, a: &mut Assembler) {
    const BIN_OPS: [FpOp; 9] = [
        FpOp::Add,
        FpOp::Sub,
        FpOp::Mul,
        FpOp::Div,
        FpOp::Min,
        FpOp::Max,
        FpOp::Sgnj,
        FpOp::Sgnjn,
        FpOp::Sgnjx,
    ];
    match rng.below(5) {
        0 => {
            let bits = finite_bits(rng);
            a.li_u(Gpr::T0, bits);
            a.fmv_w_x(any_fpr(rng), Gpr::T0);
        }
        1 => {
            a.emit(Instr::FpOp {
                op: *rng.pick(&BIN_OPS),
                rd: any_fpr(rng),
                rs1: any_fpr(rng),
                rs2: any_fpr(rng),
            });
        }
        2 => {
            a.emit(Instr::Fma {
                op: *rng.pick(&FmaOp::ALL),
                rd: any_fpr(rng),
                rs1: any_fpr(rng),
                rs2: any_fpr(rng),
                rs3: any_fpr(rng),
            });
        }
        3 => {
            a.fsqrt(any_fpr(rng), any_fpr(rng));
        }
        _ => {
            a.li(Gpr::T0, rng.range_i64(0, 2000) as i32);
            a.fcvt_s_w(any_fpr(rng), Gpr::T0);
        }
    }
}

#[test]
fn fp_pipeline_matches_iss() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0xF9_0001 + case);
        let steps = 1 + rng.below(50);

        let cfg = MachineConfig {
            cell_dim: CellDim { x: 1, y: 1 },
            ..MachineConfig::baseline_16x8()
        };
        let mut machine = Machine::new(cfg);
        let mut a = Assembler::new();
        for _ in 0..steps {
            emit_step(&mut rng, &mut a);
        }
        a.ecall();
        let image = Arc::new(a.assemble(0).unwrap());
        machine.launch(0, &image, &[]);
        machine
            .run(1_000_000)
            .expect("straight-line FP code terminates");

        // Golden model, from the same launch state.
        let mut hart = Hart::new();
        hart.launch(image.base(), &[], machine.config().spm_bytes);
        let mut mem = SparseMem::new();
        hart.run(&image, &mut mem, 1_000_000)
            .expect("iss runs the same code");

        let tile = machine.cell(0).tile(0, 0);
        for r in Fpr::ALL {
            let got = tile.freg(r).to_bits();
            let expect = hart.fregs[r.index() as usize].to_bits();
            assert_eq!(
                got, expect,
                "case {case}: FP register {r} diverged: sim {got:#010x} vs iss {expect:#010x}"
            );
        }
    }
}
