//! Jacobi — 7-point 3-D stencil (structured-grids dwarf).
//!
//! The paper's flagship Group-SPM kernel (Figure 7): each tile owns a
//! `1 x 1 x Z` column of the grid in its scratchpad, and reads the four
//! lateral neighbor columns directly from the neighboring tiles'
//! scratchpads through Group SPM pointers — non-blocking remote loads
//! pipelined in the network. Tiles synchronize between time steps with the
//! hardware barrier.
//!
//! # Degraded mode
//!
//! The kernel tolerates tiles disabled via `MachineConfig::disabled_tiles`:
//! each tile walks a small list of column descriptors built in its SPM —
//! its own column plus, if the `TG_ADOPT` CSR names a dead tile, that
//! tile's column. The adopted column still *lives in the dead tile's
//! scratchpad* (its network interface stays alive), accessed through
//! Group-SPM EVAs, so every other tile's neighbor pointers are unchanged
//! and the stencil stays golden-correct around the hole. With no tiles
//! disabled the descriptor list has one entry and the schedule matches the
//! dedicated-column kernel.

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::prologue;
use hb_asm::{Assembler, Program};
use hb_core::{pgas, HbOps, Machine, MachineConfig, SimError};
use hb_isa::{Fpr::*, Gpr::*};
use hb_workloads::golden;
use rand_like::grid_values;
use std::sync::Arc;

/// Deterministic pseudo-random initial grid (no rand dependency needed
/// here; a simple LCG keeps the host and test sides identical).
mod rand_like {
    /// Fills an `nx * ny * nz` grid with values in (-1, 1).
    pub fn grid_values(n: usize) -> Vec<f32> {
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }
}

/// Double-buffered column storage: buffer 0 at SPM 0, buffer 1 at 0x800.
const BUF_STRIDE: i32 = 0x800;

/// Column descriptors live above both buffers (each buffer holds at most
/// 448 words = 0x700 bytes, so 0xF00..0xFFF is always free).
const DESC_BASE: i32 = 0xF00;
/// Bytes per descriptor (two fit between `DESC_BASE` and the SPM top).
const DESC_SIZE: i32 = 0x20;
/// Descriptor field offsets: column base in DRAM, column base in SPM
/// (local offset or Group-SPM EVA), interior flag, neighbor EVAs.
const DESC_DRAM: i32 = 0x0;
const DESC_SPM: i32 = 0x4;
const DESC_INTERIOR: i32 = 0x8;
const DESC_LEFT: i32 = 0xC;
const DESC_RIGHT: i32 = 0x10;
const DESC_UP: i32 = 0x14;
const DESC_DOWN: i32 = 0x18;

/// The Jacobi benchmark: `steps` iterations on a `(cell_w, cell_h, z)`
/// grid, one column per tile.
#[derive(Debug, Clone)]
pub struct Jacobi {
    /// Grid depth per tile (<= 448 to fit double buffering in 4 KB).
    pub z: u32,
    /// Time steps.
    pub steps: u32,
}

impl Default for Jacobi {
    fn default() -> Jacobi {
        Jacobi { z: 128, steps: 4 }
    }
}

impl Jacobi {
    fn sized(&self, size: SizeClass) -> Jacobi {
        match size {
            SizeClass::Tiny => Jacobi { z: 32, steps: 2 },
            SizeClass::Small => self.clone(),
            SizeClass::Large => Jacobi { z: 256, steps: 8 },
        }
    }

    /// Builds the kernel. Arguments: `a0`=grid (DRAM, layout
    /// `[(y*nx+x)*nz + z]`), `a1`=Z, `a2`=steps.
    ///
    /// Each tile first builds one column *descriptor* per column it owns —
    /// always its own, plus the `TG_ADOPT` tile's when degraded — at SPM
    /// `DESC_BASE`, then runs copy-in / step-loop / copy-out uniformly
    /// over the descriptor list. A descriptor holds the column's DRAM
    /// base, its SPM base (0 locally, a Group-SPM EVA for an adopted
    /// column), an interior flag, and the four neighbor-column EVAs.
    pub fn program() -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);
        // Tile coordinates and cell shape.
        a.csr_load(S0, pgas::csr::TILE_X, T6);
        a.csr_load(S1, pgas::csr::TILE_Y, T6);
        a.csr_load(S2, pgas::csr::CELL_W, T6);
        a.csr_load(S3, pgas::csr::CELL_H, T6);

        // group_spm(x, y, 0) = (1<<30)|y<<24|x<<18, clobbers t0/t1.
        let spm_base = |a: &mut Assembler, dst, x_reg, y_reg| {
            a.slli(T0, y_reg, 24);
            a.slli(T1, x_reg, 18);
            a.or(T0, T0, T1);
            a.li_u(T1, 1 << 30);
            a.or(dst, T0, T1);
        };
        // Emits one descriptor at [s4] for the column of tile (x_reg,
        // y_reg); `own` selects local SPM addressing over a Group-SPM EVA.
        // Clobbers t0..t4. Neighbor EVAs are garbage on edge columns but
        // the cleared interior flag keeps them from ever being read.
        let emit_desc = |a: &mut Assembler, x_reg, y_reg, own: bool| {
            a.mul(T2, y_reg, S2);
            a.add(T2, T2, x_reg);
            a.mul(T2, T2, A1);
            a.slli(T2, T2, 2);
            a.add(T2, T2, A0);
            a.sw(T2, S4, DESC_DRAM);
            if own {
                a.sw(Zero, S4, DESC_SPM);
            } else {
                spm_base(a, T4, x_reg, y_reg);
                a.sw(T4, S4, DESC_SPM);
            }
            // Interior test: 0 < x < w-1 and 0 < y < h-1.
            let edge = a.new_label();
            a.li(T3, 0);
            a.beqz(x_reg, edge);
            a.beqz(y_reg, edge);
            a.addi(T0, S2, -1);
            a.beq(x_reg, T0, edge);
            a.addi(T0, S3, -1);
            a.beq(y_reg, T0, edge);
            a.li(T3, 1);
            a.bind(edge);
            a.sw(T3, S4, DESC_INTERIOR);
            a.addi(T2, x_reg, -1);
            spm_base(a, T4, T2, y_reg); // left  (x-1, y)
            a.sw(T4, S4, DESC_LEFT);
            a.addi(T2, x_reg, 1);
            spm_base(a, T4, T2, y_reg); // right (x+1, y)
            a.sw(T4, S4, DESC_RIGHT);
            a.addi(T2, y_reg, -1);
            spm_base(a, T4, x_reg, T2); // up    (x, y-1)
            a.sw(T4, S4, DESC_UP);
            a.addi(T2, y_reg, 1);
            spm_base(a, T4, x_reg, T2); // down  (x, y+1)
            a.sw(T4, S4, DESC_DOWN);
        };

        // Descriptor 0: own column. S7 = descriptor count.
        a.li(S4, DESC_BASE);
        emit_desc(&mut a, S0, S1, true);
        a.li(S7, 1);
        // Descriptor 1: adopted dead tile's column, if any.
        a.csr_load(T5, pgas::csr::TG_ADOPT, T6);
        a.li(T0, -1); // pgas::NO_ADOPTEE
        let no_adopt = a.new_label();
        a.beq(T5, T0, no_adopt);
        a.srli(S5, T5, 8); // adopted x
        a.andi(S6, T5, 0xFF); // adopted y
        a.addi(S4, S4, DESC_SIZE);
        emit_desc(&mut a, S5, S6, false);
        a.li(S7, 2);
        a.bind(no_adopt);

        // Copy each column from DRAM into buffer 0 and buffer 1 (remote
        // stores through the dead tile's network interface when adopted).
        a.li(S4, DESC_BASE);
        a.mv(S8, S7);
        let ci_block = a.here();
        {
            a.lw(T0, S4, DESC_DRAM);
            a.lw(T1, S4, DESC_SPM);
            a.li(T5, BUF_STRIDE);
            a.add(T5, T5, T1);
            a.mv(T2, A1);
            let copy_in = a.here();
            a.lw(T3, T0, 0);
            a.sw(T3, T1, 0);
            a.sw(T3, T5, 0);
            a.addi(T0, T0, 4);
            a.addi(T1, T1, 4);
            a.addi(T5, T5, 4);
            a.addi(T2, T2, -1);
            a.bnez(T2, copy_in);
            a.addi(S4, S4, DESC_SIZE);
            a.addi(S8, S8, -1);
        }
        a.bnez(S8, ci_block);
        a.fence();
        a.barrier(T6);

        // fs0 = 1/7.
        a.lif(Fs0, T0, 1.0 / 7.0);

        // Step loop. S9 = current buffer offset (0 / 0x800); a3 holds the
        // stride so the toggle is `s9 = a3 - s9` (xori immediates max out
        // at +/-2047).
        a.li(A3, BUF_STRIDE);
        a.li(S9, 0);
        a.mv(S2, A2); // reuse s2 as remaining-steps counter
        let step_loop = a.here();
        {
            a.li(S4, DESC_BASE);
            a.mv(S8, S7);
            let blk_loop = a.here();
            {
                let next_blk = a.new_label();
                a.lw(T5, S4, DESC_INTERIOR);
                a.beqz(T5, next_blk); // edge columns only keep barriers
                                      // Pointers: t0 self cur (+4), t1..t4 neighbors cur (+4),
                                      // t5 out (next buffer, +4).
                a.lw(T0, S4, DESC_SPM);
                a.sub(S5, A3, S9);
                a.add(T5, T0, S5);
                a.addi(T5, T5, 4);
                a.add(T0, T0, S9);
                a.addi(T0, T0, 4);
                a.lw(T1, S4, DESC_LEFT);
                a.add(T1, T1, S9);
                a.addi(T1, T1, 4);
                a.lw(T2, S4, DESC_RIGHT);
                a.add(T2, T2, S9);
                a.addi(T2, T2, 4);
                a.lw(T3, S4, DESC_UP);
                a.add(T3, T3, S9);
                a.addi(T3, T3, 4);
                a.lw(T4, S4, DESC_DOWN);
                a.add(T4, T4, S9);
                a.addi(T4, T4, 4);
                // z = 1 .. Z-1.
                a.li(S3, 1);
                a.addi(S1, A1, -1); // reuse s1 as Z-1 (coords are encoded)
                let z_loop = a.here();
                {
                    a.flw(Fa3, T1, 0); // left (remote, in flight)
                    a.flw(Fa4, T2, 0); // right
                    a.flw(Fa5, T3, 0); // up
                    a.flw(Fa6, T4, 0); // down
                    a.flw(Fa0, T0, 0); // self z
                    a.flw(Fa1, T0, -4); // z-1
                    a.flw(Fa2, T0, 4); // z+1
                                       // Golden order: self + left + right + up + down + z-1 + z+1.
                    a.fadd(Fa7, Fa0, Fa3);
                    a.fadd(Fa7, Fa7, Fa4);
                    a.fadd(Fa7, Fa7, Fa5);
                    a.fadd(Fa7, Fa7, Fa6);
                    a.fadd(Fa7, Fa7, Fa1);
                    a.fadd(Fa7, Fa7, Fa2);
                    a.fmul(Fa7, Fa7, Fs0);
                    a.fsw(Fa7, T5, 0);
                    a.addi(T0, T0, 4);
                    a.addi(T1, T1, 4);
                    a.addi(T2, T2, 4);
                    a.addi(T3, T3, 4);
                    a.addi(T4, T4, 4);
                    a.addi(T5, T5, 4);
                    a.addi(S3, S3, 1);
                }
                a.blt(S3, S1, z_loop);
                a.bind(next_blk);
                a.addi(S4, S4, DESC_SIZE);
                a.addi(S8, S8, -1);
            }
            a.bnez(S8, blk_loop);
            a.fence();
            a.barrier(T6);
            a.sub(S9, A3, S9);
            a.addi(S2, S2, -1);
        }
        a.bnez(S2, step_loop);

        // Write each column's current buffer back to DRAM.
        a.li(S4, DESC_BASE);
        a.mv(S8, S7);
        let co_block = a.here();
        {
            a.lw(T0, S4, DESC_SPM);
            a.add(T0, T0, S9);
            a.lw(T1, S4, DESC_DRAM);
            a.mv(T2, A1);
            let copy_out = a.here();
            a.lw(T3, T0, 0);
            a.sw(T3, T1, 0);
            a.addi(T0, T0, 4);
            a.addi(T1, T1, 4);
            a.addi(T2, T2, -1);
            a.bnez(T2, copy_out);
            a.addi(S4, S4, DESC_SIZE);
            a.addi(S8, S8, -1);
        }
        a.bnez(S8, co_block);
        a.fence();
        a.ecall();
        a.assemble(0).expect("jacobi assembles")
    }

    /// Runs and validates against repeated [`golden::jacobi_step`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        assert!(self.z <= 448, "column must fit double-buffered in SPM");
        let (nx, ny, nz) = (
            cfg.cell_dim.x as usize,
            cfg.cell_dim.y as usize,
            self.z as usize,
        );
        let init = grid_values(nx * ny * nz);
        let mut expect = init.clone();
        for _ in 0..self.steps {
            expect = golden::jacobi_step(nx, ny, nz, &expect);
        }

        let mut machine = Machine::new(cfg.clone());
        let cell = machine.cell_mut(0);
        let grid = cell.alloc((nx * ny * nz * 4) as u32, 64);
        cell.dram_mut().write_f32_slice(grid, &init);

        let program = Arc::new(Self::program());
        machine.launch(0, &program, &[pgas::local_dram(grid), self.z, self.steps]);
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();
        let got = machine.cell(0).dram().read_f32_slice(grid, expect.len());
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() <= 1e-4 + e.abs() * 1e-4,
                "Jacobi mismatch at {i}: sim {g} vs golden {e}"
            );
        }
        // The grid scales with the Cell, so normalize by grid size for
        // cross-configuration comparisons (weak scaling).
        let points = (nx * ny * nz) as f64;
        Ok(BenchStats::collect("Jacobi", summary.cycles, &machine)
            .with_work(points * f64::from(self.steps)))
    }
}

impl Benchmark for Jacobi {
    fn name(&self) -> &'static str {
        "Jacobi"
    }

    fn dwarf(&self) -> &'static str {
        "Structured Grids"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    #[test]
    fn jacobi_validates_with_group_spm() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 4 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = Jacobi::default().run(&cfg, SizeClass::Tiny).unwrap();
        assert!(
            stats.core.remote_requests > 0,
            "neighbor SPM reads are remote"
        );
    }

    #[test]
    fn jacobi_stays_golden_with_two_dead_tiles() {
        // One interior dead tile (adopter must compute its column through
        // the dead tile's SPM) and one edge dead tile (Dirichlet column,
        // adopter only copies it in so neighbors read the right values).
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 4 },
            disabled_tiles: vec![(1, 1), (0, 2)],
            ..MachineConfig::baseline_16x8()
        };
        Jacobi::default().run(&cfg, SizeClass::Tiny).unwrap();
    }
}
