//! `perf report`-style exporters: a ranked hot-block text table for
//! humans and an NDJSON stream for scripting. Both render the same
//! phase-summed ranking ([`Analysis::ranked`]) and integer basis-point
//! shares, so they are byte-stable for bit-identical profiles.

use crate::Analysis;
use hb_core::StallKind;
use std::fmt::Write as _;
use std::io;

/// Renders a fixed-width ranked table of the `top` hottest blocks, with
/// header totals, per-kind stall columns folded to the dominant kinds,
/// and the block leader's disassembly as an anchor.
pub fn report_text(a: &Analysis, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# kernel {}  cycles {}  retired {}  stalled {}  tile-cycles {}",
        a.kernel,
        a.cycles,
        a.retired,
        a.stalled,
        a.tile_cycles()
    );
    let _ = writeln!(
        out,
        "{:>5}  {:<10}  {:>6}  {:>12}  {:>12}  {:<24}  leader",
        "cyc%", "block", "instrs", "retired", "stalled", "top stalls"
    );
    for row in a.top(top) {
        let bp = a.share_bp(row);
        // The two heaviest stall kinds, as `kind:cycles` tags.
        let mut kinds: Vec<(StallKind, u64)> = StallKind::ALL
            .iter()
            .map(|&k| (k, row.stalls[k as usize]))
            .filter(|&(_, n)| n > 0)
            .collect();
        kinds.sort_by(|x, y| y.1.cmp(&x.1).then((x.0 as usize).cmp(&(y.0 as usize))));
        let tags = kinds
            .iter()
            .take(2)
            .map(|(k, n)| format!("{}:{n}", k.label()))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{:>4}.{:02}  {:<10}  {:>6}  {:>12}  {:>12}  {:<24}  {}",
            bp / 100,
            bp % 100,
            row.label(),
            row.end - row.start,
            row.retired,
            row.stall_cycles(),
            if tags.is_empty() {
                "-".to_owned()
            } else {
                tags
            },
            a.leader_disasm(row)
        );
    }
    out
}

/// Renders the analysis as NDJSON: one `"type":"profile"` header line,
/// then one `"type":"block"` line per ranked block (every block, not
/// just the top — consumers truncate). Stall objects carry only nonzero
/// kinds. Shares are integer basis points of tile-cycles.
pub fn to_ndjson(a: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"profile\",\"kernel\":\"{}\",\"cycles\":{},\"retired\":{},\
         \"stalled\":{},\"tile_cycles\":{},\"phases\":{},\"blocks\":{}}}",
        crate::summary::escape(&a.kernel),
        a.cycles,
        a.retired,
        a.stalled,
        a.tile_cycles(),
        a.phases.len(),
        a.ranked.len()
    );
    for (rank, row) in a.ranked.iter().enumerate() {
        let stalls = StallKind::ALL
            .iter()
            .filter(|&&k| row.stalls[k as usize] > 0)
            .map(|&k| format!("\"{}\":{}", k.label(), row.stalls[k as usize]))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "{{\"type\":\"block\",\"rank\":{rank},\"block\":{},\"pc\":\"{:#06x}\",\
             \"instrs\":{},\"retired\":{},\"stall_cycles\":{},\"share_bp\":{},\
             \"stalls\":{{{stalls}}}}}",
            row.block,
            row.start_pc,
            row.end - row.start,
            row.retired,
            row.stall_cycles(),
            a.share_bp(row)
        );
    }
    out
}

/// Minimal JSON string escaper (mirrors `hb_obs::json::escape`; kept
/// local so the exporter has no dependency above `hb-core`).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes [`report_text`] to `w`.
pub fn write_text<W: io::Write>(a: &Analysis, top: usize, w: &mut W) -> io::Result<()> {
    w.write_all(report_text(a, top).as_bytes())
}

/// Writes [`to_ndjson`] to `w`.
pub fn write_ndjson<W: io::Write>(a: &Analysis, w: &mut W) -> io::Result<()> {
    w.write_all(to_ndjson(a).as_bytes())
}

#[cfg(test)]
mod tests {
    use crate::Analysis;
    use hb_core::{Machine, MachineConfig};
    use std::sync::Arc;

    fn analyzed() -> Analysis {
        let mut asm = hb_asm::Assembler::new();
        use hb_isa::Gpr::*;
        asm.li(T0, 4);
        let top = asm.here();
        asm.addi(T0, T0, -1);
        asm.bnez(T0, top);
        asm.ecall();
        let program = Arc::new(asm.assemble(0).unwrap());

        let (_scope, store) = crate::attach();
        let cfg = MachineConfig {
            cell_dim: hb_core::CellDim { x: 2, y: 1 },
            threads: 1,
            profile: true,
            ..MachineConfig::baseline_16x8()
        };
        let mut machine = Machine::new(cfg);
        machine.launch(0, &program, &[]);
        machine.run(10_000).unwrap();
        drop(machine);
        let run = store.lock().unwrap().last().unwrap().clone();
        Analysis::analyze("loopy", &run)
    }

    #[test]
    fn every_ndjson_line_is_valid_and_shares_are_bounded() {
        let a = analyzed();
        let doc = super::to_ndjson(&a);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 1 + a.ranked.len());
        for line in &lines {
            hb_obs::json::validate(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        }
        assert!(lines[0].starts_with("{\"type\":\"profile\",\"kernel\":\"loopy\""));
        assert!(lines[1].contains("\"rank\":0"), "{doc}");
        let total_bp: u64 = a.ranked.iter().map(|r| a.share_bp(r)).sum();
        assert!(total_bp <= 10_000, "{doc}");
    }

    #[test]
    fn report_text_leads_with_totals_and_ranks_by_cycles() {
        let a = analyzed();
        let doc = super::report_text(&a, 5);
        let mut lines = doc.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("# kernel loopy"), "{header}");
        assert!(header.contains(&format!("tile-cycles {}", a.tile_cycles())));
        let _columns = lines.next().unwrap();
        let first = lines.next().unwrap();
        assert!(first.contains(&a.ranked[0].label()), "{doc}");
        // Rows are cycle-sorted descending.
        let cycles: Vec<u64> = a.ranked.iter().map(|r| r.cycles()).collect();
        let mut sorted = cycles.clone();
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(cycles, sorted);
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(super::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(super::escape("\u{1}"), "\\u0001");
    }
}
