//! RV32IMAF instruction set support for the HammerBlade-RS simulator.
//!
//! HammerBlade tiles execute a 32-bit RISC-V ISA with the integer (`I`),
//! multiply/divide (`M`), atomic (`A`) and single-precision floating-point
//! (`F`) extensions. This crate provides:
//!
//! - typed register names ([`Gpr`], [`Fpr`]) with the standard ABI mnemonics,
//! - a structured [`Instr`] enum covering every instruction the simulator
//!   executes,
//! - binary [`encode`](Instr::encode) / [`decode`] round-tripping the real
//!   RV32 encodings, so program images stored in simulated DRAM are genuine
//!   RISC-V machine code,
//! - a disassembler via [`Instr`]'s `Display` implementation.
//!
//! # Examples
//!
//! ```
//! use hb_isa::{decode, Gpr, Instr, OpOp};
//!
//! let add = Instr::Op { op: OpOp::Add, rd: Gpr::A0, rs1: Gpr::A1, rs2: Gpr::A2 };
//! let word = add.encode();
//! assert_eq!(decode(word), Ok(add));
//! assert_eq!(add.to_string(), "add a0, a1, a2");
//! ```

mod decode;
mod disasm;
mod encode;
mod instr;
mod reg;

pub use decode::{decode, DecodeError};
pub use instr::{AmoOp, BranchOp, FmaOp, FpCmp, FpOp, Instr, LoadWidth, OpImmOp, OpOp, StoreWidth};
pub use reg::{Fpr, Gpr, ParseRegError};

/// Size of one instruction in bytes. RV32 instructions are fixed 32-bit.
pub const INSTR_BYTES: u32 = 4;
