//! Basic-block control-flow graph over an assembled [`Program`].
//!
//! Blocks are maximal straight-line instruction runs; edges follow the
//! static control flow of branches and direct jumps. Indirect jumps
//! (`jalr`) have no statically-known successors and terminate analysis
//! along that path; the linter reports them so authors know the analyses
//! are partial there.

use hb_asm::Program;
use hb_isa::{Instr, INSTR_BYTES};

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Execution continues into the next block (a leader follows).
    FallThrough,
    /// Conditional branch: taken edge plus fall-through edge.
    Branch,
    /// Unconditional direct jump (`jal`).
    Jump,
    /// Indirect jump (`jalr`): successors unknown.
    Indirect,
    /// `ecall` / `ebreak`: the tile stops here.
    Exit,
    /// The block ends at the last instruction of the image with no
    /// terminator: the PC runs off the program and the tile traps.
    OffEnd,
}

/// One basic block: instruction indices `start..end` within the program.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// Successor block indices (taken target first for branches).
    pub succs: Vec<usize>,
    /// How the block ends.
    pub term: Terminator,
}

/// The control-flow graph of a program.
#[derive(Debug)]
pub struct Cfg {
    /// Blocks in program (address) order; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Map from instruction index to owning block index.
    pub block_of: Vec<usize>,
    /// Byte address of instruction 0.
    pub base: u32,
    /// Branch/jump targets that resolved outside the image (instruction
    /// index of the offending control transfer).
    pub wild_targets: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let instrs = program.instrs();
        let n = instrs.len();
        let mut is_leader = vec![false; n];
        let mut wild_targets = Vec::new();
        if n > 0 {
            is_leader[0] = true;
        }
        let target_of = |i: usize, offset: i32| -> Option<usize> {
            let t = i as i64 + i64::from(offset) / i64::from(INSTR_BYTES);
            if (0..n as i64).contains(&t) {
                Some(t as usize)
            } else {
                None
            }
        };
        for (i, instr) in instrs.iter().enumerate() {
            match *instr {
                Instr::Branch { offset, .. } => {
                    match target_of(i, offset) {
                        Some(t) => is_leader[t] = true,
                        None => wild_targets.push(i),
                    }
                    if i + 1 < n {
                        is_leader[i + 1] = true;
                    }
                }
                Instr::Jal { offset, .. } => {
                    match target_of(i, offset) {
                        Some(t) => is_leader[t] = true,
                        None => wild_targets.push(i),
                    }
                    if i + 1 < n {
                        is_leader[i + 1] = true;
                    }
                }
                Instr::Jalr { .. } | Instr::Ecall | Instr::Ebreak if i + 1 < n => {
                    is_leader[i + 1] = true;
                }
                _ => {}
            }
        }

        // Carve blocks at leaders.
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (i, &leader) in is_leader.iter().enumerate() {
            if i > start && leader {
                blocks.push(Block {
                    start,
                    end: i,
                    succs: Vec::new(),
                    term: Terminator::FallThrough,
                });
                start = i;
            }
        }
        if n > 0 {
            blocks.push(Block {
                start,
                end: n,
                succs: Vec::new(),
                term: Terminator::FallThrough,
            });
        }
        for (bi, b) in blocks.iter().enumerate() {
            for slot in &mut block_of[b.start..b.end] {
                *slot = bi;
            }
        }

        // Terminators and edges.
        for block in &mut blocks {
            let last = block.end - 1;
            let (term, succs) = match instrs[last] {
                Instr::Branch { offset, .. } => {
                    let mut s = Vec::new();
                    if let Some(t) = target_of(last, offset) {
                        s.push(block_of[t]);
                    }
                    if last + 1 < n {
                        let ft = block_of[last + 1];
                        if !s.contains(&ft) {
                            s.push(ft);
                        }
                    }
                    (Terminator::Branch, s)
                }
                Instr::Jal { offset, .. } => {
                    let s = target_of(last, offset)
                        .map(|t| vec![block_of[t]])
                        .unwrap_or_default();
                    (Terminator::Jump, s)
                }
                Instr::Jalr { .. } => (Terminator::Indirect, Vec::new()),
                Instr::Ecall | Instr::Ebreak => (Terminator::Exit, Vec::new()),
                _ => {
                    if last + 1 < n {
                        (Terminator::FallThrough, vec![block_of[last + 1]])
                    } else {
                        (Terminator::OffEnd, Vec::new())
                    }
                }
            };
            block.term = term;
            block.succs = succs;
        }

        Cfg {
            blocks,
            block_of,
            base: program.base(),
            wild_targets,
        }
    }

    /// Byte address of instruction `idx`.
    pub fn pc_of(&self, idx: usize) -> u32 {
        self.base + (idx as u32) * INSTR_BYTES
    }

    /// Blocks reachable from the entry, as a boolean mask.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Reverse postorder over reachable blocks (a good iteration order for
    /// forward dataflow).
    pub fn reverse_postorder(&self) -> Vec<usize> {
        let mut state = vec![0u8; self.blocks.len()]; // 0 new, 1 open, 2 done
        let mut post = Vec::new();
        if self.blocks.is_empty() {
            return post;
        }
        // Iterative DFS with an explicit phase marker.
        let mut stack = vec![(0usize, 0usize)];
        state[0] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = &self.blocks[b].succs;
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Back edges `(tail, head)` found by DFS from the entry: each one
    /// closes a natural loop headed at `head`.
    pub fn back_edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        if self.blocks.is_empty() {
            return edges;
        }
        let mut state = vec![0u8; self.blocks.len()];
        let mut stack = vec![(0usize, 0usize)];
        state[0] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = &self.blocks[b].succs;
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match state[s] {
                    0 => {
                        state[s] = 1;
                        stack.push((s, 0));
                    }
                    1 => edges.push((b, s)), // s is on the DFS stack: back edge
                    _ => {}
                }
            } else {
                state[b] = 2;
                stack.pop();
            }
        }
        edges
    }

    /// The natural loop of back edge `(tail, head)`: `head`, `tail`, and
    /// every block that reaches `tail` without passing through `head`.
    pub fn natural_loop(&self, tail: usize, head: usize) -> Vec<usize> {
        let mut in_loop = vec![false; self.blocks.len()];
        in_loop[head] = true;
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.blocks.len()];
        for (bi, b) in self.blocks.iter().enumerate() {
            for &s in &b.succs {
                preds[s].push(bi);
            }
        }
        let mut stack = vec![tail];
        while let Some(b) = stack.pop() {
            if in_loop[b] {
                continue;
            }
            in_loop[b] = true;
            for &p in &preds[b] {
                stack.push(p);
            }
        }
        (0..self.blocks.len()).filter(|&b| in_loop[b]).collect()
    }

    /// Predecessor lists for every block.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.blocks.len()];
        for (bi, b) in self.blocks.iter().enumerate() {
            for &s in &b.succs {
                preds[s].push(bi);
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_asm::Assembler;
    use hb_isa::Gpr::*;

    #[test]
    fn straight_line_is_one_block() {
        let mut a = Assembler::new();
        a.li(A0, 1).li(A1, 2).add(A2, A0, A1).ecall();
        let p = a.assemble(0).unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].term, Terminator::Exit);
    }

    #[test]
    fn loop_produces_back_edge() {
        let mut a = Assembler::new();
        a.li(T0, 10);
        let top = a.here();
        a.addi(T0, T0, -1);
        a.bnez(T0, top);
        a.ecall();
        let p = a.assemble(0).unwrap();
        let cfg = Cfg::build(&p);
        let back = cfg.back_edges();
        assert_eq!(back.len(), 1);
        let (tail, head) = back[0];
        let body = cfg.natural_loop(tail, head);
        assert!(body.contains(&head) && body.contains(&tail));
    }

    #[test]
    fn branch_has_two_successors() {
        let mut a = Assembler::new();
        let skip = a.new_label();
        a.beqz(A0, skip);
        a.li(A1, 1);
        a.bind(skip);
        a.ecall();
        let p = a.assemble(0).unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
    }

    #[test]
    fn off_end_detected() {
        let mut a = Assembler::new();
        a.li(A0, 1);
        let p = a.assemble(0).unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks.last().unwrap().term, Terminator::OffEnd);
    }
}
