//! Figure 15: three strategies to double the compute resources at
//! constant HBM2 bandwidth — taller Cells (16x16), wider Cells (32x8) and
//! more Cells (2x16x8) — vs the baseline 16x8 Cell.

use hb_bench::{
    bench_cell, bench_size, geomean, header, job_threads, point_config, row, run_instrumented,
    run_ordered, telemetry_out, telemetry_window,
};
use hb_core::{CellDim, MachineConfig, MultiCellEstimator, Phase};

fn main() {
    let base_dim = bench_cell();
    let size = bench_size();
    let base_cfg = MachineConfig {
        cell_dim: base_dim,
        ..MachineConfig::baseline_16x8()
    };
    // Doubling strategies, shape-preserving at the bench scale.
    let tall = MachineConfig {
        cell_dim: CellDim {
            x: base_dim.x,
            y: base_dim.y * 2,
        },
        ..base_cfg.clone()
    };
    let wide = MachineConfig {
        cell_dim: CellDim {
            x: base_dim.x * 2,
            y: base_dim.y,
        },
        ..base_cfg.clone()
    };

    println!(
        "Figure 15 — doubling HW resources at constant HBM2 bandwidth (baseline {}x{})\n",
        base_dim.x, base_dim.y
    );
    let widths = [8usize, 12, 11, 11, 12];
    header(
        &["kernel", "base cyc", "tall x", "wide x", "2-cells x"],
        &widths,
    );

    // Two Cells split the constant HBM2 bandwidth: each pseudo-channel
    // runs at half rate (doubled burst occupancy).
    let half_bw = MachineConfig {
        hbm: hb_mem::Hbm2Config {
            burst_cycles: base_cfg.hbm.burst_cycles * 2,
            ..base_cfg.hbm.clone()
        },
        ..base_cfg.clone()
    };

    let est = MultiCellEstimator::from_config(&base_cfg);
    let suite = hb_kernels::suite();

    // Every (kernel, configuration) point is an independent simulation;
    // fan them all out across the job pool and reassemble the rows from
    // the ordered results.
    let variants = [
        ("base", &base_cfg),
        ("tall", &tall),
        ("wide", &wide),
        ("half-bw", &half_bw),
    ];
    let jobs = job_threads();
    let points: Vec<(usize, usize)> = (0..suite.len())
        .flat_map(|ki| (0..variants.len()).map(move |vi| (ki, vi)))
        .collect();
    let runs = run_ordered(points, jobs, |_, (ki, vi)| {
        let bench = &suite[ki];
        let (vname, cfg) = variants[vi];
        eprintln!("  running {} / {vname} ...", bench.name());
        let stats = bench
            .run(&point_config(cfg, jobs), size)
            .unwrap_or_else(|e| panic!("{} / {vname} failed: {e}", bench.name()));
        (stats.cycles, stats.throughput(), stats.work_units)
    });

    let (mut s_tall, mut s_wide, mut s_two) = (Vec::new(), Vec::new(), Vec::new());
    for (ki, bench) in suite.iter().enumerate() {
        let at = |vi: usize| runs[ki * variants.len() + vi];
        let (base_cycles, base_t, _) = at(0);
        let base = base_cycles as f64;
        let (_, tall_t, _) = at(1);
        let (_, wide_t, _) = at(2);
        // Two Cells, the paper's own methodology: each Cell handles half
        // the work at half the HBM2 bandwidth, plus a conservative
        // inter-phase broadcast of shared data for hard-to-partition
        // kernels (graph/octree duplication into both Local DRAMs).
        let (half_cycles, _, half_work) = at(3);
        let dup_bytes: u64 = match bench.name() {
            "BFS" | "PR" | "SpGEMM" | "BH" => 256 * 1024,
            _ => 0,
        };
        let two_c = est.total_cycles(&[Phase {
            exec_cycles: half_cycles / 2,
            transfer_bytes: dup_bytes,
        }]) as f64;
        let two_t = half_work / two_c;
        s_tall.push(tall_t / base_t);
        s_wide.push(wide_t / base_t);
        s_two.push(two_t / base_t);
        row(
            &[
                bench.name().to_owned(),
                format!("{base:.0}"),
                format!("{:.2}", tall_t / base_t),
                format!("{:.2}", wide_t / base_t),
                format!("{:.2}", two_t / base_t),
            ],
            &widths,
        );
    }
    row(
        &[
            "geomean".into(),
            String::new(),
            format!("{:.2}", geomean(&s_tall)),
            format!("{:.2}", geomean(&s_wide)),
            format!("{:.2}", geomean(&s_two)),
        ],
        &widths,
    );
    println!(
        "\npaper: 16x16 / 32x8 / 2x16x8 reach 1.25x / 1.39x / 1.34x geomean.\n\
         Doubling tiles without cache (tall) is least effective; wider Cells\n\
         win when data is hard to partition; more Cells avoid bisection\n\
         pressure but duplicate shared data."
    );

    // `--telemetry <out>`: one instrumented SGEMM pass on the baseline
    // configuration the speedups are normalized to.
    if let Some(out) = telemetry_out() {
        let sgemm = suite
            .iter()
            .find(|b| b.name() == "SGEMM")
            .expect("suite has SGEMM");
        if let Err(e) = run_instrumented(
            sgemm.as_ref(),
            &base_cfg,
            size,
            telemetry_window(1000),
            &out,
        ) {
            hb_bench::cli::fail(e);
        }
    }
}
