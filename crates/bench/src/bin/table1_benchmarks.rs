//! Table I: the parallel benchmark suite, its dwarfs and inputs.

use hb_bench::{header, row};

fn main() {
    println!("Table I — parallel benchmark suite (Berkeley dwarfs coverage)\n");
    let widths = [8usize, 30, 36];
    header(&["kernel", "dwarf", "input (synthetic stand-in)"], &widths);
    let inputs: &[(&str, &str)] = &[
        ("PR", "RMAT power-law graph (wiki-Vote-like)"),
        ("BFS", "RMAT power-law + road grid (roadNet-like)"),
        ("SpGEMM", "uniform & power-law sparse matrices"),
        ("BH", "random bodies in the unit square"),
        ("FFT", "batched random complex signals"),
        ("Jacobi", "random 3-D grid, 1x1xZ column per tile"),
        ("SGEMM", "random dense f32 matrices"),
        ("BS", "random option parameters"),
        ("SW", "random DNA-alphabet sequence pairs"),
        ("AES", "random plaintext blocks, AES-128 ECB"),
    ];
    for bench in hb_kernels::suite() {
        let input = inputs
            .iter()
            .find(|(n, _)| *n == bench.name())
            .map_or("", |(_, i)| *i);
        row(
            &[
                bench.name().to_owned(),
                bench.dwarf().to_owned(),
                input.to_owned(),
            ],
            &widths,
        );
    }
    println!(
        "\nnote: the paper uses SuiteSparse matrices (wiki-Vote, roadNet-CA, ...);\n\
         offline generators with matching degree structure stand in for them\n\
         (see DESIGN.md substitutions)."
    );
}
