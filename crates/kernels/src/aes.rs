//! AES — AES-128 ECB encryption (combinational-logic dwarf).
//!
//! Compute-intensive with almost no memory traffic: each tile keeps a
//! private copy of the S-box and round keys in its Local SPM (the paper's
//! exact strategy) and encrypts a rank-strided set of 16-byte blocks with
//! byte-level table lookups.

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::prologue;
use hb_asm::{Assembler, Program};
use hb_core::{pgas, Machine, MachineConfig, SimError};
use hb_isa::Gpr::{self, *};
use hb_workloads::{gen, golden};
use std::sync::Arc;

/// SPM layout: S-box at 0 (so a byte value *is* its lookup address),
/// round keys at 0x100, state at 0x1b0, shifted state at 0x1c0.
const SPM_RK: i32 = 0x100;
const SPM_STATE: i32 = 0x1b0;
const SPM_TMP: i32 = 0x1c0;

/// The AES-128 ECB benchmark over `blocks` 16-byte blocks.
#[derive(Debug, Clone)]
pub struct Aes {
    /// Number of blocks encrypted.
    pub blocks: u32,
}

impl Default for Aes {
    fn default() -> Aes {
        Aes { blocks: 256 }
    }
}

/// Emits `dst_byte = sbox[state_like[src_off]]` where the S-box lives at
/// SPM address 0. Clobbers t0, t1.
fn emit_sub_byte(a: &mut Assembler, src_off: i32, dst_off: i32) {
    a.lbu(T0, Zero, src_off);
    a.lbu(T1, T0, 0); // S-box lookup: address == byte value
    a.sb(T1, Zero, dst_off);
}

/// Emits `dst = xtime(src)` (GF(2^8) multiply by x). Clobbers `tmp`.
fn emit_xtime(a: &mut Assembler, dst: Gpr, src: Gpr, tmp: Gpr) {
    a.srli(tmp, src, 7);
    a.neg(tmp, tmp);
    a.andi(tmp, tmp, 0x1b);
    a.slli(dst, src, 1);
    a.andi(dst, dst, 0xff);
    a.xor(dst, dst, tmp);
}

impl Aes {
    fn sized(&self, size: SizeClass) -> Aes {
        match size {
            SizeClass::Tiny => Aes { blocks: 16 },
            SizeClass::Small => self.clone(),
            SizeClass::Large => Aes { blocks: 1024 },
        }
    }

    /// Builds the kernel. Arguments: `a0`=S-box, `a1`=round keys,
    /// `a2`=plaintext, `a3`=ciphertext, `a4`=block count.
    pub fn program() -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);

        // ---- Copy S-box (256 B) + round keys (176 B) into SPM ----
        // S-box: 64 words from a0 -> SPM 0.
        a.mv(S0, A0);
        a.li(S1, 0);
        a.li(S2, 64);
        let copy_sbox = a.here();
        a.lw(T0, S0, 0);
        a.lw(T1, S0, 4);
        a.lw(T2, S0, 8);
        a.lw(T3, S0, 12);
        a.sw(T0, S1, 0);
        a.sw(T1, S1, 4);
        a.sw(T2, S1, 8);
        a.sw(T3, S1, 12);
        a.addi(S0, S0, 16);
        a.addi(S1, S1, 16);
        a.addi(S2, S2, -4);
        a.bnez(S2, copy_sbox);
        // Round keys: 44 words from a1 -> SPM 0x100.
        a.mv(S0, A1);
        a.li(S1, SPM_RK);
        a.li(S2, 44);
        let copy_rk = a.here();
        a.lw(T0, S0, 0);
        a.sw(T0, S1, 0);
        a.addi(S0, S0, 4);
        a.addi(S1, S1, 4);
        a.addi(S2, S2, -1);
        a.bnez(S2, copy_rk);

        // ---- Block loop: i = rank; i < nblocks; i += nthreads ----
        a.mv(S0, S10);
        let block_loop = a.new_label();
        let done = a.new_label();
        a.bind(block_loop);
        a.bge(S0, A4, done);

        // Load block (4 words) and AddRoundKey 0 into SPM state.
        a.slli(T4, S0, 4);
        a.add(T4, T4, A2); // &in[i*16]
        for w in 0..4 {
            a.lw(T0, T4, 4 * w);
            a.lw(T1, Zero, SPM_RK + 4 * w);
            a.xor(T0, T0, T1);
            a.sw(T0, Zero, SPM_STATE + 4 * w);
        }

        // Rounds 1..9: SubBytes+ShiftRows (state->tmp), MixColumns
        // (tmp->state), AddRoundKey (SPM rk pointer in s4).
        a.li(S3, 9);
        a.li(S4, SPM_RK + 16);
        let round_loop = a.here();
        {
            // SubBytes + ShiftRows fused: tmp[c*4+r] = S[state[((c+r)%4)*4+r]].
            for col in 0..4i32 {
                for row in 0..4i32 {
                    let src = ((col + row) % 4) * 4 + row;
                    emit_sub_byte(&mut a, SPM_STATE + src, SPM_TMP + col * 4 + row);
                }
            }
            // MixColumns per column: tmp -> state.
            for col in 0..4i32 {
                // Load the 4 bytes: s2..s5? use t0-t3 as a0..a3, s5 = all.
                a.lbu(T0, Zero, SPM_TMP + col * 4);
                a.lbu(T1, Zero, SPM_TMP + col * 4 + 1);
                a.lbu(T2, Zero, SPM_TMP + col * 4 + 2);
                a.lbu(T3, Zero, SPM_TMP + col * 4 + 3);
                a.xor(S5, T0, T1);
                a.xor(S5, S5, T2);
                a.xor(S5, S5, T3); // all
                let rows = [T0, T1, T2, T3];
                for r in 0..4usize {
                    let (ar, anext) = (rows[r], rows[(r + 1) % 4]);
                    a.xor(T4, ar, anext);
                    emit_xtime(&mut a, T4, T4, T5);
                    a.xor(T4, T4, S5);
                    a.xor(T4, T4, ar);
                    a.sb(T4, Zero, SPM_STATE + col * 4 + r as i32);
                }
            }
            // AddRoundKey (word-wise from s4).
            for w in 0..4i32 {
                a.lw(T0, Zero, SPM_STATE + 4 * w);
                a.lw(T1, S4, 4 * w);
                a.xor(T0, T0, T1);
                a.sw(T0, Zero, SPM_STATE + 4 * w);
            }
            a.addi(S4, S4, 16);
            a.addi(S3, S3, -1);
        }
        a.bnez(S3, round_loop);

        // Final round: SubBytes+ShiftRows, AddRoundKey(10), store to DRAM.
        for col in 0..4i32 {
            for row in 0..4i32 {
                let src = ((col + row) % 4) * 4 + row;
                emit_sub_byte(&mut a, SPM_STATE + src, SPM_TMP + col * 4 + row);
            }
        }
        a.slli(T4, S0, 4);
        a.add(T4, T4, A3); // &out[i*16]
        for w in 0..4i32 {
            a.lw(T0, Zero, SPM_TMP + 4 * w);
            a.lw(T1, S4, 4 * w); // s4 now points at rk[160]
            a.xor(T0, T0, T1);
            a.sw(T0, T4, 4 * w);
        }

        a.add(S0, S0, S11);
        a.j(block_loop);
        a.bind(done);
        a.fence();
        a.ecall();
        a.assemble(0).expect("aes assembles")
    }

    /// Runs and validates against [`golden::aes128_ecb`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        let key: [u8; 16] = *b"HammerBlade-2024";
        let plaintext = gen::random_bytes(self.blocks as usize * 16, 0xAE5);
        let expect = golden::aes128_ecb(&plaintext, &key);
        let round_keys = golden::aes128_key_schedule(&key);

        let mut machine = Machine::new(cfg.clone());
        let cell = machine.cell_mut(0);
        let sbox = cell.alloc(256, 64);
        let rk = cell.alloc(176, 64);
        let input = cell.alloc(self.blocks * 16, 64);
        let output = cell.alloc(self.blocks * 16, 64);
        cell.dram_mut().write_bytes(sbox, &golden::AES_SBOX);
        cell.dram_mut().write_bytes(rk, &round_keys);
        cell.dram_mut().write_bytes(input, &plaintext);

        let program = Arc::new(Self::program());
        machine.launch(
            0,
            &program,
            &[
                pgas::local_dram(sbox),
                pgas::local_dram(rk),
                pgas::local_dram(input),
                pgas::local_dram(output),
                self.blocks,
            ],
        );
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();
        let got = machine.cell(0).dram().slice(output, expect.len()).to_vec();
        assert_eq!(got, expect, "AES ciphertext mismatch");
        Ok(BenchStats::collect("AES", summary.cycles, &machine))
    }
}

impl Benchmark for Aes {
    fn name(&self) -> &'static str {
        "AES"
    }

    fn dwarf(&self) -> &'static str {
        "Combinational Logic"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    #[test]
    fn aes_matches_golden_ciphertext() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = Aes::default().run(&cfg, SizeClass::Tiny).unwrap();
        // Compute-bound: core utilization dominated by int execution.
        assert!(stats.core.int_cycles > stats.core.stall(hb_core::StallKind::RemoteLoad));
    }
}
