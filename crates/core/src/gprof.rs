//! Guest-code profiling: exact retired-PC histograms with per-PC
//! stall-cycle attribution.
//!
//! When [`MachineConfig::profile`](crate::MachineConfig::profile) is set,
//! every tile allocates a `TileProfile` at launch and records three
//! things as it executes:
//!
//! - **retires** — one count at the PC of every retired instruction,
//! - **stalls** — one count per stall cycle, at the PC the core was
//!   stalled on, bucketed by [`StallKind`],
//! - **phases** — the value of the last `MARK` CSR store, so histograms
//!   are kept per program phase (kernels that never mark accumulate into
//!   the single [`UNMARKED`] phase).
//!
//! The capture is exact, not sampled: `retired + stalled` summed over the
//! histogram equals the tile's cycle taxonomy. It is also deterministic by
//! construction — each tile writes only its own buffer (no cross-thread
//! state), and the event scheduler's bulk stall credits land on the same
//! PC the dense schedule would have recorded cycle-by-cycle, because a
//! parked tile's PC cannot change while it is parked. Profiles are
//! therefore bit-identical across `HB_THREADS` and `HB_EVENT_CORE`.
//!
//! Folding ([`Machine::guest_profile`](crate::Machine::guest_profile)) is
//! the only aggregation step: tiles merge row-major into a
//! [`GuestProfile`], with any still-outstanding stall debt of parked tiles
//! added virtually (the same owed-aware read the stats accessors use) so a
//! mid-run fold matches the dense schedule too.

use crate::stats::StallKind;
use hb_isa::INSTR_BYTES;

/// Phase id used before the first `MARK` CSR store of a tile.
pub const UNMARKED: u32 = u32::MAX;

/// One phase's histograms: parallel arrays indexed by instruction index.
#[derive(Debug, Clone)]
struct PhaseHist {
    /// Instructions retired at each PC.
    retired: Vec<u64>,
    /// Stall cycles at each PC, `instr_index * StallKind::COUNT + kind`.
    stalls: Vec<u64>,
}

impl PhaseHist {
    fn new(len: usize) -> PhaseHist {
        PhaseHist {
            retired: vec![0; len],
            stalls: vec![0; len * StallKind::COUNT],
        }
    }
}

/// Per-tile capture buffer. Allocated by `Tile::launch` when profiling is
/// configured; every record is two loads, one bounds check and one
/// increment.
#[derive(Debug, Clone)]
pub(crate) struct TileProfile {
    base: u32,
    len: usize,
    /// Index into `phases` of the current phase.
    cur: usize,
    /// `(mark, histograms)` in first-seen order; re-marking an earlier
    /// phase resumes its existing histograms.
    phases: Vec<(u32, PhaseHist)>,
}

impl TileProfile {
    pub(crate) fn new(base: u32, len: usize) -> TileProfile {
        TileProfile {
            base,
            len,
            cur: 0,
            phases: vec![(UNMARKED, PhaseHist::new(len))],
        }
    }

    /// Instruction index of `pc`, if it lies inside the program image
    /// (trapped/wild PCs record nothing).
    #[inline]
    fn idx(&self, pc: u32) -> Option<usize> {
        let off = pc.wrapping_sub(self.base) as usize / INSTR_BYTES as usize;
        (pc >= self.base && off < self.len).then_some(off)
    }

    #[inline]
    pub(crate) fn record_retire(&mut self, pc: u32) {
        if let Some(i) = self.idx(pc) {
            self.phases[self.cur].1.retired[i] += 1;
        }
    }

    #[inline]
    pub(crate) fn record_stall(&mut self, pc: u32, kind: StallKind) {
        self.record_stall_n(pc, kind, 1);
    }

    #[inline]
    pub(crate) fn record_stall_n(&mut self, pc: u32, kind: StallKind, n: u64) {
        if let Some(i) = self.idx(pc) {
            self.phases[self.cur].1.stalls[i * StallKind::COUNT + kind as usize] += n;
        }
    }

    /// Switches the phase bucket (a `MARK` CSR store).
    pub(crate) fn set_phase(&mut self, mark: u32) {
        if let Some(i) = self.phases.iter().position(|(m, _)| *m == mark) {
            self.cur = i;
        } else {
            self.phases.push((mark, PhaseHist::new(self.len)));
            self.cur = self.phases.len() - 1;
        }
    }

    /// The phase currently accumulating.
    pub(crate) fn cur_mark(&self) -> u32 {
        self.phases[self.cur].0
    }

    /// Serializes the capture buffer.
    pub(crate) fn snap_save(&self, w: &mut hb_mem::SnapWriter) {
        w.tag(b"PROF");
        w.u32(self.base);
        w.usize(self.len);
        w.usize(self.cur);
        w.usize(self.phases.len());
        for (mark, hist) in &self.phases {
            w.u32(*mark);
            for &v in &hist.retired {
                w.u64(v);
            }
            for &v in &hist.stalls {
                w.u64(v);
            }
        }
    }

    /// Restores a capture buffer.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation or inconsistent indices.
    pub(crate) fn snap_load(r: &mut hb_mem::SnapReader) -> Result<TileProfile, hb_mem::SnapError> {
        use hb_mem::SnapError;
        r.expect_tag(b"PROF", "TileProfile section")?;
        let base = r.u32()?;
        let len = r.usize()?;
        let cur = r.usize()?;
        let nphases = r.seq_len()?;
        if nphases == 0 || cur >= nphases {
            return Err(SnapError::Bad("TileProfile phase index out of range"));
        }
        let mut phases = Vec::with_capacity(nphases);
        for _ in 0..nphases {
            let mark = r.u32()?;
            let mut hist = PhaseHist::new(len);
            for v in &mut hist.retired {
                *v = r.u64()?;
            }
            for v in &mut hist.stalls {
                *v = r.u64()?;
            }
            phases.push((mark, hist));
        }
        Ok(TileProfile {
            base,
            len,
            cur,
            phases,
        })
    }
}

/// Histograms of one phase, folded across tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProfile {
    /// The `MARK` value that opened the phase ([`UNMARKED`] before any).
    pub mark: u32,
    /// Instructions retired at each PC (indexed by instruction index).
    pub retired: Vec<u64>,
    /// Stall cycles, `instr_index * StallKind::COUNT + kind as usize`.
    pub stalls: Vec<u64>,
}

impl PhaseProfile {
    /// Stall cycles of `kind` attributed to instruction `idx`.
    pub fn stall(&self, idx: usize, kind: StallKind) -> u64 {
        self.stalls[idx * StallKind::COUNT + kind as usize]
    }

    /// All stall cycles attributed to instruction `idx`.
    pub fn stall_cycles(&self, idx: usize) -> u64 {
        self.stalls[idx * StallKind::COUNT..(idx + 1) * StallKind::COUNT]
            .iter()
            .sum()
    }
}

/// A machine-wide guest-code profile: per-phase, per-PC retire and stall
/// histograms folded over every profiled tile, in a deterministic order
/// (phases sorted [`UNMARKED`]-first then by mark value; tiles row-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestProfile {
    /// Byte address of instruction 0.
    pub base: u32,
    /// Instructions in the program image.
    pub instrs: usize,
    /// Per-phase histograms.
    pub phases: Vec<PhaseProfile>,
}

impl GuestProfile {
    pub(crate) fn new(base: u32, instrs: usize) -> GuestProfile {
        GuestProfile {
            base,
            instrs,
            phases: Vec::new(),
        }
    }

    /// Byte address of instruction `idx`.
    pub fn pc_of(&self, idx: usize) -> u32 {
        self.base + (idx as u32) * INSTR_BYTES
    }

    /// Total instructions retired across all phases.
    pub fn retired_total(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.retired.iter().sum::<u64>())
            .sum()
    }

    /// Total stall cycles across all phases.
    pub fn stall_total(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.stalls.iter().sum::<u64>())
            .sum()
    }

    /// The folded phase for `mark`, created in sorted position on first
    /// use ([`UNMARKED`] sorts first so the default phase leads).
    fn phase_mut(&mut self, mark: u32) -> &mut PhaseProfile {
        let key = |m: u32| if m == UNMARKED { None } else { Some(m) };
        let pos = self
            .phases
            .binary_search_by_key(&key(mark), |p| key(p.mark))
            .unwrap_or_else(|insert| {
                self.phases.insert(
                    insert,
                    PhaseProfile {
                        mark,
                        retired: vec![0; self.instrs],
                        stalls: vec![0; self.instrs * StallKind::COUNT],
                    },
                );
                insert
            });
        &mut self.phases[pos]
    }

    /// Accumulates one tile's buffer.
    pub(crate) fn merge_tile(&mut self, tp: &TileProfile) {
        debug_assert_eq!((tp.base, tp.len), (self.base, self.instrs));
        for (mark, hist) in &tp.phases {
            let phase = self.phase_mut(*mark);
            for (dst, src) in phase.retired.iter_mut().zip(&hist.retired) {
                *dst += src;
            }
            for (dst, src) in phase.stalls.iter_mut().zip(&hist.stalls) {
                *dst += src;
            }
        }
    }

    /// Adds stall debt a parked tile still owes (the virtual counterpart
    /// of `Tile::credit_stalls`, at the same unchanged PC).
    pub(crate) fn add_owed(&mut self, mark: u32, pc: u32, kind: StallKind, n: u64) {
        let off = pc.wrapping_sub(self.base) as usize / INSTR_BYTES as usize;
        if pc < self.base || off >= self.instrs {
            return;
        }
        self.phase_mut(mark).stalls[off * StallKind::COUNT + kind as usize] += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_bounds_guarded_and_phase_bucketed() {
        let mut tp = TileProfile::new(0x100, 4);
        tp.record_retire(0x100);
        tp.record_retire(0x10c);
        tp.record_retire(0x0fc); // below base: dropped
        tp.record_retire(0x110); // past the image: dropped
        tp.record_stall(0x104, StallKind::Barrier);
        tp.set_phase(7);
        tp.record_retire(0x100);
        tp.set_phase(UNMARKED); // resume the default phase
        tp.record_stall_n(0x104, StallKind::Barrier, 5);

        let mut gp = GuestProfile::new(0x100, 4);
        gp.merge_tile(&tp);
        assert_eq!(gp.phases.len(), 2);
        assert_eq!(gp.phases[0].mark, UNMARKED, "unmarked phase sorts first");
        assert_eq!(gp.phases[1].mark, 7);
        assert_eq!(gp.phases[0].retired, vec![1, 0, 0, 1]);
        assert_eq!(gp.phases[0].stall(1, StallKind::Barrier), 6);
        assert_eq!(gp.phases[1].retired, vec![1, 0, 0, 0]);
        assert_eq!(gp.retired_total(), 3);
        assert_eq!(gp.stall_total(), 6);
    }

    #[test]
    fn fold_is_order_independent_across_tiles() {
        let mut a = TileProfile::new(0, 2);
        a.set_phase(3);
        a.record_retire(0);
        let mut b = TileProfile::new(0, 2);
        b.set_phase(1);
        b.record_retire(4);

        let mut ab = GuestProfile::new(0, 2);
        ab.merge_tile(&a);
        ab.merge_tile(&b);
        let mut ba = GuestProfile::new(0, 2);
        ba.merge_tile(&b);
        ba.merge_tile(&a);
        assert_eq!(ab, ba);
        // Every tile opens the UNMARKED phase; it sorts first, then marks
        // ascending regardless of which tile introduced them.
        assert_eq!(
            ab.phases.iter().map(|p| p.mark).collect::<Vec<_>>(),
            vec![UNMARKED, 1, 3],
            "phases sort unmarked-first then by mark value"
        );
    }

    #[test]
    fn owed_debt_lands_on_the_parking_pc() {
        let mut gp = GuestProfile::new(0, 2);
        gp.add_owed(UNMARKED, 4, StallKind::Barrier, 10);
        gp.add_owed(UNMARKED, 8, StallKind::Barrier, 99); // out of image
        assert_eq!(gp.phases[0].stall(1, StallKind::Barrier), 10);
        assert_eq!(gp.stall_total(), 10);
    }
}
