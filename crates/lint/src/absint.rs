//! Abstract interpretation of tile resources.
//!
//! A small constant-propagation domain over the GPRs drives an address
//! classifier that mirrors `hb_core::pgas::PgasMap::translate`, letting the
//! linter statically decide where each memory access lands: local SPM, a
//! tile CSR, or the remote network. On top of that, intervals track how many
//! remote operations can be outstanding in the 63-entry scoreboard, which
//! registers have in-flight remote loads, and how many barrier joins each
//! static path has executed.

use crate::cfg::{Cfg, Terminator};
use crate::dataflow::defs_uses;
use crate::{Diagnostic, LintConfig, Rule, Severity};
use hb_core::pgas::{csr, OWN_CELL};
use hb_isa::{Fpr, Gpr, Instr, INSTR_BYTES};

/// Sentinel for an interval bound that widening has given up on.
const UNBOUNDED: u32 = u32::MAX;

/// Constant-propagation lattice value for one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Val {
    /// Unreached (bottom).
    Bot,
    /// Known constant on every path.
    Const(u32),
    /// Statically unknown (top).
    Top,
}

impl Val {
    fn join(self, other: Val) -> Val {
        match (self, other) {
            (Val::Bot, v) | (v, Val::Bot) => v,
            (Val::Const(a), Val::Const(b)) if a == b => Val::Const(a),
            _ => Val::Top,
        }
    }
}

/// Closed interval of possible outstanding-operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: u32,
    hi: u32,
}

impl Interval {
    const ZERO: Interval = Interval { lo: 0, hi: 0 };

    fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Adds `lo..=hi` more operations.
    fn bump(&mut self, lo: u32, hi: u32) {
        self.lo = self.lo.saturating_add(lo);
        if self.hi != UNBOUNDED {
            self.hi = self.hi.saturating_add(hi).min(UNBOUNDED - 1);
        }
    }

    /// At least one operation definitely retired (an interlock stall).
    fn retire_one(&mut self) {
        self.lo = self.lo.saturating_sub(1);
    }

    fn widen(self, newer: Interval) -> Interval {
        Interval {
            lo: if newer.lo < self.lo { 0 } else { self.lo },
            hi: if newer.hi > self.hi {
                UNBOUNDED
            } else {
                self.hi
            },
        }
    }
}

/// Abstract machine state at a program point.
#[derive(Debug, Clone, PartialEq)]
struct State {
    /// Constant-propagation values for the 32 GPRs.
    regs: [Val; 32],
    /// Outstanding remote operations (scoreboard entries).
    ops: Interval,
    /// The subset of `ops` that are posted remote *stores*.
    stores: Interval,
    /// Register-mask (see `dataflow`) of registers whose value is still in
    /// flight from a remote load or AMO.
    pending: u64,
    /// Register-mask of *tile-divergent* values: derived from the tile's
    /// own coordinates/rank, the cycle counter, or an AMO result. A branch
    /// on a divergent value can send different tiles down different paths,
    /// which is what turns unbalanced barrier counts into a deadlock.
    div: u64,
}

impl State {
    fn entry(lc: &LintConfig) -> State {
        // `Tile::launch` zeroes every register, then sets sp to the top of
        // the SPM and a0..a7 to the kernel arguments.
        let mut regs = [Val::Const(0); 32];
        regs[Gpr::Sp.index() as usize] = Val::Const(lc.spm_bytes);
        for r in &mut regs[10..=17] {
            *r = Val::Top;
        }
        State {
            regs,
            ops: Interval::ZERO,
            stores: Interval::ZERO,
            pending: 0,
            div: 0,
        }
    }

    fn join(&self, other: &State) -> State {
        let mut regs = [Val::Bot; 32];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = self.regs[i].join(other.regs[i]);
        }
        State {
            regs,
            ops: self.ops.join(other.ops),
            stores: self.stores.join(other.stores),
            pending: self.pending | other.pending,
            div: self.div | other.div,
        }
    }

    fn widen(&self, newer: &State) -> State {
        State {
            regs: newer.regs,
            ops: self.ops.widen(newer.ops),
            stores: self.stores.widen(newer.stores),
            pending: newer.pending,
            div: newer.div,
        }
    }

    fn get(&self, r: Gpr) -> Val {
        self.regs[r.index() as usize]
    }

    fn set(&mut self, r: Gpr, v: Val) {
        if r != Gpr::Zero {
            self.regs[r.index() as usize] = v;
        }
    }
}

/// Where a statically-classified access lands.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Class {
    /// In-bounds local SPM.
    Local,
    /// A CSR in the local window (carries the CSR offset).
    Csr(u32),
    /// Definitely remote: group SPM or any DRAM space.
    Remote,
    /// Address not statically known.
    Unknown,
    /// Definitely faults in `PgasMap::translate` or the tile access checks.
    Bad(Rule, String),
}

fn classify(v: Val, width: u32, lc: &LintConfig) -> Class {
    let c = match v {
        Val::Const(c) => c,
        _ => return Class::Unknown,
    };
    if width > 1 && c % width != 0 {
        return Class::Bad(
            Rule::UnalignedAccess,
            format!("address {c:#010x} is not {width}-byte aligned"),
        );
    }
    match c >> 30 {
        0b00 => {
            if c + width <= lc.spm_bytes {
                Class::Local
            } else if (0x1000..0x1100).contains(&c) {
                Class::Csr(c)
            } else {
                Class::Bad(
                    Rule::SpmOutOfBounds,
                    format!(
                        "address {c:#010x} is outside the {}-byte local SPM and the CSR window",
                        lc.spm_bytes
                    ),
                )
            }
        }
        0b01 => {
            let y = (c >> 24) & 0x3f;
            let x = (c >> 18) & 0x3f;
            let offset = c & 0x3ffff;
            if x >= u32::from(lc.cell_w) || y >= u32::from(lc.cell_h) {
                Class::Bad(
                    Rule::SpmOutOfBounds,
                    format!(
                        "group-SPM EVA {c:#010x} names tile ({x}, {y}) outside the {}x{} cell",
                        lc.cell_w, lc.cell_h
                    ),
                )
            } else if offset + width > lc.spm_bytes {
                Class::Bad(
                    Rule::SpmOutOfBounds,
                    format!(
                        "group-SPM EVA {c:#010x} offset {offset:#x} overruns the {}-byte SPM",
                        lc.spm_bytes
                    ),
                )
            } else {
                Class::Remote
            }
        }
        0b10 => {
            let cell = (c >> 24) & 0x3f;
            let addr = c & 0xff_ffff;
            if cell != u32::from(OWN_CELL) && cell >= u32::from(lc.num_cells) {
                Class::Bad(
                    Rule::SpmOutOfBounds,
                    format!(
                        "DRAM EVA {c:#010x} names cell {cell} but the machine has {} cell(s)",
                        lc.num_cells
                    ),
                )
            } else if addr + width > lc.dram_bytes_per_cell {
                Class::Bad(
                    Rule::SpmOutOfBounds,
                    format!(
                        "DRAM EVA {c:#010x} offset {addr:#x} overruns the {}-byte cell window",
                        lc.dram_bytes_per_cell
                    ),
                )
            } else {
                Class::Remote
            }
        }
        _ => Class::Remote, // Global DRAM: hashed, always in range.
    }
}

fn csr_load_ok(offset: u32) -> bool {
    matches!(
        offset,
        csr::TILE_X
            | csr::TILE_Y
            | csr::TG_X
            | csr::TG_Y
            | csr::TG_W
            | csr::TG_H
            | csr::TG_RANK
            | csr::TG_SIZE
            | csr::TG_LIVE_RANK
            | csr::TG_LIVE_SIZE
            | csr::TG_ADOPT
            | csr::CELL_W
            | csr::CELL_H
            | csr::CELL_ID
            | csr::NUM_CELLS
            | csr::CYCLE
    ) || (csr::ARG0..csr::ARG0 + 32).contains(&offset)
}

/// Per-instruction facts collected while re-walking blocks after the
/// fixpoint, consumed by the loop-level and barrier-phase checks.
struct Recorder {
    diags: Vec<Diagnostic>,
    barrier_at: Vec<bool>,
    fence_at: Vec<bool>,
    remote_load_at: Vec<bool>,
    remote_store_at: Vec<bool>,
    pending_use_at: Vec<bool>,
    divergent_branch_at: Vec<bool>,
}

struct Interp<'a> {
    lc: &'a LintConfig,
    cfg: &'a Cfg,
}

impl Interp<'_> {
    fn pc(&self, i: usize) -> u32 {
        self.cfg.pc_of(i)
    }

    fn emit(
        &self,
        rec: &mut Option<&mut Recorder>,
        sev: Severity,
        i: usize,
        rule: Rule,
        msg: String,
    ) {
        if let Some(r) = rec {
            r.diags.push(Diagnostic {
                severity: sev,
                pc: Some(self.pc(i)),
                rule,
                message: msg,
            });
        }
    }

    /// Interprets one instruction, updating `st` and (if `rec` is set)
    /// reporting diagnostics and per-instruction facts.
    fn step(&self, st: &mut State, i: usize, instr: &Instr, mut rec: Option<&mut Recorder>) {
        // A read of a register with an in-flight remote value stalls the
        // core until the value arrives (per-register interlock), after
        // which that operation has retired.
        let (_, uses) = defs_uses(instr);
        let stalled = uses & st.pending;
        if stalled != 0 {
            for bit in 0..64u32 {
                if stalled & (1 << bit) == 0 {
                    continue;
                }
                let name = if bit < 32 {
                    Gpr::from_index(bit as u8).abi_name()
                } else {
                    Fpr::from_index((bit - 32) as u8).abi_name()
                };
                self.emit(
                    &mut rec,
                    Severity::Info,
                    i,
                    Rule::RemoteUseStall,
                    format!(
                        "{name} is consumed while its remote load may still be in flight; \
                         the core stalls here (consider scheduling independent work first)"
                    ),
                );
                st.ops.retire_one();
            }
            st.pending &= !stalled;
            if let Some(r) = rec.as_deref_mut() {
                r.pending_use_at[i] = true;
            }
        }

        // Divergence taint, computed against the pre-instruction state.
        // Values flowing from the tile's own identity (coordinates, rank,
        // cycle counter) or from AMO results differ across tiles; anything
        // else is optimistically assumed uniform (memory contents are not
        // tracked). Link registers and upper-immediates are always uniform.
        let (defs, _) = defs_uses(instr);
        let divergent_def = match *instr {
            Instr::Lui { .. } | Instr::Auipc { .. } | Instr::Jal { .. } | Instr::Jalr { .. } => {
                false
            }
            Instr::Amo { .. } => true,
            Instr::Load { rs1, offset, .. } => match self.effective(st, rs1, offset) {
                Val::Const(c) => {
                    matches!(
                        c,
                        csr::TILE_X
                            | csr::TILE_Y
                            | csr::TG_RANK
                            | csr::TG_LIVE_RANK
                            | csr::TG_ADOPT
                            | csr::CYCLE
                    ) || st.div & reg_bit_gpr(rs1) != 0
                }
                _ => st.div & reg_bit_gpr(rs1) != 0,
            },
            _ => uses & st.div != 0,
        };
        if let Instr::Branch { .. } = instr {
            if uses & st.div != 0 {
                if let Some(r) = rec.as_deref_mut() {
                    r.divergent_branch_at[i] = true;
                }
            }
        }
        if defs != 0 {
            if divergent_def {
                st.div |= defs;
            } else {
                st.div &= !defs;
            }
        }

        match *instr {
            Instr::Lui { rd, imm } => st.set(rd, Val::Const((imm as u32) << 12)),
            Instr::Auipc { rd, imm } => {
                st.set(rd, Val::Const(self.pc(i).wrapping_add((imm as u32) << 12)));
            }
            Instr::Jal { rd, .. } | Instr::Jalr { rd, .. } => {
                st.set(rd, Val::Const(self.pc(i).wrapping_add(INSTR_BYTES)));
            }
            Instr::Branch { .. } => {}
            Instr::OpImm { op, rd, rs1, imm } => {
                let v = match st.get(rs1) {
                    Val::Const(a) => Val::Const(op.eval(a, imm)),
                    Val::Bot => Val::Bot,
                    Val::Top => Val::Top,
                };
                st.set(rd, v);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let v = match (st.get(rs1), st.get(rs2)) {
                    (Val::Const(a), Val::Const(b)) => Val::Const(op.eval(a, b)),
                    _ => Val::Top,
                };
                st.set(rd, v);
            }
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.effective(st, rs1, offset);
                self.load_effect(st, i, addr, width.bytes(), LoadDst::Int(rd), &mut rec);
            }
            Instr::Flw { rd, rs1, offset } => {
                let addr = self.effective(st, rs1, offset);
                self.load_effect(st, i, addr, 4, LoadDst::Fp(rd), &mut rec);
            }
            Instr::Store {
                width,
                rs1,
                rs2: _,
                offset,
            } => {
                let addr = self.effective(st, rs1, offset);
                self.store_effect(st, i, addr, width.bytes(), &mut rec);
            }
            Instr::Fsw {
                rs1,
                rs2: _,
                offset,
            } => {
                let addr = self.effective(st, rs1, offset);
                self.store_effect(st, i, addr, 4, &mut rec);
            }
            Instr::Fence => {
                st.ops = Interval::ZERO;
                st.stores = Interval::ZERO;
                st.pending = 0;
                if let Some(r) = rec.as_deref_mut() {
                    r.fence_at[i] = true;
                }
            }
            Instr::Ecall => {
                if st.stores.hi > 0 {
                    self.emit(
                        &mut rec,
                        Severity::Warning,
                        i,
                        Rule::UnfencedExit,
                        "tile can finish with posted remote stores still in flight; \
                         add a fence before ecall so results are visible"
                            .to_owned(),
                    );
                }
            }
            Instr::Ebreak => {}
            Instr::Amo { rd, rs1, .. } => {
                let addr = self.effective(st, rs1, 0);
                match classify(addr, 4, self.lc) {
                    Class::Local | Class::Csr(_) => self.emit(
                        &mut rec,
                        Severity::Error,
                        i,
                        Rule::AmoToLocal,
                        "AMO targets the local SPM/CSR space; HammerBlade executes atomics \
                         at cache banks and remote SPMs only (the tile traps here)"
                            .to_owned(),
                    ),
                    Class::Bad(rule, msg) => self.emit(&mut rec, Severity::Error, i, rule, msg),
                    Class::Remote => {
                        self.issue(st, i, 1, &mut rec);
                        st.pending |= reg_bit_gpr(rd);
                    }
                    Class::Unknown => {
                        st.ops.bump(0, 1);
                        st.pending |= reg_bit_gpr(rd);
                    }
                }
                st.set(rd, Val::Top);
            }
            Instr::LrW { rd, .. } | Instr::ScW { rd, .. } => {
                self.emit(
                    &mut rec,
                    Severity::Error,
                    i,
                    Rule::AmoToLocal,
                    "lr/sc are not supported by the tile (it traps); use AMOs".to_owned(),
                );
                st.set(rd, Val::Top);
            }
            Instr::FpOp { .. } | Instr::Fma { .. } => {}
            Instr::FpCmp { rd, .. }
            | Instr::FcvtWS { rd, .. }
            | Instr::FcvtWuS { rd, .. }
            | Instr::FmvXW { rd, .. } => st.set(rd, Val::Top),
            Instr::FcvtSW { .. } | Instr::FcvtSWu { .. } | Instr::FmvWX { .. } => {}
        }
    }

    fn effective(&self, st: &State, base: Gpr, offset: i32) -> Val {
        match st.get(base) {
            Val::Const(b) => Val::Const(b.wrapping_add(offset as u32)),
            v => v,
        }
    }

    /// Accounts for a newly-issued remote operation and reports scoreboard
    /// pressure when the upper bound first crosses the capacity.
    fn issue(&self, st: &mut State, i: usize, definite: u32, rec: &mut Option<&mut Recorder>) {
        let before = st.ops.hi;
        st.ops.bump(definite, 1);
        if before != UNBOUNDED
            && before <= self.lc.max_outstanding
            && st.ops.hi > self.lc.max_outstanding
        {
            self.emit(
                rec,
                Severity::Warning,
                i,
                Rule::ScoreboardPressure,
                format!(
                    "up to {} remote operations can be outstanding here, exceeding the \
                     {}-entry scoreboard; the core will stall for credits (fence earlier \
                     or batch fewer requests)",
                    st.ops.hi, self.lc.max_outstanding
                ),
            );
        }
    }

    fn load_effect(
        &self,
        st: &mut State,
        i: usize,
        addr: Val,
        width: u32,
        dst: LoadDst,
        rec: &mut Option<&mut Recorder>,
    ) {
        match classify(addr, width, self.lc) {
            Class::Local => {}
            Class::Csr(offset) => {
                if offset == csr::BARRIER {
                    self.emit(
                        rec,
                        Severity::Error,
                        i,
                        Rule::BadCsrAccess,
                        "the barrier CSR is store-only; loading it traps".to_owned(),
                    );
                } else if !csr_load_ok(offset) {
                    self.emit(
                        rec,
                        Severity::Error,
                        i,
                        Rule::BadCsrAccess,
                        format!("load of unknown CSR {offset:#x} traps"),
                    );
                }
            }
            Class::Remote => {
                self.issue(st, i, 1, rec);
                st.pending |= dst.bit();
                if let Some(r) = rec.as_deref_mut() {
                    r.remote_load_at[i] = true;
                }
            }
            Class::Unknown => {
                st.ops.bump(0, 1);
                st.pending |= dst.bit();
            }
            Class::Bad(rule, msg) => self.emit(rec, Severity::Error, i, rule, msg),
        }
        if let LoadDst::Int(rd) = dst {
            st.set(rd, Val::Top);
        }
    }

    fn store_effect(
        &self,
        st: &mut State,
        i: usize,
        addr: Val,
        width: u32,
        rec: &mut Option<&mut Recorder>,
    ) {
        match classify(addr, width, self.lc) {
            Class::Local => {}
            Class::Csr(offset) => {
                if offset == csr::BARRIER {
                    if st.stores.hi > 0 {
                        self.emit(
                            rec,
                            Severity::Warning,
                            i,
                            Rule::BarrierWithoutFence,
                            "barrier join while posted remote stores may still be in \
                             flight; peers released by this barrier can read stale data \
                             (fence first)"
                                .to_owned(),
                        );
                    }
                    if let Some(r) = rec.as_deref_mut() {
                        r.barrier_at[i] = true;
                    }
                } else if offset == csr::MARK {
                    // Kernel-phase marker: a legal store-only no-op.
                } else {
                    self.emit(
                        rec,
                        Severity::Error,
                        i,
                        Rule::BadCsrAccess,
                        format!("store to read-only CSR {offset:#x} traps"),
                    );
                }
            }
            Class::Remote => {
                self.issue(st, i, 1, rec);
                st.stores.bump(1, 1);
                if let Some(r) = rec.as_deref_mut() {
                    r.remote_store_at[i] = true;
                }
            }
            Class::Unknown => {
                st.ops.bump(0, 1);
                st.stores.bump(0, 1);
            }
            Class::Bad(rule, msg) => self.emit(rec, Severity::Error, i, rule, msg),
        }
    }
}

#[derive(Clone, Copy)]
enum LoadDst {
    Int(Gpr),
    Fp(Fpr),
}

impl LoadDst {
    fn bit(self) -> u64 {
        match self {
            LoadDst::Int(Gpr::Zero) => 0,
            LoadDst::Int(r) => 1u64 << r.index(),
            LoadDst::Fp(r) => 1u64 << (32 + r.index()),
        }
    }
}

fn reg_bit_gpr(r: Gpr) -> u64 {
    if r == Gpr::Zero {
        0
    } else {
        1u64 << r.index()
    }
}

/// Runs the resource abstract interpretation and all derived checks.
pub fn check_resources(cfg: &Cfg, instrs: &[Instr], lc: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let n = cfg.blocks.len();
    if n == 0 {
        return;
    }
    let interp = Interp { lc, cfg };
    let reachable = cfg.reachable();
    let rpo = cfg.reverse_postorder();

    // --- Fixpoint over block entry states, with interval widening. ---
    let mut in_state: Vec<Option<State>> = vec![None; n];
    in_state[0] = Some(State::entry(lc));
    let mut bumps = vec![0u32; n];
    loop {
        let mut changed = false;
        for &b in &rpo {
            let Some(st_in) = in_state[b].clone() else {
                continue;
            };
            let mut st = st_in;
            let (start, end) = (cfg.blocks[b].start, cfg.blocks[b].end);
            for (i, instr) in instrs[start..end].iter().enumerate() {
                interp.step(&mut st, start + i, instr, None);
            }
            for &s in &cfg.blocks[b].succs {
                let merged = match &in_state[s] {
                    None => st.clone(),
                    Some(old) => old.join(&st),
                };
                if in_state[s].as_ref() != Some(&merged) {
                    bumps[s] += 1;
                    let merged = if bumps[s] > 4 {
                        in_state[s].as_ref().unwrap_or(&merged).widen(&merged)
                    } else {
                        merged
                    };
                    if in_state[s].as_ref() != Some(&merged) {
                        in_state[s] = Some(merged);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- Reporting pass: walk each reachable block once from its fixpoint
    // entry state, emitting diagnostics and per-instruction facts. ---
    let mut rec = Recorder {
        diags: Vec::new(),
        barrier_at: vec![false; instrs.len()],
        fence_at: vec![false; instrs.len()],
        remote_load_at: vec![false; instrs.len()],
        remote_store_at: vec![false; instrs.len()],
        pending_use_at: vec![false; instrs.len()],
        divergent_branch_at: vec![false; instrs.len()],
    };
    for b in 0..n {
        if !reachable[b] {
            continue;
        }
        let Some(st_in) = in_state[b].clone() else {
            continue;
        };
        let mut st = st_in;
        let (start, end) = (cfg.blocks[b].start, cfg.blocks[b].end);
        for (i, instr) in instrs[start..end].iter().enumerate() {
            interp.step(&mut st, start + i, instr, Some(&mut rec));
        }
    }

    let loop_diags = check_loop_saturation(cfg, &reachable, &rec, lc);
    rec.diags.extend(loop_diags);
    check_barrier_phases(
        cfg,
        &reachable,
        &rec.barrier_at,
        &rec.divergent_branch_at,
        &mut rec.diags,
    );
    check_icache(cfg, instrs.len(), lc, &mut rec.diags);

    diags.append(&mut rec.diags);
}

/// Flags loops that issue remote operations every iteration with no fence
/// and no consuming stall inside the loop: scoreboard occupancy then grows
/// monotonically until the 63-entry limit throttles the core.
fn check_loop_saturation(
    cfg: &Cfg,
    reachable: &[bool],
    rec: &Recorder,
    lc: &LintConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen_heads = std::collections::HashSet::new();
    for (tail, head) in cfg.back_edges() {
        if !reachable[head] || !seen_heads.insert(head) {
            continue;
        }
        let body = cfg.natural_loop(tail, head);
        let mut loads = false;
        let mut stores = false;
        let mut fenced = false;
        let mut consumed = false;
        for &b in &body {
            for i in cfg.blocks[b].start..cfg.blocks[b].end {
                loads |= rec.remote_load_at[i];
                stores |= rec.remote_store_at[i];
                fenced |= rec.fence_at[i];
                consumed |= rec.pending_use_at[i];
            }
        }
        if fenced {
            continue;
        }
        if stores || (loads && !consumed) {
            out.push(Diagnostic {
                severity: Severity::Info,
                pc: Some(cfg.pc_of(cfg.blocks[head].start)),
                rule: Rule::ScoreboardPressure,
                message: format!(
                    "loop at {:#x} issues remote {} every iteration without a fence; \
                     occupancy accumulates until the {}-entry scoreboard throttles issue",
                    cfg.pc_of(cfg.blocks[head].start),
                    if stores { "stores" } else { "loads" },
                    lc.max_outstanding
                ),
            });
        }
    }
    out
}

/// Immediate dominators over reachable blocks (Cooper–Harvey–Kennedy).
/// `idom[0] == 0`; unreachable blocks map to `usize::MAX`.
fn idoms(cfg: &Cfg, reachable: &[bool]) -> Vec<usize> {
    const UNDEF: usize = usize::MAX;
    let n = cfg.blocks.len();
    let rpo = cfg.reverse_postorder();
    let mut rpo_pos = vec![UNDEF; n];
    for (pos, &b) in rpo.iter().enumerate() {
        rpo_pos[b] = pos;
    }
    let preds = cfg.preds();
    let mut idom = vec![UNDEF; n];
    if n == 0 {
        return idom;
    }
    idom[0] = 0;
    let intersect = |idom: &[usize], rpo_pos: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_pos[a] > rpo_pos[b] {
                a = idom[a];
            }
            while rpo_pos[b] > rpo_pos[a] {
                b = idom[b];
            }
        }
        a
    };
    loop {
        let mut changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom = UNDEF;
            for &p in &preds[b] {
                if !reachable[p] || idom[p] == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    p
                } else {
                    intersect(&idom, &rpo_pos, new_idom, p)
                };
            }
            if new_idom != UNDEF && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    idom
}

/// Nearest dominator of `b` (inclusive of `idom[b]`) ending in a
/// conditional branch — the branch that decides which of the conflicting
/// paths a tile takes.
fn dominating_branch(cfg: &Cfg, idom: &[usize], b: usize) -> Option<usize> {
    let mut d = *idom.get(b)?;
    if d == usize::MAX {
        return None;
    }
    loop {
        if cfg.blocks[d].term == Terminator::Branch {
            return Some(d);
        }
        if d == 0 {
            return None;
        }
        let up = idom[d];
        if up == d || up == usize::MAX {
            return None;
        }
        d = up;
    }
}

/// Nearest common dominator of two blocks.
fn common_dominator(idom: &[usize], a: usize, b: usize) -> Option<usize> {
    let mut seen = std::collections::HashSet::new();
    let mut x = a;
    loop {
        seen.insert(x);
        if x == 0 || idom.get(x).copied()? == usize::MAX {
            break;
        }
        let up = idom[x];
        if up == x {
            break;
        }
        x = up;
    }
    let mut y = b;
    loop {
        if seen.contains(&y) {
            return Some(y);
        }
        if y == 0 || idom.get(y).copied()? == usize::MAX {
            return None;
        }
        let up = idom[y];
        if up == y {
            return None;
        }
        y = up;
    }
}

/// Checks that every static path executes the same barrier-join sequence.
///
/// Phases propagate over the acyclic skeleton of the CFG (back edges
/// removed): a join whose predecessors carry different phase counts means
/// tiles taking different paths join a different number of barriers. Each
/// conflict is attributed to the nearest dominating conditional branch: a
/// branch on a *tile-divergent* value (rank, coordinates, AMO result)
/// definitely deadlocks the group barrier — an error. A branch on a value
/// the analysis believes is tile-uniform (e.g. a flag every tile reads from
/// shared memory) keeps all tiles on the same path, so the imbalance is
/// only reported as info. Program exits must likewise agree.
fn check_barrier_phases(
    cfg: &Cfg,
    reachable: &[bool],
    barrier_at: &[bool],
    divergent_branch_at: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    let n = cfg.blocks.len();
    if n == 0 {
        return;
    }
    let back: std::collections::HashSet<(usize, usize)> = cfg.back_edges().into_iter().collect();
    let preds = cfg.preds();
    let idom = idoms(cfg, reachable);
    let count: Vec<u32> = cfg
        .blocks
        .iter()
        .map(|b| (b.start..b.end).filter(|&i| barrier_at[i]).count() as u32)
        .collect();
    // Severity and framing for one conflict, based on the deciding branch.
    let attribute = |decider: Option<usize>| -> (Severity, String) {
        match decider {
            Some(d) => {
                let branch_pc = cfg.pc_of(cfg.blocks[d].end - 1);
                if divergent_branch_at[cfg.blocks[d].end - 1] {
                    (
                        Severity::Error,
                        format!(
                            "the deciding branch at {branch_pc:#x} depends on a \
                             tile-divergent value, so tiles take different paths and \
                             deadlock the group barrier"
                        ),
                    )
                } else {
                    (
                        Severity::Info,
                        format!(
                            "safe only because the deciding branch at {branch_pc:#x} \
                             appears tile-uniform; if it can differ across tiles the \
                             group barrier deadlocks"
                        ),
                    )
                }
            }
            None => (
                Severity::Error,
                "no single deciding branch found; if tiles can take different paths \
                 the group barrier deadlocks"
                    .to_owned(),
            ),
        }
    };

    let mut phase: Vec<Option<u32>> = vec![None; n];
    phase[0] = Some(0);
    for &b in &cfg.reverse_postorder() {
        if b == 0 {
            continue;
        }
        let mut agreed: Option<u32> = None;
        let mut conflict = None;
        for &p in &preds[b] {
            if back.contains(&(p, b)) || !reachable[p] {
                continue;
            }
            let Some(pp) = phase[p] else { continue };
            let v = pp + count[p];
            match agreed {
                None => agreed = Some(v),
                Some(a) if a != v => conflict = Some((a, v)),
                Some(_) => {}
            }
        }
        if let Some((a, v)) = conflict {
            let (severity, why) = attribute(dominating_branch(cfg, &idom, b));
            diags.push(Diagnostic {
                severity,
                pc: Some(cfg.pc_of(cfg.blocks[b].start)),
                rule: Rule::BarrierMismatch,
                message: format!(
                    "paths joining at {:#x} have executed different numbers of barrier \
                     joins ({} vs {}); {why}",
                    cfg.pc_of(cfg.blocks[b].start),
                    a.min(v),
                    a.max(v),
                ),
            });
        }
        phase[b] = agreed;
    }

    // Every exit must agree too: otherwise some tiles finish while others
    // still wait at a barrier.
    let mut exit_phase: Option<(u32, usize)> = None;
    for (bi, b) in cfg.blocks.iter().enumerate() {
        if !reachable[bi] || b.term != Terminator::Exit {
            continue;
        }
        let Some(p) = phase[bi] else { continue };
        let v = p + count[bi];
        match exit_phase {
            None => exit_phase = Some((v, bi)),
            Some((e, first)) if e != v => {
                let decider = common_dominator(&idom, first, bi)
                    .and_then(|cd| {
                        if cfg.blocks[cd].term == Terminator::Branch {
                            Some(cd)
                        } else {
                            dominating_branch(cfg, &idom, cd)
                        }
                    })
                    .or_else(|| dominating_branch(cfg, &idom, bi));
                let (severity, why) = attribute(decider);
                diags.push(Diagnostic {
                    severity,
                    pc: Some(cfg.pc_of(b.end - 1)),
                    rule: Rule::BarrierMismatch,
                    message: format!("program exits disagree on barrier count ({e} vs {v}); {why}"),
                });
            }
            Some(_) => {}
        }
    }
}

/// Footprint checks against the direct-mapped instruction cache.
fn check_icache(cfg: &Cfg, n_instrs: usize, lc: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let bytes = n_instrs as u32 * INSTR_BYTES;
    if bytes > lc.icache_bytes {
        diags.push(Diagnostic {
            severity: Severity::Info,
            pc: None,
            rule: Rule::IcacheFootprint,
            message: format!(
                "program is {bytes} bytes but the icache holds {}; expect capacity \
                 misses when the working set spans the image",
                lc.icache_bytes
            ),
        });
    }
    let mut seen_heads = std::collections::HashSet::new();
    for (tail, head) in cfg.back_edges() {
        if !seen_heads.insert(head) {
            continue;
        }
        let body = cfg.natural_loop(tail, head);
        let lo = body.iter().map(|&b| cfg.blocks[b].start).min().unwrap_or(0);
        let hi = body.iter().map(|&b| cfg.blocks[b].end).max().unwrap_or(0);
        let span = (hi - lo) as u32 * INSTR_BYTES;
        if span > lc.icache_bytes {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                pc: Some(cfg.pc_of(cfg.blocks[head].start)),
                rule: Rule::IcacheLoopSpill,
                message: format!(
                    "loop at {:#x} spans {span} bytes, larger than the {}-byte \
                     direct-mapped icache: every iteration misses",
                    cfg.pc_of(cfg.blocks[head].start),
                    lc.icache_bytes
                ),
            });
        }
    }
}
