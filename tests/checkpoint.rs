//! The checkpoint/restore determinism contract: a run restored from a
//! mid-kernel checkpoint and continued must be *bit-identical* to the
//! uninterrupted twin — every architectural counter, every telemetry
//! window, the guest-code profile and the final DRAM image — across
//! worker-thread counts {1, 4} and the dense/event tile schedules, the
//! same matrix every prior subsystem's determinism leg pins down.
//!
//! The checkpoint itself is also deterministic: capturing at the same
//! cycle from a 1-thread and a 4-thread run must produce byte-identical
//! files, which is what lets `hb-serve` content-address shared warm
//! checkpoints.

use hammerblade::ckpt;
use hammerblade::core::observe::MachineObserver;
use hammerblade::core::profile::CellProfile;
use hammerblade::core::{pgas, CellDim, CoreStats, Machine, MachineConfig, SnapshotDram};
use hammerblade::kernels::{suite, Benchmark, Sgemm, SizeClass};
use hammerblade::obs::{Keep, Sampler, Telemetry};
use hammerblade::workloads::gen;
use std::sync::{Arc, Mutex};

const BUDGET: u64 = 200_000_000;

fn cfg_with(threads: usize, event_core: bool) -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 4, y: 2 },
        threads,
        event_core,
        ..MachineConfig::baseline_16x8()
    }
}

/// FNV-1a digest over every Cell's flushed DRAM image (the same digest
/// `hb-serve` classifies fault outcomes with).
fn dram_digest(machine: &Machine) -> u64 {
    let snap = SnapshotDram::from_machine(machine);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in 0..machine.num_cells() {
        for &b in snap.cell(c as u8) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Observer that encodes one checkpoint the first time the machine
/// reaches `due`, then goes quiet. Observation is read-only, so the run
/// it rides on stays bit-identical to an unobserved one.
#[derive(Debug)]
struct CkptCapture {
    due: u64,
    slot: Arc<Mutex<Option<Vec<u8>>>>,
}

impl MachineObserver for CkptCapture {
    fn sample(&mut self, machine: &mut Machine) {
        *self.slot.lock().unwrap() = Some(ckpt::encode(machine));
        self.due = u64::MAX;
    }

    fn next_due(&self) -> u64 {
        self.due
    }

    fn finish(&mut self, _machine: &mut Machine) {}
}

/// Runs a benchmark with a [`CkptCapture`] attached (via the thread-local
/// observer factory, the same hook telemetry uses) and returns the stats
/// plus the checkpoint captured at cycle `at`.
fn run_with_capture(
    bench: &dyn Benchmark,
    cfg: &MachineConfig,
    at: u64,
) -> (hammerblade::kernels::BenchStats, Vec<u8>) {
    let slot: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let captured = slot.clone();
    let scope = hammerblade::core::set_observer_factory(move |_cfg| {
        Some(Box::new(CkptCapture {
            due: at,
            slot: captured.clone(),
        }) as Box<dyn MachineObserver>)
    });
    let stats = bench
        .run(cfg, SizeClass::Tiny)
        .unwrap_or_else(|e| panic!("{} (capture run) failed: {e}", bench.name()));
    drop(scope);
    let blob = slot
        .lock()
        .unwrap()
        .take()
        .unwrap_or_else(|| panic!("{}: no checkpoint captured at cycle {at}", bench.name()));
    (stats, blob)
}

/// What a restored-and-continued run finished with.
struct Finish {
    cycles: u64,
    core: CoreStats,
    hbm: hammerblade::mem::Hbm2Stats,
    cache: hammerblade::cache::CacheStats,
    bisection: hammerblade::noc::LinkStats,
    east_busy: Vec<u64>,
    digest: u64,
}

/// Restores `blob` into a fresh machine built from `cfg` and runs it to
/// completion.
fn continue_from(blob: &[u8], cfg: &MachineConfig) -> Finish {
    let mut machine = Machine::new(cfg.clone());
    ckpt::restore(&mut machine, blob).expect("restore");
    machine.run(BUDGET).expect("continued run");
    machine.flush_all_caches();
    let digest = dram_digest(&machine);
    let cell = machine.cell(0);
    Finish {
        cycles: machine.cycle(),
        core: cell.core_stats(),
        hbm: *cell.hbm_stats(),
        cache: cell.cache_stats(),
        bisection: cell.request_bisection(),
        east_busy: CellProfile::capture(cell).east_busy,
        digest,
    }
}

/// A coprime-ish capture cycle strictly inside the run.
fn capture_cycle(total: u64) -> u64 {
    if total > 9973 {
        9973
    } else {
        (total * 2 / 3).max(1) | 1
    }
}

#[test]
fn restored_run_is_bit_identical_for_every_kernel() {
    let base = cfg_with(1, true);
    for bench in suite() {
        let name = bench.name();
        // Uninterrupted twin (unobserved — attaching the capture observer
        // must not change any of its numbers, which the asserts below
        // double-check via the capture run's own stats).
        let reference = bench
            .run(&base, SizeClass::Tiny)
            .unwrap_or_else(|e| panic!("{name} (reference) failed: {e}"));
        let at = capture_cycle(reference.cycles);

        let (stats1, blob) = run_with_capture(bench.as_ref(), &base, at);
        assert_eq!(
            stats1.cycles, reference.cycles,
            "{name}: capture perturbed the run"
        );
        assert_eq!(
            stats1.core, reference.core,
            "{name}: capture perturbed counters"
        );

        // The checkpoint is content-deterministic across worker threads.
        let (_, blob4) = run_with_capture(bench.as_ref(), &cfg_with(4, true), at);
        assert_eq!(
            blob, blob4,
            "{name}: checkpoint bytes differ between 1 and 4 worker threads"
        );

        // Continue the same checkpoint under every host-knob combination.
        let mut digests = Vec::new();
        for threads in [1, 4] {
            for event_core in [false, true] {
                let tag = format!("{name} threads={threads} event={event_core}");
                let fin = continue_from(&blob, &cfg_with(threads, event_core));
                assert_eq!(fin.cycles, reference.cycles, "{tag}: cycle count diverged");
                assert_eq!(fin.core, reference.core, "{tag}: core counters diverged");
                assert_eq!(fin.hbm, reference.hbm, "{tag}: HBM2 counters diverged");
                assert_eq!(fin.cache, reference.cache, "{tag}: cache counters diverged");
                assert_eq!(
                    fin.bisection, reference.bisection,
                    "{tag}: NoC bisection counters diverged"
                );
                assert_eq!(
                    fin.east_busy, reference.profile.east_busy,
                    "{tag}: per-router link activity diverged"
                );
                digests.push((tag, fin.digest));
            }
        }
        for w in digests.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "{name}: final DRAM digests diverge ({} vs {})",
                w[0].0, w[1].0
            );
        }
    }
}

/// Builds a machine with the seeded SPM-blocked SGEMM launched — the same
/// campaign workload `hb-serve` warm-checkpoints — for the legs that need
/// direct mid-run control.
fn sgemm_machine(cfg: &MachineConfig) -> Machine {
    let mut machine = Machine::new(cfg.clone());
    let (m, k, n) = (32usize, 16usize, 32usize);
    let a_host = gen::dense_matrix(m, k, 0xA);
    let b_host = gen::dense_matrix(k, n, 0xB);
    let cell = machine.cell_mut(0);
    let a_dev = cell.alloc((m * k * 4) as u32, 64);
    let b_dev = cell.alloc((k * n * 4) as u32, 64);
    let c_dev = cell.alloc((m * n * 4) as u32, 64);
    cell.dram_mut().write_f32_slice(a_dev, &a_host);
    cell.dram_mut().write_f32_slice(b_dev, &b_host);
    let program = Arc::new(Sgemm::program_blocked());
    machine.launch(
        0,
        &program,
        &[
            pgas::local_dram(a_dev),
            pgas::local_dram(b_dev),
            pgas::local_dram(c_dev),
            m as u32,
            k as u32,
            n as u32,
        ],
    );
    machine
}

#[test]
fn telemetry_windows_survive_restore() {
    let cfg = cfg_with(1, true);
    const WINDOW: u64 = 256;
    const AT: u64 = 997; // mid-window: 3 windows closed, one in flight

    // Uninterrupted twin with a sampler attached for the whole run.
    let full_store = Arc::new(Mutex::new(Telemetry::default()));
    let mut twin = sgemm_machine(&cfg);
    twin.attach_observer(Box::new(Sampler::new(
        &cfg,
        WINDOW,
        Keep::All,
        full_store.clone(),
    )));
    twin.run(BUDGET).expect("twin run");
    drop(twin); // flushes the final partial window
    let full = full_store.lock().unwrap().clone();
    assert!(full.samples.len() > 4, "run too short to exercise windows");

    // Interrupted run: same sampler, checkpoint mid-window at AT (the
    // sampler's in-progress state rides the machine payload).
    let part_store = Arc::new(Mutex::new(Telemetry::default()));
    let mut machine = sgemm_machine(&cfg);
    machine.attach_observer(Box::new(Sampler::new(
        &cfg,
        WINDOW,
        Keep::All,
        part_store.clone(),
    )));
    while machine.cycle() < AT {
        machine.tick();
    }
    let blob = ckpt::encode(&machine);
    drop(machine);

    // Restore into a fresh machine with a fresh sampler: the restored
    // window state must close every remaining window at the same cycle
    // with the same contents as the uninterrupted twin.
    let tail_store = Arc::new(Mutex::new(Telemetry::default()));
    let mut restored = Machine::new(cfg.clone());
    restored.attach_observer(Box::new(Sampler::new(
        &cfg,
        WINDOW,
        Keep::All,
        tail_store.clone(),
    )));
    ckpt::restore(&mut restored, &blob).expect("restore with sampler");
    restored.run(BUDGET).expect("continued run");
    drop(restored);
    let tail = tail_store.lock().unwrap().clone();

    let boundary = (AT / WINDOW) * WINDOW; // last window the twin closed before AT
    let skipped = full
        .samples
        .iter()
        .take_while(|s| s.end <= boundary)
        .count();
    assert_eq!(
        format!("{:?}", &full.samples[skipped..]),
        format!("{:?}", tail.samples),
        "restored telemetry windows diverge from the uninterrupted twin"
    );
    let full_tail_events: Vec<_> = full.events.iter().filter(|e| e.cycle > boundary).collect();
    assert_eq!(
        format!("{full_tail_events:?}"),
        format!("{:?}", tail.events.iter().collect::<Vec<_>>()),
        "restored instant events diverge from the uninterrupted twin"
    );
    assert_eq!(full.final_cycle, tail.final_cycle);
}

#[test]
fn guest_profile_survives_restore() {
    let cfg = MachineConfig {
        profile: true,
        ..cfg_with(1, true)
    };

    let mut twin = sgemm_machine(&cfg);
    twin.run(BUDGET).expect("twin run");
    let full_profile = twin.guest_profile().expect("twin profile");

    let mut machine = sgemm_machine(&cfg);
    while machine.cycle() < 997 {
        machine.tick();
    }
    let blob = ckpt::encode(&machine);
    drop(machine);

    // The profile buffers ride the tile snapshots, so even a restore into
    // a machine whose own `profile` knob is off continues recording.
    let mut restored = Machine::new(cfg.clone());
    ckpt::restore(&mut restored, &blob).expect("restore");
    restored.run(BUDGET).expect("continued run");
    assert_eq!(
        restored.guest_profile().expect("restored profile"),
        full_profile,
        "guest-code profile diverges after restore"
    );
}

#[test]
fn mismatched_version_and_config_are_clean_errors() {
    let cfg = cfg_with(1, true);
    let mut machine = sgemm_machine(&cfg);
    while machine.cycle() < 100 {
        machine.tick();
    }
    let blob = ckpt::encode(&machine);

    // Unknown format version.
    let mut wrong_version = blob.clone();
    wrong_version[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        ckpt::decode(&wrong_version),
        Err(ckpt::CkptError::Version { found: 7 })
    ));

    // Simulated-geometry mismatch is rejected before any state is touched.
    let other = MachineConfig {
        cell_dim: CellDim { x: 2, y: 2 },
        ..cfg.clone()
    };
    let mut other_machine = Machine::new(other);
    assert!(matches!(
        ckpt::restore(&mut other_machine, &blob),
        Err(ckpt::CkptError::ConfigMismatch { .. })
    ));
    assert_eq!(
        other_machine.cycle(),
        0,
        "rejected restore must not advance the machine"
    );

    // Host-only knobs (threads, schedule) are free to differ.
    let mut host_machine = Machine::new(cfg_with(4, false));
    assert_eq!(ckpt::restore(&mut host_machine, &blob).unwrap(), 100);

    // Corruption is a clean error too.
    let mut torn = blob.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x10;
    assert!(matches!(ckpt::decode(&torn), Err(ckpt::CkptError::Corrupt)));
}
